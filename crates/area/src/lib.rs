//! Storage-bit accounting and CACTI-lite area model.
//!
//! The paper derives area numbers from CACTI 6.5 at 40 nm with a 48-bit
//! virtual address space (Section 4.2). CACTI itself is a large C++ tool;
//! this crate replaces it with a power-law fit through the paper's own
//! published (size, area) points, which is exact where it matters — the
//! relative-area axis of Figures 2 and 6:
//!
//! | structure | size | paper mm² | model mm² |
//! |---|---|---|---|
//! | 1K-entry BTB + victim buffer | 9.9 KB | 0.08 | 0.080 |
//! | 16K-entry BTB | 140 KB | 0.60 | 0.599 |
//! | AirBTB | 10.2 KB | 0.08 | 0.082 |
//! | SHIFT index (LLC tag ext.) | ~240 KB | 0.96 total | ~0.93 total |
//!
//! # Example
//!
//! ```
//! use confluence_area::AreaModel;
//! use confluence_types::StorageProfile;
//!
//! let model = AreaModel::paper();
//! let baseline = StorageProfile::empty().with_array("BTB", 9_900 * 8);
//! let rel = model.relative_area(&baseline, &baseline);
//! assert!((rel - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

use confluence_types::StorageProfile;

/// Power-law coefficient `a` in `mm² = a · KiB^b`, fitted through the
/// paper's (9.9 KB, 0.08 mm²) and (140 KB, 0.6 mm²) CACTI points.
pub const AREA_COEFF: f64 = 0.013_97;
/// Power-law exponent `b` (sub-linear: big arrays are denser per bit).
pub const AREA_EXP: f64 = 0.760_6;

/// ARM Cortex-A72 core area at 40 nm (paper Section 2.3: 7.2 mm²).
pub const CORE_MM2: f64 = 7.2;

/// Area of a dedicated SRAM array of the given size, in mm² at 40 nm.
///
/// Uses the calibrated power law; zero-sized arrays cost nothing.
pub fn sram_mm2(kib: f64) -> f64 {
    if kib <= 0.0 {
        0.0
    } else {
        AREA_COEFF * kib.powf(AREA_EXP)
    }
}

/// Area model for a CMP of `cores` cores of `core_mm2` each.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    core_mm2: f64,
    cores: usize,
}

impl AreaModel {
    /// The paper's configuration: 16 Cortex-A72-class cores at 7.2 mm².
    pub fn paper() -> Self {
        AreaModel {
            core_mm2: CORE_MM2,
            cores: 16,
        }
    }

    /// Creates a model with explicit core area and count.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `core_mm2` is not positive.
    pub fn new(core_mm2: f64, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(core_mm2 > 0.0, "core area must be positive");
        AreaModel { core_mm2, cores }
    }

    /// Core area in mm².
    pub fn core_mm2(&self) -> f64 {
        self.core_mm2
    }

    /// Number of cores sharing virtualized structures.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Per-core area of a frontend storage profile, in mm².
    ///
    /// Dedicated arrays are modelled individually (each pays its own
    /// peripheral overhead, like CACTI does). LLC-*resident* metadata is
    /// free in area — it reuses existing LLC capacity (its cost shows up
    /// as reduced cache capacity in the performance model instead). LLC
    /// *tag-array extensions* (SHIFT's index pointers) add real SRAM,
    /// amortized over all cores.
    pub fn frontend_mm2(&self, profile: &StorageProfile) -> f64 {
        let dedicated: f64 = profile.arrays.iter().map(|a| sram_mm2(a.kib())).sum();
        let tag_ext = sram_mm2(profile.llc_tag_extension_bytes as f64 / 1024.0);
        dedicated + tag_ext / self.cores as f64
    }

    /// Relative per-core area of `profile` versus `baseline`, including the
    /// core itself — the x-axis of Figures 2 and 6.
    pub fn relative_area(&self, profile: &StorageProfile, baseline: &StorageProfile) -> f64 {
        (self.core_mm2 + self.frontend_mm2(profile)) / (self.core_mm2 + self.frontend_mm2(baseline))
    }

    /// Total chip area in mm²: every core plus its frontend, with the
    /// amortized LLC tag extension paid once — the denominator of the
    /// "IPC per mm² under an area budget" search objective.
    pub fn chip_mm2(&self, profile: &StorageProfile) -> f64 {
        self.cores as f64 * (self.core_mm2 + self.frontend_mm2(profile))
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_passes_through_calibration_points() {
        assert!(
            (sram_mm2(9.9) - 0.08).abs() < 0.005,
            "got {}",
            sram_mm2(9.9)
        );
        assert!(
            (sram_mm2(140.0) - 0.60).abs() < 0.01,
            "got {}",
            sram_mm2(140.0)
        );
    }

    #[test]
    fn sublinear_scaling() {
        // Doubling capacity must cost less than double the area.
        assert!(sram_mm2(20.0) < 2.0 * sram_mm2(10.0));
        assert!(sram_mm2(0.0) == 0.0);
    }

    #[test]
    fn shift_index_area_matches_paper() {
        // Paper: ~240 KB of tag-array extension = 0.96 mm² total,
        // 0.06 mm² per core.
        let model = AreaModel::paper();
        let shift = StorageProfile::empty().with_llc_tag_extension(240 * 1024);
        let per_core = model.frontend_mm2(&shift);
        assert!((0.04..0.08).contains(&per_core), "got {per_core}");
    }

    #[test]
    fn llc_resident_metadata_is_area_free() {
        let model = AreaModel::paper();
        let phantom_l2 = StorageProfile::empty().with_llc_resident(256 * 1024);
        assert_eq!(model.frontend_mm2(&phantom_l2), 0.0);
    }

    #[test]
    fn two_level_relative_area_is_about_8_percent() {
        let model = AreaModel::paper();
        let baseline = StorageProfile::empty().with_array("1K BTB", (99 * 1024 * 8) / 10);
        let two_level = StorageProfile::empty()
            .with_array("L1", (94 * 1024 * 8) / 10)
            .with_array("L2", 142 * 1024 * 8);
        let rel = model.relative_area(&two_level, &baseline);
        assert!((1.06..1.10).contains(&rel), "got {rel}");
    }

    #[test]
    fn confluence_relative_area_is_about_1_percent() {
        let model = AreaModel::paper();
        let baseline = StorageProfile::empty().with_array("1K BTB", (99 * 1024 * 8) / 10);
        let confluence = StorageProfile::empty()
            .with_array("AirBTB", (102 * 1024 * 8) / 10)
            .with_llc_resident(204 * 1024)
            .with_llc_tag_extension(240 * 1024);
        let rel = model.relative_area(&confluence, &baseline);
        assert!((1.005..1.02).contains(&rel), "got {rel}");
    }

    #[test]
    fn chip_area_pays_the_tag_extension_once() {
        // Per-core area amortizes the tag extension over the cores, so
        // the chip total must equal cores*core + cores*dedicated + ext:
        // scaling the core count leaves the extension's share constant.
        let profile = StorageProfile::empty()
            .with_array("AirBTB", 10 * 1024 * 8)
            .with_llc_tag_extension(240 * 1024);
        let ext = sram_mm2(240.0);
        let dedicated = sram_mm2(10.0);
        for cores in [1, 4, 16] {
            let model = AreaModel::new(CORE_MM2, cores);
            let expect = cores as f64 * (CORE_MM2 + dedicated) + ext;
            let got = model.chip_mm2(&profile);
            assert!(
                (got - expect).abs() < 1e-9,
                "{cores} cores: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn constructor_validation() {
        let m = AreaModel::new(5.0, 8);
        assert_eq!(m.cores(), 8);
        assert_eq!(m.core_mm2(), 5.0);
    }
}
