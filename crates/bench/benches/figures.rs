//! One benchmark per paper table/figure: each runs the corresponding
//! experiment pipeline at reduced scale. The time measured is the cost of
//! regenerating the result; the printed output of the full-scale versions
//! comes from the `confluence-sim` figure binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use confluence_sim::experiments::{self, ExperimentConfig};
use confluence_trace::{Program, Workload};

fn quick_workloads() -> Vec<(Workload, Program)> {
    // Two representative workloads keep bench time bounded.
    ExperimentConfig::quick().workloads().into_iter().take(2).collect()
}

fn bench_fig1_btb_mpki(c: &mut Criterion) {
    let ws = quick_workloads();
    let cfg = ExperimentConfig::quick();
    c.bench_function("fig1_btb_mpki_sweep", |b| {
        b.iter(|| black_box(experiments::fig1(&ws, &cfg)))
    });
}

fn bench_table2_branch_density(c: &mut Criterion) {
    let ws = quick_workloads();
    let cfg = ExperimentConfig::quick();
    c.bench_function("table2_branch_density", |b| {
        b.iter(|| black_box(experiments::table2(&ws, &cfg)))
    });
}

fn bench_fig8_coverage_breakdown(c: &mut Criterion) {
    let ws = quick_workloads();
    let cfg = ExperimentConfig::quick();
    c.bench_function("fig8_coverage_breakdown", |b| {
        b.iter(|| black_box(experiments::fig8(&ws, &cfg)))
    });
}

fn bench_fig9_coverage_compare(c: &mut Criterion) {
    let ws = quick_workloads();
    let cfg = ExperimentConfig::quick();
    c.bench_function("fig9_coverage_compare", |b| {
        b.iter(|| black_box(experiments::fig9(&ws, &cfg)))
    });
}

fn bench_fig10_airbtb_sensitivity(c: &mut Criterion) {
    let ws = quick_workloads();
    let cfg = ExperimentConfig::quick();
    c.bench_function("fig10_airbtb_sensitivity", |b| {
        b.iter(|| black_box(experiments::fig10(&ws, &cfg)))
    });
}

fn bench_l1i_coverage(c: &mut Criterion) {
    let ws = quick_workloads();
    let cfg = ExperimentConfig::quick();
    c.bench_function("l1i_coverage_shift", |b| {
        b.iter(|| black_box(experiments::l1i_coverage(&ws, &cfg)))
    });
}

fn bench_area_table(c: &mut Criterion) {
    c.bench_function("area_table_cacti_lite", |b| {
        b.iter(|| black_box(experiments::area_table()))
    });
}

fn bench_fig2_conventional(c: &mut Criterion) {
    let ws: Vec<_> = quick_workloads().into_iter().take(1).collect();
    let cfg = ExperimentConfig::quick();
    c.bench_function("fig2_conventional_frontends", |b| {
        b.iter(|| black_box(experiments::fig2(&ws, &cfg)))
    });
}

fn bench_fig6_confluence(c: &mut Criterion) {
    let ws: Vec<_> = quick_workloads().into_iter().take(1).collect();
    let cfg = ExperimentConfig::quick();
    c.bench_function("fig6_confluence_perf_area", |b| {
        b.iter(|| black_box(experiments::fig6(&ws, &cfg)))
    });
}

fn bench_fig7_btb_designs(c: &mut Criterion) {
    let ws: Vec<_> = quick_workloads().into_iter().take(1).collect();
    let cfg = ExperimentConfig::quick();
    c.bench_function("fig7_btb_designs_with_shift", |b| {
        b.iter(|| black_box(experiments::fig7(&ws, &cfg)))
    });
}

criterion_group! {
    name = coverage_figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1_btb_mpki, bench_table2_branch_density,
        bench_fig8_coverage_breakdown, bench_fig9_coverage_compare,
        bench_fig10_airbtb_sensitivity, bench_l1i_coverage, bench_area_table
}

criterion_group! {
    name = timing_figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2_conventional, bench_fig6_confluence, bench_fig7_btb_designs
}

criterion_main!(coverage_figures, timing_figures);
