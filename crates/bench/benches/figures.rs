//! One benchmark per paper table/figure, plus engine-path benchmarks.
//!
//! Figure benchmarks run against a pre-warmed [`SimEngine`], so they
//! measure the cost of regenerating a figure when its simulations are
//! already cached (the steady-state cost inside `all_experiments`). The
//! `engine` group contrasts that warm path with the cold path — a fresh
//! engine that must actually execute the simulations — which is the
//! headline win of the memoizing engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use confluence_sim::experiments::{self, ExperimentConfig};
use confluence_sim::SimEngine;

/// Two representative workloads keep bench time bounded.
fn quick_engine() -> (SimEngine, ExperimentConfig) {
    let cfg = ExperimentConfig::quick();
    let workloads = cfg.workloads().into_iter().take(2).collect();
    (SimEngine::new(workloads), cfg)
}

macro_rules! warm_figure_bench {
    ($fn_name:ident, $figure:ident, $id:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let (engine, cfg) = quick_engine();
            // Warm the cache once; iterations then measure formatting over
            // cached results.
            black_box(experiments::$figure(&engine, &cfg));
            c.bench_function($id, |b| {
                b.iter(|| black_box(experiments::$figure(&engine, &cfg)))
            });
        }
    };
}

warm_figure_bench!(bench_fig1_btb_mpki, fig1, "fig1_btb_mpki_sweep_warm");
warm_figure_bench!(
    bench_table2_branch_density,
    table2,
    "table2_branch_density_warm"
);
warm_figure_bench!(
    bench_fig8_coverage_breakdown,
    fig8,
    "fig8_coverage_breakdown_warm"
);
warm_figure_bench!(
    bench_fig9_coverage_compare,
    fig9,
    "fig9_coverage_compare_warm"
);
warm_figure_bench!(
    bench_fig10_airbtb_sensitivity,
    fig10,
    "fig10_airbtb_sensitivity_warm"
);
warm_figure_bench!(bench_l1i_coverage, l1i_coverage, "l1i_coverage_shift_warm");
warm_figure_bench!(
    bench_fig2_conventional,
    fig2,
    "fig2_conventional_frontends_warm"
);
warm_figure_bench!(
    bench_fig6_confluence,
    fig6,
    "fig6_confluence_perf_area_warm"
);
warm_figure_bench!(
    bench_fig7_btb_designs,
    fig7,
    "fig7_btb_designs_with_shift_warm"
);

fn bench_area_table(c: &mut Criterion) {
    c.bench_function("area_table_cacti_lite", |b| {
        b.iter(|| black_box(experiments::area_table()))
    });
}

/// Cold path: a fresh engine per iteration must execute Figure 9's
/// simulations (the workload programs are reused via `Arc`, so the cost
/// measured is simulation, not generation).
fn bench_engine_cold_fig9(c: &mut Criterion) {
    let (warm, cfg) = quick_engine();
    let workloads = warm.workloads().to_vec();
    c.bench_function("engine_cold_fig9", |b| {
        b.iter_batched(
            || SimEngine::new(workloads.clone()),
            |engine| black_box(experiments::fig9(&engine, &cfg)),
            BatchSize::PerIteration,
        )
    });
}

/// Warm path: the same figure over an engine whose cache already holds
/// every job — pure formatting.
fn bench_engine_warm_fig9(c: &mut Criterion) {
    let (engine, cfg) = quick_engine();
    black_box(experiments::fig9(&engine, &cfg));
    c.bench_function("engine_warm_fig9", |b| {
        b.iter(|| black_box(experiments::fig9(&engine, &cfg)))
    });
}

criterion_group! {
    name = coverage_figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1_btb_mpki, bench_table2_branch_density,
        bench_fig8_coverage_breakdown, bench_fig9_coverage_compare,
        bench_fig10_airbtb_sensitivity, bench_l1i_coverage, bench_area_table
}

criterion_group! {
    name = timing_figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2_conventional, bench_fig6_confluence, bench_fig7_btb_designs
}

criterion_group! {
    name = engine_paths;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_cold_fig9, bench_engine_warm_fig9
}

criterion_main!(coverage_figures, timing_figures, engine_paths);
