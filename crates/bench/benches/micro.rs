//! Microbenchmarks of the core structures: lookup/insert throughput of
//! AirBTB, the SHIFT engine, the trace executor, the hybrid direction
//! predictor, and the generic set-associative cache.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use confluence_bench::bench_program;
use confluence_btb::{BtbDesign, ConventionalBtb, ResolvedBranch};
use confluence_core::AirBtb;
use confluence_prefetch::{ShiftEngine, ShiftHistory};
use confluence_trace::CompiledProgram;
use confluence_types::{BlockAddr, BranchKind, PredecodeSource, VAddr};
use confluence_uarch::{HybridDirectionPredictor, L1ICache, SetAssocCache};

/// Folds every field of a record into a running checksum.
///
/// This is the benchmark's record consumer: one xor-chain cycle of serial
/// dependency per record, fully register-resident. Consuming each record
/// with `black_box` instead would force a 32-byte memory round-trip per
/// record — a flat tax on both paths that swamps the actual production
/// cost being measured.
#[inline(always)]
fn sink(acc: u64, r: &confluence_types::TraceRecord) -> u64 {
    let branch = match &r.branch {
        Some(b) => b.target.raw().wrapping_add(b.taken as u64),
        None => 0,
    };
    acc ^ r.pc.raw().wrapping_add(branch)
}

fn bench_executor_throughput(c: &mut Criterion) {
    let program = bench_program();
    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(100_000));
    // All three stream benches measure steady state: the executors are
    // fast-forwarded past the compiled path's request-memo warm-up
    // (~1-2M records for this program) so the samples compare sustained
    // throughput. One-time costs are measured separately: translation in
    // `compile/cold_compile` below, and the memo warm-up is bounded by
    // the arena cap (a few MB, amortized over billions of suite records).
    group.bench_function("trace_generation_100k", |b| {
        let mut ex = program.executor(1);
        ex.fast_forward(2_000_000);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..100_000 {
                if let Some(r) = ex.next_record() {
                    acc = sink(acc, &r);
                }
            }
            black_box(acc)
        })
    });
    // The compiled fast path over the same program: pull-based stepping
    // (what the timing frontend does) and batched internal iteration
    // (what coverage/density do). The acceptance bar is >= 3x the
    // reference `trace_generation_100k` above for the batched form.
    group.bench_function("compiled_next_record_100k", |b| {
        let mut ex = program.compiled().executor(1);
        ex.fast_forward(2_000_000);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..100_000 {
                if let Some(r) = ex.next_record() {
                    acc = sink(acc, &r);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("compiled_batch_100k", |b| {
        let mut ex = program.compiled().executor(1);
        ex.fast_forward(2_000_000);
        b.iter(|| {
            let mut acc = 0u64;
            ex.for_each_record(100_000, |r| acc = sink(acc, &r));
            black_box(acc)
        })
    });
    group.finish();
}

/// Cold start vs artifact-warm start: the first 200k records out of a
/// *fresh* program instance (a short job in a cold process), with and
/// without importing a persisted path-memo table first. This is the
/// regime the store's warm-artifact tier targets — below the memo
/// convergence point, where the cold path still pays recording and live
/// stepping while the warm path replays from record zero.
fn bench_warm_start(c: &mut Criterion) {
    let donor = bench_program();
    {
        let mut ex = donor.compiled().executor(1);
        ex.fast_forward(2_000_000);
    }
    let table = donor.compiled().export_memo();
    let mut group = c.benchmark_group("warm_start");
    group.throughput(Throughput::Elements(200_000));
    group.sample_size(10);
    let run = |p: &confluence_trace::Program| {
        let mut acc = 0u64;
        p.compiled()
            .executor(1)
            .for_each_record(200_000, |r| acc = sink(acc, &r));
        black_box(acc)
    };
    group.bench_function("cold_start_200k", |b| {
        b.iter_batched(
            || {
                let p = bench_program();
                p.compiled(); // pre-translate: both sides time stepping only
                p
            },
            |p| run(&p),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("artifact_warm_start_200k", |b| {
        b.iter_batched(
            || {
                let p = bench_program();
                assert!(p.compiled().import_memo(&table));
                p
            },
            |p| run(&p),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

/// One-time translation cost of `CompiledProgram::compile` — paid once
/// per workload spec per process (cached on the `Arc<Program>`), so it
/// only has to be cheap relative to a single simulation job.
fn bench_compile_cost(c: &mut Criterion) {
    let program = bench_program();
    let mut group = c.benchmark_group("compile");
    group.throughput(Throughput::Elements(program.stats().basic_blocks as u64));
    group.bench_function("cold_compile", |b| {
        b.iter(|| black_box(CompiledProgram::compile(&program)))
    });
    group.finish();
}

fn bench_airbtb_ops(c: &mut Criterion) {
    let program = bench_program();
    let mut btb = AirBtb::paper_config();
    // Pre-fill with a window of blocks.
    let blocks: Vec<BlockAddr> = program
        .executor(2)
        .take(50_000)
        .map(|r| r.pc.block())
        .collect();
    for &b in &blocks {
        btb.on_l1i_fill(b, program.branches_in_block(b));
    }
    let mut group = c.benchmark_group("airbtb");
    group.throughput(Throughput::Elements(blocks.len() as u64));
    group.bench_function("lookup_stream", |b| {
        b.iter(|| {
            for &blk in &blocks {
                black_box(btb.lookup(blk.base(), blk.instr(3)));
            }
        })
    });
    group.bench_function("fill_evict_stream", |b| {
        b.iter(|| {
            for &blk in &blocks {
                btb.on_l1i_fill(blk, program.branches_in_block(blk));
                btb.on_l1i_evict(blk);
            }
        })
    });
    group.finish();
}

fn bench_conventional_btb(c: &mut Criterion) {
    let mut btb = ConventionalBtb::baseline_1k().unwrap();
    let branches: Vec<ResolvedBranch> = (0..4096u64)
        .map(|i| ResolvedBranch {
            bb_start: VAddr::new(0x1000 + i * 24),
            pc: VAddr::new(0x1000 + i * 24 + 8),
            kind: BranchKind::Unconditional,
            taken: true,
            target: VAddr::new(0x9000 + i * 4),
        })
        .collect();
    let mut group = c.benchmark_group("conventional_btb");
    group.throughput(Throughput::Elements(branches.len() as u64));
    group.bench_function("update_lookup_stream", |b| {
        b.iter(|| {
            for r in &branches {
                btb.update(r);
                black_box(btb.lookup(r.bb_start, r.pc));
            }
        })
    });
    group.finish();
}

fn bench_shift_engine(c: &mut Criterion) {
    let program = bench_program();
    let mut history = ShiftHistory::new_32k();
    let accesses: Vec<BlockAddr> = {
        let mut v = Vec::new();
        let mut last = None;
        for r in program.executor(3).take(200_000) {
            let b = r.pc.block();
            if last != Some(b) {
                last = Some(b);
                v.push(b);
            }
        }
        v
    };
    for &b in &accesses {
        history.record(b);
    }
    let mut group = c.benchmark_group("shift");
    group.throughput(Throughput::Elements(accesses.len() as u64));
    group.bench_function("engine_replay", |b| {
        let mut engine = ShiftEngine::new();
        let mut out = Vec::with_capacity(32);
        b.iter(|| {
            for (i, &blk) in accesses.iter().enumerate() {
                out.clear();
                engine.on_access(&history, blk, i % 37 == 0, &mut out);
                black_box(&out);
            }
        })
    });
    group.bench_function("history_record", |b| {
        let mut h = ShiftHistory::new_32k();
        b.iter(|| {
            for &blk in &accesses {
                h.record(blk);
            }
        })
    });
    group.finish();
}

fn bench_direction_predictor(c: &mut Criterion) {
    let mut bp = HybridDirectionPredictor::new_16k();
    let pcs: Vec<VAddr> = (0..256u64).map(|i| VAddr::new(0x4000 + i * 12)).collect();
    let mut group = c.benchmark_group("direction");
    group.throughput(Throughput::Elements(pcs.len() as u64 * 16));
    group.bench_function("predict_update", |b| {
        b.iter(|| {
            for round in 0..16u64 {
                for (i, &pc) in pcs.iter().enumerate() {
                    let taken = !(i as u64 + round).is_multiple_of(3);
                    black_box(bp.predict(pc));
                    bp.update(pc, taken);
                }
            }
        })
    });
    group.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut group = c.benchmark_group("caches");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("set_assoc_lookup_insert", |b| {
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(128, 4).unwrap();
        b.iter(|| {
            for i in 0..10_000u64 {
                let key = (i * 2654435761) % 4096;
                if cache.lookup(key).is_none() {
                    cache.insert(key, i);
                }
            }
        })
    });
    group.bench_function("l1i_access_fill", |b| {
        let mut l1i = L1ICache::new_32k();
        b.iter(|| {
            for i in 0..10_000u64 {
                let block = BlockAddr::from_raw((i * 7919) % 2048);
                if !l1i.access(block) {
                    l1i.fill(block);
                }
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_executor_throughput, bench_warm_start, bench_compile_cost,
        bench_airbtb_ops, bench_conventional_btb, bench_shift_engine,
        bench_direction_predictor, bench_caches
}

criterion_main!(micro);
