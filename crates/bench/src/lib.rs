//! Criterion benchmark harness for the Confluence reproduction.
//!
//! The benchmarks live in `benches/`:
//!
//! - `figures` — one benchmark per paper table/figure, running the
//!   experiment pipelines at reduced scale (the figure *binaries* in
//!   `confluence-sim` run them at full scale);
//! - `micro` — throughput microbenchmarks of the core structures (AirBTB,
//!   SHIFT engine, trace executor, direction predictor, caches).

/// Shared helper: a small, deterministic workload for benches.
pub fn bench_program() -> confluence_trace::Program {
    confluence_trace::Program::generate(&confluence_trace::WorkloadSpec::base().with_code_kb(512))
        .expect("bench spec is valid")
}
