//! Conventional basic-block-oriented BTB with an optional victim buffer
//! (paper Section 4.2.2).

use confluence_types::{BranchClass, StorageProfile, VAddr};
use confluence_uarch::SetAssocCache;

use crate::design::{tag_bits, BtbDesign, BtbOutcome, ResolvedBranch};

/// Payload of one conventional BTB entry (the tag is the basic-block start
/// address, held by the cache key).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ConvEntry {
    /// Branch class (2 bits in hardware).
    pub class: BranchClass,
    /// Predicted target (30-bit PC-relative displacement in hardware).
    pub target: VAddr,
    /// Fall-through distance in instructions (4 bits; delimits the basic
    /// block so the fetch unit knows the region end).
    pub fall_len: u8,
}

/// Conventional set-associative BTB tagged by basic-block start address,
/// optionally backed by a small fully-associative victim buffer.
///
/// The paper's baseline is the 1K-entry, 4-way variant with a 64-entry
/// victim buffer (9.9 KB, 1-cycle).
///
/// # Example
///
/// ```
/// use confluence_btb::{ConventionalBtb, BtbDesign, ResolvedBranch};
/// use confluence_types::{BranchKind, VAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut btb = ConventionalBtb::baseline_1k()?;
/// let bb = VAddr::new(0x1000);
/// let pc = VAddr::new(0x1008);
/// assert!(!btb.lookup(bb, pc).hit); // cold
/// btb.update(&ResolvedBranch {
///     bb_start: bb, pc, kind: BranchKind::Unconditional,
///     taken: true, target: VAddr::new(0x2000),
/// });
/// assert!(btb.lookup(bb, pc).hit);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ConventionalBtb {
    name: &'static str,
    main: SetAssocCache<ConvEntry>,
    victim: Option<SetAssocCache<ConvEntry>>,
    entries: usize,
    ways: usize,
    victim_entries: usize,
}

impl ConventionalBtb {
    /// The paper's baseline: 1K entries, 4-way, 64-entry victim buffer.
    ///
    /// # Errors
    ///
    /// Propagates cache-geometry errors (cannot occur for this fixed
    /// configuration).
    pub fn baseline_1k() -> Result<Self, confluence_types::ConfigError> {
        Self::new("ConvBTB-1K", 1024, 4, 64)
    }

    /// The large comparison point: 16K entries, 4-way, no victim buffer.
    ///
    /// # Errors
    ///
    /// Propagates cache-geometry errors (cannot occur for this fixed
    /// configuration).
    pub fn large_16k() -> Result<Self, confluence_types::ConfigError> {
        Self::new("ConvBTB-16K", 16 * 1024, 4, 0)
    }

    /// Creates a conventional BTB with explicit geometry.
    ///
    /// # Errors
    ///
    /// Returns an error if `entries / ways` is not a valid set count.
    pub fn new(
        name: &'static str,
        entries: usize,
        ways: usize,
        victim_entries: usize,
    ) -> Result<Self, confluence_types::ConfigError> {
        let main = SetAssocCache::new((entries / ways).max(1), ways)?;
        let victim = if victim_entries > 0 {
            // Fully associative: one set, `victim_entries` ways.
            Some(SetAssocCache::new(1, victim_entries)?)
        } else {
            None
        };
        Ok(ConventionalBtb {
            name,
            main,
            victim,
            entries,
            ways,
            victim_entries,
        })
    }

    /// Configured main-table entry count.
    pub fn entries(&self) -> usize {
        self.entries
    }

    #[inline]
    fn key(bb_start: VAddr) -> u64 {
        bb_start.raw() >> 2
    }

    /// Internal lookup used by composite designs (two-level): returns the
    /// entry if present in the main table or victim buffer, promoting
    /// victim hits back into the main table.
    pub(crate) fn find(&mut self, bb_start: VAddr) -> Option<ConvEntry> {
        let key = Self::key(bb_start);
        if let Some(e) = self.main.lookup(key) {
            return Some(*e);
        }
        if let Some(victim) = &mut self.victim {
            if let Some(e) = victim.invalidate(key) {
                // Swap back into the main table.
                if let Some((vk, vv)) = self.main.insert(key, e) {
                    victim.insert(vk, vv);
                }
                return Some(e);
            }
        }
        None
    }

    /// Installs an entry, spilling the victimized line into the victim
    /// buffer when one is configured.
    pub(crate) fn install(&mut self, bb_start: VAddr, entry: ConvEntry) {
        let key = Self::key(bb_start);
        let evicted = self.main.insert(key, entry);
        if let (Some((vk, vv)), Some(victim)) = (evicted, self.victim.as_mut()) {
            victim.insert(vk, vv);
        }
    }

    pub(crate) fn make_entry(resolved: &ResolvedBranch) -> ConvEntry {
        ConvEntry {
            class: resolved.kind.class(),
            target: resolved.target,
            fall_len: resolved.fall_len(),
        }
    }

    fn outcome_for(entry: ConvEntry) -> BtbOutcome {
        let target = match entry.class {
            BranchClass::Conditional | BranchClass::Unconditional => Some(entry.target),
            // Returns and indirect branches defer to RAS / indirect cache.
            BranchClass::Return | BranchClass::Indirect => None,
        };
        BtbOutcome {
            first_level_hit: true,
            hit: true,
            target,
            class: Some(entry.class),
            fill_bubble: 0,
        }
    }
}

impl BtbDesign for ConventionalBtb {
    fn name(&self) -> &'static str {
        self.name
    }

    fn lookup(&mut self, bb_start: VAddr, _branch_pc: VAddr) -> BtbOutcome {
        match self.find(bb_start) {
            Some(entry) => Self::outcome_for(entry),
            None => BtbOutcome::miss(),
        }
    }

    fn update(&mut self, resolved: &ResolvedBranch) {
        // Classic allocation policy: taken branches earn entries; a
        // never-taken conditional costs nothing (sequential fetch already
        // falls through correctly).
        if !resolved.taken {
            return;
        }
        self.install(resolved.bb_start, Self::make_entry(resolved));
    }

    fn storage(&self) -> StorageProfile {
        let tag = tag_bits(self.entries, self.ways, 2) as u64;
        // valid + tag + target(30) + class(2) + fall-through(4)
        let entry_bits = 1 + tag + 30 + 2 + 4;
        let mut profile =
            StorageProfile::empty().with_array("BTB main", self.entries as u64 * entry_bits);
        if self.victim_entries > 0 {
            // Victim entries carry the full instruction-grain tag.
            let victim_bits = 1 + (confluence_types::VADDR_BITS as u64 - 2) + 30 + 2 + 4;
            profile = profile.with_array("victim buffer", self.victim_entries as u64 * victim_bits);
        }
        profile
    }

    fn reset(&mut self) {
        self.main.clear();
        if let Some(v) = &mut self.victim {
            v.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_types::BranchKind;

    fn resolved(bb: u64, pc: u64, target: u64) -> ResolvedBranch {
        ResolvedBranch {
            bb_start: VAddr::new(bb),
            pc: VAddr::new(pc),
            kind: BranchKind::Unconditional,
            taken: true,
            target: VAddr::new(target),
        }
    }

    #[test]
    fn insert_then_hit_with_target() {
        let mut btb = ConventionalBtb::new("t", 64, 4, 0).unwrap();
        btb.update(&resolved(0x1000, 0x1008, 0x2000));
        let o = btb.lookup(VAddr::new(0x1000), VAddr::new(0x1008));
        assert!(o.hit && o.first_level_hit);
        assert_eq!(o.target, Some(VAddr::new(0x2000)));
        assert_eq!(o.class, Some(BranchClass::Unconditional));
    }

    #[test]
    fn not_taken_branches_do_not_allocate() {
        let mut btb = ConventionalBtb::new("t", 64, 4, 0).unwrap();
        let mut r = resolved(0x1000, 0x1008, 0x2000);
        r.kind = BranchKind::Conditional;
        r.taken = false;
        btb.update(&r);
        assert!(!btb.lookup(VAddr::new(0x1000), VAddr::new(0x1008)).hit);
    }

    #[test]
    fn victim_buffer_catches_evictions() {
        // 1 set x 2 ways + 2-entry victim buffer.
        let mut btb = ConventionalBtb::new("t", 2, 2, 2).unwrap();
        // All keys map to the single set.
        btb.update(&resolved(0x1000, 0x1000, 0x9000));
        btb.update(&resolved(0x2000, 0x2000, 0x9000));
        btb.update(&resolved(0x3000, 0x3000, 0x9000)); // evicts 0x1000 -> victim
        let o = btb.lookup(VAddr::new(0x1000), VAddr::new(0x1000));
        assert!(o.hit, "victim buffer must retain the evicted entry");
    }

    #[test]
    fn without_victim_evictions_are_lost() {
        let mut btb = ConventionalBtb::new("t", 2, 2, 0).unwrap();
        btb.update(&resolved(0x1000, 0x1000, 0x9000));
        btb.update(&resolved(0x2000, 0x2000, 0x9000));
        btb.update(&resolved(0x3000, 0x3000, 0x9000));
        assert!(!btb.lookup(VAddr::new(0x1000), VAddr::new(0x1000)).hit);
    }

    #[test]
    fn indirect_entries_defer_target() {
        let mut btb = ConventionalBtb::new("t", 64, 4, 0).unwrap();
        let mut r = resolved(0x1000, 0x1008, 0x2000);
        r.kind = BranchKind::Return;
        btb.update(&r);
        let o = btb.lookup(VAddr::new(0x1000), VAddr::new(0x1008));
        assert!(o.hit);
        assert_eq!(o.target, None);
        assert_eq!(o.class, Some(BranchClass::Return));
    }

    #[test]
    fn baseline_storage_matches_paper() {
        let btb = ConventionalBtb::baseline_1k().unwrap();
        let kib = btb.storage().dedicated_kib();
        // Paper: ~9.9 KB for 1K entries + 64-entry victim buffer.
        assert!((9.0..11.0).contains(&kib), "got {kib} KiB");
    }

    #[test]
    fn large_storage_matches_paper() {
        let btb = ConventionalBtb::large_16k().unwrap();
        let kib = btb.storage().dedicated_kib();
        // Paper: ~140 KB for the 16K-entry table.
        assert!((135.0..148.0).contains(&kib), "got {kib} KiB");
    }

    #[test]
    fn reset_clears_contents() {
        let mut btb = ConventionalBtb::new("t", 64, 4, 8).unwrap();
        btb.update(&resolved(0x1000, 0x1008, 0x2000));
        btb.reset();
        assert!(!btb.lookup(VAddr::new(0x1000), VAddr::new(0x1008)).hit);
    }
}
