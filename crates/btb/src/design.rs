//! The common interface implemented by every BTB design in the study.

use confluence_types::{
    BlockAddr, BranchClass, BranchKind, PredecodedBranch, StorageProfile, VAddr,
};

/// A dynamic branch as resolved by the core, used to train BTBs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedBranch {
    /// Start address of the basic block the branch terminates (the tag used
    /// by basic-block-oriented BTBs).
    pub bb_start: VAddr,
    /// Program counter of the branch instruction itself.
    pub pc: VAddr,
    /// Static kind of the branch.
    pub kind: BranchKind,
    /// Dynamic outcome.
    pub taken: bool,
    /// Resolved target.
    pub target: VAddr,
}

impl ResolvedBranch {
    /// Fall-through distance in instructions from `bb_start` through the
    /// branch itself, as encoded in basic-block BTB entries (clamped to the
    /// 4-bit field the paper uses, which covers 99% of basic blocks).
    pub fn fall_len(&self) -> u8 {
        self.bb_start
            .instrs_until(self.pc)
            .map(|d| (d + 1).min(15) as u8)
            .unwrap_or(1)
    }
}

/// Result of a BTB lookup for the branch ending the current basic block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BtbOutcome {
    /// The entry was found in the first (1-cycle) level.
    pub first_level_hit: bool,
    /// The entry was found somewhere in the design (first level, victim
    /// buffer, prefetch buffer, or a second level). When false, the BPU
    /// does not know a branch ends this fetch region — a misfetch follows
    /// if the branch is taken.
    pub hit: bool,
    /// Predicted target (direct branches; `None` when the entry defers to
    /// the RAS or indirect target cache, or on a miss).
    pub target: Option<VAddr>,
    /// Predicted branch class.
    pub class: Option<BranchClass>,
    /// Bubble cycles the core is exposed to when the entry had to be
    /// brought in from a second level at lookup time (paper: 4 cycles for
    /// the dedicated two-level design, an LLC round trip for PhantomBTB).
    pub fill_bubble: u64,
}

impl BtbOutcome {
    /// A miss outcome with no bubbles.
    pub fn miss() -> Self {
        BtbOutcome::default()
    }
}

/// Interface shared by all BTB designs (conventional, two-level,
/// PhantomBTB, AirBTB, ideal).
///
/// The simulation harness drives implementations with one `lookup` per
/// dynamic basic block, one `update` per resolved branch, and the L1-I
/// synchronization hooks for designs whose contents mirror the instruction
/// cache (AirBTB).
///
/// `Send` is a supertrait because a built design lives inside one core's
/// pipeline state, and the CMP tick moves whole cores across shard
/// threads; designs hold only owned tables (or `Send + Sync` oracles), so
/// the bound costs implementations nothing.
pub trait BtbDesign: Send {
    /// Short display name, e.g. `"2LevelBTB"`.
    fn name(&self) -> &'static str;

    /// Looks up the branch that terminates the basic block starting at
    /// `bb_start`. `branch_pc` identifies the branch for block-grain
    /// designs (AirBTB indexes by block and scans its bitmap).
    fn lookup(&mut self, bb_start: VAddr, branch_pc: VAddr) -> BtbOutcome;

    /// Trains the design with a resolved branch.
    fn update(&mut self, resolved: &ResolvedBranch);

    /// Hook invoked when an instruction block is filled into the L1-I
    /// (demand or prefetch). Designs synchronized with the L1-I install
    /// entries here; decoupled designs ignore it.
    fn on_l1i_fill(&mut self, block: BlockAddr, branches: &[PredecodedBranch]) {
        let _ = (block, branches);
    }

    /// Hook invoked when an instruction block is evicted from the L1-I.
    fn on_l1i_evict(&mut self, block: BlockAddr) {
        let _ = block;
    }

    /// Storage footprint for the area model.
    fn storage(&self) -> StorageProfile;

    /// Resets dynamic content (not configuration).
    fn reset(&mut self);
}

/// Returns the number of tag bits for a set-associative structure tagged
/// with instruction addresses in a 48-bit VA space.
///
/// `entries` and `ways` define the set count; `grain_bits` is the number of
/// low-order bits dropped before indexing (2 for instruction-aligned tags,
/// 6 for block tags).
pub fn tag_bits(entries: usize, ways: usize, grain_bits: u32) -> u32 {
    let sets = (entries / ways).max(1);
    let index_bits = sets.trailing_zeros();
    confluence_types::VADDR_BITS - grain_bits - index_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fall_len_counts_inclusive_instructions() {
        let r = ResolvedBranch {
            bb_start: VAddr::new(0x100),
            pc: VAddr::new(0x10c),
            kind: BranchKind::Conditional,
            taken: true,
            target: VAddr::new(0x200),
        };
        assert_eq!(r.fall_len(), 4);
    }

    #[test]
    fn fall_len_clamps_to_4_bits() {
        let r = ResolvedBranch {
            bb_start: VAddr::new(0x100),
            pc: VAddr::new(0x100 + 40 * 4),
            kind: BranchKind::Conditional,
            taken: true,
            target: VAddr::new(0x200),
        };
        assert_eq!(r.fall_len(), 15);
    }

    #[test]
    fn tag_bits_match_paper_examples() {
        // 1K-entry 4-way, instruction grain: 256 sets -> 8 index bits,
        // 48 - 2 - 8 = 38 tag bits (paper Section 4.2.2 storage maths).
        assert_eq!(tag_bits(1024, 4, 2), 38);
        // 16K-entry 4-way: 4096 sets -> 48 - 2 - 12 = 34.
        assert_eq!(tag_bits(16 * 1024, 4, 2), 34);
        // AirBTB: 512 bundles 4-way at block grain: 128 sets -> 48-6-7=35.
        assert_eq!(tag_bits(512, 4, 6), 35);
    }

    #[test]
    fn miss_outcome_is_empty() {
        let m = BtbOutcome::miss();
        assert!(!m.hit && !m.first_level_hit);
        assert_eq!(m.fill_bubble, 0);
        assert_eq!(m.target, None);
    }
}
