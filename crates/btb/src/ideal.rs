//! Idealized BTB reference points.

use confluence_types::{ConfigError, StorageProfile, VAddr};

use crate::conventional::ConventionalBtb;
use crate::design::{BtbDesign, BtbOutcome, ResolvedBranch};

/// The paper's `IdealBTB`: a 16K-entry BTB with 1-cycle access latency
/// (Figure 7's upper bound). It still takes cold and capacity misses —
/// OLTP/Oracle exceeds 16K entries, which is why AirBTB can beat it there
/// (paper Section 5.1).
#[derive(Clone, Debug)]
pub struct IdealBtb {
    inner: ConventionalBtb,
}

impl IdealBtb {
    /// Creates the 16K-entry, 1-cycle configuration.
    ///
    /// # Errors
    ///
    /// Propagates cache-geometry errors (cannot occur for this fixed
    /// configuration).
    pub fn new_16k() -> Result<Self, ConfigError> {
        Ok(IdealBtb {
            inner: ConventionalBtb::new("IdealBTB", 16 * 1024, 4, 0)?,
        })
    }
}

impl BtbDesign for IdealBtb {
    fn name(&self) -> &'static str {
        "IdealBTB"
    }

    fn lookup(&mut self, bb_start: VAddr, branch_pc: VAddr) -> BtbOutcome {
        self.inner.lookup(bb_start, branch_pc)
    }

    fn update(&mut self, resolved: &ResolvedBranch) {
        self.inner.update(resolved);
    }

    fn storage(&self) -> StorageProfile {
        self.inner.storage()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// A perfect BTB: every basic block is always delineated correctly with a
/// single-cycle access and no storage. Used (together with a perfect L1-I)
/// for the `Ideal` frontend of Figures 2 and 6.
///
/// Direct-branch targets are reported as "known" by returning `hit` with no
/// stored target; the harness resolves direct targets from the trace (they
/// are statically encoded in the instruction), while returns and indirect
/// branches still go through the RAS / indirect target cache like every
/// other design.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectBtb;

impl PerfectBtb {
    /// Creates a perfect BTB.
    pub fn new() -> Self {
        PerfectBtb
    }
}

impl BtbDesign for PerfectBtb {
    fn name(&self) -> &'static str {
        "PerfectBTB"
    }

    fn lookup(&mut self, _bb_start: VAddr, _branch_pc: VAddr) -> BtbOutcome {
        BtbOutcome {
            first_level_hit: true,
            hit: true,
            target: None,
            class: None,
            fill_bubble: 0,
        }
    }

    fn update(&mut self, _resolved: &ResolvedBranch) {}

    fn storage(&self) -> StorageProfile {
        StorageProfile::empty()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_types::BranchKind;

    #[test]
    fn ideal_btb_still_takes_cold_misses() {
        let mut btb = IdealBtb::new_16k().unwrap();
        assert!(!btb.lookup(VAddr::new(0x1000), VAddr::new(0x1004)).hit);
        btb.update(&ResolvedBranch {
            bb_start: VAddr::new(0x1000),
            pc: VAddr::new(0x1004),
            kind: BranchKind::Unconditional,
            taken: true,
            target: VAddr::new(0x2000),
        });
        assert!(btb.lookup(VAddr::new(0x1000), VAddr::new(0x1004)).hit);
    }

    #[test]
    fn perfect_btb_always_hits_with_no_storage() {
        let mut btb = PerfectBtb::new();
        let o = btb.lookup(VAddr::new(0x1000), VAddr::new(0x1004));
        assert!(o.hit && o.first_level_hit);
        assert_eq!(o.fill_bubble, 0);
        assert_eq!(btb.storage().dedicated_bits(), 0);
    }
}
