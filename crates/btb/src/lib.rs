//! Baseline branch target buffer designs evaluated against Confluence.
//!
//! The paper compares AirBTB (in `confluence-core`) against four BTB
//! organizations, all implemented here behind the common [`BtbDesign`]
//! trait:
//!
//! - [`ConventionalBtb`] — basic-block-oriented, set-associative, with an
//!   optional victim buffer (the 1K-entry baseline and the 16K-entry
//!   comparison point);
//! - [`TwoLevelBtb`] — 1K-entry L1 backed by a dedicated 16K-entry L2 with
//!   a 4-cycle access latency;
//! - [`PhantomBtb`] — 1K-entry L1 backed by temporal groups virtualized in
//!   the LLC (the state-of-the-art BTB prefetcher baseline);
//! - [`IdealBtb`] / [`PerfectBtb`] — the upper-bound reference points.
//!
//! # Example
//!
//! ```
//! use confluence_btb::{BtbDesign, TwoLevelBtb};
//! use confluence_types::VAddr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut btb = TwoLevelBtb::paper_config()?;
//! let outcome = btb.lookup(VAddr::new(0x1000), VAddr::new(0x1008));
//! assert!(!outcome.hit); // cold BTB
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod conventional;
mod design;
mod ideal;
mod phantom;
mod two_level;

pub use conventional::ConventionalBtb;
pub use design::{tag_bits, BtbDesign, BtbOutcome, ResolvedBranch};
pub use ideal::{IdealBtb, PerfectBtb};
pub use phantom::{PhantomBtb, GROUP_ENTRIES, GROUP_TABLE_LINES};
pub use two_level::TwoLevelBtb;
