//! PhantomBTB: a virtualized two-level BTB with temporal-group prefetching
//! (Burcea & Moshovos, ASPLOS 2009; evaluated as the state-of-the-art BTB
//! prefetcher baseline in the paper).
//!
//! Mechanics reproduced here (paper Sections 2.1 and 5.2):
//!
//! - a 1K-entry conventional first level plus a 64-entry prefetch buffer;
//! - a second level of *temporal groups* — six BTB entries that missed
//!   consecutively in the first level, packed into one LLC line and tagged
//!   with the 32-instruction code region of the group's first miss. Groups
//!   are stored in formation order, so consecutive groups capture the
//!   temporal stream of misses;
//! - on a first-level miss, the group tagged by the missing region (plus
//!   its formation-order successor) is fetched from the LLC into the
//!   prefetch buffer, arriving only after the LLC round-trip latency (the
//!   timeliness problem Confluence removes). Prefetch-buffer hits *chase*
//!   the stream by fetching subsequent groups;
//! - the trigger miss itself is never eliminated, and control-flow
//!   divergence between group formation and reuse limits coverage (the
//!   paper measures 61% against AirBTB's 93%).

use std::collections::VecDeque;

use confluence_types::{StorageProfile, VAddr};
use confluence_uarch::SetAssocCache;

use crate::conventional::{ConvEntry, ConventionalBtb};
use crate::design::{BtbDesign, BtbOutcome, ResolvedBranch};

/// Entries per temporal group (six fit in a 64-byte LLC line).
pub const GROUP_ENTRIES: usize = 6;
/// Code-region granularity used to tag groups (the paper uses 32
/// instructions; we widen to 128 instructions, which maximizes trigger hit
/// rate on the synthetic workloads).
const REGION_SHIFT: u32 = 9;
/// Number of temporal groups kept in the LLC (4K lines = 256 KB).
pub const GROUP_TABLE_LINES: usize = 4096;
/// Groups fetched per trigger miss.
const GROUPS_PER_TRIGGER: u64 = 4;

type Group = Vec<(VAddr, ConvEntry)>;

/// PhantomBTB with an LLC-virtualized temporal-group second level.
#[derive(Clone, Debug)]
pub struct PhantomBtb {
    l1: ConventionalBtb,
    prefetch_buffer: SetAssocCache<ConvEntry>,
    /// Temporal groups in formation order (bounded circular log modelling
    /// the 4K reserved LLC lines).
    group_log: VecDeque<Group>,
    /// Sequence number of the next group to be appended.
    log_head: u64,
    /// Region tag -> sequence number of the most recent group it triggered.
    index: SetAssocCache<u64>,
    /// Group currently being formed from consecutive L1 misses.
    forming: Group,
    forming_region: u64,
    /// Next group sequence to chase when prefetched entries prove useful.
    chase: Option<u64>,
    /// Groups fetched from the LLC but not yet arrived: (ready, seq).
    inflight: Vec<(u64, u64)>,
    /// Pseudo-cycle counter advanced once per lookup (the BPU performs one
    /// lookup per cycle), used to model group arrival latency.
    now: u64,
    llc_latency: u64,
    prefetch_entries: usize,
}

impl PhantomBtb {
    /// Creates the paper's configuration: 1K-entry L1, 64-entry prefetch
    /// buffer, 4K temporal groups, with the given mean LLC round-trip
    /// latency (cycles).
    ///
    /// # Errors
    ///
    /// Propagates cache-geometry errors (cannot occur for this fixed
    /// configuration).
    pub fn paper_config(llc_latency: u64) -> Result<Self, confluence_types::ConfigError> {
        Self::new(1024, 64, llc_latency)
    }

    /// Creates a PhantomBTB with explicit sizes.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid geometries.
    pub fn new(
        l1_entries: usize,
        prefetch_entries: usize,
        llc_latency: u64,
    ) -> Result<Self, confluence_types::ConfigError> {
        Ok(PhantomBtb {
            l1: ConventionalBtb::new("PhantomBTB-L1", l1_entries, 4, 0)?,
            prefetch_buffer: SetAssocCache::new(1, prefetch_entries.max(1))?,
            group_log: VecDeque::with_capacity(GROUP_TABLE_LINES),
            log_head: 0,
            index: SetAssocCache::new(GROUP_TABLE_LINES / 4, 4)?,
            forming: Vec::with_capacity(GROUP_ENTRIES),
            forming_region: 0,
            chase: None,
            inflight: Vec::new(),
            now: 0,
            llc_latency,
            prefetch_entries,
        })
    }

    #[inline]
    fn region_of(pc: VAddr) -> u64 {
        pc.raw() >> REGION_SHIFT
    }

    #[inline]
    fn key(bb_start: VAddr) -> u64 {
        bb_start.raw() >> 2
    }

    fn seq_valid(&self, seq: u64) -> bool {
        seq < self.log_head && self.log_head - seq <= self.group_log.len() as u64
    }

    fn group_at(&self, seq: u64) -> Option<&Group> {
        if !self.seq_valid(seq) {
            return None;
        }
        let oldest = self.log_head - self.group_log.len() as u64;
        self.group_log.get((seq - oldest) as usize)
    }

    /// Schedules the LLC fetch of one group.
    fn fetch_group(&mut self, seq: u64) {
        if self.seq_valid(seq) && !self.inflight.iter().any(|&(_, s)| s == seq) {
            self.inflight.push((self.now + self.llc_latency, seq));
        }
    }

    /// Installs groups whose LLC fetch has completed.
    fn drain_inflight(&mut self) {
        let now = self.now;
        let mut arrived: Vec<u64> = Vec::new();
        self.inflight.retain(|&(ready, seq)| {
            if ready <= now {
                arrived.push(seq);
                false
            } else {
                true
            }
        });
        for seq in arrived {
            let Some(group) = self.group_at(seq) else {
                continue;
            };
            for (bb, entry) in group.clone() {
                self.prefetch_buffer.insert(Self::key(bb), entry);
            }
        }
    }

    /// Number of groups stored so far (observability for tests).
    pub fn stored_groups(&self) -> usize {
        self.group_log.len()
    }
}

impl BtbDesign for PhantomBtb {
    fn name(&self) -> &'static str {
        "PhantomBTB"
    }

    fn lookup(&mut self, bb_start: VAddr, _branch_pc: VAddr) -> BtbOutcome {
        self.now += 1;
        self.drain_inflight();

        if let Some(entry) = self.l1.find(bb_start) {
            return BtbOutcome {
                first_level_hit: true,
                hit: true,
                target: direct_target(entry),
                class: Some(entry.class),
                fill_bubble: 0,
            };
        }
        // Prefetch-buffer hit: promote into the L1 and chase the stream of
        // groups that followed this one at formation time.
        if let Some(entry) = self.prefetch_buffer.invalidate(Self::key(bb_start)) {
            self.l1.install(bb_start, entry);
            if let Some(next) = self.chase {
                self.fetch_group(next);
                self.chase = Some(next + 1);
            }
            return BtbOutcome {
                first_level_hit: true,
                hit: true,
                target: direct_target(entry),
                class: Some(entry.class),
                fill_bubble: 0,
            };
        }
        // Miss: trigger a group fetch for this region from the LLC.
        let region = Self::region_of(bb_start);
        if let Some(&seq) = self.index.lookup(region) {
            for k in 0..GROUPS_PER_TRIGGER {
                self.fetch_group(seq + k);
            }
            self.chase = Some(seq + GROUPS_PER_TRIGGER);
        }
        // If an in-flight group (including one just triggered) carries this
        // entry, the virtualized second level *will* serve it — but only
        // after the LLC round trip, exposing the core to that latency
        // (paper Section 2.3: "delays in accessing the second level of BTB
        // storage in the LLC"). Content-wise the miss is eliminated;
        // timing-wise the arrival delay is a fetch bubble.
        let key = Self::key(bb_start);
        let mut found: Option<(u64, ConvEntry)> = None;
        for &(ready, seq) in &self.inflight {
            if let Some(group) = self.group_at(seq) {
                if let Some(&(_, entry)) = group.iter().find(|&&(bb, _)| Self::key(bb) == key) {
                    if found.map(|(r, _)| ready < r).unwrap_or(true) {
                        found = Some((ready, entry));
                    }
                }
            }
        }
        if let Some((ready, entry)) = found {
            self.l1.install(bb_start, entry);
            return BtbOutcome {
                first_level_hit: false,
                hit: true,
                target: direct_target(entry),
                class: Some(entry.class),
                fill_bubble: ready.saturating_sub(self.now),
            };
        }
        BtbOutcome::miss()
    }

    fn update(&mut self, resolved: &ResolvedBranch) {
        if !resolved.taken {
            return;
        }
        let entry = ConventionalBtb::make_entry(resolved);
        // Was this a first-level miss? (The prefetch buffer was already
        // drained/promoted during lookup, so probing L1 suffices.)
        let missed = self.l1.find(resolved.bb_start).is_none();
        self.l1.install(resolved.bb_start, entry);
        if !missed {
            return;
        }
        // Temporal-group formation: consecutive misses pack together.
        if self.forming.is_empty() {
            self.forming_region = Self::region_of(resolved.bb_start);
        }
        self.forming.push((resolved.bb_start, entry));
        if self.forming.len() == GROUP_ENTRIES {
            let group = std::mem::take(&mut self.forming);
            self.index.insert(self.forming_region, self.log_head);
            if self.group_log.len() == GROUP_TABLE_LINES {
                self.group_log.pop_front();
            }
            self.group_log.push_back(group);
            self.log_head += 1;
        }
    }

    fn storage(&self) -> StorageProfile {
        // Dedicated: the L1 (same budget class as the baseline) plus the
        // prefetch buffer with full-address tags.
        let mut profile = self.l1.storage();
        let pf_bits = 1 + (confluence_types::VADDR_BITS as u64 - 2) + 30 + 2 + 4;
        profile = profile.with_array("prefetch buffer", self.prefetch_entries as u64 * pf_bits);
        // Virtualized: 4K LLC lines of temporal groups, shared across cores.
        profile.with_llc_resident((GROUP_TABLE_LINES * 64) as u64)
    }

    fn reset(&mut self) {
        self.l1.reset();
        self.prefetch_buffer.clear();
        self.group_log.clear();
        self.log_head = 0;
        self.index.clear();
        self.forming.clear();
        self.chase = None;
        self.inflight.clear();
        self.now = 0;
    }
}

fn direct_target(entry: ConvEntry) -> Option<VAddr> {
    use confluence_types::BranchClass;
    match entry.class {
        BranchClass::Conditional | BranchClass::Unconditional => Some(entry.target),
        BranchClass::Return | BranchClass::Indirect => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_types::BranchKind;

    fn resolved(bb: u64) -> ResolvedBranch {
        ResolvedBranch {
            bb_start: VAddr::new(bb),
            pc: VAddr::new(bb + 4),
            kind: BranchKind::Unconditional,
            taken: true,
            target: VAddr::new(0x9000),
        }
    }

    /// Drives the BTB through a miss sequence twice; the second pass should
    /// benefit from temporal groups formed during the first.
    #[test]
    fn temporal_groups_prefetch_recurring_miss_sequences() {
        let mut btb = PhantomBtb::new(4, 64, 2).unwrap();
        // A long recurring sequence of branches, all conflicting in the
        // tiny 4-entry L1, so every pass misses without prefetch.
        let seq: Vec<u64> = (0..24).map(|i| 0x10_000 + i * 0x100).collect();
        // Pass 1: cold misses; groups form.
        for &bb in &seq {
            btb.lookup(VAddr::new(bb), VAddr::new(bb + 4));
            btb.update(&resolved(bb));
        }
        assert!(
            btb.stored_groups() >= 3,
            "groups stored: {}",
            btb.stored_groups()
        );
        // Pass 2: replay. Trigger misses fetch groups; later entries hit.
        let mut hits = 0;
        for &bb in &seq {
            if btb.lookup(VAddr::new(bb), VAddr::new(bb + 4)).hit {
                hits += 1;
            }
            btb.update(&resolved(bb));
        }
        assert!(
            hits > seq.len() / 2,
            "prefetching eliminated only {hits}/{} misses",
            seq.len()
        );
    }

    #[test]
    fn trigger_miss_is_never_eliminated() {
        let mut btb = PhantomBtb::new(4, 64, 1).unwrap();
        let seq: Vec<u64> = (0..12).map(|i| 0x10_000 + i * 0x100).collect();
        // Pass 1: cold; temporal groups form (two groups of six).
        for &bb in &seq {
            btb.lookup(VAddr::new(bb), VAddr::new(bb + 4));
            btb.update(&resolved(bb));
        }
        // Pass 2: the first lookup of the recurring sequence triggers the
        // group fetch. The entry is served by the virtualized second level
        // only after the LLC round trip — a timing bubble the first level
        // cannot hide — while entries behind it arrive in time and hit for
        // free.
        let mut outcomes = Vec::new();
        for &bb in &seq {
            outcomes.push(btb.lookup(VAddr::new(bb), VAddr::new(bb + 4)));
            btb.update(&resolved(bb));
        }
        assert!(
            outcomes[0].fill_bubble > 0 || !outcomes[0].hit,
            "the trigger cannot be served for free"
        );
        let free_hits = outcomes[1..]
            .iter()
            .filter(|o| o.hit && o.fill_bubble == 0)
            .count();
        assert!(
            free_hits >= 6,
            "group prefetch covered only {free_hits} later lookups for free"
        );
    }

    #[test]
    fn chasing_extends_coverage_beyond_triggered_groups() {
        let mut btb = PhantomBtb::new(4, 64, 1).unwrap();
        // 30 branches -> 5 groups. With 2 groups per trigger and chasing on
        // prefetch hits, a single trigger should eventually cover the tail.
        let seq: Vec<u64> = (0..30).map(|i| 0x10_000 + i * 0x100).collect();
        for &bb in &seq {
            btb.lookup(VAddr::new(bb), VAddr::new(bb + 4));
            btb.update(&resolved(bb));
        }
        let mut hits = 0;
        for &bb in &seq {
            if btb.lookup(VAddr::new(bb), VAddr::new(bb + 4)).hit {
                hits += 1;
            }
            btb.update(&resolved(bb));
        }
        assert!(hits >= 20, "chasing covered only {hits}/30");
    }

    #[test]
    fn inflight_latency_delays_availability() {
        let mut btb = PhantomBtb::new(4, 64, 50).unwrap();
        let seq: Vec<u64> = (0..12).map(|i| 0x10_000 + i * 0x100).collect();
        for &bb in &seq {
            btb.lookup(VAddr::new(bb), VAddr::new(bb + 4));
            btb.update(&resolved(bb));
        }
        // Evict from L1 by thrashing.
        for i in 100..120 {
            btb.update(&resolved(0x80_000 + i * 0x100));
        }
        // Replay quickly: with a 50-cycle LLC, the first few lookups after
        // the trigger cannot be served for free — any coverage from the
        // in-flight group carries an arrival bubble.
        let mut free_early_hits = 0;
        for &bb in &seq[..4] {
            let o = btb.lookup(VAddr::new(bb), VAddr::new(bb + 4));
            if o.hit && o.fill_bubble == 0 {
                free_early_hits += 1;
            }
            btb.update(&resolved(bb));
        }
        assert_eq!(
            free_early_hits, 0,
            "in-flight groups must not serve immediately"
        );
    }

    #[test]
    fn storage_reports_virtualized_table() {
        let btb = PhantomBtb::paper_config(30).unwrap();
        let p = btb.storage();
        assert_eq!(p.llc_resident_bytes, 256 * 1024);
        // Dedicated ~= baseline BTB budget (paper: 9.9 KB).
        assert!(
            (9.0..11.5).contains(&p.dedicated_kib()),
            "got {} KiB",
            p.dedicated_kib()
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut btb = PhantomBtb::new(4, 8, 1).unwrap();
        for i in 0..12 {
            btb.update(&resolved(0x1000 + i * 0x100));
        }
        btb.reset();
        assert_eq!(btb.stored_groups(), 0);
        assert!(!btb.lookup(VAddr::new(0x1000), VAddr::new(0x1004)).hit);
    }
}
