//! Dedicated two-level BTB: small fast first level backed by a large,
//! slower second level (paper Section 2.3: 1K-entry L1 at 1 cycle, 16K-entry
//! L2 at 4 cycles, ~140 KB per core).

use confluence_types::{ConfigError, StorageProfile, VAddr};

use crate::conventional::ConventionalBtb;
use crate::design::{BtbDesign, BtbOutcome, ResolvedBranch};

/// Two-level BTB with demand-based L2-to-L1 transfers.
///
/// A first-level miss probes the second level; on an L2 hit the entry is
/// promoted to the first level and the core is exposed to the L2 access
/// latency as a fetch bubble (`fill_bubble`). This is exactly the
/// timeliness deficiency Confluence eliminates: the transfer happens
/// *reactively*, after the fetch stream already needs the entry.
#[derive(Clone, Debug)]
pub struct TwoLevelBtb {
    l1: ConventionalBtb,
    l2: ConventionalBtb,
    l2_latency: u64,
}

impl TwoLevelBtb {
    /// The paper's configuration: 1K-entry L1 (1 cycle), 16K-entry L2
    /// (4 cycles).
    ///
    /// # Errors
    ///
    /// Propagates cache-geometry errors (cannot occur for this fixed
    /// configuration).
    pub fn paper_config() -> Result<Self, ConfigError> {
        Self::new(1024, 16 * 1024, 4)
    }

    /// Creates a two-level BTB with explicit entry counts and L2 latency.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid geometries.
    pub fn new(l1_entries: usize, l2_entries: usize, l2_latency: u64) -> Result<Self, ConfigError> {
        Ok(TwoLevelBtb {
            l1: ConventionalBtb::new("2LevelBTB-L1", l1_entries, 4, 0)?,
            l2: ConventionalBtb::new("2LevelBTB-L2", l2_entries, 4, 0)?,
            l2_latency,
        })
    }

    /// Second-level access latency in cycles.
    pub fn l2_latency(&self) -> u64 {
        self.l2_latency
    }
}

impl BtbDesign for TwoLevelBtb {
    fn name(&self) -> &'static str {
        "2LevelBTB"
    }

    fn lookup(&mut self, bb_start: VAddr, branch_pc: VAddr) -> BtbOutcome {
        if let o @ BtbOutcome { hit: true, .. } = self.l1.lookup(bb_start, branch_pc) {
            return o;
        }
        // L1 miss: probe the slower second level.
        let mut o = self.l2.lookup(bb_start, branch_pc);
        if o.hit {
            o.first_level_hit = false;
            o.fill_bubble = self.l2_latency;
            // Promote into L1 for subsequent accesses.
            if let Some(entry) = self.l2.find(bb_start) {
                self.l1.install(bb_start, entry);
            }
        }
        o
    }

    fn update(&mut self, resolved: &ResolvedBranch) {
        if !resolved.taken {
            return;
        }
        // Inclusive hierarchy: allocate in both levels.
        self.l1.update(resolved);
        self.l2.update(resolved);
    }

    fn storage(&self) -> StorageProfile {
        let mut l1 = self.l1.storage();
        for a in &mut l1.arrays {
            a.label = format!("L1 {}", a.label);
        }
        let mut l2 = self.l2.storage();
        for a in &mut l2.arrays {
            a.label = format!("L2 {}", a.label);
        }
        l1.merge(l2)
    }

    fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_types::BranchKind;

    fn resolved(bb: u64) -> ResolvedBranch {
        ResolvedBranch {
            bb_start: VAddr::new(bb),
            pc: VAddr::new(bb + 8),
            kind: BranchKind::Unconditional,
            taken: true,
            target: VAddr::new(0x9000),
        }
    }

    #[test]
    fn l1_hit_has_no_bubble() {
        let mut btb = TwoLevelBtb::new(64, 256, 4).unwrap();
        btb.update(&resolved(0x1000));
        let o = btb.lookup(VAddr::new(0x1000), VAddr::new(0x1008));
        assert!(o.hit && o.first_level_hit);
        assert_eq!(o.fill_bubble, 0);
    }

    #[test]
    fn l2_hit_exposes_latency_and_promotes() {
        // L1: 1 set x 4 ways -> 4 entries. L2 holds far more.
        let mut btb = TwoLevelBtb::new(4, 256, 4).unwrap();
        // Fill L1 beyond capacity; 0x1000 gets evicted from L1, stays in L2.
        // (Stride 0x104 spreads entries across L2 sets.)
        for i in 1..6 {
            btb.update(&resolved(0x1000 + i * 0x104));
        }
        btb.update(&resolved(0x1000));
        for i in 1..6 {
            btb.update(&resolved(0x1000 + i * 0x104));
        }
        let o = btb.lookup(VAddr::new(0x1000), VAddr::new(0x1008));
        assert!(o.hit, "entry must survive in L2");
        assert!(!o.first_level_hit);
        assert_eq!(o.fill_bubble, 4);
        // Promoted: second lookup is an L1 hit.
        let o2 = btb.lookup(VAddr::new(0x1000), VAddr::new(0x1008));
        assert!(o2.first_level_hit);
        assert_eq!(o2.fill_bubble, 0);
    }

    #[test]
    fn both_level_miss_is_plain_miss() {
        let mut btb = TwoLevelBtb::new(4, 16, 4).unwrap();
        let o = btb.lookup(VAddr::new(0x5000), VAddr::new(0x5008));
        assert!(!o.hit);
        assert_eq!(o.fill_bubble, 0);
    }

    #[test]
    fn storage_is_dominated_by_l2() {
        let btb = TwoLevelBtb::paper_config().unwrap();
        let kib = btb.storage().dedicated_kib();
        // Paper: ~140 KB (L2) + ~9 KB (L1).
        assert!((140.0..160.0).contains(&kib), "got {kib} KiB");
    }
}
