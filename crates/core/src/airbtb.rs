//! AirBTB: the block-based, L1-I-synchronized BTB at the heart of
//! Confluence (paper Section 3.1-3.3).
//!
//! AirBTB stores one *bundle* per L1-I-resident instruction block. A bundle
//! is tagged once with the block address (amortizing tag cost over all
//! branches in the block), carries a 16-bit *branch bitmap* marking which
//! instruction slots hold branches, and a small fixed number of branch
//! entries (offset, type, target). Blocks with more branches than entries
//! spill into a small fully-associative *overflow buffer*. Bundle
//! insertions and evictions are synchronized with L1-I fills and evictions,
//! so the two structures always describe the same set of blocks.
//!
//! The module also implements the ablation ladder of Figure 8: the same
//! structure can run with eager insertion disabled, prefetch-fill disabled,
//! or L1-I synchronization disabled, isolating each design ingredient's
//! contribution to miss coverage.

use std::collections::HashMap;
use std::sync::Arc;

use confluence_btb::{tag_bits, BtbDesign, BtbOutcome, ResolvedBranch};
use confluence_types::{
    BlockAddr, BranchClass, PredecodeSource, PredecodedBranch, StorageProfile, VAddr,
    INSTRS_PER_BLOCK,
};
use confluence_uarch::SetAssocCache;

/// Default number of branch entries per bundle (paper: 3).
pub const DEFAULT_BUNDLE_ENTRIES: usize = 3;
/// Default overflow buffer entries (paper: 32).
pub const DEFAULT_OVERFLOW_ENTRIES: usize = 32;
/// Default bundle count: one per L1-I block (paper: 512).
pub const DEFAULT_BUNDLES: usize = 512;

/// Which AirBTB ingredients are enabled — the ablation ladder of Figure 8.
///
/// Each level includes everything below it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AirBtbMode {
    /// Block-based organization only: branches are inserted individually
    /// when they resolve taken, like a conventional BTB, but share bundle
    /// tags (the "Capacity" factor: more entries per storage budget).
    CapacityOnly,
    /// Plus eager insertion: a BTB miss installs *all* branches of the
    /// missing block at once (the "Spatial Locality" factor).
    SpatialLocality,
    /// Plus prefetch-driven fill: every block entering the L1-I installs
    /// its bundle, so even the first branch touched in a prefetched block
    /// hits (the "Prefetching" factor). Replacement is still AirBTB-local.
    Prefetching,
    /// Plus L1-I synchronization: bundles are evicted exactly when their
    /// block leaves the L1-I, eliminating conflicts between resident
    /// blocks (the "Block-Based Org." factor). This is full AirBTB.
    Full,
}

/// One branch entry within a bundle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BundleEntry {
    offset: u8,
    class: BranchClass,
    /// Statically known target for direct branches.
    target: Option<VAddr>,
}

impl BundleEntry {
    fn from_predecode(b: &PredecodedBranch) -> Self {
        BundleEntry {
            offset: b.offset,
            class: b.kind.class(),
            target: b.target,
        }
    }
}

/// A bundle: the AirBTB record for one instruction block.
#[derive(Clone, Debug, Default)]
struct Bundle {
    bitmap: u16,
    entries: Vec<BundleEntry>,
}

impl Bundle {
    fn set_bit(&mut self, offset: u8) {
        self.bitmap |= 1 << offset;
    }

    fn bit(&self, offset: u8) -> bool {
        self.bitmap & (1 << offset) != 0
    }

    fn find(&self, offset: u8) -> Option<&BundleEntry> {
        self.entries.iter().find(|e| e.offset == offset)
    }
}

/// AirBTB with configurable bundle size, overflow buffer, and ablation
/// mode.
///
/// # Example
///
/// ```
/// use confluence_core::{AirBtb, AirBtbMode};
/// use confluence_btb::BtbDesign;
/// use confluence_types::{BlockAddr, BranchKind, PredecodedBranch, VAddr};
///
/// let mut btb = AirBtb::paper_config();
/// let block = BlockAddr::from_raw(0x100);
/// let branches = [PredecodedBranch::direct(5, BranchKind::Call, VAddr::new(0x9000))];
/// btb.on_l1i_fill(block, &branches); // Confluence fills on prefetch
/// let outcome = btb.lookup(block.base(), block.instr(5));
/// assert!(outcome.hit);
/// assert_eq!(outcome.target, Some(VAddr::new(0x9000)));
/// ```
pub struct AirBtb {
    mode: AirBtbMode,
    bundle_entries: usize,
    /// Synchronized storage (Full mode): mirrors L1-I contents exactly.
    synced: HashMap<BlockAddr, Bundle>,
    /// Standalone storage (ablation modes): own set-associative array.
    standalone: SetAssocCache<Bundle>,
    /// Fully-associative overflow buffer keyed by branch PC.
    overflow: Option<SetAssocCache<BundleEntry>>,
    overflow_entries: usize,
    bundles: usize,
    /// Predecode oracle for eager insertion in the ablation modes that are
    /// not driven by L1-I fill callbacks.
    oracle: Option<Arc<dyn PredecodeSource + Send + Sync>>,
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for AirBtb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AirBtb")
            .field("mode", &self.mode)
            .field("bundle_entries", &self.bundle_entries)
            .field("bundles", &self.bundles)
            .field("overflow_entries", &self.overflow_entries)
            .finish_non_exhaustive()
    }
}

impl AirBtb {
    /// The paper's final configuration: 512 bundles, 3 branch entries per
    /// bundle, 32-entry overflow buffer, fully synchronized with the L1-I
    /// (10.2 KB).
    pub fn paper_config() -> Self {
        Self::new(
            AirBtbMode::Full,
            DEFAULT_BUNDLES,
            DEFAULT_BUNDLE_ENTRIES,
            DEFAULT_OVERFLOW_ENTRIES,
        )
    }

    /// Creates an AirBTB with explicit geometry (Figure 10 sweeps bundle
    /// size and overflow entries).
    ///
    /// # Panics
    ///
    /// Panics if `bundles` is not a multiple of 4 (the fixed associativity)
    /// or `bundle_entries` is zero.
    pub fn new(
        mode: AirBtbMode,
        bundles: usize,
        bundle_entries: usize,
        overflow_entries: usize,
    ) -> Self {
        assert!(bundle_entries > 0, "bundles must hold at least one entry");
        let standalone = SetAssocCache::new((bundles / 4).max(1), 4)
            .expect("bundle count must give a power-of-two set count");
        let overflow = (overflow_entries > 0)
            .then(|| SetAssocCache::new(1, overflow_entries).expect("overflow geometry is valid"));
        AirBtb {
            mode,
            bundle_entries,
            synced: HashMap::new(),
            standalone,
            overflow,
            overflow_entries,
            bundles,
            oracle: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Attaches the predecode oracle needed by the `SpatialLocality`
    /// ablation mode (eager insertion on BTB misses reads whole-block
    /// branch lists).
    pub fn with_oracle(mut self, oracle: Arc<dyn PredecodeSource + Send + Sync>) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// The configured ablation mode.
    pub fn mode(&self) -> AirBtbMode {
        self.mode
    }

    /// Lookup hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn uses_sync(&self) -> bool {
        self.mode == AirBtbMode::Full
    }

    fn fills_on_l1i(&self) -> bool {
        matches!(self.mode, AirBtbMode::Prefetching | AirBtbMode::Full)
    }

    /// Builds a bundle from predecoded branches, spilling the excess into
    /// the overflow buffer.
    fn build_bundle(&mut self, block: BlockAddr, branches: &[PredecodedBranch]) -> Bundle {
        let mut bundle = Bundle::default();
        for b in branches {
            debug_assert!((b.offset as usize) < INSTRS_PER_BLOCK);
            bundle.set_bit(b.offset);
            if bundle.entries.len() < self.bundle_entries {
                bundle.entries.push(BundleEntry::from_predecode(b));
            } else if let Some(of) = &mut self.overflow {
                of.insert(
                    block.instr(b.offset as usize).raw(),
                    BundleEntry::from_predecode(b),
                );
            }
        }
        bundle
    }

    fn install_bundle(&mut self, block: BlockAddr, bundle: Bundle) {
        if self.uses_sync() {
            self.synced.insert(block, bundle);
        } else {
            let evicted = self.standalone.insert(block.raw(), bundle);
            if let Some((old_key, _)) = evicted {
                self.sweep_overflow(BlockAddr::from_raw(old_key));
            }
        }
    }

    fn remove_bundle(&mut self, block: BlockAddr) {
        if self.uses_sync() {
            self.synced.remove(&block);
        } else {
            self.standalone.invalidate(block.raw());
        }
        self.sweep_overflow(block);
    }

    /// Drops overflow entries belonging to an evicted block.
    fn sweep_overflow(&mut self, block: BlockAddr) {
        if let Some(of) = &mut self.overflow {
            let stale: Vec<u64> = of
                .iter()
                .filter(|(k, _)| VAddr::new(*k).block() == block)
                .map(|(k, _)| k)
                .collect();
            for k in stale {
                of.invalidate(k);
            }
        }
    }

    fn bundle_for(&mut self, block: BlockAddr) -> Option<&Bundle> {
        if self.uses_sync() {
            self.synced.get(&block)
        } else {
            self.standalone.lookup(block.raw())
        }
    }

    /// Installs a whole block eagerly via the oracle (SpatialLocality mode).
    fn eager_install(&mut self, block: BlockAddr) {
        let Some(oracle) = self.oracle.clone() else {
            return;
        };
        let branches: Vec<PredecodedBranch> = oracle.branches_in_block(block).to_vec();
        let bundle = self.build_bundle(block, &branches);
        self.install_bundle(block, bundle);
    }

    /// Inserts a single resolved branch (CapacityOnly mode).
    fn insert_single(&mut self, resolved: &ResolvedBranch) {
        let block = resolved.pc.block();
        let offset = resolved.pc.instr_index() as u8;
        let entry = BundleEntry {
            offset,
            class: resolved.kind.class(),
            target: (!resolved.kind.is_indirect()).then_some(resolved.target),
        };
        let cap = self.bundle_entries;
        let mut spill = false;
        let existing = if self.uses_sync() {
            Some(self.synced.entry(block).or_default())
        } else {
            self.standalone.lookup_mut(block.raw())
        };
        match existing {
            Some(bundle) => {
                bundle.set_bit(offset);
                if let Some(slot) = bundle.entries.iter_mut().find(|e| e.offset == offset) {
                    *slot = entry;
                } else if bundle.entries.len() < cap {
                    bundle.entries.push(entry);
                } else {
                    spill = true;
                }
            }
            None => {
                let mut bundle = Bundle::default();
                bundle.set_bit(offset);
                bundle.entries.push(entry);
                self.install_bundle(block, bundle);
            }
        }
        if spill {
            if let Some(of) = &mut self.overflow {
                of.insert(resolved.pc.raw(), entry);
            }
        }
    }
}

impl BtbDesign for AirBtb {
    fn name(&self) -> &'static str {
        match self.mode {
            AirBtbMode::CapacityOnly => "AirBTB(capacity)",
            AirBtbMode::SpatialLocality => "AirBTB(spatial)",
            AirBtbMode::Prefetching => "AirBTB(prefetch)",
            AirBtbMode::Full => "AirBTB",
        }
    }

    fn lookup(&mut self, _bb_start: VAddr, branch_pc: VAddr) -> BtbOutcome {
        let block = branch_pc.block();
        let offset = branch_pc.instr_index() as u8;
        // Probe the bundle, copying out what the outcome needs so the
        // bundle borrow ends before the overflow buffer is consulted.
        enum Probe {
            NoBundle,
            NoBit,
            Entry(BundleEntry),
            Spilled,
        }
        let probe = match self.bundle_for(block) {
            None => Probe::NoBundle,
            Some(bundle) => {
                if !bundle.bit(offset) {
                    Probe::NoBit
                } else if let Some(e) = bundle.find(offset) {
                    Probe::Entry(*e)
                } else {
                    Probe::Spilled
                }
            }
        };
        let outcome = match probe {
            Probe::NoBundle | Probe::NoBit => BtbOutcome::miss(),
            Probe::Entry(e) => entry_outcome(&e),
            Probe::Spilled => {
                // Bitmap says the branch exists but the bundle spilled it:
                // consult the overflow buffer.
                let e = self
                    .overflow
                    .as_mut()
                    .and_then(|of| of.lookup(branch_pc.raw()).copied());
                match e {
                    Some(e) => entry_outcome(&e),
                    None => BtbOutcome::miss(),
                }
            }
        };
        if outcome.hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        outcome
    }

    fn update(&mut self, resolved: &ResolvedBranch) {
        match self.mode {
            AirBtbMode::CapacityOnly => {
                if resolved.taken {
                    self.insert_single(resolved);
                }
            }
            AirBtbMode::SpatialLocality => {
                // Eager insertion triggered by a missing bundle or branch.
                let block = resolved.pc.block();
                let offset = resolved.pc.instr_index() as u8;
                let known = self
                    .bundle_for(block)
                    .map(|b| b.bit(offset))
                    .unwrap_or(false);
                if !known {
                    self.eager_install(block);
                }
            }
            // Prefetch-filled modes learn exclusively from L1-I fills.
            AirBtbMode::Prefetching | AirBtbMode::Full => {}
        }
    }

    fn on_l1i_fill(&mut self, block: BlockAddr, branches: &[PredecodedBranch]) {
        if !self.fills_on_l1i() {
            return;
        }
        let bundle = self.build_bundle(block, branches);
        self.install_bundle(block, bundle);
    }

    fn on_l1i_evict(&mut self, block: BlockAddr) {
        if self.uses_sync() {
            self.remove_bundle(block);
        }
    }

    fn storage(&self) -> StorageProfile {
        // Bundle: block tag + valid + 16-bit bitmap + entries of
        // (4-bit offset, 2-bit type, 30-bit target).
        let tag = tag_bits(self.bundles, 4, 6) as u64;
        let bundle_bits =
            tag + 1 + INSTRS_PER_BLOCK as u64 + self.bundle_entries as u64 * (4 + 2 + 30);
        let mut p =
            StorageProfile::empty().with_array("AirBTB bundles", self.bundles as u64 * bundle_bits);
        if self.overflow_entries > 0 {
            // Overflow entries carry the full instruction-grain tag.
            let of_bits = 1 + (confluence_types::VADDR_BITS as u64 - 2) + 2 + 30;
            p = p.with_array("overflow buffer", self.overflow_entries as u64 * of_bits);
        }
        p
    }

    fn reset(&mut self) {
        self.synced.clear();
        self.standalone.clear();
        if let Some(of) = &mut self.overflow {
            of.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

fn entry_outcome(e: &BundleEntry) -> BtbOutcome {
    BtbOutcome {
        first_level_hit: true,
        hit: true,
        target: match e.class {
            BranchClass::Conditional | BranchClass::Unconditional => e.target,
            BranchClass::Indirect | BranchClass::Return => None,
        },
        class: Some(e.class),
        fill_bubble: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_types::BranchKind;

    fn branches_3() -> Vec<PredecodedBranch> {
        vec![
            PredecodedBranch::direct(1, BranchKind::Conditional, VAddr::new(0x9000)),
            PredecodedBranch::direct(4, BranchKind::Call, VAddr::new(0x9100)),
            PredecodedBranch::indirect(9, BranchKind::Return),
        ]
    }

    fn branches_5() -> Vec<PredecodedBranch> {
        let mut b = branches_3();
        b.push(PredecodedBranch::direct(
            11,
            BranchKind::Unconditional,
            VAddr::new(0x9200),
        ));
        b.push(PredecodedBranch::direct(
            14,
            BranchKind::Conditional,
            VAddr::new(0x9300),
        ));
        b
    }

    #[test]
    fn fill_inserts_all_branches() {
        let mut btb = AirBtb::paper_config();
        let block = BlockAddr::from_raw(0x40);
        btb.on_l1i_fill(block, &branches_3());
        for b in branches_3() {
            let o = btb.lookup(block.base(), block.instr(b.offset as usize));
            assert!(o.hit, "offset {} must hit", b.offset);
            assert_eq!(o.class, Some(b.kind.class()));
        }
    }

    #[test]
    fn overflow_buffer_catches_spills() {
        let mut btb = AirBtb::new(AirBtbMode::Full, 512, 3, 32);
        let block = BlockAddr::from_raw(0x40);
        btb.on_l1i_fill(block, &branches_5());
        // Branches 4 and 5 spilled into the overflow buffer.
        let o = btb.lookup(block.base(), block.instr(14));
        assert!(o.hit, "spilled branch must hit via the overflow buffer");
        assert_eq!(o.target, Some(VAddr::new(0x9300)));
    }

    #[test]
    fn without_overflow_spills_miss() {
        let mut btb = AirBtb::new(AirBtbMode::Full, 512, 3, 0);
        let block = BlockAddr::from_raw(0x40);
        btb.on_l1i_fill(block, &branches_5());
        let o = btb.lookup(block.base(), block.instr(14));
        assert!(!o.hit, "no overflow buffer: the spilled branch is lost");
        // The first three entries still hit.
        assert!(btb.lookup(block.base(), block.instr(1)).hit);
    }

    #[test]
    fn eviction_synchronized_with_l1i() {
        let mut btb = AirBtb::paper_config();
        let block = BlockAddr::from_raw(0x40);
        btb.on_l1i_fill(block, &branches_3());
        assert!(btb.lookup(block.base(), block.instr(1)).hit);
        btb.on_l1i_evict(block);
        assert!(!btb.lookup(block.base(), block.instr(1)).hit);
    }

    #[test]
    fn eviction_sweeps_overflow_entries() {
        let mut btb = AirBtb::new(AirBtbMode::Full, 512, 3, 32);
        let block = BlockAddr::from_raw(0x40);
        btb.on_l1i_fill(block, &branches_5());
        btb.on_l1i_evict(block);
        // Refill with only the bitmap-visible entries: the overflow lookup
        // must not resurrect stale entries... re-fill and verify bitmap path.
        btb.on_l1i_fill(block, &branches_3());
        let o = btb.lookup(block.base(), block.instr(14));
        assert!(
            !o.hit,
            "offset 14 is no longer predecoded; stale overflow must be swept"
        );
    }

    #[test]
    fn non_branch_offsets_miss() {
        let mut btb = AirBtb::paper_config();
        let block = BlockAddr::from_raw(0x40);
        btb.on_l1i_fill(block, &branches_3());
        assert!(!btb.lookup(block.base(), block.instr(7)).hit);
    }

    #[test]
    fn indirect_branches_defer_target() {
        let mut btb = AirBtb::paper_config();
        let block = BlockAddr::from_raw(0x40);
        btb.on_l1i_fill(block, &branches_3());
        let o = btb.lookup(block.base(), block.instr(9));
        assert!(o.hit);
        assert_eq!(o.target, None);
        assert_eq!(o.class, Some(BranchClass::Return));
    }

    #[test]
    fn capacity_mode_inserts_individual_taken_branches() {
        let mut btb = AirBtb::new(AirBtbMode::CapacityOnly, 64, 3, 8);
        let block = BlockAddr::from_raw(0x40);
        let r = ResolvedBranch {
            bb_start: block.base(),
            pc: block.instr(4),
            kind: BranchKind::Call,
            taken: true,
            target: VAddr::new(0x9100),
        };
        assert!(!btb.lookup(r.bb_start, r.pc).hit);
        btb.update(&r);
        assert!(btb.lookup(r.bb_start, r.pc).hit);
        // Other branches of the block were NOT installed (no eagerness).
        assert!(!btb.lookup(block.base(), block.instr(1)).hit);
    }

    #[test]
    fn spatial_mode_installs_whole_block_on_miss() {
        struct Oracle(Vec<PredecodedBranch>);
        impl PredecodeSource for Oracle {
            fn branches_in_block(&self, _b: BlockAddr) -> &[PredecodedBranch] {
                &self.0
            }
        }
        let oracle = Arc::new(Oracle(branches_3()));
        let mut btb = AirBtb::new(AirBtbMode::SpatialLocality, 64, 3, 8).with_oracle(oracle);
        let block = BlockAddr::from_raw(0x40);
        let r = ResolvedBranch {
            bb_start: block.base(),
            pc: block.instr(4),
            kind: BranchKind::Call,
            taken: true,
            target: VAddr::new(0x9100),
        };
        btb.update(&r);
        // All three branches of the block are now present.
        assert!(btb.lookup(block.base(), block.instr(1)).hit);
        assert!(btb.lookup(block.base(), block.instr(9)).hit);
    }

    #[test]
    fn standalone_mode_suffers_conflicts_sync_does_not() {
        // Blocks 0x40 and 0x40 + 128 collide in a 128-set standalone array
        // beyond its 4 ways; the synced variant holds whatever the L1-I
        // holds.
        let mut sync = AirBtb::new(AirBtbMode::Full, 512, 3, 0);
        let mut standalone = AirBtb::new(AirBtbMode::Prefetching, 512, 3, 0);
        let colliding: Vec<BlockAddr> = (0..6)
            .map(|i| BlockAddr::from_raw(0x40 + i * 128))
            .collect();
        for &b in &colliding {
            sync.on_l1i_fill(b, &branches_3());
            standalone.on_l1i_fill(b, &branches_3());
        }
        let first = colliding[0];
        assert!(sync.lookup(first.base(), first.instr(1)).hit);
        assert!(
            !standalone.lookup(first.base(), first.instr(1)).hit,
            "standalone 4-way array must have evicted the first block"
        );
    }

    #[test]
    fn storage_matches_paper_10_2_kb() {
        let kib = AirBtb::paper_config().storage().dedicated_kib();
        assert!((9.8..10.8).contains(&kib), "got {kib} KiB");
    }

    #[test]
    fn four_entry_bundles_cost_about_2kb_more() {
        let b3 = AirBtb::new(AirBtbMode::Full, 512, 3, 32)
            .storage()
            .dedicated_kib();
        let b4 = AirBtb::new(AirBtbMode::Full, 512, 4, 32)
            .storage()
            .dedicated_kib();
        let delta = b4 - b3;
        assert!(
            (1.5..3.0).contains(&delta),
            "B:4 adds {delta} KiB (paper: ~2 KB)"
        );
    }

    #[test]
    fn reset_clears_contents_and_counters() {
        let mut btb = AirBtb::paper_config();
        let block = BlockAddr::from_raw(0x40);
        btb.on_l1i_fill(block, &branches_3());
        btb.lookup(block.base(), block.instr(1));
        btb.reset();
        assert_eq!(btb.hits(), 0);
        assert!(!btb.lookup(block.base(), block.instr(1)).hit);
    }
}
