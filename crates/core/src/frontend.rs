//! The Confluence unified frontend: one stream prefetcher filling both the
//! L1-I and AirBTB (paper Figure 4).
//!
//! Flow per prefetched or demand-fetched block:
//!
//! 1. the prefetch engine (SHIFT) requests the block from the LLC;
//! 2. the predecoder scans it for branches (type + target displacement);
//! 3. the branch metadata is inserted into AirBTB as a bundle;
//! 4. the block itself is inserted into the L1-I.
//!
//! Evictions flow the other way: when the L1-I evicts a block, AirBTB drops
//! the corresponding bundle, keeping the two structures' contents identical.

use confluence_btb::BtbDesign;
use confluence_prefetch::{ShiftEngine, ShiftHistory};
use confluence_types::{BlockAddr, PredecodeSource};
use confluence_uarch::{L1ICache, Predecoder};

use crate::airbtb::AirBtb;

/// Functional model of one core's Confluence frontend.
///
/// This struct captures the paper's *content* behaviour (what is resident
/// where, and when fills happen); the cycle-level timing lives in
/// `confluence-sim`, which wires the same components with latencies.
///
/// # Example
///
/// ```
/// use confluence_core::{AirBtb, ConfluenceFrontend};
/// use confluence_prefetch::ShiftHistory;
/// use confluence_trace::{Program, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Program::generate(&WorkloadSpec::tiny())?;
/// let mut history = ShiftHistory::with_capacity(4096);
/// let mut fe = ConfluenceFrontend::paper_config();
/// for r in program.executor(0).take(10_000) {
///     fe.access(&mut history, &program, r.pc.block(), true);
/// }
/// assert!(fe.l1i().hits() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConfluenceFrontend {
    l1i: L1ICache,
    airbtb: AirBtb,
    engine: ShiftEngine,
    predecoder: Predecoder,
    scratch: Vec<BlockAddr>,
    last_block: Option<BlockAddr>,
    prefetch_fills: u64,
    demand_fills: u64,
}

impl ConfluenceFrontend {
    /// Creates a frontend with the paper's configuration (32 KB L1-I,
    /// 512-bundle AirBTB with 3 entries and a 32-entry overflow buffer).
    pub fn paper_config() -> Self {
        Self::new(AirBtb::paper_config())
    }

    /// Creates a frontend around a custom AirBTB (used by the Figure 10
    /// sensitivity sweeps).
    pub fn new(airbtb: AirBtb) -> Self {
        ConfluenceFrontend {
            l1i: L1ICache::new_32k(),
            airbtb,
            engine: ShiftEngine::new(),
            predecoder: Predecoder::new(),
            scratch: Vec::with_capacity(32),
            last_block: None,
            prefetch_fills: 0,
            demand_fills: 0,
        }
    }

    /// Processes a demand instruction-block access from the fetch unit.
    ///
    /// Returns `true` on an L1-I hit. On a miss the block is filled
    /// (predecoded into AirBTB first, mirroring Figure 4's insertion
    /// order). The SHIFT engine then observes the access and its prefetches
    /// are performed immediately (functional model). When `record_history`
    /// is set, this core also acts as the shared-history generator.
    pub fn access<P: PredecodeSource + ?Sized>(
        &mut self,
        history: &mut ShiftHistory,
        oracle: &P,
        block: BlockAddr,
        record_history: bool,
    ) -> bool {
        // Collapse consecutive accesses to the same block: the fetch unit
        // reads several regions from one block without re-touching the
        // cache tags.
        if self.last_block == Some(block) {
            return true;
        }
        self.last_block = Some(block);

        let hit = self.l1i.access(block);
        if !hit {
            self.demand_fills += 1;
            self.fill(oracle, block);
        }

        // The engine consults the history *before* this access is recorded:
        // the index must resolve to the previous occurrence of the block so
        // the stream that followed it last time can be replayed.
        self.scratch.clear();
        let mut prefetches = std::mem::take(&mut self.scratch);
        self.engine.on_access(history, block, !hit, &mut prefetches);
        for p in prefetches.drain(..) {
            if !self.l1i.contains(p) {
                self.prefetch_fills += 1;
                self.fill(oracle, p);
            }
        }
        self.scratch = prefetches;

        if record_history {
            history.record(block);
        }
        hit
    }

    /// Fills one block: predecode -> AirBTB bundle -> L1-I, with the
    /// synchronized eviction.
    fn fill<P: PredecodeSource + ?Sized>(&mut self, oracle: &P, block: BlockAddr) {
        let branches = self.predecoder.scan(oracle, block);
        self.airbtb.on_l1i_fill(block, branches);
        if let Some(evicted) = self.l1i.fill(block) {
            self.airbtb.on_l1i_evict(evicted);
        }
    }

    /// The AirBTB (mutable, for BPU lookups).
    pub fn airbtb_mut(&mut self) -> &mut AirBtb {
        &mut self.airbtb
    }

    /// The AirBTB (read-only).
    pub fn airbtb(&self) -> &AirBtb {
        &self.airbtb
    }

    /// The L1-I model.
    pub fn l1i(&self) -> &L1ICache {
        &self.l1i
    }

    /// The SHIFT stream engine.
    pub fn engine(&self) -> &ShiftEngine {
        &self.engine
    }

    /// Blocks filled by prefetch.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Blocks filled on demand misses.
    pub fn demand_fills(&self) -> u64 {
        self.demand_fills
    }

    /// Fraction of fills that were prefetches (timeliness proxy).
    pub fn prefetch_fill_fraction(&self) -> f64 {
        let total = self.prefetch_fills + self.demand_fills;
        if total == 0 {
            0.0
        } else {
            self.prefetch_fills as f64 / total as f64
        }
    }

    /// Resets all dynamic state.
    pub fn reset(&mut self) {
        self.l1i = L1ICache::new_32k();
        self.airbtb.reset();
        self.engine.reset();
        self.last_block = None;
        self.prefetch_fills = 0;
        self.demand_fills = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_trace::{Program, WorkloadSpec};

    #[test]
    fn warm_frontend_mostly_hits() {
        let program = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let mut history = ShiftHistory::with_capacity(8192);
        let mut fe = ConfluenceFrontend::paper_config();
        // Warm up.
        for r in program.executor(0).take(200_000) {
            fe.access(&mut history, &program, r.pc.block(), true);
        }
        let warm_misses = fe.l1i().misses();
        let warm_hits = fe.l1i().hits();
        assert!(
            warm_hits > warm_misses * 5,
            "hits {warm_hits} misses {warm_misses}"
        );
    }

    #[test]
    fn prefetcher_produces_most_fills_once_warm() {
        // Needs an instruction working set larger than the 512-block L1-I,
        // otherwise there are only cold misses and nothing to stream.
        let program = Program::generate(&WorkloadSpec::base()).unwrap();
        let mut history = ShiftHistory::with_capacity(32 * 1024);
        let mut fe = ConfluenceFrontend::paper_config();
        for r in program.executor(0).take(800_000) {
            fe.access(&mut history, &program, r.pc.block(), true);
        }
        // Once the history is trained, the stream engine should supply a
        // substantial share of fills ahead of demand. (The remainder are
        // one-off cold-path excursions, which no history can predict the
        // first time.)
        assert!(
            fe.prefetch_fill_fraction() > 0.35,
            "prefetch fraction {}",
            fe.prefetch_fill_fraction()
        );
    }

    #[test]
    fn airbtb_content_follows_l1i() {
        let program = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let mut history = ShiftHistory::with_capacity(4096);
        let mut fe = ConfluenceFrontend::paper_config();
        for r in program.executor(0).take(50_000) {
            fe.access(&mut history, &program, r.pc.block(), true);
        }
        // Every resident L1-I block with branches must have a live bundle:
        // probe via lookup of its first predecoded branch.
        use confluence_btb::BtbDesign;
        use confluence_types::PredecodeSource;
        let blocks: Vec<_> = fe.l1i().resident_blocks().collect();
        let mut checked = 0;
        for b in blocks {
            let branches = program.branches_in_block(b);
            if let Some(first) = branches.first() {
                let pc = b.instr(first.offset as usize);
                assert!(
                    fe.airbtb_mut().lookup(b.base(), pc).hit,
                    "block {b} lost its bundle"
                );
                checked += 1;
            }
        }
        assert!(checked > 100, "checked only {checked} blocks");
    }

    #[test]
    fn reset_restores_cold_state() {
        let program = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let mut history = ShiftHistory::with_capacity(4096);
        let mut fe = ConfluenceFrontend::paper_config();
        for r in program.executor(0).take(10_000) {
            fe.access(&mut history, &program, r.pc.block(), true);
        }
        fe.reset();
        assert_eq!(fe.l1i().hits(), 0);
        assert_eq!(fe.prefetch_fills(), 0);
    }
}
