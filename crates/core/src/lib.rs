//! The paper's primary contribution: **AirBTB** and the **Confluence**
//! unified instruction-supply frontend.
//!
//! Confluence's observation: the L1-I prefetcher and the BTB both need the
//! same control-flow history, differing only in granularity (blocks vs
//! individual branches). [`AirBtb`] bridges the gap with a block-grain BTB
//! whose contents mirror the L1-I, and [`ConfluenceFrontend`] wires it to a
//! SHIFT stream prefetcher so one LLC-virtualized history fills both
//! structures ahead of the fetch stream.
//!
//! # Example
//!
//! ```
//! use confluence_core::{AirBtb, AirBtbMode};
//! use confluence_btb::BtbDesign;
//!
//! // The paper's final design point: B:3, OB:32, 10.2 KB.
//! let btb = AirBtb::paper_config();
//! assert_eq!(btb.mode(), AirBtbMode::Full);
//! let kib = btb.storage().dedicated_kib();
//! assert!((9.8..10.8).contains(&kib));
//! ```

#![warn(missing_docs)]

mod airbtb;
mod frontend;

pub use airbtb::{
    AirBtb, AirBtbMode, DEFAULT_BUNDLES, DEFAULT_BUNDLE_ENTRIES, DEFAULT_OVERFLOW_ENTRIES,
};
pub use frontend::ConfluenceFrontend;
