//! Workload consolidation: one SHIFT history instance per co-scheduled
//! workload (paper Section 3.4).
//!
//! "Because the shared history is maintained in the LLC rather than
//! dedicated storage, a disparate instance of history space can be easily
//! allocated in the LLC for each workload in the case of workload
//! consolidation. It has been shown that multiple instances of history
//! provide performance benefits similar to that of a single shared history,
//! as long as there is enough LLC capacity for history instance per
//! workload."

use std::collections::HashMap;

use confluence_types::StorageProfile;

use crate::shift::ShiftHistory;

/// A set of per-workload SHIFT history instances, allocated on demand.
///
/// Cores are mapped to workloads; each workload's generator core records
/// into its own instance and all cores of that workload read from it.
///
/// # Example
///
/// ```
/// use confluence_prefetch::ConsolidatedHistories;
/// use confluence_types::BlockAddr;
///
/// let mut set = ConsolidatedHistories::new(4096);
/// set.history_mut(0).record(BlockAddr::from_raw(10)); // workload 0
/// set.history_mut(1).record(BlockAddr::from_raw(99)); // workload 1
/// // Instances are isolated: workload 1 never sees workload 0's stream.
/// assert!(set.history(1).lookup(BlockAddr::from_raw(10)).is_none());
/// assert!(set.history(0).lookup(BlockAddr::from_raw(10)).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct ConsolidatedHistories {
    instances: HashMap<u32, ShiftHistory>,
    entries_per_instance: usize,
}

impl ConsolidatedHistories {
    /// Creates an empty set; each instance gets `entries_per_instance`
    /// history entries when first touched.
    ///
    /// # Panics
    ///
    /// Panics if `entries_per_instance` is zero.
    pub fn new(entries_per_instance: usize) -> Self {
        assert!(entries_per_instance > 0, "history capacity must be nonzero");
        ConsolidatedHistories {
            instances: HashMap::new(),
            entries_per_instance,
        }
    }

    /// Read access to a workload's history (created empty if absent).
    pub fn history(&self, workload: u32) -> &ShiftHistory {
        // A missing instance behaves as an empty one; expose a static
        // empty via lazy insertion in `history_mut` instead of interior
        // mutability: callers that only read an untouched workload get a
        // shared empty instance.
        self.instances.get(&workload).unwrap_or_else(|| {
            // Deterministic fallback: an empty history. We keep one per
            // call; this path only occurs before any recording.
            static EMPTY: std::sync::OnceLock<ShiftHistory> = std::sync::OnceLock::new();
            EMPTY.get_or_init(|| ShiftHistory::with_capacity(1))
        })
    }

    /// Mutable access to a workload's history, allocating it on first use.
    pub fn history_mut(&mut self, workload: u32) -> &mut ShiftHistory {
        let cap = self.entries_per_instance;
        self.instances
            .entry(workload)
            .or_insert_with(|| ShiftHistory::with_capacity(cap))
    }

    /// Number of live instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Aggregate storage profile: every instance occupies its own LLC
    /// space, so consolidation multiplies the LLC-resident footprint.
    pub fn storage(&self) -> StorageProfile {
        self.instances
            .values()
            .map(ShiftHistory::storage)
            .fold(StorageProfile::empty(), StorageProfile::merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shift::ShiftEngine;
    use confluence_types::BlockAddr;

    fn train(h: &mut ShiftHistory, base: u64, n: u64) {
        for i in 0..n {
            h.record(BlockAddr::from_raw(base + i * 100));
        }
    }

    #[test]
    fn instances_are_isolated() {
        let mut set = ConsolidatedHistories::new(1024);
        train(set.history_mut(0), 1_000, 50);
        train(set.history_mut(1), 900_000, 50);
        assert_eq!(set.instance_count(), 2);
        // Workload 0's stream is invisible to workload 1 and vice versa.
        assert!(set.history(0).lookup(BlockAddr::from_raw(1_000)).is_some());
        assert!(set.history(1).lookup(BlockAddr::from_raw(1_000)).is_none());
        assert!(set
            .history(1)
            .lookup(BlockAddr::from_raw(900_000))
            .is_some());
    }

    #[test]
    fn per_instance_replay_matches_dedicated_history() {
        // A consolidated instance must stream exactly like a dedicated one.
        let mut dedicated = ShiftHistory::with_capacity(1024);
        train(&mut dedicated, 5_000, 40);
        let mut set = ConsolidatedHistories::new(1024);
        train(set.history_mut(7), 5_000, 40);

        let mut a = ShiftEngine::with_lookahead(6);
        let mut b = ShiftEngine::with_lookahead(6);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        a.on_access(&dedicated, BlockAddr::from_raw(5_000), true, &mut out_a);
        b.on_access(set.history(7), BlockAddr::from_raw(5_000), true, &mut out_b);
        assert_eq!(out_a, out_b);
        assert!(!out_a.is_empty());
    }

    #[test]
    fn untouched_workload_reads_as_empty() {
        let set = ConsolidatedHistories::new(64);
        assert!(set.history(3).is_empty());
        assert!(set.history(3).lookup(BlockAddr::from_raw(1)).is_none());
    }

    #[test]
    fn storage_scales_with_instance_count() {
        let mut set = ConsolidatedHistories::new(32 * 1024);
        let one = {
            train(set.history_mut(0), 0, 10);
            set.storage().llc_resident_bytes
        };
        train(set.history_mut(1), 0, 10);
        assert_eq!(set.storage().llc_resident_bytes, 2 * one);
    }
}
