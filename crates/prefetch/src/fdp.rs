//! Fetch-directed prefetching (Reinman, Calder & Austin, MICRO 1999).
//!
//! FDP decouples the branch prediction unit from the L1-I with a fetch
//! queue and prefetches the instruction blocks of enqueued fetch regions
//! that are not already resident. It reuses the existing branch predictor
//! metadata, so it adds no storage — but its lookahead is limited to the
//! fetch queue depth and its accuracy decays geometrically as the branch
//! predictor speculates further ahead (paper Section 2.1).

use confluence_types::{BlockAddr, FetchRegion, StorageProfile};

/// Fetch-directed prefetcher over the BPU's fetch queue.
///
/// The timing simulator calls [`Fdp::on_region_enqueued`] whenever the BPU
/// pushes a fetch region; the returned blocks are candidate prefetches
/// (the caller filters blocks already resident or in flight).
#[derive(Clone, Debug, Default)]
pub struct Fdp {
    issued: u64,
    /// Last few blocks issued, to suppress duplicate requests for regions
    /// spanning the same block.
    recent: Option<BlockAddr>,
}

impl Fdp {
    /// Creates an FDP prefetcher.
    pub fn new() -> Self {
        Fdp::default()
    }

    /// Handles a fetch region entering the fetch queue; appends the blocks
    /// it spans to `out` as prefetch candidates.
    pub fn on_region_enqueued(&mut self, region: FetchRegion, out: &mut Vec<BlockAddr>) {
        for block in region.blocks() {
            if self.recent == Some(block) {
                continue;
            }
            self.recent = Some(block);
            self.issued += 1;
            out.push(block);
        }
    }

    /// Prefetch candidates issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// FDP reuses branch-predictor metadata: no added storage.
    pub fn storage(&self) -> StorageProfile {
        StorageProfile::empty()
    }

    /// Clears statistics.
    pub fn reset(&mut self) {
        self.issued = 0;
        self.recent = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_types::VAddr;

    #[test]
    fn emits_blocks_of_region() {
        let mut fdp = Fdp::new();
        let mut out = Vec::new();
        // Region crossing a block boundary: 2 blocks.
        fdp.on_region_enqueued(FetchRegion::new(VAddr::new(0x1038), 4), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], VAddr::new(0x1038).block());
        assert_eq!(out[1], VAddr::new(0x1038).block().next());
    }

    #[test]
    fn suppresses_consecutive_duplicates() {
        let mut fdp = Fdp::new();
        let mut out = Vec::new();
        fdp.on_region_enqueued(FetchRegion::new(VAddr::new(0x1000), 2), &mut out);
        fdp.on_region_enqueued(FetchRegion::new(VAddr::new(0x1008), 2), &mut out);
        assert_eq!(out.len(), 1, "same block enqueued twice must issue once");
    }

    #[test]
    fn no_storage_overhead() {
        assert_eq!(Fdp::new().storage().dedicated_bits(), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut fdp = Fdp::new();
        let mut out = Vec::new();
        fdp.on_region_enqueued(FetchRegion::new(VAddr::new(0x1000), 1), &mut out);
        fdp.reset();
        assert_eq!(fdp.issued(), 0);
    }
}
