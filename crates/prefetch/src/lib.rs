//! Instruction prefetchers: FDP and SHIFT.
//!
//! Two prefetching philosophies from the paper:
//!
//! - [`Fdp`] (fetch-directed prefetching) lets the branch predictor run
//!   ahead of the fetch unit and prefetches the blocks of enqueued fetch
//!   regions. Free in storage, but limited in lookahead and accuracy.
//! - [`ShiftHistory`] + [`ShiftEngine`] (SHIFT) replay recorded temporal
//!   instruction streams from a shared, LLC-virtualized history; lookahead
//!   is bounded only by the stream length, and one history serves all
//!   cores running the workload. Confluence uses SHIFT to fill the L1-I
//!   *and* AirBTB.
//!
//! # Example
//!
//! ```
//! use confluence_prefetch::{ShiftHistory, ShiftEngine};
//! use confluence_types::BlockAddr;
//!
//! let mut history = ShiftHistory::with_capacity(1024);
//! for b in 0..100u64 {
//!     history.record(BlockAddr::from_raw(b)); // generator core
//! }
//! let mut engine = ShiftEngine::new(); // consumer core
//! let mut prefetches = Vec::new();
//! engine.on_access(&history, BlockAddr::from_raw(50), true, &mut prefetches);
//! assert_eq!(prefetches.first(), Some(&BlockAddr::from_raw(51)));
//! ```

#![warn(missing_docs)]

mod consolidation;
mod fdp;
mod shift;

pub use consolidation::ConsolidatedHistories;
pub use fdp::Fdp;
pub use shift::{
    HistoryView, ShiftEngine, ShiftHistory, StreamCursor, DEFAULT_HISTORY_ENTRIES,
    DEFAULT_LOOKAHEAD,
};
