//! SHIFT: Shared History Instruction Fetch (Kaynak, Grot & Falsafi,
//! MICRO 2013) — the stream-based instruction prefetcher Confluence builds
//! on.
//!
//! SHIFT records the block-grain instruction access stream of *one* history
//! generator core into a circular **history buffer**, with an **index
//! table** mapping each block address to its most recent position. Both
//! structures are virtualized in the LLC and shared by every core running
//! the workload. On an L1-I miss, a core looks up the index, starts a
//! stream cursor at the recorded position, and replays the stream ahead of
//! its fetch unit, issuing prefetches; each confirmed prediction (the core
//! actually demands a predicted block) advances the stream.

use std::collections::HashMap;

use confluence_types::{BlockAddr, StorageProfile};

/// Default history capacity: 32K entries (paper Section 4.2.1, 204 KB
/// virtualized in the LLC).
pub const DEFAULT_HISTORY_ENTRIES: usize = 32 * 1024;

/// Default stream lookahead: how many predicted blocks SHIFT keeps in
/// flight ahead of the core's confirmed fetch stream.
pub const DEFAULT_LOOKAHEAD: usize = 24;

/// Number of follower blocks one history entry's footprint can cover.
pub const FOOTPRINT_SPAN: u64 = 7;

/// One history entry: a trigger block plus a footprint bitmap of the
/// following `FOOTPRINT_SPAN` blocks touched while the entry was open.
/// Spatio-temporal compaction is what lets the paper's 32K entries
/// (~51 bits each, 204 KB) cover a multi-megabyte instruction working set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct HistoryEntry {
    base: BlockAddr,
    mask: u8,
}

impl HistoryEntry {
    /// Blocks covered by this entry, in ascending order starting at `base`.
    fn blocks(self) -> impl Iterator<Item = BlockAddr> {
        let base = self.base;
        let mask = self.mask;
        std::iter::once(base).chain(
            (0..FOOTPRINT_SPAN)
                .filter(move |i| mask & (1 << i) != 0)
                .map(move |i| BlockAddr::from_raw(base.raw() + i + 1)),
        )
    }

    #[cfg(test)]
    fn covers(self, block: BlockAddr) -> bool {
        let delta = block.raw().wrapping_sub(self.base.raw());
        delta == 0 || (delta <= FOOTPRINT_SPAN && self.mask & (1 << (delta - 1)) != 0)
    }
}

/// The shared history: circular buffer + index table.
///
/// One instance exists per workload and is shared by all cores (the paper
/// embeds it in LLC data blocks and the LLC tag array).
#[derive(Clone, Debug)]
pub struct ShiftHistory {
    buffer: Vec<HistoryEntry>,
    /// Monotonically increasing sequence number of the next write.
    head_seq: u64,
    /// Block address -> most recent sequence number of an entry covering it.
    index: HashMap<BlockAddr, u64>,
    capacity: usize,
    last_recorded: Option<BlockAddr>,
}

impl ShiftHistory {
    /// Creates a history with the paper's 32K-entry capacity.
    pub fn new_32k() -> Self {
        Self::with_capacity(DEFAULT_HISTORY_ENTRIES)
    }

    /// Creates a history with an explicit entry capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be nonzero");
        ShiftHistory {
            buffer: vec![HistoryEntry::default(); capacity],
            head_seq: 0,
            index: HashMap::new(),
            capacity,
            last_recorded: None,
        }
    }

    /// Records one block access from the history-generator core.
    ///
    /// Consecutive duplicates are collapsed, and accesses within
    /// [`FOOTPRINT_SPAN`] blocks *ahead* of the open entry's trigger merge
    /// into its footprint bitmap instead of consuming a new entry
    /// (spatio-temporal compaction, as in PIF/SHIFT).
    pub fn record(&mut self, block: BlockAddr) {
        if self.last_recorded == Some(block) {
            return;
        }
        self.last_recorded = Some(block);
        // Try to merge into the open (most recent) entry. Re-touching a
        // block the entry already covers is a *temporal recurrence* and
        // must start a fresh entry, or replay ordering would be lost.
        if self.head_seq > 0 {
            let open_pos = ((self.head_seq - 1) % self.capacity as u64) as usize;
            let open = &mut self.buffer[open_pos];
            let delta = block.raw().wrapping_sub(open.base.raw());
            if delta == 0 && open.mask == 0 {
                return; // plain duplicate of a fresh entry
            }
            if (1..=FOOTPRINT_SPAN).contains(&delta) && open.mask & (1 << (delta - 1)) == 0 {
                open.mask |= 1 << (delta - 1);
                self.index.insert(block, self.head_seq - 1);
                return;
            }
        }
        let pos = (self.head_seq % self.capacity as u64) as usize;
        // Lazily drop index entries of the overwritten slot if they still
        // point at it.
        if self.head_seq >= self.capacity as u64 {
            let old = self.buffer[pos];
            let old_seq = self.head_seq - self.capacity as u64;
            for b in old.blocks() {
                if self.index.get(&b) == Some(&old_seq) {
                    self.index.remove(&b);
                }
            }
        }
        self.buffer[pos] = HistoryEntry {
            base: block,
            mask: 0,
        };
        self.index.insert(block, self.head_seq);
        self.head_seq += 1;
    }

    /// Entries recorded so far (capped at capacity once wrapped).
    pub fn len(&self) -> usize {
        self.head_seq.min(self.capacity as u64) as usize
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.head_seq == 0
    }

    /// Looks up the most recent occurrence of `block`, returning a stream
    /// cursor pointing at the remainder of that entry's footprint and the
    /// entries that follow.
    pub fn lookup(&self, block: BlockAddr) -> Option<StreamCursor> {
        let seq = *self.index.get(&block)?;
        if !self.seq_valid(seq) {
            return None;
        }
        // Start within the found entry so the rest of its footprint (the
        // blocks after `block`) replays too.
        Some(StreamCursor {
            next_seq: seq,
            offset: 0,
            skip_through: Some(block),
        })
    }

    /// Reads the next predicted block under `cursor` and advances it.
    /// Returns `None` when the cursor catches up with the writer or falls
    /// out of the window.
    pub fn read(&self, cursor: &mut StreamCursor) -> Option<BlockAddr> {
        loop {
            let seq = cursor.next_seq;
            if seq >= self.head_seq || !self.seq_valid(seq) {
                return None;
            }
            let entry = self.buffer[(seq % self.capacity as u64) as usize];
            // Walk the entry's covered blocks from the cursor's offset.
            let blocks: Vec<BlockAddr> = entry.blocks().collect();
            let start = match cursor.skip_through {
                Some(after) => blocks
                    .iter()
                    .position(|&b| b == after)
                    .map(|p| p + 1)
                    .unwrap_or(0),
                None => cursor.offset as usize,
            };
            if let Some(&b) = blocks.get(start) {
                cursor.skip_through = None;
                cursor.offset = (start + 1) as u8;
                return Some(b);
            }
            cursor.next_seq += 1;
            cursor.offset = 0;
            cursor.skip_through = None;
        }
    }

    fn seq_valid(&self, seq: u64) -> bool {
        seq < self.head_seq && self.head_seq - seq <= self.capacity as u64
    }

    /// Storage profile: history entries in LLC data blocks, index pointers
    /// in the LLC tag array (paper: 204 KB + ~240 KB for 32K entries).
    pub fn storage(&self) -> StorageProfile {
        // One history entry holds a 42-bit block address plus alignment
        // overhead; the paper reports 204 KB for 32K entries (~51 bits).
        let history_bytes = (self.capacity as u64 * 51).div_ceil(8);
        // The index extends LLC tags with a pointer (log2 capacity bits)
        // per indexed block; the paper reports ~240 KB.
        let ptr_bits = (self.capacity as u64).trailing_zeros() as u64 + 1;
        let index_bytes = (self.capacity as u64 * 4 * ptr_bits).div_ceil(8);
        StorageProfile::empty()
            .with_llc_resident(history_bytes)
            .with_llc_tag_extension(index_bytes)
    }

    /// Clears all recorded history.
    pub fn reset(&mut self) {
        self.head_seq = 0;
        self.index.clear();
        self.last_recorded = None;
    }
}

impl Default for ShiftHistory {
    fn default() -> Self {
        Self::new_32k()
    }
}

/// A core's phase-1 view of the shared history during a two-phase CMP
/// tick.
///
/// SHIFT's history is written by exactly one core — the generator — and
/// read by all of them (paper Section 3.4). The two-phase tick exploits
/// that asymmetry: the generator core steps first holding the `Writer`
/// view (its records land immediately, exactly as serial stepping orders
/// them), and every other core then steps concurrently holding `Reader`
/// views of the now-up-to-date history. The view is what makes the
/// sharing contract explicit in the type system instead of every caller
/// threading `&mut ShiftHistory` through code that mostly reads.
#[derive(Debug)]
pub enum HistoryView<'a> {
    /// The generator core's exclusive view: reads and records.
    Writer(&'a mut ShiftHistory),
    /// A follower core's concurrent view: reads only.
    Reader(&'a ShiftHistory),
}

impl HistoryView<'_> {
    /// The history, for lookups and stream reads.
    pub fn history(&self) -> &ShiftHistory {
        match self {
            HistoryView::Writer(h) => h,
            HistoryView::Reader(h) => h,
        }
    }

    /// Records one generator-core access. Returns `false` (and does
    /// nothing) on a `Reader` view — only the generator may write, and a
    /// follower attempting to is a wiring bug the caller can assert on.
    pub fn record(&mut self, block: BlockAddr) -> bool {
        match self {
            HistoryView::Writer(h) => {
                h.record(block);
                true
            }
            HistoryView::Reader(_) => false,
        }
    }
}

/// A read cursor into the shared history stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamCursor {
    next_seq: u64,
    /// Within-entry position for footprint expansion.
    offset: u8,
    /// When resuming inside an entry: skip blocks up to and including this
    /// one (the demanded trigger).
    skip_through: Option<BlockAddr>,
}

/// Per-core SHIFT prefetch engine.
///
/// Owns a stream cursor into the shared history plus the queue of
/// predicted-but-unconfirmed blocks. The engine is deliberately decoupled
/// from the cache simulation: [`ShiftEngine::on_access`] returns the blocks
/// to prefetch and the caller decides how fills are timed.
#[derive(Clone, Debug)]
pub struct ShiftEngine {
    cursor: Option<StreamCursor>,
    /// Predicted blocks awaiting confirmation, in stream order.
    pending: std::collections::VecDeque<BlockAddr>,
    lookahead: usize,
    /// Statistics: predictions issued / confirmed.
    issued: u64,
    confirmed: u64,
    redirects: u64,
}

impl ShiftEngine {
    /// Creates an engine with the default lookahead.
    pub fn new() -> Self {
        Self::with_lookahead(DEFAULT_LOOKAHEAD)
    }

    /// Creates an engine with an explicit lookahead depth.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero.
    pub fn with_lookahead(lookahead: usize) -> Self {
        assert!(lookahead > 0, "lookahead must be nonzero");
        ShiftEngine {
            cursor: None,
            pending: std::collections::VecDeque::with_capacity(lookahead * 2),
            lookahead,
            issued: 0,
            confirmed: 0,
            redirects: 0,
        }
    }

    /// Processes one demand L1-I access from this core.
    ///
    /// `was_miss` indicates the access missed in the L1-I. Blocks the
    /// engine wants prefetched are appended to `out` (deduplicated against
    /// its own pending queue, but not against cache contents — the caller
    /// filters resident blocks).
    pub fn on_access(
        &mut self,
        history: &ShiftHistory,
        block: BlockAddr,
        was_miss: bool,
        out: &mut Vec<BlockAddr>,
    ) {
        // Confirmation: the demanded block appears among the first few
        // pending predictions (allow small skips from minor divergence).
        if let Some(pos) = self.pending.iter().take(4).position(|&b| b == block) {
            for _ in 0..=pos {
                self.pending.pop_front();
            }
            self.confirmed += 1;
            self.refill(history, out);
            return;
        }
        if was_miss {
            // Off-stream miss: re-index the stream at this block.
            self.redirects += 1;
            self.pending.clear();
            self.cursor = history.lookup(block);
            self.refill(history, out);
        }
    }

    /// Tops up the pending queue to the lookahead depth from the cursor.
    fn refill(&mut self, history: &ShiftHistory, out: &mut Vec<BlockAddr>) {
        let Some(cursor) = &mut self.cursor else {
            return;
        };
        while self.pending.len() < self.lookahead {
            match history.read(cursor) {
                Some(b) => {
                    // Collapse blocks already predicted and pending.
                    if !self.pending.contains(&b) {
                        self.pending.push_back(b);
                        out.push(b);
                        self.issued += 1;
                    }
                }
                None => {
                    // Caught up with the writer or fell out of the window.
                    break;
                }
            }
        }
    }

    /// Predictions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Predictions confirmed by demand accesses.
    pub fn confirmed(&self) -> u64 {
        self.confirmed
    }

    /// Stream re-index events (off-stream misses).
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Clears per-core stream state.
    pub fn reset(&mut self) {
        self.cursor = None;
        self.pending.clear();
        self.issued = 0;
        self.confirmed = 0;
        self.redirects = 0;
    }
}

impl Default for ShiftEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(ids: impl IntoIterator<Item = u64>) -> Vec<BlockAddr> {
        ids.into_iter().map(BlockAddr::from_raw).collect()
    }

    #[test]
    fn record_compacts_spatial_runs_into_footprints() {
        let mut h = ShiftHistory::with_capacity(16);
        for b in blocks([1, 1, 1, 2, 2, 3]) {
            h.record(b);
        }
        // One footprint entry covers the whole run; all blocks indexed.
        assert_eq!(h.len(), 1);
        assert!(h.lookup(BlockAddr::from_raw(2)).is_some());
        assert!(h.lookup(BlockAddr::from_raw(3)).is_some());
    }

    #[test]
    fn lookup_points_after_most_recent_occurrence() {
        let mut h = ShiftHistory::with_capacity(16);
        for b in blocks([1, 2, 3, 1, 4, 5]) {
            h.record(b);
        }
        let mut c = h.lookup(BlockAddr::from_raw(1)).unwrap();
        // Most recent occurrence of 1 is followed by 4, 5.
        assert_eq!(h.read(&mut c), Some(BlockAddr::from_raw(4)));
        assert_eq!(h.read(&mut c), Some(BlockAddr::from_raw(5)));
        assert_eq!(h.read(&mut c), None, "cursor must stop at the writer");
    }

    #[test]
    fn wraparound_invalidates_old_entries() {
        let mut h = ShiftHistory::with_capacity(4);
        // Spread blocks far apart so each consumes one entry.
        for b in blocks([100, 200, 300, 400, 500, 600]) {
            h.record(b);
        }
        // Blocks 100 and 200 were overwritten.
        assert!(h.lookup(BlockAddr::from_raw(100)).is_none());
        assert!(h.lookup(BlockAddr::from_raw(500)).is_some());
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn engine_streams_after_reindex() {
        let mut h = ShiftHistory::with_capacity(64);
        for b in blocks(10..30) {
            h.record(b);
        }
        let mut e = ShiftEngine::with_lookahead(4);
        let mut out = Vec::new();
        // Miss on block 12: stream resumes at 13.
        e.on_access(&h, BlockAddr::from_raw(12), true, &mut out);
        assert_eq!(out, blocks([13, 14, 15, 16]));
        // Confirm 13: one more block streams out.
        out.clear();
        e.on_access(&h, BlockAddr::from_raw(13), false, &mut out);
        assert_eq!(out, blocks([17]));
        assert_eq!(e.confirmed(), 1);
    }

    #[test]
    fn engine_tolerates_small_divergence() {
        let mut h = ShiftHistory::with_capacity(64);
        for b in blocks(10..30) {
            h.record(b);
        }
        let mut e = ShiftEngine::with_lookahead(6);
        let mut out = Vec::new();
        e.on_access(&h, BlockAddr::from_raw(12), true, &mut out);
        // Demand skips 13 and hits 15 (short divergence): still confirmed.
        out.clear();
        e.on_access(&h, BlockAddr::from_raw(15), false, &mut out);
        assert_eq!(e.confirmed(), 1);
        assert_eq!(e.redirects(), 1, "only the initial miss re-indexed");
    }

    #[test]
    fn off_stream_miss_reindexes() {
        let mut h = ShiftHistory::with_capacity(64);
        for b in blocks([1, 2, 3, 50, 51, 52]) {
            h.record(b);
        }
        let mut e = ShiftEngine::with_lookahead(2);
        let mut out = Vec::new();
        e.on_access(&h, BlockAddr::from_raw(1), true, &mut out);
        assert_eq!(out, blocks([2, 3]));
        out.clear();
        // Divergence to 50: re-index there.
        e.on_access(&h, BlockAddr::from_raw(50), true, &mut out);
        assert_eq!(out, blocks([51, 52]));
        assert_eq!(e.redirects(), 2);
    }

    #[test]
    fn unknown_block_produces_no_prefetches() {
        let h = ShiftHistory::with_capacity(16);
        let mut e = ShiftEngine::new();
        let mut out = Vec::new();
        e.on_access(&h, BlockAddr::from_raw(99), true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn storage_matches_paper_budget() {
        let h = ShiftHistory::new_32k();
        let p = h.storage();
        // Paper: 204 KB history (LLC-resident) + ~240 KB index (tag array).
        assert!(
            (190_000..230_000).contains(&(p.llc_resident_bytes as usize)),
            "history bytes {}",
            p.llc_resident_bytes
        );
        assert!(
            (200_000..280_000).contains(&(p.llc_tag_extension_bytes as usize)),
            "index bytes {}",
            p.llc_tag_extension_bytes
        );
        assert_eq!(
            p.dedicated_bits(),
            0,
            "SHIFT adds no dedicated per-core SRAM"
        );
    }

    #[test]
    fn footprint_entry_covers_base_and_masked_followers() {
        let e = HistoryEntry {
            base: BlockAddr::from_raw(100),
            mask: 0b0000_0101,
        };
        assert!(e.covers(BlockAddr::from_raw(100)));
        assert!(e.covers(BlockAddr::from_raw(101)));
        assert!(!e.covers(BlockAddr::from_raw(102)));
        assert!(e.covers(BlockAddr::from_raw(103)));
        assert!(!e.covers(BlockAddr::from_raw(99)));
        let blocks: Vec<u64> = e.blocks().map(|b| b.raw()).collect();
        assert_eq!(blocks, vec![100, 101, 103]);
    }

    #[test]
    fn history_view_gates_writes_to_the_generator() {
        let mut h = ShiftHistory::with_capacity(8);
        let mut writer = HistoryView::Writer(&mut h);
        assert!(writer.record(BlockAddr::from_raw(1)));
        assert!(writer.history().lookup(BlockAddr::from_raw(1)).is_some());
        let mut reader = HistoryView::Reader(&h);
        assert!(!reader.record(BlockAddr::from_raw(2)));
        assert!(reader.history().lookup(BlockAddr::from_raw(2)).is_none());
        assert_eq!(h.len(), 1, "reader views must never mutate");
    }

    #[test]
    fn reset_clears_history_and_engine() {
        let mut h = ShiftHistory::with_capacity(8);
        h.record(BlockAddr::from_raw(1));
        h.reset();
        assert!(h.is_empty());
        assert!(h.lookup(BlockAddr::from_raw(1)).is_none());
        let mut e = ShiftEngine::new();
        e.reset();
        assert_eq!(e.issued(), 0);
    }
}
