//! Runs registered design-space searches over the experiment engine.
//!
//! Each study iterates a seeded [`confluence_search::SearchStrategy`]
//! against the shared memoizing engine: batches of candidate points
//! become content-keyed jobs (the same jobs the sweeps run, where the
//! spaces coincide), so a store populated by `all_experiments` or a
//! previous search serves re-runs without executing a single
//! simulation — stderr reports exactly how many ran.
//!
//! Usage: `search [--list] [--study NAME]... [--seed N] [--quick]
//! [--csv | --markdown] [--threads N] [--store-dir DIR | --no-store]
//! [--store-cap-bytes N] [--no-warm-artifacts] [--no-fastpath]
//! [--connect SOCK]`
//!
//! With no `--study`, every registered study runs. `--connect` submits
//! each search batch to a `confluence-serve` daemon instead of
//! simulating in process; stdout stays byte-identical either way.

use confluence_search::{driver, objective};
use confluence_sim::cli;

const USAGE: &str = "search [--list] [--study NAME]... [--seed N] [--quick] \
     [--csv | --markdown] [--threads N] [--store-dir DIR | --no-store] \
     [--store-cap-bytes N] [--peer SOCK]... [--peer-timeout-ms N] \
     [--no-warm-artifacts] [--no-fastpath] [--connect SOCK]";

/// The `--seed N` / `--seed=N` value, defaulting to 42. Exits with
/// status 2 on a malformed value.
fn seed_from_args(args: &[String]) -> u64 {
    let mut found: Option<&str> = None;
    let mut i = 1;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--seed=") {
            found = Some(v);
        } else if args[i] == "--seed" {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    found = Some(v);
                    i += 1;
                }
                _ => {
                    eprintln!("error: --seed requires an integer value");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    match found {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: --seed requires an integer value, got '{v}'");
            std::process::exit(2);
        }),
        None => 42,
    }
}

/// Every `--study NAME` / `--study=NAME` selection, resolved against the
/// registry. Exits with status 2 on an unknown name.
fn studies_from_args(args: &[String]) -> Vec<objective::Study> {
    let resolve = |name: &str| {
        objective::find(name).unwrap_or_else(|| {
            eprintln!("error: unknown study '{name}' (try --list)");
            std::process::exit(2);
        })
    };
    let mut selected = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--study=") {
            selected.push(resolve(name));
        } else if args[i] == "--study" {
            match args.get(i + 1) {
                Some(name) if !name.starts_with("--") => {
                    selected.push(resolve(name));
                    i += 1;
                }
                _ => {
                    eprintln!("error: --study requires a name (try --list)");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    if selected.is_empty() {
        objective::registry()
    } else {
        selected
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let switches = [cli::COMMON_SWITCHES, &["--list"]].concat();
    let values = [cli::COMMON_VALUE_FLAGS, &["--study", "--seed", "--connect"]].concat();
    cli::reject_unknown_args(&args, &switches, &values, USAGE);

    if args.iter().any(|a| a == "--list") {
        for s in objective::registry() {
            println!("{:18} {:18} {}", s.name, s.strategy_name(), s.caption);
        }
        return;
    }

    let flags = cli::parse_common(&args);
    let seed = seed_from_args(&args);
    let studies = studies_from_args(&args);
    let cfg = flags.config();

    eprintln!("generating workloads...");
    let mut engine = cfg.engine().with_exec_mode(cli::exec_mode_from_args(&args));
    if let Some(n) = flags.threads {
        engine = engine.with_threads(n);
    }
    let engine = cli::attach_store(engine, &args);
    let connect = cli::connect_from_args(&args);

    let mut daemon_executed: u64 = 0;
    let mut total_iterations = 0;
    for study in &studies {
        eprintln!(
            "searching {} ({}, seed {seed})...",
            study.name,
            study.strategy_name()
        );
        let outcome = driver::run_search(&engine, &cfg, study, seed, |jobs| match &connect {
            Some(sock) => match confluence_sim::daemon::submit_jobs(sock, &engine, jobs) {
                Ok(stats) => daemon_executed += stats.executed,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            },
            None => {
                engine.run(jobs);
            }
        });
        println!("{}", flags.render(&outcome.trajectory));
        println!("{}", flags.render(&outcome.frontier));
        println!("{}", flags.render(&outcome.answer));
        total_iterations += outcome.iterations;
    }

    cli::finish_store(&engine, &args);
    match &connect {
        Some(_) => eprintln!(
            "search: daemon executed {daemon_executed} simulations across \
             {total_iterations} search iterations"
        ),
        None => {
            eprintln!(
                "search: executed {} simulations across {total_iterations} search iterations",
                engine.stats().executed
            );
            eprintln!("{}", cli::cache_summary(&engine));
        }
    }
}
