//! The search loop: propose → batch-simulate → evaluate → observe,
//! repeated to convergence, then folded into reports.
//!
//! The driver owns the evaluation cache. Strategies may re-propose
//! points; only *fresh* points expand to jobs, and every batch goes
//! through the caller-supplied `run_jobs` hook — `engine.run` in
//! process, or a daemon submission in `--connect` mode (which seeds the
//! local cache, so evaluation stays a pure local read either way). A
//! re-run over a warm store therefore executes zero simulations while
//! producing byte-identical reports: every job the loop derives is
//! content-keyed and already persisted.

use std::collections::BTreeMap;

use confluence_sim::experiments::ExperimentConfig;
use confluence_sim::report::{f, Report};
use confluence_sim::{Job, SimEngine};

use crate::objective::{AnswerRule, PointEval, Study};
use crate::strategy::Point;

/// Hard iteration cap: every registered strategy converges in far fewer
/// rounds, so hitting this means a strategy bug, not a big space.
pub const MAX_ITERATIONS: usize = 64;

/// Everything one search produces.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Per-iteration evaluation log, in evaluation order.
    pub trajectory: Report,
    /// Non-dominated feasible points (metric vs area), area-ascending.
    pub frontier: Report,
    /// The single-row answer: best point, metric, area, effort.
    pub answer: Report,
    /// Propose/observe rounds run.
    pub iterations: usize,
    /// Distinct points evaluated.
    pub evaluated: usize,
}

/// Runs one study to convergence against the engine's cache.
///
/// `run_jobs` executes a batch of content-keyed jobs and must leave
/// their results readable from `engine` (in process that is
/// `engine.run`; over `--connect` it is a daemon submission, which
/// seeds the local cache). Determinism: with a fixed `seed` the visited
/// point sequence, the trajectory, and the answer are identical on
/// every run — the goldens pin exactly that.
pub fn run_search(
    engine: &SimEngine,
    cfg: &ExperimentConfig,
    study: &Study,
    seed: u64,
    mut run_jobs: impl FnMut(&[Job]),
) -> SearchOutcome {
    let workloads: Vec<confluence_trace::Workload> =
        engine.workloads().iter().map(|(w, _)| *w).collect();
    let mut strategy = study.strategy(seed);
    let mut evals: BTreeMap<Point, PointEval> = BTreeMap::new();
    let mut trajectory = Report::new(
        format!("{} — trajectory (seed {seed})", study.caption),
        &["iter", "point", study.metric_name(), "area mm2"],
    );
    let mut iterations = 0;
    loop {
        let proposals = strategy.propose();
        if proposals.is_empty() || iterations >= MAX_ITERATIONS {
            break;
        }
        iterations += 1;
        let mut fresh: Vec<Point> = Vec::new();
        for p in &proposals {
            if !evals.contains_key(p) && !fresh.contains(p) {
                fresh.push(p.clone());
            }
        }
        let mut jobs: Vec<Job> = Vec::new();
        if iterations == 1 {
            jobs.extend(study.prereq_jobs(&workloads, cfg));
        }
        for p in &fresh {
            jobs.extend(study.point_jobs(p, &workloads, cfg));
        }
        if !jobs.is_empty() {
            run_jobs(&jobs);
        }
        for p in &fresh {
            let eval = study.evaluate(p, engine, cfg);
            trajectory.row(vec![
                iterations.to_string(),
                eval.label.clone(),
                study.format_metric(eval.metric),
                f(eval.area_mm2, 3),
            ]);
            evals.insert(p.clone(), eval);
        }
        let scored: Vec<(Point, f64)> = proposals
            .iter()
            .map(|p| (p.clone(), study.fitness(&evals[p])))
            .collect();
        strategy.observe(&scored);
    }

    let threshold = study.feasibility_threshold(study.anchor_point().and_then(|p| evals.get(&p)));
    let feasible: Vec<(&Point, &PointEval)> = evals
        .iter()
        .filter(|(_, e)| study.is_feasible(e, threshold))
        .collect();

    let frontier = frontier_report(study, &feasible);

    let best = match study.answer_rule() {
        AnswerRule::SmallestFeasible => feasible.first().copied(),
        AnswerRule::MaxScore => feasible
            .iter()
            .copied()
            .fold(None, |best, cand| match best {
                Some((_, b)) if study.score(b) >= study.score(cand.1) => best,
                _ => Some(cand),
            }),
    };
    let mut answer = Report::new(
        format!("{} — answer (seed {seed})", study.caption),
        &[
            "study",
            "strategy",
            "best",
            study.metric_name(),
            "area mm2",
            "score",
            "iters",
            "evaluated",
        ],
    );
    match best {
        Some((_, e)) => answer.row(vec![
            study.name.to_string(),
            study.strategy_name().to_string(),
            e.label.clone(),
            study.format_metric(e.metric),
            f(e.area_mm2, 3),
            f(study.score(e), 4),
            iterations.to_string(),
            evals.len().to_string(),
        ]),
        None => answer.row(vec![
            study.name.to_string(),
            study.strategy_name().to_string(),
            "none feasible".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            iterations.to_string(),
            evals.len().to_string(),
        ]),
    };

    SearchOutcome {
        trajectory,
        frontier,
        answer,
        iterations,
        evaluated: evals.len(),
    }
}

/// The non-dominated feasible points: no other feasible point has
/// less-or-equal area *and* a better-or-equal metric (strictly better in
/// at least one). Sorted area-ascending, so the table reads as "what
/// each extra mm² buys".
fn frontier_report(study: &Study, feasible: &[(&Point, &PointEval)]) -> Report {
    let better = |a: f64, b: f64| {
        if study.higher_better() {
            a > b
        } else {
            a < b
        }
    };
    let no_worse = |a: f64, b: f64| a == b || better(a, b);
    let mut front: Vec<&PointEval> = feasible
        .iter()
        .filter(|(_, e)| {
            !feasible.iter().any(|(_, other)| {
                other.area_mm2 <= e.area_mm2
                    && no_worse(other.metric, e.metric)
                    && (other.area_mm2 < e.area_mm2 || better(other.metric, e.metric))
            })
        })
        .map(|(_, e)| *e)
        .collect();
    front.sort_by(|a, b| {
        a.area_mm2
            .partial_cmp(&b.area_mm2)
            .expect("areas are finite")
            .then_with(|| a.label.cmp(&b.label))
    });
    let mut report = Report::new(
        format!(
            "{} — Pareto frontier ({} vs area)",
            study.caption,
            study.metric_name()
        ),
        &["point", study.metric_name(), "area mm2", "score"],
    );
    for e in front {
        report.row(vec![
            e.label.clone(),
            study.format_metric(e.metric),
            f(e.area_mm2, 3),
            f(study.score(e), 4),
        ]);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::StudyKind;

    fn toy_study() -> Study {
        Study {
            name: "toy",
            caption: "toy",
            kind: StudyKind::IpcPerMm2 {
                cores: vec![1, 2, 3, 4],
                budget_mm2: 40.0,
            },
        }
    }

    #[test]
    fn frontier_keeps_only_nondominated_points() {
        let study = toy_study();
        let evals: Vec<PointEval> = [
            ("a", 1.0, 10.0), // dominated by b (same area, worse metric)
            ("b", 2.0, 10.0),
            ("c", 3.0, 20.0), // on the frontier: more metric for more area
            ("d", 2.5, 30.0), // dominated by c (more area, less metric)
        ]
        .iter()
        .map(|&(label, metric, area)| PointEval {
            label: label.into(),
            metric,
            area_mm2: area,
        })
        .collect();
        let points: Vec<Point> = (0..evals.len()).map(|i| vec![i]).collect();
        let feasible: Vec<(&Point, &PointEval)> = points.iter().zip(evals.iter()).collect();
        let report = frontier_report(&study, &feasible);
        let labels: Vec<&str> = report.rows().iter().map(|r| r[0].as_str()).collect();
        assert_eq!(labels, vec!["b", "c"]);
    }

    #[test]
    fn frontier_minimizing_direction_flips_dominance() {
        let study = Study {
            name: "toy-min",
            caption: "toy-min",
            kind: StudyKind::MinBtbCapacity {
                entries: vec![512, 1024],
                tolerance_mpki: 0.5,
            },
        };
        let evals: Vec<PointEval> = [
            ("small", 5.0, 0.1), // frontier: cheapest
            ("mid", 5.5, 0.2),   // dominated: more area, worse MPKI
            ("big", 2.0, 0.6),   // frontier: best MPKI
        ]
        .iter()
        .map(|&(label, metric, area)| PointEval {
            label: label.into(),
            metric,
            area_mm2: area,
        })
        .collect();
        let points: Vec<Point> = (0..evals.len()).map(|i| vec![i]).collect();
        let feasible: Vec<(&Point, &PointEval)> = points.iter().zip(evals.iter()).collect();
        let report = frontier_report(&study, &feasible);
        let labels: Vec<&str> = report.rows().iter().map(|r| r[0].as_str()).collect();
        assert_eq!(labels, vec!["small", "big"]);
    }
}
