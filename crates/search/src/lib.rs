//! Deterministic design-space search over the memoizing experiment
//! engine.
//!
//! The figure and sweep runners reproduce *published* points; this
//! crate asks the inverse question — which point should you build? A
//! [`Study`] names an objective ("max IPC per mm² under an area
//! budget", "smallest SHIFT history within 1% of peak coverage"), a
//! [`SearchStrategy`] proposes successive batches of candidate points,
//! and the driver maps each batch through the sweep subsystem's public
//! job constructors into ordinary content-keyed jobs on a
//! [`SimEngine`](confluence_sim::SimEngine).
//!
//! That last part is the point of the design: the search inherits the
//! engine's whole memo hierarchy. Probes that coincide with sweep or
//! figure points are cache hits; a search over a warm persistent store
//! executes **zero** simulations; `--connect` routes every batch to a
//! `confluence-serve` daemon unchanged. Strategies are seeded and
//! deterministic, so a fixed seed yields an identical visited-point
//! sequence — which is what the committed search goldens pin.
//!
//! Results fold into three [`Report`](confluence_sim::report::Report)s
//! per study: the per-iteration trajectory, the Pareto frontier of
//! metric vs area (joined through `confluence-area`'s model), and the
//! single-row answer.

#![warn(missing_docs)]

pub mod driver;
pub mod objective;
pub mod strategy;

pub use driver::{run_search, SearchOutcome, MAX_ITERATIONS};
pub use objective::{find, registry, AnswerRule, PointEval, Study, StudyKind};
pub use strategy::{
    CoordinateDescent, GoldenSection, Point, SearchStrategy, SplitMix64, ThresholdBisection,
    ThresholdSense,
};
