//! Registered search objectives: what is optimized, over which axis,
//! with which strategy.
//!
//! A [`Study`] binds a named design question ("how many cores maximize
//! IPC per mm² under an area budget?") to a search space, a metric, and
//! a [`SearchStrategy`]. Points map to jobs through the *same public
//! constructors the sweep studies use* ([`confluence_sim::sweeps`]), so
//! a search probe and the matching sweep point share one content key —
//! and therefore one cached simulation in the engine, the persistent
//! store, and the daemon.
//!
//! Metrics aggregate across the five paper workloads with a plain
//! arithmetic mean: it is deterministic, platform-stable (no `powf` in
//! the scoring path), and the search only needs a consistent ordering,
//! not a citable absolute.

use confluence_area::{AreaModel, CORE_MM2};
use confluence_btb::{BtbDesign, ConventionalBtb};
use confluence_core::{AirBtb, AirBtbMode};
use confluence_prefetch::ShiftHistory;
use confluence_sim::experiments::ExperimentConfig;
use confluence_sim::sweeps;
use confluence_sim::{DesignPoint, Job, SimEngine};
use confluence_trace::Workload;

use crate::strategy::{
    CoordinateDescent, GoldenSection, Point, SearchStrategy, ThresholdBisection, ThresholdSense,
};

/// One evaluated search point: its human-readable label, the study's
/// metric, and the area charged to it.
#[derive(Clone, Debug, PartialEq)]
pub struct PointEval {
    /// Axis label, e.g. `"8c"`, `"32K"`, `"512x3+32"`.
    pub label: String,
    /// The study's metric at this point (see [`Study::metric_name`]).
    pub metric: f64,
    /// Area in mm² (chip total for the scaling study, frontend mm² for
    /// the capacity studies).
    pub area_mm2: f64,
}

/// How a study turns its evaluations into a final answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerRule {
    /// The feasible point with the best [`Study::score`].
    MaxScore,
    /// The smallest-index feasible point (capacity-minimization studies;
    /// the bisection invariant guarantees it was evaluated).
    SmallestFeasible,
}

/// The search space and metric of one registered study.
#[derive(Clone, Debug)]
pub enum StudyKind {
    /// Maximize aggregate IPC per chip mm² over the core count, under a
    /// total-area budget (golden-section; infeasible points score
    /// `-inf`).
    IpcPerMm2 {
        /// Core-count axis.
        cores: Vec<usize>,
        /// Chip-area budget in mm².
        budget_mm2: f64,
    },
    /// Minimize SHIFT history capacity holding L1-I miss coverage within
    /// `tolerance` of the largest capacity's (threshold bisection).
    MinShiftHistory {
        /// History-capacity axis, ascending entries.
        entries: Vec<usize>,
        /// Allowed coverage drop from the peak, as a fraction.
        tolerance: f64,
    },
    /// Minimize conventional-BTB capacity holding BTB MPKI within
    /// `tolerance_mpki` of the largest capacity's (threshold bisection).
    MinBtbCapacity {
        /// BTB-capacity axis, ascending entries.
        entries: Vec<usize>,
        /// Allowed MPKI rise above the floor.
        tolerance_mpki: f64,
    },
    /// Maximize BTB miss coverage per frontend mm² over the AirBTB
    /// bundle geometry (coordinate descent over entries/bundle ×
    /// overflow capacity).
    BundlePerArea {
        /// Branch entries per bundle axis.
        bundle_entries: Vec<usize>,
        /// Overflow-buffer capacity axis.
        overflow: Vec<usize>,
    },
}

/// A named, registered design-space search.
#[derive(Clone, Debug)]
pub struct Study {
    /// Registry name (`search --study <name>`).
    pub name: &'static str,
    /// Report caption.
    pub caption: &'static str,
    /// Search space, metric and strategy binding.
    pub kind: StudyKind,
}

/// `32768 -> "32K"`, like the sweep axis labels.
fn kilo(n: usize) -> String {
    if n >= 1024 && n.is_multiple_of(1024) {
        format!("{}K", n / 1024)
    } else {
        format!("{n}")
    }
}

impl Study {
    /// The lengths of the study's axes (one entry per axis).
    pub fn axis_lens(&self) -> Vec<usize> {
        match &self.kind {
            StudyKind::IpcPerMm2 { cores, .. } => vec![cores.len()],
            StudyKind::MinShiftHistory { entries, .. } => vec![entries.len()],
            StudyKind::MinBtbCapacity { entries, .. } => vec![entries.len()],
            StudyKind::BundlePerArea {
                bundle_entries,
                overflow,
            } => vec![bundle_entries.len(), overflow.len()],
        }
    }

    /// The strategy this study searches with, seeded.
    pub fn strategy(&self, seed: u64) -> Box<dyn SearchStrategy> {
        let lens = self.axis_lens();
        match &self.kind {
            StudyKind::IpcPerMm2 { .. } => Box::new(GoldenSection::new(lens[0], seed)),
            StudyKind::MinShiftHistory { tolerance, .. } => Box::new(ThresholdBisection::new(
                lens[0],
                ThresholdSense::AtLeastPeakMinus(*tolerance),
            )),
            StudyKind::MinBtbCapacity { tolerance_mpki, .. } => Box::new(ThresholdBisection::new(
                lens[0],
                ThresholdSense::AtMostFloorPlus(*tolerance_mpki),
            )),
            StudyKind::BundlePerArea { .. } => Box::new(CoordinateDescent::new(&lens, seed)),
        }
    }

    /// The strategy's registry name, for the answer report.
    pub fn strategy_name(&self) -> &'static str {
        match &self.kind {
            StudyKind::IpcPerMm2 { .. } => "golden-section",
            StudyKind::MinShiftHistory { .. } | StudyKind::MinBtbCapacity { .. } => "bisection",
            StudyKind::BundlePerArea { .. } => "coordinate-descent",
        }
    }

    /// Human-readable label of a point, matching the sweep axis labels
    /// where the spaces coincide.
    pub fn point_label(&self, point: &Point) -> String {
        match &self.kind {
            StudyKind::IpcPerMm2 { cores, .. } => format!("{}c", cores[point[0]]),
            StudyKind::MinShiftHistory { entries, .. } => kilo(entries[point[0]]),
            StudyKind::MinBtbCapacity { entries, .. } => kilo(entries[point[0]]),
            StudyKind::BundlePerArea {
                bundle_entries,
                overflow,
            } => format!("512x{}+{}", bundle_entries[point[0]], overflow[point[1]]),
        }
    }

    /// Jobs every iteration of this study depends on regardless of the
    /// proposed points (the shared coverage baseline for coverage-vs
    /// metrics). The driver batches these with the first iteration so a
    /// connected run never simulates locally.
    pub fn prereq_jobs(&self, workloads: &[Workload], cfg: &ExperimentConfig) -> Vec<Job> {
        match &self.kind {
            StudyKind::MinShiftHistory { .. } | StudyKind::BundlePerArea { .. } => workloads
                .iter()
                .map(|&w| sweeps::baseline_job(w, cfg).into())
                .collect(),
            StudyKind::IpcPerMm2 { .. } | StudyKind::MinBtbCapacity { .. } => Vec::new(),
        }
    }

    /// The content-keyed jobs one point expands to (one per workload),
    /// built by the sweep subsystem's public constructors so coinciding
    /// points are cache hits.
    pub fn point_jobs(
        &self,
        point: &Point,
        workloads: &[Workload],
        cfg: &ExperimentConfig,
    ) -> Vec<Job> {
        workloads
            .iter()
            .map(|&w| match &self.kind {
                StudyKind::IpcPerMm2 { cores, .. } => {
                    sweeps::scaling_job(w, DesignPoint::Confluence, cores[point[0]], cfg).into()
                }
                StudyKind::MinShiftHistory { entries, .. } => {
                    sweeps::history_job(w, entries[point[0]], cfg).into()
                }
                StudyKind::MinBtbCapacity { entries, .. } => {
                    sweeps::capacity_job(w, entries[point[0]], cfg).into()
                }
                StudyKind::BundlePerArea {
                    bundle_entries,
                    overflow,
                } => sweeps::geometry_job(
                    w,
                    (512, bundle_entries[point[0]], overflow[point[1]]),
                    cfg,
                )
                .into(),
            })
            .collect()
    }

    /// Evaluates one point from the engine's warm cache: the metric is
    /// the arithmetic mean over the engine's workloads (the full paper
    /// set in the binaries, a single one in the golden harness), the
    /// area comes from the structure constructors' storage profiles
    /// through the paper's area model. Every job this reads must already
    /// be in the cache (the driver guarantees it), so evaluation never
    /// simulates.
    pub fn evaluate(&self, point: &Point, engine: &SimEngine, cfg: &ExperimentConfig) -> PointEval {
        let workloads: Vec<Workload> = engine.workloads().iter().map(|(w, _)| *w).collect();
        let mean = |vals: Vec<f64>| vals.iter().sum::<f64>() / vals.len() as f64;
        let (metric, area_mm2) = match &self.kind {
            StudyKind::IpcPerMm2 { cores, .. } => {
                let c = cores[point[0]];
                let per_core = mean(
                    workloads
                        .iter()
                        .map(|&w| {
                            engine
                                .timing(&sweeps::scaling_job(w, DesignPoint::Confluence, c, cfg))
                                .ipc()
                        })
                        .collect(),
                );
                let chip = AreaModel::new(CORE_MM2, c)
                    .chip_mm2(&DesignPoint::Confluence.storage_profile());
                (per_core * c as f64, chip)
            }
            StudyKind::MinShiftHistory { entries, .. } => {
                let e = entries[point[0]];
                let cov = mean(
                    workloads
                        .iter()
                        .map(|&w| {
                            let base = engine.coverage(&sweeps::baseline_job(w, cfg));
                            engine
                                .coverage(&sweeps::history_job(w, e, cfg))
                                .l1i_miss_coverage_vs(&base)
                        })
                        .collect(),
                );
                let area =
                    AreaModel::paper().frontend_mm2(&ShiftHistory::with_capacity(e).storage());
                (cov, area)
            }
            StudyKind::MinBtbCapacity { entries, .. } => {
                let e = entries[point[0]];
                let mpki = mean(
                    workloads
                        .iter()
                        .map(|&w| engine.coverage(&sweeps::capacity_job(w, e, cfg)).btb_mpki())
                        .collect(),
                );
                let storage = ConventionalBtb::new("BTB", e, 4, 64)
                    .expect("registry capacities are valid geometries")
                    .storage();
                (mpki, AreaModel::paper().frontend_mm2(&storage))
            }
            StudyKind::BundlePerArea {
                bundle_entries,
                overflow,
            } => {
                let geom = (512, bundle_entries[point[0]], overflow[point[1]]);
                let cov = mean(
                    workloads
                        .iter()
                        .map(|&w| {
                            let base = engine.coverage(&sweeps::baseline_job(w, cfg));
                            engine
                                .coverage(&sweeps::geometry_job(w, geom, cfg))
                                .btb_miss_coverage_vs(&base)
                        })
                        .collect(),
                );
                let storage = AirBtb::new(AirBtbMode::Full, geom.0, geom.1, geom.2).storage();
                (cov, AreaModel::paper().frontend_mm2(&storage))
            }
        };
        PointEval {
            label: self.point_label(point),
            metric,
            area_mm2,
        }
    }

    /// The scalar handed back to the strategy. The hill-climbing
    /// strategies read it as higher-is-better (area-infeasible points
    /// score `-inf` so the climb routes around them); the bisection
    /// strategies read the raw metric and compare it against their
    /// anchor-derived threshold.
    pub fn fitness(&self, eval: &PointEval) -> f64 {
        match &self.kind {
            StudyKind::IpcPerMm2 { budget_mm2, .. } => {
                if eval.area_mm2 > *budget_mm2 {
                    f64::NEG_INFINITY
                } else {
                    eval.metric / eval.area_mm2
                }
            }
            StudyKind::MinShiftHistory { .. } | StudyKind::MinBtbCapacity { .. } => eval.metric,
            StudyKind::BundlePerArea { .. } => eval.metric / eval.area_mm2,
        }
    }

    /// The study's comparable figure of merit (what the answer
    /// maximizes for [`AnswerRule::MaxScore`] studies): metric per mm².
    pub fn score(&self, eval: &PointEval) -> f64 {
        match &self.kind {
            StudyKind::IpcPerMm2 { .. } | StudyKind::BundlePerArea { .. } => {
                eval.metric / eval.area_mm2
            }
            StudyKind::MinShiftHistory { .. } | StudyKind::MinBtbCapacity { .. } => eval.metric,
        }
    }

    /// The feasibility threshold on the metric, derived from the
    /// *anchor* evaluation (the largest capacity) for the
    /// capacity-minimization studies; `None` when feasibility is not
    /// metric-thresholded (the area budget gates [`StudyKind::IpcPerMm2`]
    /// instead, and every geometry point is feasible).
    pub fn feasibility_threshold(&self, anchor: Option<&PointEval>) -> Option<f64> {
        match &self.kind {
            StudyKind::MinShiftHistory { tolerance, .. } => anchor.map(|a| a.metric - tolerance),
            StudyKind::MinBtbCapacity { tolerance_mpki, .. } => {
                anchor.map(|a| a.metric + tolerance_mpki)
            }
            StudyKind::IpcPerMm2 { .. } | StudyKind::BundlePerArea { .. } => None,
        }
    }

    /// Whether a point satisfies the study's constraint, given the
    /// threshold from [`Study::feasibility_threshold`].
    pub fn is_feasible(&self, eval: &PointEval, threshold: Option<f64>) -> bool {
        match &self.kind {
            StudyKind::IpcPerMm2 { budget_mm2, .. } => eval.area_mm2 <= *budget_mm2,
            StudyKind::MinShiftHistory { .. } => threshold.is_none_or(|t| eval.metric >= t),
            StudyKind::MinBtbCapacity { .. } => threshold.is_none_or(|t| eval.metric <= t),
            StudyKind::BundlePerArea { .. } => true,
        }
    }

    /// The anchor point the feasibility threshold derives from, if the
    /// study has one (the largest capacity on the axis).
    pub fn anchor_point(&self) -> Option<Point> {
        match &self.kind {
            StudyKind::MinShiftHistory { entries, .. }
            | StudyKind::MinBtbCapacity { entries, .. } => Some(vec![entries.len() - 1]),
            StudyKind::IpcPerMm2 { .. } | StudyKind::BundlePerArea { .. } => None,
        }
    }

    /// How the final answer is picked from the feasible evaluations.
    pub fn answer_rule(&self) -> AnswerRule {
        match &self.kind {
            StudyKind::IpcPerMm2 { .. } | StudyKind::BundlePerArea { .. } => AnswerRule::MaxScore,
            StudyKind::MinShiftHistory { .. } | StudyKind::MinBtbCapacity { .. } => {
                AnswerRule::SmallestFeasible
            }
        }
    }

    /// Whether a larger metric is better (drives the Pareto dominance
    /// direction; MPKI minimizes).
    pub fn higher_better(&self) -> bool {
        !matches!(self.kind, StudyKind::MinBtbCapacity { .. })
    }

    /// The metric's column name.
    pub fn metric_name(&self) -> &'static str {
        match &self.kind {
            StudyKind::IpcPerMm2 { .. } => "aggregate IPC",
            StudyKind::MinShiftHistory { .. } => "L1-I miss coverage",
            StudyKind::MinBtbCapacity { .. } => "BTB MPKI",
            StudyKind::BundlePerArea { .. } => "BTB miss coverage",
        }
    }

    /// Formats a metric value for the reports.
    pub fn format_metric(&self, v: f64) -> String {
        match &self.kind {
            StudyKind::IpcPerMm2 { .. } | StudyKind::MinBtbCapacity { .. } => {
                confluence_sim::report::f(v, 3)
            }
            StudyKind::MinShiftHistory { .. } | StudyKind::BundlePerArea { .. } => {
                confluence_sim::report::pct(v)
            }
        }
    }
}

/// Every registered study, in presentation order.
pub fn registry() -> Vec<Study> {
    vec![
        Study {
            name: "ipc-per-mm2",
            caption: "Search: core count maximizing aggregate IPC per chip mm² \
                      (Confluence frontend, 40 mm² budget; golden-section)",
            kind: StudyKind::IpcPerMm2 {
                cores: vec![1, 2, 3, 4, 6, 8],
                budget_mm2: 40.0,
            },
        },
        Study {
            name: "min-shift-history",
            caption: "Search: smallest SHIFT history within 1% of peak L1-I miss \
                      coverage (baseline BTB + SHIFT; bisection)",
            kind: StudyKind::MinShiftHistory {
                entries: vec![
                    1024,
                    2 * 1024,
                    4 * 1024,
                    8 * 1024,
                    16 * 1024,
                    32 * 1024,
                    64 * 1024,
                    128 * 1024,
                ],
                tolerance: 0.01,
            },
        },
        Study {
            name: "min-btb-capacity",
            caption: "Search: smallest conventional BTB within 0.5 MPKI of the \
                      64K-entry floor (Figure 1 geometry; bisection)",
            kind: StudyKind::MinBtbCapacity {
                entries: vec![
                    512,
                    1024,
                    2 * 1024,
                    4 * 1024,
                    8 * 1024,
                    16 * 1024,
                    32 * 1024,
                    64 * 1024,
                ],
                tolerance_mpki: 0.5,
            },
        },
        Study {
            name: "bundle-per-area",
            caption: "Search: AirBTB bundle geometry maximizing BTB miss coverage \
                      per frontend mm² (Full mode + SHIFT; coordinate descent)",
            kind: StudyKind::BundlePerArea {
                bundle_entries: vec![1, 2, 3, 4, 5, 6],
                overflow: vec![0, 8, 16, 32, 64],
            },
        },
    ]
}

/// Looks up a registered study by name.
pub fn find(name: &str) -> Option<Study> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let studies = registry();
        assert!(studies.len() >= 3, "the issue requires three objectives");
        for s in &studies {
            assert_eq!(find(s.name).map(|f| f.caption), Some(s.caption));
        }
        let mut names: Vec<_> = studies.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), studies.len(), "duplicate study name");
        assert!(find("no-such-study").is_none());
    }

    #[test]
    fn point_jobs_alias_the_sweep_jobs_at_coinciding_points() {
        // The search's 32K history point must be byte-for-byte the
        // sweep's 32K point, so the caches collapse them.
        let cfg = ExperimentConfig::quick();
        let study = find("min-shift-history").unwrap();
        let StudyKind::MinShiftHistory { ref entries, .. } = study.kind else {
            unreachable!()
        };
        let idx = entries.iter().position(|&e| e == 32 * 1024).unwrap();
        let jobs = study.point_jobs(&vec![idx], &Workload::ALL, &cfg);
        let expect: Vec<Job> = Workload::ALL
            .into_iter()
            .map(|w| sweeps::history_job(w, 32 * 1024, &cfg).into())
            .collect();
        assert_eq!(jobs, expect);
    }

    #[test]
    fn labels_match_the_sweep_axis_style() {
        let study = find("min-btb-capacity").unwrap();
        assert_eq!(study.point_label(&vec![0]), "512");
        assert_eq!(study.point_label(&vec![7]), "64K");
        let study = find("ipc-per-mm2").unwrap();
        assert_eq!(study.point_label(&vec![5]), "8c");
        let study = find("bundle-per-area").unwrap();
        assert_eq!(study.point_label(&vec![2, 3]), "512x3+32");
    }

    #[test]
    fn area_budget_gates_feasibility() {
        let study = find("ipc-per-mm2").unwrap();
        let cheap = PointEval {
            label: "2c".into(),
            metric: 1.0,
            area_mm2: 15.0,
        };
        let big = PointEval {
            label: "8c".into(),
            metric: 4.0,
            area_mm2: 59.0,
        };
        assert!(study.is_feasible(&cheap, None));
        assert!(!study.is_feasible(&big, None));
        assert_eq!(study.fitness(&big), f64::NEG_INFINITY);
        assert!(study.fitness(&cheap) > 0.0);
    }

    #[test]
    fn capacity_thresholds_derive_from_the_anchor() {
        let anchor = PointEval {
            label: "128K".into(),
            metric: 0.90,
            area_mm2: 1.0,
        };
        let study = find("min-shift-history").unwrap();
        let t = study.feasibility_threshold(Some(&anchor)).unwrap();
        assert!((t - 0.89).abs() < 1e-12);
        let near = PointEval {
            label: "8K".into(),
            metric: 0.895,
            area_mm2: 0.2,
        };
        let far = PointEval {
            label: "1K".into(),
            metric: 0.5,
            area_mm2: 0.05,
        };
        assert!(study.is_feasible(&near, Some(t)));
        assert!(!study.is_feasible(&far, Some(t)));

        let study = find("min-btb-capacity").unwrap();
        let floor = PointEval {
            label: "64K".into(),
            metric: 2.0,
            area_mm2: 2.0,
        };
        let t = study.feasibility_threshold(Some(&floor)).unwrap();
        assert!((t - 2.5).abs() < 1e-12);
        assert!(!study.higher_better());
    }

    #[test]
    fn every_study_exposes_a_consistent_search_space() {
        for study in registry() {
            let lens = study.axis_lens();
            assert!(!lens.is_empty() && lens.iter().all(|&l| l >= 2));
            // The strategy accepts the advertised space.
            let mut s = study.strategy(42);
            let batch = s.propose();
            assert!(!batch.is_empty(), "{}: empty first proposal", study.name);
            for p in &batch {
                assert_eq!(p.len(), lens.len());
                for (axis, &v) in p.iter().enumerate() {
                    assert!(v < lens[axis], "{}: out-of-range proposal", study.name);
                }
            }
            if let Some(anchor) = study.anchor_point() {
                assert_eq!(batch, vec![anchor], "bisection probes its anchor first");
            }
        }
    }
}
