//! Search strategies: deterministic batch-oriented optimizers over a
//! small discrete grid.
//!
//! A strategy never simulates anything. It proposes batches of grid
//! *points* (index vectors into the study's axes), the driver maps them
//! to content-keyed jobs, runs them through the engine — where the memo
//! hierarchy deduplicates and persists them — and feeds the resulting
//! fitness values back through [`SearchStrategy::observe`]. Strategies
//! are free to re-propose points they have already seen; the driver
//! answers those from its evaluation cache without touching the engine,
//! so a strategy's bookkeeping stays simple and the engine's
//! exactly-once contract does the deduplication.
//!
//! Every strategy is seeded and fully deterministic: a fixed seed
//! yields an identical visited-point sequence on every run, which is
//! what lets the search goldens assert byte-identical trajectories and
//! the warm-store re-run execute zero simulations.

use std::collections::BTreeMap;

/// A point in the search space: one index per axis, each in
/// `0..axis_len`.
pub type Point = Vec<usize>;

/// A batch-proposing optimizer over a discrete grid.
///
/// The protocol is propose → evaluate → observe, repeated until
/// [`propose`](SearchStrategy::propose) returns an empty batch
/// (convergence). `observe` receives a fitness for *every* proposed
/// point of the round, in proposal order — higher is always better
/// (objectives that minimize negate their metric before handing it to
/// the strategy).
pub trait SearchStrategy {
    /// The next batch of points to evaluate; empty means converged.
    fn propose(&mut self) -> Vec<Point>;
    /// Feedback for the last proposed batch, in proposal order.
    fn observe(&mut self, scored: &[(Point, f64)]);
}

/// SplitMix64 — the standard 64-bit mixing PRNG. Tiny, seedable, and
/// identical on every platform, which is all the search needs (it only
/// picks starting points; the descent itself is deterministic).
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Golden-section search for the maximum of a unimodal function over a
/// single axis, on grid indices instead of reals: the probe offsets are
/// rounded to whole indices and the bracket shrinks until at most three
/// candidates remain, which are then evaluated exhaustively. Converges
/// in O(log len) batches of two probes each.
#[derive(Debug)]
pub struct GoldenSection {
    lo: usize,
    hi: usize,
    scores: BTreeMap<usize, f64>,
    done: bool,
}

impl GoldenSection {
    /// A search over indices `0..len`.
    ///
    /// The `seed` is accepted for signature uniformity with the other
    /// strategies; golden-section has no random choices.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize, _seed: u64) -> Self {
        assert!(len > 0, "cannot search an empty axis");
        GoldenSection {
            lo: 0,
            hi: len - 1,
            scores: BTreeMap::new(),
            done: false,
        }
    }

    /// The two interior probes of the current bracket.
    fn probes(&self) -> (usize, usize) {
        let span = self.hi - self.lo;
        // 0.382 ≈ 1 - 1/φ, clamped so both probes stay interior.
        let g = ((span as f64 * 0.382).round() as usize).clamp(1, span - 1);
        let mut x1 = self.lo + g;
        let x2 = self.hi - g;
        if x1 >= x2 {
            x1 = x2 - 1;
        }
        (x1, x2)
    }
}

impl SearchStrategy for GoldenSection {
    fn propose(&mut self) -> Vec<Point> {
        if self.done {
            return Vec::new();
        }
        // Shrink as far as recorded scores allow before proposing.
        while self.hi - self.lo > 2 {
            let (x1, x2) = self.probes();
            match (self.scores.get(&x1), self.scores.get(&x2)) {
                (Some(f1), Some(f2)) => {
                    if f1 >= f2 {
                        self.hi = x2;
                    } else {
                        self.lo = x1;
                    }
                }
                _ => return vec![vec![x1], vec![x2]],
            }
        }
        let tail: Vec<Point> = (self.lo..=self.hi)
            .filter(|i| !self.scores.contains_key(i))
            .map(|i| vec![i])
            .collect();
        if tail.is_empty() {
            self.done = true;
        }
        tail
    }

    fn observe(&mut self, scored: &[(Point, f64)]) {
        for (point, fit) in scored {
            self.scores.insert(point[0], *fit);
        }
    }
}

/// Which side of the anchor's score counts as satisfying the threshold
/// in a [`ThresholdBisection`].
#[derive(Clone, Copy, Debug)]
pub enum ThresholdSense {
    /// Satisfied when `score >= anchor - tolerance`: "within `tol` of
    /// the peak", for metrics that improve upward (coverage).
    AtLeastPeakMinus(f64),
    /// Satisfied when `score <= anchor + tolerance`: "within `tol` of
    /// the floor", for metrics that improve downward (MPKI).
    AtMostFloorPlus(f64),
}

/// Lower-bound bisection for the smallest index that satisfies a
/// threshold derived from the largest index's score.
///
/// The axes it searches are capacity-like (bigger is monotonically no
/// worse), so the last index is the peak/floor *anchor*: it is
/// evaluated first, the threshold is derived from its score, and then
/// classic bisection finds the boundary in O(log len) single-point
/// batches. The invariant keeps `hi` satisfied at all times, so the
/// final `lo == hi` answer was always actually evaluated.
#[derive(Debug)]
pub struct ThresholdBisection {
    len: usize,
    sense: ThresholdSense,
    anchor: Option<f64>,
    lo: usize,
    hi: usize,
    pending: Option<usize>,
}

impl ThresholdBisection {
    /// A search over indices `0..len` with the given sense.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize, sense: ThresholdSense) -> Self {
        assert!(len > 0, "cannot search an empty axis");
        ThresholdBisection {
            len,
            sense,
            anchor: None,
            lo: 0,
            hi: len - 1,
            pending: None,
        }
    }

    fn satisfied(&self, score: f64) -> bool {
        let anchor = self.anchor.expect("anchor scored before bisection");
        match self.sense {
            ThresholdSense::AtLeastPeakMinus(tol) => score >= anchor - tol,
            ThresholdSense::AtMostFloorPlus(tol) => score <= anchor + tol,
        }
    }
}

impl SearchStrategy for ThresholdBisection {
    fn propose(&mut self) -> Vec<Point> {
        if self.anchor.is_none() {
            self.pending = Some(self.len - 1);
            return vec![vec![self.len - 1]];
        }
        if self.lo >= self.hi {
            return Vec::new();
        }
        let mid = (self.lo + self.hi) / 2;
        self.pending = Some(mid);
        vec![vec![mid]]
    }

    fn observe(&mut self, scored: &[(Point, f64)]) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        let Some((_, score)) = scored.iter().find(|(p, _)| p[0] == pending) else {
            return;
        };
        if self.anchor.is_none() {
            self.anchor = Some(*score);
            return;
        }
        if self.satisfied(*score) {
            self.hi = pending;
        } else {
            self.lo = pending + 1;
        }
    }
}

/// Coordinate-descent hill climbing over two or more axes: sweep one
/// full axis line at a time (all values of the active axis, the others
/// held at the current point), move to the line's best point, and
/// rotate to the next axis. Converges when a full cycle of axes brings
/// no strict improvement. The starting point is drawn from the seed, so
/// different seeds explore from different corners while any fixed seed
/// retraces an identical path.
#[derive(Debug)]
pub struct CoordinateDescent {
    lens: Vec<usize>,
    current: Point,
    axis: usize,
    best: f64,
    stale: usize,
    done: bool,
}

impl CoordinateDescent {
    /// A search over the grid `0..lens[0] × 0..lens[1] × ...`, starting
    /// from a seed-drawn point.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two axes are given or any axis is empty.
    pub fn new(lens: &[usize], seed: u64) -> Self {
        assert!(lens.len() >= 2, "coordinate descent needs at least 2 axes");
        assert!(lens.iter().all(|&l| l > 0), "cannot search an empty axis");
        let mut rng = SplitMix64::new(seed);
        let current: Point = lens
            .iter()
            .map(|&l| (rng.next_u64() % l as u64) as usize)
            .collect();
        CoordinateDescent {
            lens: lens.to_vec(),
            current,
            axis: 0,
            best: f64::NEG_INFINITY,
            stale: 0,
            done: false,
        }
    }
}

impl SearchStrategy for CoordinateDescent {
    fn propose(&mut self) -> Vec<Point> {
        if self.done {
            return Vec::new();
        }
        (0..self.lens[self.axis])
            .map(|v| {
                let mut p = self.current.clone();
                p[self.axis] = v;
                p
            })
            .collect()
    }

    fn observe(&mut self, scored: &[(Point, f64)]) {
        let Some(max) = scored
            .iter()
            .map(|(_, f)| *f)
            .fold(None::<f64>, |m, f| Some(m.map_or(f, |m| m.max(f))))
        else {
            return;
        };
        // Move to the line's best point; on ties prefer staying put,
        // then the lowest index — both for determinism.
        let winner = scored
            .iter()
            .find(|(p, f)| *f == max && *p == self.current)
            .or_else(|| scored.iter().find(|(_, f)| *f == max))
            .expect("a maximum exists");
        self.current = winner.0.clone();
        if max > self.best {
            self.best = max;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.axis = (self.axis + 1) % self.lens.len();
        if self.stale >= self.lens.len() {
            self.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a strategy against a synthetic fitness function, returning
    /// the visited-point sequence (evaluation order, deduplicated) and
    /// the best point seen.
    fn drive(
        strategy: &mut dyn SearchStrategy,
        fitness: impl Fn(&Point) -> f64,
    ) -> (Vec<Point>, Point) {
        let mut visited: Vec<Point> = Vec::new();
        let mut best: Option<(Point, f64)> = None;
        for _ in 0..100 {
            let batch = strategy.propose();
            if batch.is_empty() {
                break;
            }
            let scored: Vec<(Point, f64)> = batch
                .into_iter()
                .map(|p| {
                    let f = fitness(&p);
                    (p, f)
                })
                .collect();
            for (p, f) in &scored {
                if !visited.contains(p) {
                    visited.push(p.clone());
                }
                if best.as_ref().is_none_or(|(_, bf)| f > bf) {
                    best = Some((p.clone(), *f));
                }
            }
            strategy.observe(&scored);
        }
        (visited, best.expect("at least one evaluation").0)
    }

    #[test]
    fn golden_section_finds_a_unimodal_maximum() {
        for peak in [0usize, 3, 7, 18, 31] {
            let mut gs = GoldenSection::new(32, 42);
            let (visited, best) = drive(&mut gs, |p| -((p[0] as f64 - peak as f64).powi(2)));
            assert_eq!(best, vec![peak], "missed the peak at {peak}");
            // Log-ish probe count, not an exhaustive sweep.
            assert!(visited.len() <= 14, "visited {} points", visited.len());
        }
    }

    #[test]
    fn golden_section_is_deterministic() {
        let run = || {
            let mut gs = GoldenSection::new(24, 7);
            drive(&mut gs, |p| (p[0] as f64 * 0.3).sin())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bisection_finds_the_smallest_index_within_peak_tolerance() {
        // Saturating coverage curve: f(i) = 1 - 1/(i+1).
        let f = |p: &Point| 1.0 - 1.0 / (p[0] as f64 + 1.0);
        let mut bi = ThresholdBisection::new(10, ThresholdSense::AtLeastPeakMinus(0.05));
        let (visited, _) = drive(&mut bi, f);
        // Anchor f(9) = 0.9; threshold 0.85; smallest i with f(i) >= 0.85
        // is i = 6 (f(6) ≈ 0.857).
        assert_eq!(visited[0], vec![9], "anchor must be probed first");
        assert_eq!((bi.lo, bi.hi), (6, 6));
        // O(log n) probes: anchor + ~log2(9).
        assert!(visited.len() <= 6, "visited {} points", visited.len());
    }

    #[test]
    fn bisection_finds_the_smallest_index_within_floor_tolerance() {
        // Decaying MPKI curve: f(i) = 12 / (i+1).
        let f = |p: &Point| 12.0 / (p[0] as f64 + 1.0);
        let mut bi = ThresholdBisection::new(8, ThresholdSense::AtMostFloorPlus(0.5));
        drive(&mut bi, f);
        // Anchor f(7) = 1.5; threshold 2.0; smallest i with f(i) <= 2.0
        // is i = 5 (f(5) = 2.0).
        assert_eq!((bi.lo, bi.hi), (5, 5));
    }

    #[test]
    fn coordinate_descent_climbs_to_a_separable_optimum() {
        let f = |p: &Point| -((p[0] as f64 - 3.0).powi(2)) - (p[1] as f64 - 1.0).powi(2);
        let mut cd = CoordinateDescent::new(&[6, 5], 42);
        let (_, best) = drive(&mut cd, f);
        assert_eq!(best, vec![3, 1]);
    }

    #[test]
    fn coordinate_descent_is_seed_deterministic() {
        let run = |seed| {
            let mut cd = CoordinateDescent::new(&[5, 4, 3], seed);
            drive(&mut cd, |p| p.iter().map(|&v| v as f64).sum())
        };
        assert_eq!(run(9), run(9));
        // The climb always tops out at the all-max corner.
        assert_eq!(run(1).1, vec![4, 3, 2]);
        assert_eq!(run(2).1, vec![4, 3, 2]);
    }

    #[test]
    fn splitmix_is_stable() {
        // Reference values pin the stream so goldens cannot drift.
        let mut rng = SplitMix64::new(42);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                13679457532755275413,
                2949826092126892291,
                5139283748462763858
            ]
        );
    }
}
