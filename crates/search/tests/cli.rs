//! Spawn tests for the `search` binary's argument surface: strict
//! rejection of unknown flags, the study registry listing, and
//! malformed study/seed values — all without running a simulation.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_search"));
    cmd.args(args);
    for var in [
        "CONFLUENCE_STORE",
        "CONFLUENCE_STORE_CAP",
        "CONFLUENCE_CONNECT",
        "CONFLUENCE_MEMO_CAP",
        "CONFLUENCE_PEER",
    ] {
        cmd.env_remove(var);
    }
    cmd.output().expect("binary spawns")
}

#[test]
fn unknown_flags_exit_2_with_usage() {
    for (args, offender) in [
        (vec!["--qiuck"], "--qiuck"),
        (vec!["--study", "ipc-per-mm2", "--sede", "7"], "--sede"),
        (vec!["--quick", "stray"], "stray"),
        (vec!["--perr", "/tmp/x.sock"], "--perr"),
    ] {
        let out = run(&args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {stderr}");
        assert!(
            stderr.contains(&format!("unrecognized argument '{offender}'")),
            "{args:?}: {stderr}"
        );
        assert!(stderr.contains("usage:"), "{args:?}: {stderr}");
    }
}

#[test]
fn list_prints_every_registered_study_and_exits_0() {
    let out = run(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for study in confluence_search::registry() {
        assert!(
            stdout.contains(study.name),
            "--list must mention '{}': {stdout}",
            study.name
        );
    }
}

#[test]
fn bad_study_and_seed_values_exit_2() {
    let out = run(&["--study", "no-such-study"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("no-such-study") && stderr.contains("--list"));

    let out = run(&["--study", "ipc-per-mm2", "--seed", "banana"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("--seed"), "{stderr}");
}

#[test]
fn peer_flags_hit_the_shared_gates() {
    // Missing value: exit 2 naming the flag.
    let out = run(&["--quick", "--peer"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("--peer requires a socket path"), "{stderr}");

    // Peers without a store to promote into: the same exit-2 gate as
    // every other binary.
    let out = run(&["--quick", "--no-store", "--peer", "/tmp/x.sock"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(
        stderr.contains("--peer requires a persistent store"),
        "{stderr}"
    );
}
