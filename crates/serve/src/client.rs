//! The blocking client: handshake once, submit batches, collect
//! streamed results back into submission order.

use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{self, BatchStats, ErrorCode, Frame, RecvError, PROTO_VERSION};

/// Why a client operation failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, or write).
    Io(io::Error),
    /// The daemon refused or aborted with a typed error frame.
    Daemon {
        /// Machine-readable failure class from the daemon.
        code: ErrorCode,
        /// Human-readable detail from the daemon.
        message: String,
    },
    /// The daemon violated the protocol (wrong frame, bad index,
    /// corrupt envelope) — client and daemon disagree about the wire.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "daemon transport failed: {e}"),
            ClientError::Daemon { code, message } => {
                write!(f, "daemon refused ({code:?}): {message}")
            }
            ClientError::Protocol(what) => write!(f, "daemon protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Closed => ClientError::Protocol("daemon closed mid-exchange".to_string()),
            RecvError::Io(e) => ClientError::Io(e),
            e @ (RecvError::Envelope(_) | RecvError::Malformed(_)) => {
                ClientError::Protocol(e.to_string())
            }
        }
    }
}

/// One batch's results: every output in submission order, plus the
/// daemon's cache accounting for the batch.
#[derive(Debug)]
pub struct BatchReply {
    /// Encoded job outputs, index-aligned with the submitted jobs.
    pub outputs: Vec<Vec<u8>>,
    /// The daemon-side batch accounting from `BatchDone`.
    pub stats: BatchStats,
}

/// A connected, handshaken session with the daemon.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to the daemon socket at `path` and performs the
    /// handshake, declaring this client's job `schema` version and
    /// workload-config `fingerprint`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] carries the daemon's typed refusal
    /// (protocol/schema/config mismatch); transport and protocol
    /// violations as their variants describe.
    pub fn connect(
        path: impl AsRef<Path>,
        schema: u32,
        fingerprint: u64,
    ) -> Result<Self, ClientError> {
        let mut stream = UnixStream::connect(path)?;
        let hello = Frame::Hello {
            proto: PROTO_VERSION,
            schema,
            fingerprint,
        };
        protocol::send(&mut stream, &hello)?;
        match protocol::recv(&mut stream)? {
            Frame::HelloAck { .. } => Ok(Client { stream }),
            Frame::Error { code, message } => Err(ClientError::Daemon { code, message }),
            other => Err(ClientError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// Submits one batch of encoded jobs and blocks until every result
    /// and the final `BatchDone` arrive. Results stream back in the
    /// daemon's completion order and are reassembled into submission
    /// order here.
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] if the daemon aborts the batch with a
    /// typed error (e.g. a malformed or failed job); transport and
    /// protocol violations as their variants describe.
    pub fn submit(&mut self, batch_id: u64, jobs: Vec<Vec<u8>>) -> Result<BatchReply, ClientError> {
        let count = jobs.len();
        let frame = Frame::SubmitBatch { batch_id, jobs };
        protocol::send(&mut self.stream, &frame)?;

        let mut outputs: Vec<Option<Vec<u8>>> = vec![None; count];
        let mut filled = 0usize;
        loop {
            match protocol::recv(&mut self.stream)? {
                Frame::JobResult { job_idx, output } => {
                    let slot = outputs.get_mut(job_idx as usize).ok_or_else(|| {
                        ClientError::Protocol(format!(
                            "result index {job_idx} out of range for batch of {count}"
                        ))
                    })?;
                    if slot.replace(output).is_some() {
                        return Err(ClientError::Protocol(format!(
                            "duplicate result for job {job_idx}"
                        )));
                    }
                    filled += 1;
                }
                Frame::BatchDone {
                    batch_id: done_id,
                    stats,
                } => {
                    if done_id != batch_id {
                        return Err(ClientError::Protocol(format!(
                            "BatchDone for batch {done_id}, expected {batch_id}"
                        )));
                    }
                    if filled != count {
                        return Err(ClientError::Protocol(format!(
                            "BatchDone after {filled} of {count} results"
                        )));
                    }
                    let outputs = outputs.into_iter().flatten().collect();
                    return Ok(BatchReply { outputs, stats });
                }
                Frame::Error { code, message } => {
                    return Err(ClientError::Daemon { code, message });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame mid-batch: {other:?}"
                    )));
                }
            }
        }
    }
}
