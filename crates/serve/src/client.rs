//! The blocking client: handshake once, submit batches, collect
//! streamed results back into submission order. Also the peer-facing
//! side of the remote warm tier: [`Client::fetch`] asks a daemon for a
//! whole batch of raw store entries in one round trip.

use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use confluence_store::Tier;

use crate::protocol::{self, BatchStats, ErrorCode, Frame, RecvError, PROTO_VERSION};

/// Why a client operation failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, or write).
    Io(io::Error),
    /// The daemon refused or aborted with a typed error frame.
    Daemon {
        /// Machine-readable failure class from the daemon.
        code: ErrorCode,
        /// Human-readable detail from the daemon.
        message: String,
    },
    /// The daemon violated the protocol (wrong frame, bad index,
    /// corrupt envelope) — client and daemon disagree about the wire.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "daemon transport failed: {e}"),
            ClientError::Daemon { code, message } => {
                write!(f, "daemon refused ({code:?}): {message}")
            }
            ClientError::Protocol(what) => write!(f, "daemon protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Closed => ClientError::Protocol("daemon closed mid-exchange".to_string()),
            RecvError::Io(e) => ClientError::Io(e),
            e @ (RecvError::Envelope(_) | RecvError::Malformed(_)) => {
                ClientError::Protocol(e.to_string())
            }
        }
    }
}

/// One batch's results: every output in submission order, plus the
/// daemon's cache accounting for the batch.
#[derive(Debug)]
pub struct BatchReply {
    /// Encoded job outputs, index-aligned with the submitted jobs.
    pub outputs: Vec<Vec<u8>>,
    /// The daemon-side batch accounting from `BatchDone`.
    pub stats: BatchStats,
}

/// A connected, handshaken session with the daemon.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to the daemon socket at `path` and performs the
    /// handshake, declaring this client's job `schema` version and
    /// workload-config `fingerprint`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] carries the daemon's typed refusal
    /// (protocol/schema/config mismatch); transport and protocol
    /// violations as their variants describe.
    pub fn connect(
        path: impl AsRef<Path>,
        schema: u32,
        fingerprint: u64,
    ) -> Result<Self, ClientError> {
        Self::handshake(UnixStream::connect(path)?, schema, fingerprint)
    }

    /// As [`Client::connect`], but with `timeout` applied to every read
    /// and write on the stream — the peer-facing form: a dead or wedged
    /// peer daemon surfaces as a timed-out [`ClientError::Io`] the
    /// caller demotes to a miss, instead of hanging the batch.
    ///
    /// # Errors
    ///
    /// As [`Client::connect`], plus `WouldBlock`/`TimedOut` I/O errors
    /// when the peer exceeds `timeout`.
    pub fn connect_with_timeout(
        path: impl AsRef<Path>,
        schema: u32,
        fingerprint: u64,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::handshake(stream, schema, fingerprint)
    }

    fn handshake(
        mut stream: UnixStream,
        schema: u32,
        fingerprint: u64,
    ) -> Result<Self, ClientError> {
        let hello = Frame::Hello {
            proto: PROTO_VERSION,
            schema,
            fingerprint,
        };
        protocol::send(&mut stream, &hello)?;
        match protocol::recv(&mut stream)? {
            Frame::HelloAck { .. } => Ok(Client { stream }),
            Frame::Error { code, message } => Err(ClientError::Daemon { code, message }),
            other => Err(ClientError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// Submits one batch of encoded jobs and blocks until every result
    /// and the final `BatchDone` arrive. Results stream back in the
    /// daemon's completion order and are reassembled into submission
    /// order here.
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] if the daemon aborts the batch with a
    /// typed error (e.g. a malformed or failed job); transport and
    /// protocol violations as their variants describe.
    pub fn submit(&mut self, batch_id: u64, jobs: Vec<Vec<u8>>) -> Result<BatchReply, ClientError> {
        let count = jobs.len();
        let frame = Frame::SubmitBatch { batch_id, jobs };
        protocol::send(&mut self.stream, &frame)?;

        let mut outputs: Vec<Option<Vec<u8>>> = vec![None; count];
        let mut filled = 0usize;
        loop {
            match protocol::recv(&mut self.stream)? {
                Frame::JobResult { job_idx, output } => {
                    let slot = outputs.get_mut(job_idx as usize).ok_or_else(|| {
                        ClientError::Protocol(format!(
                            "result index {job_idx} out of range for batch of {count}"
                        ))
                    })?;
                    if slot.replace(output).is_some() {
                        return Err(ClientError::Protocol(format!(
                            "duplicate result for job {job_idx}"
                        )));
                    }
                    filled += 1;
                }
                Frame::BatchDone {
                    batch_id: done_id,
                    stats,
                } => {
                    if done_id != batch_id {
                        return Err(ClientError::Protocol(format!(
                            "BatchDone for batch {done_id}, expected {batch_id}"
                        )));
                    }
                    if filled != count {
                        return Err(ClientError::Protocol(format!(
                            "BatchDone after {filled} of {count} results"
                        )));
                    }
                    let outputs = outputs.into_iter().flatten().collect();
                    return Ok(BatchReply { outputs, stats });
                }
                Frame::Error { code, message } => {
                    return Err(ClientError::Daemon { code, message });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame mid-batch: {other:?}"
                    )));
                }
            }
        }
    }

    /// Asks the daemon for a whole batch of raw store entries in `tier`
    /// — **one round trip** for any number of keys. Returns one slot
    /// per key, index-aligned: the raw entry bytes on a hit (which the
    /// caller must re-verify via `ResultStore::adopt_raw` before
    /// trusting), `None` on a miss. `ttl` bounds how many further peer
    /// hops the daemon may take on this client's behalf.
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] carries the daemon's typed refusal — in
    /// particular a v1 daemon's `MalformedFrame` for the unknown tag;
    /// transport and protocol violations as their variants describe.
    pub fn fetch(
        &mut self,
        tier: Tier,
        ttl: u32,
        keys: Vec<Vec<u8>>,
    ) -> Result<Vec<Option<Vec<u8>>>, ClientError> {
        let count = keys.len();
        let frame = match tier {
            Tier::Result => Frame::FetchResults { ttl, keys },
            Tier::Artifact => Frame::FetchArtifacts { ttl, keys },
        };
        protocol::send(&mut self.stream, &frame)?;

        let mut entries: Vec<Option<Vec<u8>>> = vec![None; count];
        let mut filled = 0u32;
        loop {
            match protocol::recv(&mut self.stream)? {
                Frame::FetchHit { idx, entry } => {
                    let slot = entries.get_mut(idx as usize).ok_or_else(|| {
                        ClientError::Protocol(format!(
                            "fetch hit index {idx} out of range for {count} keys"
                        ))
                    })?;
                    if slot.replace(entry).is_some() {
                        return Err(ClientError::Protocol(format!(
                            "duplicate fetch hit for key {idx}"
                        )));
                    }
                    filled += 1;
                }
                Frame::FetchDone { hits, misses } => {
                    if hits != filled || (hits as usize) + (misses as usize) != count {
                        return Err(ClientError::Protocol(format!(
                            "FetchDone claims {hits} hits / {misses} misses \
                             after {filled} hits of {count} keys"
                        )));
                    }
                    return Ok(entries);
                }
                Frame::Error { code, message } => {
                    return Err(ClientError::Daemon { code, message });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame mid-fetch: {other:?}"
                    )));
                }
            }
        }
    }
}
