//! The experiment service: one warm engine, many concurrent clients.
//!
//! Every stand-alone run of the experiment suite pays engine spin-up
//! (workload generation, program translation) and shares cache warmth
//! only through the filesystem. This crate is the daemon shape of the
//! same machinery: a long-running process owns the engine and its
//! persistent store, and N clients submit job batches over a
//! Unix-domain socket, sharing one in-memory cache, one warm-artifact
//! import per workload, and exactly-once execution across all of them.
//!
//! Three layers, lowest first:
//!
//! - [`protocol`] — the versioned frame vocabulary ([`Frame`],
//!   [`BatchStats`], [`ErrorCode`]) encoded with the store's codec
//!   conventions and carried in the store's checksummed stream envelope
//!   (`confluence_store::write_frame`). Job payloads are **opaque byte
//!   strings** at this layer: the daemon and its clients agree on the
//!   job schema out of band (the `Hello` handshake pins schema version
//!   and workload-config fingerprint), which keeps this crate free of
//!   any simulator dependency — and the dependency DAG acyclic, since
//!   `confluence_sim` links the client side into the figure binaries.
//! - [`server`] — the accept loop and per-connection protocol driver,
//!   generic over a [`BatchHost`]: the engine-owning side implements
//!   five methods (validate a handshake, cost-rank a job, run a job,
//!   snapshot/settle batch accounting) and gets multiplexing, streamed
//!   results, and per-connection failure isolation for free.
//! - [`client`] — the blocking client: handshake, submit a batch,
//!   collect streamed results into submission order.
//!
//! The engine-facing [`BatchHost`] implementation and the
//! `confluence-serve` binary live in `confluence_sim` (`daemon` module),
//! which owns the job codec and the engine.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod protocol;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod server;

#[cfg(unix)]
pub use client::{BatchReply, Client, ClientError};
pub use protocol::{
    BatchStats, ErrorCode, Frame, StoreLine, FETCH_HOP_LIMIT, MAX_FRAME_LEN, PROTO_VERSION,
};
#[cfg(unix)]
pub use server::{BatchHost, Rejection, Server, ServerHandle};
