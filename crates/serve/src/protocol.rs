//! The versioned frame vocabulary of the experiment service.
//!
//! Every frame is one [`Frame`] value encoded with the store codec
//! conventions (1-byte tags, varint integers, length-prefixed byte
//! strings) and carried in the store's checksummed stream envelope
//! (`u32 len | payload | u64 fnv`, see `confluence_store::write_frame`).
//! Tag values and field orders are pinned by the golden-bytes tests at
//! the bottom of this file — the same discipline as the result-store
//! job schema.
//!
//! A session is: client sends [`Frame::Hello`] (protocol version, job
//! schema version, workload-config fingerprint); server answers
//! [`Frame::HelloAck`] or a typed [`Frame::Error`] and closes. Each
//! [`Frame::SubmitBatch`] is answered by one [`Frame::JobResult`] per
//! job — streamed in completion order, carrying the job's submission
//! index — and a final [`Frame::BatchDone`] with the batch's cache
//! accounting, so the client can render the same cache-summary line an
//! in-process run prints. Any malformed or out-of-place frame gets a
//! typed [`Frame::Error`] and a clean close; corruption never panics
//! the peer.
//!
//! Job payloads and result payloads are opaque byte strings here; the
//! `Hello` handshake (schema version + config fingerprint) is what
//! guarantees both sides interpret them identically.

use std::io;

use confluence_store::wire::{self, FrameError};
use confluence_store::{Decode, Encode, Reader, WireError};

/// Version of the frame protocol itself (envelope, tags, field orders).
/// Bump on any wire-visible change; the server refuses mismatched
/// clients with [`ErrorCode::ProtoMismatch`] instead of misparsing.
pub const PROTO_VERSION: u32 = 1;

/// Upper bound on peer-forwarding depth for the remote warm tier. A
/// fetch request carries a `ttl`; a daemon holding a miss consults its
/// own peers only while `ttl > 0`, forwarding with `ttl - 1`, and the
/// server clamps inbound values here — so a ring of mutually-peered
/// daemons always terminates with a miss instead of recursing, whatever
/// a client claims.
pub const FETCH_HOP_LIMIT: u32 = 3;

/// Upper bound on one frame's payload. Generous: the quick suite's
/// whole job batch is a few kilobytes and the largest result (a
/// many-core timing run) a few hundred bytes; the cap exists so a
/// garbled length prefix fails typed instead of demanding memory.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Machine-readable class of a [`Frame::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer speaks a different frame-protocol version.
    ProtoMismatch,
    /// The peer's job schema version differs from the daemon's.
    SchemaMismatch,
    /// The peer's workload configuration (generator specs) differs from
    /// what the daemon's engine was built over, so job keys would alias
    /// across different programs.
    ConfigMismatch,
    /// A frame failed to decode, or arrived out of protocol order.
    MalformedFrame,
    /// A submitted job payload failed to decode, or names a workload
    /// the daemon does not serve.
    MalformedJob,
    /// A job was accepted but its execution failed on the daemon.
    JobFailed,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::ProtoMismatch => 0,
            ErrorCode::SchemaMismatch => 1,
            ErrorCode::ConfigMismatch => 2,
            ErrorCode::MalformedFrame => 3,
            ErrorCode::MalformedJob => 4,
            ErrorCode::JobFailed => 5,
        }
    }

    fn from_tag(offset: usize, tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => ErrorCode::ProtoMismatch,
            1 => ErrorCode::SchemaMismatch,
            2 => ErrorCode::ConfigMismatch,
            3 => ErrorCode::MalformedFrame,
            4 => ErrorCode::MalformedJob,
            5 => ErrorCode::JobFailed,
            _ => {
                return Err(WireError {
                    offset,
                    reason: "unknown error-code tag",
                })
            }
        })
    }
}

/// One line of the daemon's persistent-store accounting, carried in
/// [`BatchStats`] so clients can render the store segment of the
/// cache-summary line without filesystem access to the daemon's store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreLine {
    /// The store's versioned root directory, as the daemon sees it.
    pub root: String,
    /// Schema version the store was opened with.
    pub schema: u32,
    /// Committed result entries on disk.
    pub entries: u64,
    /// Their total bytes.
    pub bytes: u64,
    /// Committed warm-artifact files on disk.
    pub artifacts: u64,
    /// Their total bytes.
    pub artifact_bytes: u64,
}

impl Encode for StoreLine {
    fn encode(&self, out: &mut Vec<u8>) {
        self.root.encode(out);
        self.schema.encode(out);
        self.entries.encode(out);
        self.bytes.encode(out);
        self.artifacts.encode(out);
        self.artifact_bytes.encode(out);
    }
}

impl Decode for StoreLine {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StoreLine {
            root: Decode::decode(r)?,
            schema: Decode::decode(r)?,
            entries: Decode::decode(r)?,
            bytes: Decode::decode(r)?,
            artifacts: Decode::decode(r)?,
            artifact_bytes: Decode::decode(r)?,
        })
    }
}

/// Cache accounting for one served batch, carried by
/// [`Frame::BatchDone`]. Request/hit/memo counters are **deltas over
/// the batch** (so a warm batch reports `executed: 0` and a replay-only
/// batch reports `memo_recorded: 0`, exactly what CI greps); the memo
/// table/step figures and the store line are absolutes — bank and disk
/// occupancy at batch end. The deltas are windows over the daemon's
/// shared counters: exact for sequential batches, while overlapping
/// batches each see whatever executions landed during their window —
/// the daemon's own totals stay exactly-once either way.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Job requests this batch made against the engine.
    pub requests: u64,
    /// Unique jobs the batch actually simulated.
    pub executed: u64,
    /// Requests served from the in-memory cache (including waits on
    /// another client's in-flight execution).
    pub hits: u64,
    /// Unique jobs served from the persistent result store.
    pub disk_hits: u64,
    /// Executor requests begun in replay mode (path-memo hits).
    pub memo_replayed: u64,
    /// Executor requests whose recording was newly finalized.
    pub memo_recorded: u64,
    /// Executor requests stepped live (cold paths).
    pub memo_live: u64,
    /// Memoized request paths in the banks at batch end (absolute).
    pub memo_tables: u64,
    /// Total memo steps in the bank arenas at batch end (absolute).
    pub memo_steps: u64,
    /// The daemon's store occupancy at batch end, if a store is
    /// attached.
    pub store: Option<StoreLine>,
    /// Entries promoted from remote peers during the batch (delta).
    pub remote_hits: u64,
    /// Batched fetch exchanges with peers during the batch (delta) —
    /// the figure the one-round-trip-per-batch contract is asserted on.
    pub remote_round_trips: u64,
    /// Raw entry bytes fetched from peers during the batch (delta).
    pub remote_bytes: u64,
}

impl Encode for BatchStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.requests.encode(out);
        self.executed.encode(out);
        self.hits.encode(out);
        self.disk_hits.encode(out);
        self.memo_replayed.encode(out);
        self.memo_recorded.encode(out);
        self.memo_live.encode(out);
        self.memo_tables.encode(out);
        self.memo_steps.encode(out);
        match &self.store {
            None => out.push(0),
            Some(line) => {
                out.push(1);
                line.encode(out);
            }
        }
        // Remote-tier counters ride a default-invisible tail extension
        // (the PR 5 codec pattern): a batch with no remote traffic
        // encodes exactly the v1 bytes, so the goldens stay green and
        // old clients parse new daemons whenever no peer was consulted.
        if self.remote_hits != 0 || self.remote_round_trips != 0 || self.remote_bytes != 0 {
            self.remote_hits.encode(out);
            self.remote_round_trips.encode(out);
            self.remote_bytes.encode(out);
        }
    }
}

impl Decode for BatchStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut stats = BatchStats {
            requests: Decode::decode(r)?,
            executed: Decode::decode(r)?,
            hits: Decode::decode(r)?,
            disk_hits: Decode::decode(r)?,
            memo_replayed: Decode::decode(r)?,
            memo_recorded: Decode::decode(r)?,
            memo_live: Decode::decode(r)?,
            memo_tables: Decode::decode(r)?,
            memo_steps: Decode::decode(r)?,
            store: None,
            remote_hits: 0,
            remote_round_trips: 0,
            remote_bytes: 0,
        };
        let offset = r.offset();
        match r.u8()? {
            0 => {}
            1 => stats.store = Some(Decode::decode(r)?),
            _ => {
                return Err(WireError {
                    offset,
                    reason: "invalid store-line presence byte",
                })
            }
        }
        // Tail extension: absent on v1 writers and remote-quiet batches.
        if !r.is_empty() {
            stats.remote_hits = Decode::decode(r)?;
            stats.remote_round_trips = Decode::decode(r)?;
            stats.remote_bytes = Decode::decode(r)?;
        }
        Ok(stats)
    }
}

/// One protocol frame. See the module docs for the session shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: open a session. Carries the client's frame
    /// protocol version, its job schema version, and the FNV-1a
    /// fingerprint of its workload configuration.
    Hello {
        /// The client's [`PROTO_VERSION`].
        proto: u32,
        /// The client's job schema version.
        schema: u32,
        /// Fingerprint of the client's workload generator specs.
        fingerprint: u64,
    },
    /// Server → client: handshake accepted; echoes the server's own
    /// versions.
    HelloAck {
        /// The server's [`PROTO_VERSION`].
        proto: u32,
        /// The server's job schema version.
        schema: u32,
    },
    /// Client → server: run these jobs. Each job is an opaque
    /// schema-encoded payload; results refer to jobs by index into this
    /// vector.
    SubmitBatch {
        /// Client-chosen batch identifier, echoed by
        /// [`Frame::BatchDone`].
        batch_id: u64,
        /// The encoded jobs, in submission order.
        jobs: Vec<Vec<u8>>,
    },
    /// Server → client: one job's encoded output. Streamed as jobs
    /// complete — most-expensive-first under the daemon's cost-aware
    /// scheduler, so arrival order is not submission order.
    JobResult {
        /// Index into the submitted batch.
        job_idx: u32,
        /// The job's schema-encoded output.
        output: Vec<u8>,
    },
    /// Server → client: every job of the batch has been answered.
    BatchDone {
        /// The submitting [`Frame::SubmitBatch`]'s identifier.
        batch_id: u64,
        /// Cache accounting for the batch.
        stats: BatchStats,
    },
    /// Either direction: a typed failure. The sender closes the
    /// connection after this frame.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Client/peer → server: batched lookup of raw result-tier store
    /// entries — the remote warm tier's read path. One frame carries
    /// *every* key a batch missed locally, so a cold batch costs one
    /// round trip, not one per job. Answered by a stream of
    /// [`Frame::FetchHit`]s (hits only, in no particular order) closed
    /// by one [`Frame::FetchDone`]. A v1 daemon answers the unknown tag
    /// with a typed [`ErrorCode::MalformedFrame`] — the version refusal
    /// that lets old and new daemons coexist on one socket directory.
    FetchResults {
        /// Remaining peer-forwarding hops. A server holding a miss may
        /// consult its own peers only when `ttl > 0`, forwarding with
        /// `ttl - 1` — so mutually-peered daemons terminate with a miss
        /// instead of recursing.
        ttl: u32,
        /// Encoded store keys (the store's key bytes, not job payloads),
        /// in request order; hits refer to this vector by index.
        keys: Vec<Vec<u8>>,
    },
    /// Client/peer → server: as [`Frame::FetchResults`], against the
    /// warm-artifact tier.
    FetchArtifacts {
        /// As [`Frame::FetchResults::ttl`].
        ttl: u32,
        /// As [`Frame::FetchResults::keys`].
        keys: Vec<Vec<u8>>,
    },
    /// Server → client/peer: one fetched entry — the *entire verified
    /// store entry file*, container framing included, which the receiver
    /// re-verifies byte-for-byte before adopting (a lying peer demotes
    /// to a miss, never poisons).
    FetchHit {
        /// Index into the requesting fetch frame's key vector.
        idx: u32,
        /// The raw store entry bytes.
        entry: Vec<u8>,
    },
    /// Server → client/peer: the fetch is fully answered; every key not
    /// named by a preceding [`Frame::FetchHit`] is a miss.
    FetchDone {
        /// Keys answered with a [`Frame::FetchHit`].
        hits: u32,
        /// Keys the server (and, within `ttl`, its peers) did not hold.
        misses: u32,
    },
}

impl Encode for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello {
                proto,
                schema,
                fingerprint,
            } => {
                out.push(0);
                proto.encode(out);
                schema.encode(out);
                fingerprint.encode(out);
            }
            Frame::HelloAck { proto, schema } => {
                out.push(1);
                proto.encode(out);
                schema.encode(out);
            }
            Frame::SubmitBatch { batch_id, jobs } => {
                out.push(2);
                batch_id.encode(out);
                wire::put_usize(out, jobs.len());
                for job in jobs {
                    wire::put_length_prefixed(out, job);
                }
            }
            Frame::JobResult { job_idx, output } => {
                out.push(3);
                job_idx.encode(out);
                wire::put_length_prefixed(out, output);
            }
            Frame::BatchDone { batch_id, stats } => {
                out.push(4);
                batch_id.encode(out);
                stats.encode(out);
            }
            Frame::Error { code, message } => {
                out.push(5);
                out.push(code.tag());
                message.encode(out);
            }
            Frame::FetchResults { ttl, keys } => encode_fetch(out, 6, *ttl, keys),
            Frame::FetchArtifacts { ttl, keys } => encode_fetch(out, 7, *ttl, keys),
            Frame::FetchHit { idx, entry } => {
                out.push(8);
                idx.encode(out);
                wire::put_length_prefixed(out, entry);
            }
            Frame::FetchDone { hits, misses } => {
                out.push(9);
                hits.encode(out);
                misses.encode(out);
            }
        }
    }
}

fn encode_fetch(out: &mut Vec<u8>, tag: u8, ttl: u32, keys: &[Vec<u8>]) {
    out.push(tag);
    ttl.encode(out);
    wire::put_usize(out, keys.len());
    for key in keys {
        wire::put_length_prefixed(out, key);
    }
}

/// Decodes the shared tail of the two fetch-request frames, with the
/// same allocation guard as [`Frame::SubmitBatch`]'s job vector.
fn decode_fetch(r: &mut Reader<'_>) -> Result<(u32, Vec<Vec<u8>>), WireError> {
    let ttl = Decode::decode(r)?;
    let count = r.usize_varint()?;
    if count > r.remaining() {
        return Err(r.error("key count exceeds buffer"));
    }
    let mut keys = Vec::with_capacity(count);
    for _ in 0..count {
        keys.push(r.length_prefixed()?.to_vec());
    }
    Ok((ttl, keys))
}

impl Decode for Frame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        Ok(match r.u8()? {
            0 => Frame::Hello {
                proto: Decode::decode(r)?,
                schema: Decode::decode(r)?,
                fingerprint: Decode::decode(r)?,
            },
            1 => Frame::HelloAck {
                proto: Decode::decode(r)?,
                schema: Decode::decode(r)?,
            },
            2 => {
                let batch_id = Decode::decode(r)?;
                let count = r.usize_varint()?;
                // Same allocation guard as the store codec's Vec<T>:
                // a buffer holding `count` jobs is at least `count`
                // bytes long.
                if count > r.remaining() {
                    return Err(r.error("job count exceeds buffer"));
                }
                let mut jobs = Vec::with_capacity(count);
                for _ in 0..count {
                    jobs.push(r.length_prefixed()?.to_vec());
                }
                Frame::SubmitBatch { batch_id, jobs }
            }
            3 => Frame::JobResult {
                job_idx: Decode::decode(r)?,
                output: r.length_prefixed()?.to_vec(),
            },
            4 => Frame::BatchDone {
                batch_id: Decode::decode(r)?,
                stats: Decode::decode(r)?,
            },
            5 => {
                let code_offset = r.offset();
                let code = ErrorCode::from_tag(code_offset, r.u8()?)?;
                Frame::Error {
                    code,
                    message: Decode::decode(r)?,
                }
            }
            6 => {
                let (ttl, keys) = decode_fetch(r)?;
                Frame::FetchResults { ttl, keys }
            }
            7 => {
                let (ttl, keys) = decode_fetch(r)?;
                Frame::FetchArtifacts { ttl, keys }
            }
            8 => Frame::FetchHit {
                idx: Decode::decode(r)?,
                entry: r.length_prefixed()?.to_vec(),
            },
            9 => Frame::FetchDone {
                hits: Decode::decode(r)?,
                misses: Decode::decode(r)?,
            },
            _ => {
                return Err(WireError {
                    offset,
                    reason: "unknown frame tag",
                })
            }
        })
    }
}

/// Why a frame could not be received.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The transport failed (including mid-frame EOF).
    Io(io::Error),
    /// The envelope failed verification (length cap, checksum) — the
    /// stream cannot be resynchronized.
    Envelope(&'static str),
    /// The envelope verified but the payload is not a valid frame.
    Malformed(WireError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "peer closed the connection"),
            RecvError::Io(e) => write!(f, "transport failed: {e}"),
            RecvError::Envelope(reason) => write!(f, "corrupt frame envelope: {reason}"),
            RecvError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Writes one frame into the checksummed stream envelope.
///
/// # Errors
///
/// Errors if the transport rejects the write.
pub fn send<W: io::Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    wire::write_frame(w, &frame.to_bytes())
}

/// Reads and decodes one frame from the stream envelope. Never panics
/// on corrupt input: every defect maps to a typed [`RecvError`].
///
/// # Errors
///
/// As [`RecvError`] describes.
pub fn recv<R: io::Read>(r: &mut R) -> Result<Frame, RecvError> {
    let payload = wire::read_frame(r, MAX_FRAME_LEN).map_err(|e| match e {
        FrameError::Closed => RecvError::Closed,
        FrameError::Io(e) => RecvError::Io(e),
        FrameError::Corrupt(reason) => RecvError::Envelope(reason),
    })?;
    Frame::from_bytes(&payload).map_err(RecvError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn sample_stats() -> BatchStats {
        BatchStats {
            requests: 390,
            executed: 230,
            hits: 160,
            disk_hits: 0,
            memo_replayed: 7,
            memo_recorded: 21,
            memo_live: 3,
            memo_tables: 21,
            memo_steps: 6000,
            store: Some(StoreLine {
                root: "/srv/store/v1".to_string(),
                schema: 1,
                entries: 230,
                bytes: 41000,
                artifacts: 5,
                artifact_bytes: 9000,
            }),
            ..BatchStats::default()
        }
    }

    fn every_frame() -> Vec<Frame> {
        vec![
            Frame::Hello {
                proto: PROTO_VERSION,
                schema: 1,
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            },
            Frame::HelloAck {
                proto: PROTO_VERSION,
                schema: 1,
            },
            Frame::SubmitBatch {
                batch_id: 42,
                jobs: vec![vec![0, 4, 1], vec![], vec![2, 2, 0xFF]],
            },
            Frame::JobResult {
                job_idx: 7,
                output: vec![0, 1, 2, 3],
            },
            Frame::BatchDone {
                batch_id: 42,
                stats: sample_stats(),
            },
            Frame::BatchDone {
                batch_id: 0,
                stats: BatchStats::default(),
            },
            Frame::Error {
                code: ErrorCode::SchemaMismatch,
                message: "daemon speaks schema v2".to_string(),
            },
            Frame::BatchDone {
                batch_id: 3,
                stats: BatchStats {
                    remote_hits: 12,
                    remote_round_trips: 1,
                    remote_bytes: 2200,
                    ..sample_stats()
                },
            },
            Frame::FetchResults {
                ttl: 3,
                keys: vec![vec![0x01, 0x02], vec![], vec![0xFE]],
            },
            Frame::FetchArtifacts {
                ttl: 0,
                keys: vec![vec![0x42; 9]],
            },
            Frame::FetchHit {
                idx: 2,
                entry: vec![0x43, 0x46, 0x52, 0x53, 0x01],
            },
            Frame::FetchDone { hits: 2, misses: 1 },
        ]
    }

    #[test]
    fn every_frame_roundtrips() {
        for frame in every_frame() {
            let bytes = frame.to_bytes();
            assert_eq!(Frame::from_bytes(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn frames_roundtrip_through_the_stream_envelope() {
        let mut buf = Vec::new();
        for frame in every_frame() {
            send(&mut buf, &frame).unwrap();
        }
        let mut r = io::Cursor::new(buf);
        for frame in every_frame() {
            assert_eq!(recv(&mut r).unwrap(), frame);
        }
        assert!(matches!(recv(&mut r), Err(RecvError::Closed)));
    }

    /// Golden bytes: pins frame tags, field orders, and integer
    /// encodings of protocol v1. If this fails, the wire format changed
    /// — bump [`PROTO_VERSION`] and update the expectation.
    #[test]
    fn golden_bytes_pin_protocol_v1() {
        assert_eq!(PROTO_VERSION, 1);
        let hello = Frame::Hello {
            proto: 1,
            schema: 1,
            fingerprint: 0x0123_4567_89AB_CDEF,
        };
        assert_eq!(hex(&hello.to_bytes()), "000101ef9bafcdf8acd19101");

        let ack = Frame::HelloAck {
            proto: 1,
            schema: 1,
        };
        assert_eq!(hex(&ack.to_bytes()), "010101");

        let submit = Frame::SubmitBatch {
            batch_id: 300,
            jobs: vec![vec![0xAA, 0xBB], vec![0xCC]],
        };
        assert_eq!(hex(&submit.to_bytes()), "02ac020202aabb01cc");

        let result = Frame::JobResult {
            job_idx: 5,
            output: vec![0x11, 0x22, 0x33],
        };
        assert_eq!(hex(&result.to_bytes()), "030503112233");

        let done = Frame::BatchDone {
            batch_id: 1,
            stats: BatchStats {
                requests: 2,
                executed: 1,
                hits: 1,
                disk_hits: 0,
                memo_replayed: 0,
                memo_recorded: 128,
                memo_live: 0,
                memo_tables: 128,
                memo_steps: 1000,
                store: None,
                ..BatchStats::default()
            },
        };
        assert_eq!(hex(&done.to_bytes()), "040102010100008001008001e80700");

        let err = Frame::Error {
            code: ErrorCode::MalformedJob,
            message: "bad".to_string(),
        };
        assert_eq!(hex(&err.to_bytes()), "050403626164");
    }

    /// Golden bytes for the remote-warm-tier fetch frames (tags 6–9) and
    /// the remote-counter tail of [`BatchStats`]. The tail is
    /// default-invisible: a remote-quiet stats block encodes exactly the
    /// v1 bytes (pinned above), so these pins are additive and the v1
    /// goldens never move.
    #[test]
    fn golden_bytes_pin_fetch_frames() {
        let fetch = Frame::FetchResults {
            ttl: 3,
            keys: vec![vec![0xAA, 0xBB], vec![0xCC]],
        };
        assert_eq!(hex(&fetch.to_bytes()), "06030202aabb01cc");

        let fetch_art = Frame::FetchArtifacts {
            ttl: 0,
            keys: vec![vec![0xDD]],
        };
        assert_eq!(hex(&fetch_art.to_bytes()), "07000101dd");

        let hit = Frame::FetchHit {
            idx: 5,
            entry: vec![0x11, 0x22, 0x33],
        };
        assert_eq!(hex(&hit.to_bytes()), "080503112233");

        let done = Frame::FetchDone { hits: 2, misses: 1 };
        assert_eq!(hex(&done.to_bytes()), "090201");

        let stats = BatchStats {
            requests: 2,
            disk_hits: 2,
            remote_hits: 2,
            remote_round_trips: 1,
            remote_bytes: 300,
            ..BatchStats::default()
        };
        assert_eq!(
            hex(&stats.to_bytes()),
            "0200000200000000000002 01 ac02".replace(' ', "")
        );
    }

    /// A remote-quiet [`BatchStats`] must encode byte-identically to v1
    /// — the default-invisible half of the tail-extension contract — and
    /// a truncated (v1-written) stats block must decode with zeroed
    /// remote counters.
    #[test]
    fn remote_counter_tail_is_default_invisible() {
        let quiet = sample_stats();
        let bytes = quiet.to_bytes();
        let extended = BatchStats {
            remote_hits: 7,
            remote_round_trips: 2,
            remote_bytes: 900,
            ..sample_stats()
        };
        assert_eq!(
            &extended.to_bytes()[..bytes.len()],
            &bytes[..],
            "the tail must extend, not reshape, the v1 encoding"
        );
        let decoded = BatchStats::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, quiet);
        assert_eq!(decoded.remote_hits, 0);
        assert_eq!(
            BatchStats::from_bytes(&extended.to_bytes()).unwrap(),
            extended
        );
    }

    /// Every truncation of every frame decodes to a typed error, never a
    /// panic — the decoder half of the corruption contract (the envelope
    /// checksum catches bit flips before payloads are ever parsed, see
    /// the wire tests; this covers payloads that lost their tail).
    #[test]
    fn truncated_frames_error_instead_of_panicking() {
        for frame in every_frame() {
            let bytes = frame.to_bytes();
            for keep in 0..bytes.len() {
                // Some prefixes of SubmitBatch/JobResult are themselves
                // complete shorter frames (length-prefixed payload cut
                // at a boundary would leave trailing bytes — caught by
                // from_bytes). Either way: Ok or typed Err, no panic.
                let _ = Frame::from_bytes(&bytes[..keep]);
            }
            assert!(
                Frame::from_bytes(&[]).is_err(),
                "empty payload must not decode"
            );
        }
    }

    /// Single-bit flips in a framed stream either fail the envelope
    /// checksum or (if they hit the length prefix) fail as I/O or the
    /// length cap — a flipped frame never yields a clean decode of
    /// different content without the checksum noticing.
    #[test]
    fn bit_flipped_stream_frames_are_typed_errors() {
        let frame = Frame::BatchDone {
            batch_id: 9,
            stats: sample_stats(),
        };
        let mut buf = Vec::new();
        send(&mut buf, &frame).unwrap();
        for byte in 0..buf.len() {
            let mut garbled = buf.clone();
            garbled[byte] ^= 0x10;
            let mut r = io::Cursor::new(&garbled);
            match recv(&mut r) {
                Ok(decoded) => panic!("flip at byte {byte} decoded as {decoded:?}"),
                Err(RecvError::Closed) => panic!("flip at byte {byte} read as clean close"),
                Err(RecvError::Io(_) | RecvError::Envelope(_) | RecvError::Malformed(_)) => {}
            }
        }
    }

    #[test]
    fn unknown_tags_error_with_offsets() {
        assert_eq!(Frame::from_bytes(&[10]).unwrap_err().offset, 0);
        assert_eq!(
            Frame::from_bytes(&[10]).unwrap_err().reason,
            "unknown frame tag",
            "a v1 daemon refuses fetch-era tags typed, never panics"
        );
        assert_eq!(
            Frame::from_bytes(&[5, 99, 0]).unwrap_err().reason,
            "unknown error-code tag"
        );
        assert_eq!(
            BatchStats::from_bytes(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 7])
                .unwrap_err()
                .reason,
            "invalid store-line presence byte"
        );
    }

    #[test]
    fn garbled_job_count_is_rejected_without_allocating() {
        let mut bytes = vec![2u8];
        wire::put_varint(&mut bytes, 1); // batch_id
        wire::put_varint(&mut bytes, u64::MAX / 2); // insane job count
        assert_eq!(
            Frame::from_bytes(&bytes).unwrap_err().reason,
            "job count exceeds buffer"
        );
    }

    #[test]
    fn garbled_fetch_key_count_is_rejected_without_allocating() {
        for tag in [6u8, 7] {
            let mut bytes = vec![tag];
            wire::put_varint(&mut bytes, 3); // ttl
            wire::put_varint(&mut bytes, u64::MAX / 2); // insane key count
            assert_eq!(
                Frame::from_bytes(&bytes).unwrap_err().reason,
                "key count exceeds buffer"
            );
        }
    }
}
