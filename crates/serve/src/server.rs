//! The accept loop and per-connection protocol driver.
//!
//! The server owns nothing about simulation: it is generic over a
//! [`BatchHost`], the engine-owning side of the daemon. For every
//! connection it runs the handshake, then answers `SubmitBatch` frames
//! by fanning the batch's jobs out over `host.threads()` worker threads
//! (most-expensive-first by `host.cost_hint`, matching the engine's own
//! scheduler) and streaming each `JobResult` frame back the moment the
//! job completes. Exactly-once semantics across concurrent clients are
//! the host's business — the engine's content-keyed in-flight dedup —
//! so two clients submitting the same job each get a result frame while
//! the simulation runs once.
//!
//! Failure isolation is per connection: a malformed frame or rejected
//! job earns a typed [`Frame::Error`] and a clean close; a client that
//! disconnects mid-batch aborts its remaining job *claims* (work other
//! clients are waiting on still completes inside the host) and its
//! thread exits. Nothing a client does can poison the shared engine.

use std::io::{self, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use confluence_store::Tier;

use crate::protocol::{
    self, BatchStats, ErrorCode, Frame, RecvError, FETCH_HOP_LIMIT, PROTO_VERSION,
};

/// How often the accept loop checks its stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A typed refusal from the host: handshake validation or a job that
/// could not be decoded/executed. Sent to the client verbatim as a
/// [`Frame::Error`].
#[derive(Clone, Debug)]
pub struct Rejection {
    /// Machine-readable failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl Rejection {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Rejection {
            code,
            message: message.into(),
        }
    }
}

/// The engine-owning side of the daemon, as the server sees it.
///
/// Implementations decode the opaque job payloads with their own schema
/// (the `Hello` handshake guarantees both sides agree on it) and are
/// responsible for exactly-once execution under concurrency — the
/// server will call [`BatchHost::run_job`] for the same payload from
/// several connections at once and expects the host to dedup in flight.
pub trait BatchHost: Send + Sync + 'static {
    /// Opaque pre-batch accounting snapshot; diffed by
    /// [`BatchHost::finish_batch`] to produce per-batch deltas.
    type Snapshot: Send;

    /// The host's job schema version, echoed in `HelloAck`.
    fn schema(&self) -> u32;

    /// Accepts or rejects a client handshake. `schema` and
    /// `fingerprint` are the client's job schema version and
    /// workload-config fingerprint.
    ///
    /// # Errors
    ///
    /// A [`Rejection`] is sent to the client as a typed error frame and
    /// the connection is closed.
    fn validate_hello(&self, schema: u32, fingerprint: u64) -> Result<(), Rejection>;

    /// Worker threads to fan one batch out over.
    fn threads(&self) -> usize;

    /// Relative cost of one encoded job, for most-expensive-first
    /// ordering. Payloads that fail to decode may return anything;
    /// [`BatchHost::run_job`] will reject them properly.
    fn cost_hint(&self, job: &[u8]) -> u64;

    /// Executes one encoded job and returns its encoded output.
    ///
    /// # Errors
    ///
    /// A [`Rejection`] aborts the batch: the client gets a typed error
    /// frame instead of a `BatchDone`.
    fn run_job(&self, job: &[u8]) -> Result<Vec<u8>, Rejection>;

    /// Called once per submitted batch, before any job runs (and after
    /// [`BatchHost::snapshot`], so whatever it does lands in the batch's
    /// accounting window). The remote warm tier lives here: a peered
    /// host collects the batch's local misses and fetches them from its
    /// peers in one batched round trip. The default does nothing.
    fn prepare_batch(&self, jobs: &[Vec<u8>]) {
        let _ = jobs;
    }

    /// Answers one batched fetch from a peer (or a daemonless client):
    /// for each encoded store key, the raw verified entry bytes from
    /// this host's store in `tier`, or `None` for a miss. With `ttl > 0`
    /// the host may consult its own peers (forwarding `ttl - 1`) before
    /// conceding a miss. Must return exactly `keys.len()` slots. The
    /// default — a host with no store — misses everything.
    fn fetch_batch(&self, tier: Tier, ttl: u32, keys: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        let _ = (tier, ttl);
        vec![None; keys.len()]
    }

    /// Captures accounting state before a batch begins.
    fn snapshot(&self) -> Self::Snapshot;

    /// Settles a batch: computes delta stats against `before`, and
    /// performs any end-of-batch maintenance (artifact persistence,
    /// store GC).
    fn finish_batch(&self, before: Self::Snapshot) -> BatchStats;
}

/// A bound but not yet running server.
pub struct Server<H: BatchHost> {
    listener: UnixListener,
    host: Arc<H>,
    path: PathBuf,
}

impl<H: BatchHost> Server<H> {
    /// Binds a Unix-domain socket at `path`, replacing any stale socket
    /// file left by a previous run.
    ///
    /// # Errors
    ///
    /// Errors if the socket cannot be bound.
    pub fn bind(path: impl AsRef<Path>, host: Arc<H>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        // A crashed daemon leaves its socket file behind; binding over
        // it needs the stale file gone. Losing a race here means the
        // path is genuinely in use and bind reports AddrInUse.
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(&path)?;
        Ok(Server {
            listener,
            host,
            path,
        })
    }

    /// The socket path this server is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Runs the accept loop on the calling thread until the process is
    /// killed. The daemon binary's main loop.
    ///
    /// # Errors
    ///
    /// Errors if the listener fails fatally.
    pub fn run(self) -> io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        serve_loop(self.listener, self.host, &stop, &conns)
    }

    /// Starts the accept loop on a background thread and returns a
    /// handle that can stop it. The in-process form used by tests.
    pub fn spawn(self) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let thread = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            thread::spawn(move || serve_loop(self.listener, self.host, &stop, &conns))
        };
        ServerHandle {
            stop,
            thread: Some(thread),
            conns,
            path: self.path,
        }
    }
}

/// Handle to a spawned server; stopping joins the accept loop and every
/// live connection thread, then removes the socket file.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<io::Result<()>>>,
    conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    path: PathBuf,
}

impl ServerHandle {
    /// The socket path the server was bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops accepting, waits for in-flight connections to finish, and
    /// removes the socket file.
    ///
    /// # Errors
    ///
    /// Returns the accept loop's fatal error, if it had one.
    pub fn stop(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        let result = match self.thread.take() {
            Some(t) => t.join().unwrap_or(Ok(())),
            None => Ok(()),
        };
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for conn in conns {
            let _ = conn.join();
        }
        let _ = std::fs::remove_file(&self.path);
        result
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

fn serve_loop<H: BatchHost>(
    listener: UnixListener,
    host: Arc<H>,
    stop: &AtomicBool,
    conns: &Mutex<Vec<thread::JoinHandle<()>>>,
) -> io::Result<()> {
    // Nonblocking accept so the loop can notice its stop flag; each
    // accepted stream goes back to blocking for its connection thread.
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let host = Arc::clone(&host);
                let handle = thread::spawn(move || handle_connection(stream, &*host));
                conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Sends a typed error frame, ignoring transport failure (the client
/// may already be gone), then lets the connection close.
fn refuse(stream: &mut UnixStream, code: ErrorCode, message: String) {
    let _ = protocol::send(stream, &Frame::Error { code, message });
    let _ = stream.flush();
}

fn handle_connection<H: BatchHost>(mut stream: UnixStream, host: &H) {
    // Handshake first: anything other than a well-formed, compatible
    // Hello gets a typed refusal and a close.
    match protocol::recv(&mut stream) {
        Ok(Frame::Hello {
            proto,
            schema,
            fingerprint,
        }) => {
            if proto != PROTO_VERSION {
                return refuse(
                    &mut stream,
                    ErrorCode::ProtoMismatch,
                    format!("daemon speaks frame protocol v{PROTO_VERSION}, client sent v{proto}"),
                );
            }
            if let Err(rej) = host.validate_hello(schema, fingerprint) {
                return refuse(&mut stream, rej.code, rej.message);
            }
            let ack = Frame::HelloAck {
                proto: PROTO_VERSION,
                schema: host.schema(),
            };
            if protocol::send(&mut stream, &ack).is_err() {
                return;
            }
        }
        Ok(_) => {
            return refuse(
                &mut stream,
                ErrorCode::MalformedFrame,
                "expected Hello as first frame".to_string(),
            );
        }
        Err(RecvError::Closed | RecvError::Io(_)) => return,
        Err(e @ (RecvError::Envelope(_) | RecvError::Malformed(_))) => {
            return refuse(&mut stream, ErrorCode::MalformedFrame, e.to_string());
        }
    }

    loop {
        match protocol::recv(&mut stream) {
            Ok(Frame::SubmitBatch { batch_id, jobs }) => {
                if !serve_batch(&mut stream, host, batch_id, &jobs) {
                    return;
                }
            }
            Ok(Frame::FetchResults { ttl, keys }) => {
                if !serve_fetch(&mut stream, host, Tier::Result, ttl, &keys) {
                    return;
                }
            }
            Ok(Frame::FetchArtifacts { ttl, keys }) => {
                if !serve_fetch(&mut stream, host, Tier::Artifact, ttl, &keys) {
                    return;
                }
            }
            Ok(_) => {
                return refuse(
                    &mut stream,
                    ErrorCode::MalformedFrame,
                    "expected SubmitBatch".to_string(),
                );
            }
            // A dropped client abandons its reads; nothing to clean up
            // here — the shared engine state lives in the host.
            Err(RecvError::Closed | RecvError::Io(_)) => return,
            Err(e @ (RecvError::Envelope(_) | RecvError::Malformed(_))) => {
                return refuse(&mut stream, ErrorCode::MalformedFrame, e.to_string());
            }
        }
    }
}

/// Answers one batched fetch: streams a [`Frame::FetchHit`] per key the
/// host holds, then one [`Frame::FetchDone`]. Returns `false` if the
/// connection should close (transport failure or a host that broke the
/// one-slot-per-key contract).
fn serve_fetch<H: BatchHost>(
    stream: &mut UnixStream,
    host: &H,
    tier: Tier,
    ttl: u32,
    keys: &[Vec<u8>],
) -> bool {
    let entries = host.fetch_batch(tier, ttl.min(FETCH_HOP_LIMIT), keys);
    if entries.len() != keys.len() {
        refuse(
            stream,
            ErrorCode::JobFailed,
            format!("fetch answered {} of {} keys", entries.len(), keys.len()),
        );
        return false;
    }
    let mut hits: u32 = 0;
    for (idx, entry) in entries.into_iter().enumerate() {
        if let Some(entry) = entry {
            hits += 1;
            #[allow(clippy::cast_possible_truncation)]
            let idx = idx as u32;
            if protocol::send(stream, &Frame::FetchHit { idx, entry }).is_err() {
                return false;
            }
        }
    }
    #[allow(clippy::cast_possible_truncation)]
    let misses = keys.len() as u32 - hits;
    protocol::send(stream, &Frame::FetchDone { hits, misses }).is_ok()
}

/// Runs one batch and streams its results. Returns `false` if the
/// connection should close (transport failure or a rejected job).
fn serve_batch<H: BatchHost>(
    stream: &mut UnixStream,
    host: &H,
    batch_id: u64,
    jobs: &[Vec<u8>],
) -> bool {
    let before = host.snapshot();
    host.prepare_batch(jobs);

    // Most-expensive-first claim order, same policy as the engine's own
    // scheduler: long poles start immediately instead of queueing
    // behind cheap jobs. Stable sort keeps submission order among ties.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(host.cost_hint(&jobs[i])));

    let workers = host.threads().clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let rejection: Mutex<Option<Rejection>> = Mutex::new(None);
    let mut write_failed = false;

    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(u32, Vec<u8>)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, abort, rejection, order) = (&next, &abort, &rejection, &order);
            scope.spawn(move || {
                loop {
                    if abort.load(Ordering::SeqCst) {
                        break;
                    }
                    let slot = next.fetch_add(1, Ordering::SeqCst);
                    let Some(&idx) = order.get(slot) else { break };
                    match host.run_job(&jobs[idx]) {
                        Ok(output) => {
                            #[allow(clippy::cast_possible_truncation)]
                            let job_idx = idx as u32;
                            if tx.send((job_idx, output)).is_err() {
                                break;
                            }
                        }
                        Err(rej) => {
                            // First rejection wins; the batch aborts.
                            rejection.lock().unwrap().get_or_insert(rej);
                            abort.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                }
            });
        }
        // The connection thread is the sole frame writer: it drains the
        // channel and streams each result the moment it lands. Dropping
        // the spare sender lets the loop end when all workers finish.
        drop(tx);
        for (job_idx, output) in rx {
            if write_failed {
                continue; // keep draining so the channel empties
            }
            let frame = Frame::JobResult { job_idx, output };
            if protocol::send(stream, &frame).is_err() {
                // Client went away mid-batch: abandon its remaining
                // claims. Jobs other clients also requested still
                // complete inside the host's in-flight dedup.
                write_failed = true;
                abort.store(true, Ordering::SeqCst);
            }
        }
    });

    if write_failed {
        return false;
    }
    if let Some(rej) = rejection.lock().unwrap().take() {
        refuse(stream, rej.code, rej.message);
        return false;
    }
    let done = Frame::BatchDone {
        batch_id,
        stats: host.finish_batch(before),
    };
    protocol::send(stream, &done).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must stay object-safe enough for generic use with an
    /// associated snapshot; this is a compile-time exercise of the
    /// bounds plus a tiny sanity check of Rejection.
    #[test]
    fn rejection_constructor() {
        let r = Rejection::new(ErrorCode::MalformedJob, "nope");
        assert_eq!(r.code, ErrorCode::MalformedJob);
        assert_eq!(r.message, "nope");
    }

    #[test]
    fn batch_stats_default_is_all_zero() {
        let stats = BatchStats::default();
        assert_eq!(stats.requests, 0);
        assert!(stats.store.is_none());
    }
}
