//! Property tests for the daemon frame protocol: every generated frame
//! survives encode→decode and the stream envelope, and no corruption —
//! truncation or bit flips, at any position — ever escapes as a panic
//! or a silently different frame.

use std::io::Cursor;

use confluence_serve::protocol::{self, RecvError};
use confluence_serve::{BatchStats, ErrorCode, Frame, StoreLine};
use confluence_store::{Decode, Encode};
use proptest::prelude::*;

fn arb_blob() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec((0u64..256).prop_map(|b| b as u8), 0..48)
}

fn arb_store_line() -> impl Strategy<Value = StoreLine> {
    (
        prop::collection::vec(0u8..128, 0..24),
        any::<u32>(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(root, schema, (entries, bytes, artifacts, artifact_bytes))| StoreLine {
                // Arbitrary ASCII path; the codec only requires UTF-8.
                root: root.into_iter().map(|b| (b % 94 + 33) as char).collect(),
                schema,
                entries,
                bytes,
                artifacts,
                artifact_bytes,
            },
        )
}

fn arb_stats() -> impl Strategy<Value = BatchStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (
            (any::<u64>(), any::<u64>()),
            prop::option::of(arb_store_line()),
        ),
        // Often all-zero, so the conditional remote tail exercises both
        // its omitted (v1-identical) and appended encodings.
        (0u64..3, 0u64..3, 0u64..1000),
    )
        .prop_map(
            |(
                (requests, executed, hits, disk_hits),
                (memo_replayed, memo_recorded, memo_live),
                ((memo_tables, memo_steps), store),
                (remote_hits, remote_round_trips, remote_bytes),
            )| BatchStats {
                requests,
                executed,
                hits,
                disk_hits,
                memo_replayed,
                memo_recorded,
                memo_live,
                memo_tables,
                memo_steps,
                store,
                remote_hits,
                remote_round_trips,
                remote_bytes,
            },
        )
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::ProtoMismatch),
        Just(ErrorCode::SchemaMismatch),
        Just(ErrorCode::ConfigMismatch),
        Just(ErrorCode::MalformedFrame),
        Just(ErrorCode::MalformedJob),
        Just(ErrorCode::JobFailed),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(proto, schema, fingerprint)| {
            Frame::Hello {
                proto,
                schema,
                fingerprint,
            }
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(proto, schema)| Frame::HelloAck { proto, schema }),
        (any::<u64>(), prop::collection::vec(arb_blob(), 0..6))
            .prop_map(|(batch_id, jobs)| Frame::SubmitBatch { batch_id, jobs }),
        (0u32..10_000, arb_blob())
            .prop_map(|(job_idx, output)| Frame::JobResult { job_idx, output }),
        (any::<u64>(), arb_stats())
            .prop_map(|(batch_id, stats)| Frame::BatchDone { batch_id, stats }),
        (arb_error_code(), prop::collection::vec(0u8..128, 0..32)).prop_map(|(code, msg)| {
            Frame::Error {
                code,
                message: msg.into_iter().map(|b| (b % 94 + 33) as char).collect(),
            }
        }),
        (0u32..8, prop::collection::vec(arb_blob(), 0..6))
            .prop_map(|(ttl, keys)| Frame::FetchResults { ttl, keys }),
        (0u32..8, prop::collection::vec(arb_blob(), 0..6))
            .prop_map(|(ttl, keys)| Frame::FetchArtifacts { ttl, keys }),
        (any::<u32>(), arb_blob()).prop_map(|(idx, entry)| Frame::FetchHit { idx, entry }),
        (any::<u32>(), any::<u32>()).prop_map(|(hits, misses)| Frame::FetchDone { hits, misses }),
    ]
}

proptest! {
    #[test]
    fn every_frame_roundtrips(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        prop_assert_eq!(Frame::from_bytes(&bytes).unwrap(), frame);
    }

    #[test]
    fn frame_sequences_roundtrip_through_the_envelope(
        frames in prop::collection::vec(arb_frame(), 0..5),
    ) {
        let mut buf = Vec::new();
        for frame in &frames {
            protocol::send(&mut buf, frame).unwrap();
        }
        let mut r = Cursor::new(buf);
        for frame in &frames {
            prop_assert_eq!(&protocol::recv(&mut r).unwrap(), frame);
        }
        prop_assert!(matches!(protocol::recv(&mut r), Err(RecvError::Closed)));
    }

    /// Truncating a framed stream anywhere yields a typed error (or, at
    /// an exact frame boundary, a clean Closed) — never a panic and
    /// never a wrong frame.
    #[test]
    fn truncation_never_panics(frame in arb_frame(), cut_seed in any::<u64>()) {
        let mut buf = Vec::new();
        protocol::send(&mut buf, &frame).unwrap();
        let cut = (cut_seed % buf.len() as u64) as usize; // strict prefix
        let mut r = Cursor::new(&buf[..cut]);
        match protocol::recv(&mut r) {
            Ok(decoded) => {
                return Err(format!("truncation at {cut} decoded as {decoded:?}"));
            }
            Err(RecvError::Closed) => prop_assert_eq!(cut, 0),
            Err(RecvError::Io(_) | RecvError::Envelope(_) | RecvError::Malformed(_)) => {}
        }
    }

    /// A single flipped bit anywhere in a framed stream is always caught
    /// — by the length cap, the checksum, or mid-frame EOF.
    #[test]
    fn bit_flips_never_decode(frame in arb_frame(), pos_seed in any::<u64>(), bit in 0u32..8) {
        let mut buf = Vec::new();
        protocol::send(&mut buf, &frame).unwrap();
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= 1 << bit;
        let mut r = Cursor::new(&buf);
        match protocol::recv(&mut r) {
            Ok(decoded) => {
                return Err(format!("flip at byte {pos} bit {bit} decoded as {decoded:?}"));
            }
            Err(RecvError::Closed) => {
                return Err(format!("flip at byte {pos} bit {bit} read as clean close"));
            }
            Err(RecvError::Io(_) | RecvError::Envelope(_) | RecvError::Malformed(_)) => {}
        }
    }

    /// Raw garbage bytes fed straight to the frame decoder (no envelope)
    /// also never panic — the server decodes payloads only after the
    /// checksum verifies, but the decoder must hold on its own.
    #[test]
    fn raw_garbage_never_panics(bytes in arb_blob()) {
        let _ = Frame::from_bytes(&bytes);
    }
}
