//! Runs every table/figure reproduction through one shared [`SimEngine`]
//! and prints the full suite.
//!
//! All figures' jobs are batched and executed on the engine's worker pool
//! first, with each unique `(workload, design/BTB-spec, options)`
//! simulation run exactly once across the whole suite; the figures then
//! format from the warm cache. With a persistent store attached
//! (`--store-dir`, or `CONFLUENCE_STORE=DIR`), results also survive the
//! process: a second run against the same store executes nothing and
//! emits byte-identical reports. `--compare-serial` re-runs the same
//! batch on a fresh single-threaded engine and reports the wall-clock
//! speedup.
//!
//! Usage: `all_experiments [--quick] [--csv] [--markdown] [--serial]
//! [--compare-serial] [--threads N] [--store-dir DIR | --no-store]`

use std::time::Instant;

use confluence_sim::cli;
use confluence_sim::experiments;
use confluence_sim::SimEngine;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flags = cli::parse_common(&args);
    let serial = args.iter().any(|a| a == "--serial");
    let compare = args.iter().any(|a| a == "--compare-serial");
    if serial && flags.threads.is_some() {
        eprintln!("error: --serial and --threads are mutually exclusive");
        std::process::exit(2);
    }
    let cfg = flags.config();

    eprintln!("generating workloads...");
    let mut engine = cfg.engine();
    if serial {
        engine = engine.with_threads(1);
    } else if let Some(n) = flags.threads {
        engine = engine.with_threads(n);
    }
    let engine = cli::attach_store(engine, &args);

    let jobs = experiments::all_jobs(&engine, &cfg);
    let unique = experiments::unique_jobs(&jobs);
    eprintln!(
        "running {} unique simulations ({} requested across figures) on {} thread(s)...",
        unique,
        jobs.len(),
        engine.threads()
    );
    let start = Instant::now();
    engine.run(&jobs);
    let elapsed = start.elapsed();
    let stats = engine.stats();
    assert_eq!(
        stats.executed + stats.disk_hits,
        unique as u64,
        "each unique simulation must be executed once or served from the store"
    );
    eprintln!(
        "engine: executed {} simulations in {:.2?} ({} requests, {} memory hits, {} disk hits)",
        stats.executed, elapsed, stats.requests, stats.hits, stats.disk_hits
    );

    for report in experiments::suite_reports(&engine, &cfg) {
        println!("{}", flags.render(&report));
    }

    let final_stats = engine.stats();
    assert_eq!(
        (final_stats.executed, final_stats.disk_hits),
        (stats.executed, stats.disk_hits),
        "formatting must be pure cache hits"
    );
    eprintln!("{}", cli::cache_summary(&engine));

    if compare && !serial {
        if engine.store().is_some() {
            // Warm, the timed run measured disk reads; cold, it paid
            // store writes the reference would not. Either way the
            // comparison would be simulation-vs-something-else.
            eprintln!(
                "skipping serial comparison: a result store was attached to the timed \
                 run ({} jobs served from disk), so wall-clocks are not comparable \
                 (re-run with --no-store to compare)",
                stats.disk_hits
            );
            return;
        }
        eprintln!("re-running the batch serially for comparison...");
        // No store: the reference must actually simulate.
        let reference = SimEngine::new(engine.workloads().to_vec()).with_threads(1);
        let start = Instant::now();
        reference.run(&jobs);
        let serial_elapsed = start.elapsed();
        eprintln!(
            "serial: {:.2?}; parallel: {:.2?}; speedup {:.2}x on {} threads",
            serial_elapsed,
            elapsed,
            serial_elapsed.as_secs_f64() / elapsed.as_secs_f64(),
            engine.threads()
        );
    }
}
