//! Runs every table/figure reproduction and prints the full suite.
//!
//! Usage: `all_experiments [--quick] [--csv] [--markdown]`

use confluence_sim::experiments::{self, ExperimentConfig};
use confluence_sim::report::Report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let md = args.iter().any(|a| a == "--markdown");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::full() };

    eprintln!("generating workloads...");
    let ws = cfg.workloads();

    let emit = |r: &Report| {
        if csv {
            println!("{}", r.to_csv());
        } else if md {
            println!("{}", r.to_markdown());
        } else {
            println!("{}", r.to_table());
        }
    };

    eprintln!("running functional coverage experiments...");
    emit(&experiments::fig1(&ws, &cfg));
    emit(&experiments::table2(&ws, &cfg));
    emit(&experiments::fig8(&ws, &cfg));
    emit(&experiments::fig9(&ws, &cfg));
    emit(&experiments::fig10(&ws, &cfg));
    emit(&experiments::l1i_coverage(&ws, &cfg));
    emit(&experiments::area_table());
    eprintln!("running timing experiments (figures 2, 6, 7)...");
    emit(&experiments::fig2(&ws, &cfg));
    emit(&experiments::fig6(&ws, &cfg));
    emit(&experiments::fig7(&ws, &cfg));
}
