//! Runs every table/figure reproduction through one shared [`SimEngine`]
//! and prints the full suite.
//!
//! All figures' jobs are batched and executed on the engine's worker pool
//! first, with each unique `(workload, design/BTB-spec, options)`
//! simulation run exactly once across the whole suite; the figures then
//! format from the warm cache. `--compare-serial` re-runs the same batch
//! on a fresh single-threaded engine and reports the wall-clock speedup.
//!
//! Usage: `all_experiments [--quick] [--csv] [--markdown] [--serial]
//! [--compare-serial] [--threads N]`

use std::time::Instant;

use confluence_sim::experiments::{self, ExperimentConfig};
use confluence_sim::report::Report;
use confluence_sim::SimEngine;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let md = args.iter().any(|a| a == "--markdown");
    let serial = args.iter().any(|a| a == "--serial");
    let compare = args.iter().any(|a| a == "--compare-serial");
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) => Some(n),
            None => {
                eprintln!("error: --threads requires an integer value");
                std::process::exit(2);
            }
        },
        None => None,
    };
    if serial && threads.is_some() {
        eprintln!("error: --serial and --threads are mutually exclusive");
        std::process::exit(2);
    }
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    };

    eprintln!("generating workloads...");
    let mut engine = cfg.engine();
    if serial {
        engine = engine.with_threads(1);
    } else if let Some(n) = threads {
        engine = engine.with_threads(n);
    }

    let jobs = experiments::all_jobs(&engine, &cfg);
    let unique = experiments::unique_jobs(&jobs);
    eprintln!(
        "running {} unique simulations ({} requested across figures) on {} thread(s)...",
        unique,
        jobs.len(),
        engine.threads()
    );
    let start = Instant::now();
    engine.run(&jobs);
    let elapsed = start.elapsed();
    let stats = engine.stats();
    assert_eq!(
        stats.executed, unique as u64,
        "engine must execute each unique simulation exactly once"
    );
    eprintln!(
        "engine: executed {} simulations in {:.2?} ({} requests, {} cache hits)",
        stats.executed, elapsed, stats.requests, stats.hits
    );

    let emit = |r: &Report| {
        if csv {
            println!("{}", r.to_csv());
        } else if md {
            println!("{}", r.to_markdown());
        } else {
            println!("{}", r.to_table());
        }
    };

    emit(&experiments::fig1(&engine, &cfg));
    emit(&experiments::table2(&engine, &cfg));
    emit(&experiments::fig8(&engine, &cfg));
    emit(&experiments::fig9(&engine, &cfg));
    emit(&experiments::fig10(&engine, &cfg));
    emit(&experiments::l1i_coverage(&engine, &cfg));
    emit(&experiments::area_table());
    emit(&experiments::fig2(&engine, &cfg));
    emit(&experiments::fig6(&engine, &cfg));
    emit(&experiments::fig7(&engine, &cfg));

    let final_stats = engine.stats();
    assert_eq!(
        final_stats.executed, unique as u64,
        "formatting must be pure cache hits"
    );

    if compare && !serial {
        eprintln!("re-running the batch serially for comparison...");
        let reference = SimEngine::new(engine.workloads().to_vec()).with_threads(1);
        let start = Instant::now();
        reference.run(&jobs);
        let serial_elapsed = start.elapsed();
        eprintln!(
            "serial: {:.2?}; parallel: {:.2?}; speedup {:.2}x on {} threads",
            serial_elapsed,
            elapsed,
            serial_elapsed.as_secs_f64() / elapsed.as_secs_f64(),
            engine.threads()
        );
    }
}
