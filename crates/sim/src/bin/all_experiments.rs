//! Runs every table/figure reproduction through one shared [`SimEngine`]
//! and prints the full suite.
//!
//! All figures' jobs are batched and executed on the engine's worker pool
//! first — most expensive first, with idle workers lent to CMP timing
//! runs as core shards — with each unique `(workload, design/BTB-spec,
//! options)` simulation run exactly once across the whole suite; the
//! figures then format from the warm cache. With a persistent store
//! attached (`--store-dir`, or `CONFLUENCE_STORE=DIR`), results also
//! survive the process: a second run against the same store executes
//! nothing and emits byte-identical reports. `--compare-serial` re-runs
//! the same batch on a fresh single-threaded engine, asserts the two
//! renderings are byte-identical, and reports the wall-clock speedup.
//!
//! Usage: `all_experiments [--quick] [--csv] [--markdown] [--serial]
//! [--compare-serial] [--threads N] [--store-dir DIR | --no-store]
//! [--store-cap-bytes N] [--connect SOCK]`
//!
//! With `--connect SOCK` (or `CONFLUENCE_CONNECT=SOCK`) the batch is
//! submitted to a running `confluence-serve` daemon instead of being
//! simulated in process; stdout is byte-identical either way.

use confluence_sim::cli;
use confluence_sim::experiments;

const USAGE: &str = "all_experiments [--quick] [--csv | --markdown] [--serial | \
     --compare-serial] [--threads N] [--store-dir DIR | --no-store] \
     [--store-cap-bytes N] [--peer SOCK]... [--peer-timeout-ms N] \
     [--no-warm-artifacts] [--no-fastpath] [--connect SOCK]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let switches = [cli::COMMON_SWITCHES, &["--serial", "--compare-serial"]].concat();
    let values = [cli::COMMON_VALUE_FLAGS, &["--connect"]].concat();
    cli::reject_unknown_args(&args, &switches, &values, USAGE);
    let flags = cli::parse_common(&args);
    let serial = args.iter().any(|a| a == "--serial");
    let compare = args.iter().any(|a| a == "--compare-serial");
    if serial && flags.threads.is_some() {
        eprintln!("error: --serial and --threads are mutually exclusive");
        std::process::exit(2);
    }
    let cfg = flags.config();

    eprintln!("generating workloads...");
    let mut engine = cfg.engine().with_exec_mode(cli::exec_mode_from_args(&args));
    if serial {
        engine = engine.with_threads(1);
    } else if let Some(n) = flags.threads {
        engine = engine.with_threads(n);
    }
    let engine = cli::attach_store(engine, &args);

    let jobs = experiments::all_jobs(&engine, &cfg);
    let run = cli::dispatch_batch(&engine, &jobs, "across figures", &args);
    let reports = experiments::suite_reports(&engine, &cfg);
    let rendered = cli::finish_batch(&engine, &flags, &run, &reports, &args);

    if compare && !serial {
        cli::compare_serial(&engine, &flags, &jobs, &run, &rendered, |reference| {
            experiments::suite_reports(reference, &cfg)
        });
    }
}
