//! Regenerates the paper's storage/area accounting. Usage: `area_table [--csv]`.

use confluence_sim::experiments;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let r = experiments::area_table();
    if csv {
        println!("{}", r.to_csv());
    } else {
        println!("{}", r.to_table());
    }
}
