//! Regenerates the paper's storage/area accounting. Usage: `area_table [--csv]`.
//!
//! The table is pure arithmetic over the design points' storage profiles —
//! no simulations run, so the suite-wide store options (`--store-dir`,
//! `--no-store`, `CONFLUENCE_STORE`) are accepted but have nothing to do.

use confluence_sim::experiments;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let r = experiments::area_table();
    if csv {
        println!("{}", r.to_csv());
    } else {
        println!("{}", r.to_table());
    }
}
