//! Regenerates the paper's storage/area accounting.
//! Usage: `area_table [--csv | --markdown]`.
//!
//! The table is pure arithmetic over the design points' storage
//! profiles — no simulations run, so none of the suite-wide engine or
//! store options apply here.

use confluence_sim::cli;
use confluence_sim::experiments;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_args(
        &args,
        &["--csv", "--markdown"],
        &[],
        "area_table [--csv | --markdown]",
    );
    let r = experiments::area_table();
    if args.iter().any(|a| a == "--csv") {
        println!("{}", r.to_csv());
    } else if args.iter().any(|a| a == "--markdown") {
        println!("{}", r.to_markdown());
    } else {
        println!("{}", r.to_table());
    }
}
