//! The experiment daemon: one warm [`confluence_sim::SimEngine`] (and
//! optionally one persistent store) serving job batches to many
//! concurrent clients over a Unix-domain socket, for as long as the
//! process lives.
//!
//! Clients are the ordinary batch binaries run with `--connect SOCK`
//! (`all_experiments`, `sweeps`, `timing_figs`); their stdout is
//! byte-identical to an in-process run, while all execution, caching,
//! warm-artifact import (once per workload per daemon lifetime, not per
//! batch), and store maintenance happen here.
//!
//! Usage: `confluence-serve --socket PATH [--quick] [--threads N]
//! [--store-dir DIR | --no-store] [--store-cap-bytes N]
//! [--peer SOCK]... [--peer-timeout-ms N]
//! [--no-warm-artifacts] [--no-fastpath]`
//!
//! `--peer SOCK` (repeatable) names other daemons forming a **remote
//! warm tier**: a key that misses this daemon's memory and disk is
//! fetched from the peers in one batched round trip, re-verified
//! byte-for-byte, promoted into the local store, and served — so a
//! fleet of daemons shares warmth without sharing a filesystem. A dead
//! peer degrades to local simulation; see README "The remote warm
//! tier".
//!
//! The scale flags (`--quick` vs full) fix the workload configuration
//! for the daemon's lifetime; clients built over a different
//! configuration are refused at handshake with a typed `ConfigMismatch`
//! rather than served aliased results. A ready line is printed to
//! stderr once the socket is listening.

use std::sync::Arc;

use confluence_serve::Server;
use confluence_sim::cli;
use confluence_sim::daemon::EngineHost;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(socket) = cli::socket_from_args(&args) else {
        eprintln!("error: confluence-serve requires --socket PATH");
        std::process::exit(2);
    };
    if cli::connect_from_args(&args).is_some() {
        eprintln!("error: --connect is a client flag; the daemon listens with --socket");
        std::process::exit(2);
    }
    cli::reject_unknown_args(
        &args,
        &[
            "--quick",
            "--no-store",
            "--no-warm-artifacts",
            "--no-fastpath",
        ],
        &[
            "--socket",
            "--threads",
            "--store-dir",
            "--store-cap-bytes",
            "--peer",
            "--peer-timeout-ms",
        ],
        "confluence-serve --socket PATH [--quick] [--threads N] \
         [--store-dir DIR | --no-store] [--store-cap-bytes N] \
         [--peer SOCK]... [--peer-timeout-ms N] \
         [--no-warm-artifacts] [--no-fastpath]",
    );
    let flags = cli::parse_common(&args);
    let cfg = flags.config();

    eprintln!("generating workloads...");
    let mut engine = cfg.engine().with_exec_mode(cli::exec_mode_from_args(&args));
    if let Some(n) = flags.threads {
        engine = engine.with_threads(n);
    }
    let engine = cli::attach_store(engine, &args);
    let store = match engine.store() {
        Some(s) => format!("store {}", s.root().display()),
        None => "store disabled".to_string(),
    };
    let peers = match engine.peers() {
        Some(p) => format!(
            ", {} peer(s) [{}]",
            p.sockets().len(),
            p.sockets()
                .iter()
                .map(|s| s.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        None => String::new(),
    };
    let host = Arc::new(EngineHost::new(engine, cli::store_cap_from_args(&args)));

    let server = match Server::bind(&socket, Arc::clone(&host)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", socket.display());
            std::process::exit(1);
        }
    };
    eprintln!(
        "confluence-serve: listening on {} ({} mode, schema v{}, config {:016x}, \
         {} thread(s), {store}{peers})",
        socket.display(),
        if flags.quick { "quick" } else { "full" },
        confluence_sim::SCHEMA_VERSION,
        host.fingerprint(),
        host.engine().threads(),
    );
    if let Err(e) = server.run() {
        eprintln!("error: daemon accept loop failed: {e}");
        std::process::exit(1);
    }
}
