//! Regenerates the paper's fig1 result. Usage: `fig1 [--quick] [--csv]`.

use confluence_sim::experiments::{self, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::full() };
    let ws = cfg.workloads();
    let r = experiments::fig1(&ws, &cfg);
    if csv { println!("{}", r.to_csv()); } else { println!("{}", r.to_table()); }
}
