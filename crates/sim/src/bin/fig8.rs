//! Regenerates the paper's fig8 result through a [`confluence_sim::SimEngine`].
//! Usage: `fig8 [--quick] [--csv]`.

use confluence_sim::experiments::{self, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    };
    let engine = cfg.engine();
    let r = experiments::fig8(&engine, &cfg);
    if csv {
        println!("{}", r.to_csv());
    } else {
        println!("{}", r.to_table());
    }
}
