//! Regenerates the paper's fig9 result through a [`confluence_sim::SimEngine`].
//! Usage: `fig9 [--quick] [--csv] [--store-dir DIR | --no-store]`.
//! `CONFLUENCE_STORE=DIR` also enables the persistent result store.

fn main() {
    confluence_sim::cli::run_figure(confluence_sim::experiments::fig9);
}
