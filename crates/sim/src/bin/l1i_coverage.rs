//! Regenerates the paper's l1i_coverage result through a [`confluence_sim::SimEngine`].
//! Usage: `l1i_coverage [--quick] [--csv] [--store-dir DIR | --no-store]`.
//! `CONFLUENCE_STORE=DIR` also enables the persistent result store.

fn main() {
    confluence_sim::cli::run_figure(confluence_sim::experiments::l1i_coverage);
}
