//! Runs registered sensitivity-sweep studies through a shared
//! [`confluence_sim::SimEngine`].
//!
//! Studies are declarative [`confluence_sim::SweepSpec`]s from
//! `confluence_sim::sweeps::registry()`; their points reuse the figure
//! suite's configurations wherever they coincide, so a store populated by
//! `all_experiments` serves most of a sweep from disk.
//!
//! Usage: `sweeps [--list] [--study NAME]... [--quick] [--csv | --markdown]
//! [--threads N] [--store-dir DIR | --no-store]`
//!
//! With no `--study`, every registered study runs. `CONFLUENCE_STORE=DIR`
//! also enables the persistent result store.

use std::time::Instant;

use confluence_sim::cli;
use confluence_sim::experiments::unique_jobs;
use confluence_sim::sweeps;
use confluence_sim::Job;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        for s in sweeps::registry() {
            println!(
                "{:16} {:28} {} points",
                s.name,
                s.axis.parameter(),
                s.axis.len()
            );
        }
        return;
    }

    let flags = cli::parse_common(&args);

    // Repeatable --study NAME; no occurrences selects the full registry.
    let mut selected = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--study" {
            match args.get(i + 1) {
                Some(name) if !name.starts_with("--") => match sweeps::find(name) {
                    Some(spec) => selected.push(spec),
                    None => {
                        eprintln!("error: unknown study '{name}' (try --list)");
                        std::process::exit(2);
                    }
                },
                _ => {
                    eprintln!("error: --study requires a name (try --list)");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    let studies = if selected.is_empty() {
        sweeps::registry()
    } else {
        selected
    };

    let cfg = flags.config();

    eprintln!("generating workloads...");
    let mut engine = cfg.engine();
    if let Some(n) = flags.threads {
        engine = engine.with_threads(n);
    }
    let engine = cli::attach_store(engine, &args);

    let jobs: Vec<Job> = studies.iter().flat_map(|s| s.jobs(&engine, &cfg)).collect();
    let unique = unique_jobs(&jobs);
    eprintln!(
        "running {} studies: {} unique simulations ({} requested) on {} thread(s)...",
        studies.len(),
        unique,
        jobs.len(),
        engine.threads()
    );
    let start = Instant::now();
    engine.run(&jobs);
    let elapsed = start.elapsed();
    let stats = engine.stats();
    assert_eq!(
        stats.executed + stats.disk_hits,
        unique as u64,
        "each unique simulation must be executed once or served from the store"
    );
    eprintln!(
        "engine: executed {} simulations in {:.2?} ({} requests, {} memory hits, {} disk hits)",
        stats.executed, elapsed, stats.requests, stats.hits, stats.disk_hits
    );

    for study in &studies {
        println!("{}", flags.render(&study.report(&engine, &cfg)));
    }

    let final_stats = engine.stats();
    assert_eq!(
        (final_stats.executed, final_stats.disk_hits),
        (stats.executed, stats.disk_hits),
        "formatting must be pure cache hits"
    );
    eprintln!("{}", cli::cache_summary(&engine));
}
