//! Runs registered sensitivity-sweep studies through a shared
//! [`confluence_sim::SimEngine`].
//!
//! Studies are declarative [`confluence_sim::SweepSpec`]s from
//! `confluence_sim::sweeps::registry()`; their points reuse the figure
//! suite's configurations wherever they coincide, so a store populated by
//! `all_experiments` serves most of a sweep from disk.
//!
//! Usage: `sweeps [--list] [--study NAME]... [--quick] [--csv | --markdown]
//! [--threads N] [--store-dir DIR | --no-store] [--store-cap-bytes N]
//! [--connect SOCK]`
//!
//! With no `--study`, every registered study runs. `CONFLUENCE_STORE=DIR`
//! also enables the persistent result store; `--connect` submits the
//! batch to a `confluence-serve` daemon instead of simulating in process.

use confluence_sim::cli;
use confluence_sim::sweeps;
use confluence_sim::Job;

const USAGE: &str = "sweeps [--list] [--study NAME]... [--quick] [--csv | --markdown] \
     [--threads N] [--store-dir DIR | --no-store] [--store-cap-bytes N] \
     [--peer SOCK]... [--peer-timeout-ms N] \
     [--no-warm-artifacts] [--no-fastpath] [--connect SOCK]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let switches = [cli::COMMON_SWITCHES, &["--list"]].concat();
    let values = [cli::COMMON_VALUE_FLAGS, &["--study", "--connect"]].concat();
    cli::reject_unknown_args(&args, &switches, &values, USAGE);
    if args.iter().any(|a| a == "--list") {
        for s in sweeps::registry() {
            println!(
                "{:16} {:28} {} points",
                s.name,
                s.axis.parameter(),
                s.axis.len()
            );
        }
        return;
    }

    let flags = cli::parse_common(&args);

    // Repeatable --study NAME / --study=NAME; no occurrences selects the
    // full registry.
    let resolve = |name: &str| match sweeps::find(name) {
        Some(spec) => spec,
        None => {
            eprintln!("error: unknown study '{name}' (try --list)");
            std::process::exit(2);
        }
    };
    let mut selected = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--study=") {
            selected.push(resolve(name));
        } else if args[i] == "--study" {
            match args.get(i + 1) {
                Some(name) if !name.starts_with("--") => {
                    selected.push(resolve(name));
                    i += 1;
                }
                _ => {
                    eprintln!("error: --study requires a name (try --list)");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    let studies = if selected.is_empty() {
        sweeps::registry()
    } else {
        selected
    };

    let cfg = flags.config();

    eprintln!("generating workloads...");
    let mut engine = cfg.engine().with_exec_mode(cli::exec_mode_from_args(&args));
    if let Some(n) = flags.threads {
        engine = engine.with_threads(n);
    }
    let engine = cli::attach_store(engine, &args);

    let jobs: Vec<Job> = studies.iter().flat_map(|s| s.jobs(&engine, &cfg)).collect();
    let run = cli::dispatch_batch(
        &engine,
        &jobs,
        &format!("across {} studies", studies.len()),
        &args,
    );
    let reports: Vec<_> = studies.iter().map(|s| s.report(&engine, &cfg)).collect();
    cli::finish_batch(&engine, &flags, &run, &reports, &args);
}
