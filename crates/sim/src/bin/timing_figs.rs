//! Regenerates the three timing figures (2, 6, 7) in one pass over a
//! shared engine: the batched job set is deduplicated, so the Baseline and
//! every design point shared between the figures is simulated once. The
//! batch is pure CMP timing work — the job class the engine's core-grain
//! shard lending exists for — so `--compare-serial` here measures the
//! two-phase tick's intra-job speedup specifically, and asserts the
//! sharded rendering is byte-identical to a fully serial reference.
//!
//! Usage: `timing_figs [--quick] [--csv|--markdown] [--threads N]
//! [--compare-serial] [--store-dir DIR | --no-store] [--store-cap-bytes N]
//! [--connect SOCK]`. `CONFLUENCE_STORE=DIR` also enables the persistent
//! result store; `--connect` submits the batch to a `confluence-serve`
//! daemon instead of simulating in process.

use confluence_sim::cli;
use confluence_sim::experiments::{self, ExperimentConfig, FIG2_DESIGNS, FIG6_DESIGNS};
use confluence_sim::report::Report;
use confluence_sim::SimEngine;

fn figure_jobs(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<confluence_sim::Job> {
    // Batch all three figures' jobs so shared design points run once.
    let mut jobs = experiments::fig_perf_area_jobs(engine, &FIG2_DESIGNS, cfg);
    jobs.extend(experiments::fig_perf_area_jobs(engine, &FIG6_DESIGNS, cfg));
    jobs.extend(experiments::fig7_jobs(engine, cfg));
    jobs
}

fn figures(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Report> {
    vec![
        experiments::fig2(engine, cfg),
        experiments::fig6(engine, cfg),
        experiments::fig7(engine, cfg),
    ]
}

const USAGE: &str = "timing_figs [--quick] [--csv | --markdown] [--compare-serial] \
     [--threads N] [--store-dir DIR | --no-store] [--store-cap-bytes N] \
     [--peer SOCK]... [--peer-timeout-ms N] \
     [--no-warm-artifacts] [--no-fastpath] [--connect SOCK]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let switches = [cli::COMMON_SWITCHES, &["--compare-serial"]].concat();
    let values = [cli::COMMON_VALUE_FLAGS, &["--connect"]].concat();
    cli::reject_unknown_args(&args, &switches, &values, USAGE);
    let flags = cli::parse_common(&args);
    let compare = args.iter().any(|a| a == "--compare-serial");
    let cfg = flags.config();
    let mut engine = cfg.engine().with_exec_mode(cli::exec_mode_from_args(&args));
    if let Some(n) = flags.threads {
        engine = engine.with_threads(n);
    }
    let engine = cli::attach_store(engine, &args);

    let jobs = figure_jobs(&engine, &cfg);
    let run = cli::dispatch_batch(&engine, &jobs, "for 3 timing figures", &args);
    let reports = figures(&engine, &cfg);
    let rendered = cli::finish_batch(&engine, &flags, &run, &reports, &args);

    if compare {
        cli::compare_serial(&engine, &flags, &jobs, &run, &rendered, |reference| {
            figures(reference, &cfg)
        });
    }
}
