//! Regenerates the three timing figures (2, 6, 7) in one pass, reusing the
//! generated workloads. Usage: `timing_figs [--quick] [--csv|--markdown]`.

use confluence_sim::experiments::{self, ExperimentConfig};
use confluence_sim::report::Report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let md = args.iter().any(|a| a == "--markdown");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::full() };
    let ws = cfg.workloads();
    let emit = |r: &Report| {
        if csv {
            println!("{}", r.to_csv());
        } else if md {
            println!("{}", r.to_markdown());
        } else {
            println!("{}", r.to_table());
        }
    };
    emit(&experiments::fig2(&ws, &cfg));
    emit(&experiments::fig6(&ws, &cfg));
    emit(&experiments::fig7(&ws, &cfg));
}
