//! Regenerates the three timing figures (2, 6, 7) in one pass over a
//! shared engine: the batched job set is deduplicated, so the Baseline and
//! every design point shared between the figures is simulated once.
//! Usage: `timing_figs [--quick] [--csv|--markdown] [--store-dir DIR | --no-store]`.
//! `CONFLUENCE_STORE=DIR` also enables the persistent result store.

use confluence_sim::cli;
use confluence_sim::experiments::{self, ExperimentConfig, FIG2_DESIGNS, FIG6_DESIGNS};
use confluence_sim::report::Report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let md = args.iter().any(|a| a == "--markdown");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    };
    let engine = cli::attach_store(cfg.engine(), &args);

    // Batch all three figures' jobs so shared design points run once.
    let mut jobs = experiments::fig_perf_area_jobs(&engine, &FIG2_DESIGNS, &cfg);
    jobs.extend(experiments::fig_perf_area_jobs(
        &engine,
        &FIG6_DESIGNS,
        &cfg,
    ));
    jobs.extend(experiments::fig7_jobs(&engine, &cfg));
    engine.run(&jobs);
    let stats = engine.stats();
    eprintln!(
        "engine: {} unique timing simulations for 3 figures ({} executed, {} from store)",
        stats.executed + stats.disk_hits,
        stats.executed,
        stats.disk_hits
    );

    let emit = |r: &Report| {
        if csv {
            println!("{}", r.to_csv());
        } else if md {
            println!("{}", r.to_markdown());
        } else {
            println!("{}", r.to_table());
        }
    };
    emit(&experiments::fig2(&engine, &cfg));
    emit(&experiments::fig6(&engine, &cfg));
    emit(&experiments::fig7(&engine, &cfg));
    eprintln!("{}", cli::cache_summary(&engine));
}
