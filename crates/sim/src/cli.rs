//! Shared command-line plumbing for the figure binaries: every runner
//! accepts the same persistent-store options and prints the same cache
//! summary.
//!
//! Resolution order for the store directory:
//!
//! 1. `--no-store` — run with the in-memory cache only;
//! 2. `--store-dir DIR` — explicit location;
//! 3. `CONFLUENCE_STORE=DIR` — environment override for CI and shells;
//! 4. otherwise no persistence.
//!
//! The store is always opened at the current [`SCHEMA_VERSION`]
//! (`crate::codec`), so entries written by older schemas are invisible
//! rather than wrong.

use std::path::PathBuf;

use confluence_store::ResultStore;

use crate::codec::SCHEMA_VERSION;
use crate::engine::SimEngine;
use crate::experiments::ExperimentConfig;
use crate::report::Report;

/// Environment variable naming the default store directory.
pub const STORE_ENV: &str = "CONFLUENCE_STORE";

/// The store directory the given command line asks for, if any.
/// Exits with status 2 on a malformed `--store-dir`.
pub fn store_dir_from_args(args: &[String]) -> Option<PathBuf> {
    if args.iter().any(|a| a == "--no-store") {
        return None;
    }
    if let Some(dir) = args.iter().find_map(|a| a.strip_prefix("--store-dir=")) {
        if dir.is_empty() {
            eprintln!("error: --store-dir requires a path");
            std::process::exit(2);
        }
        return Some(PathBuf::from(dir));
    }
    if let Some(i) = args.iter().position(|a| a == "--store-dir") {
        match args.get(i + 1) {
            Some(dir) if !dir.starts_with("--") => return Some(PathBuf::from(dir)),
            _ => {
                eprintln!("error: --store-dir requires a path");
                std::process::exit(2);
            }
        }
    }
    std::env::var_os(STORE_ENV)
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Attaches the persistent store requested by `args` (if any) to an
/// engine. Exits with status 2 if an explicitly requested store cannot
/// be opened — silently dropping persistence the caller asked for would
/// waste every simulation in the run.
pub fn attach_store(engine: SimEngine, args: &[String]) -> SimEngine {
    match store_dir_from_args(args) {
        Some(dir) => match ResultStore::open(&dir, SCHEMA_VERSION) {
            Ok(store) => engine.with_store(store),
            Err(e) => {
                eprintln!("error: cannot open result store at {}: {e}", dir.display());
                std::process::exit(2);
            }
        },
        None => engine,
    }
}

/// The flags shared by the multi-report binaries (`all_experiments`,
/// `sweeps`): scale, output format, and worker-pool width.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommonFlags {
    /// `--quick`: reduced simulation sizes.
    pub quick: bool,
    /// `--csv`: CSV output instead of aligned tables.
    pub csv: bool,
    /// `--markdown`: GitHub-flavoured markdown tables.
    pub markdown: bool,
    /// `--threads N`: explicit worker-pool width.
    pub threads: Option<usize>,
}

impl CommonFlags {
    /// The experiment configuration these flags select.
    pub fn config(&self) -> ExperimentConfig {
        if self.quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::full()
        }
    }

    /// Renders a report in the selected output format.
    pub fn render(&self, r: &Report) -> String {
        if self.csv {
            r.to_csv()
        } else if self.markdown {
            r.to_markdown()
        } else {
            r.to_table()
        }
    }
}

/// Parses the [`CommonFlags`] out of a command line. Exits with status 2
/// on a malformed `--threads`.
pub fn parse_common(args: &[String]) -> CommonFlags {
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) => Some(n),
            None => {
                eprintln!("error: --threads requires an integer value");
                std::process::exit(2);
            }
        },
        None => None,
    };
    CommonFlags {
        quick: args.iter().any(|a| a == "--quick"),
        csv: args.iter().any(|a| a == "--csv"),
        markdown: args.iter().any(|a| a == "--markdown"),
        threads,
    }
}

/// The whole main of a single-figure binary: parse the shared flags
/// ([`CommonFlags`] plus the store options), build the engine, render
/// the figure produced by `figure`, and print the cache summary to
/// stderr. The nine `figN`-style binaries differ only in the formatter
/// they pass.
pub fn run_figure(figure: fn(&SimEngine, &ExperimentConfig) -> Report) {
    let args: Vec<String> = std::env::args().collect();
    let flags = parse_common(&args);
    let cfg = flags.config();
    let mut engine = cfg.engine();
    if let Some(n) = flags.threads {
        engine = engine.with_threads(n);
    }
    let engine = attach_store(engine, &args);
    println!("{}", flags.render(&figure(&engine, &cfg)));
    eprintln!("{}", cache_summary(&engine));
}

/// One-line cache accounting for a finished run, printed to stderr by
/// every binary so report output on stdout stays byte-comparable.
pub fn cache_summary(engine: &SimEngine) -> String {
    let stats = engine.stats();
    let store = match engine.store() {
        Some(s) => {
            let usage = s.usage();
            format!(
                "store {} (schema v{}, {} entries, {} bytes)",
                s.root().display(),
                s.schema(),
                usage.entries,
                usage.bytes
            )
        }
        None => "store disabled".to_string(),
    };
    format!(
        "cache: {} requests = {} executed + {} memory hits + {} disk hits; {}",
        stats.requests, stats.executed, stats.hits, stats.disk_hits, store
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cache_summary_reports_store_entry_count_and_bytes() {
        let dir =
            std::env::temp_dir().join(format!("confluence-cli-summary-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir, SCHEMA_VERSION).expect("temp dir writable");
        let program = std::sync::Arc::new(
            confluence_trace::Program::generate(&confluence_trace::WorkloadSpec::tiny()).unwrap(),
        );
        let engine = SimEngine::new(vec![(confluence_trace::Workload::WebFrontend, program)])
            .with_store(store);
        assert!(cache_summary(&engine).contains("0 entries, 0 bytes"));

        engine.coverage(&crate::job::CoverageJob {
            workload: confluence_trace::Workload::WebFrontend,
            btb: crate::job::BtbSpec::Perfect,
            opts: crate::coverage::CoverageOptions {
                warmup_instrs: 5_000,
                measure_instrs: 5_000,
                ..Default::default()
            },
        });
        let bytes = engine.store().unwrap().size_bytes();
        assert!(bytes > 0, "execution must spill to the store");
        let summary = cache_summary(&engine);
        assert!(
            summary.contains(&format!("1 entries, {bytes} bytes")),
            "summary must carry the store usage: {summary}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn common_flags_parse() {
        let flags = parse_common(&args(&["--quick", "--csv", "--threads", "3"]));
        assert!(flags.quick && flags.csv && !flags.markdown);
        assert_eq!(flags.threads, Some(3));
        assert!(flags.config().quick);
        let defaults = parse_common(&args(&[]));
        assert!(!defaults.quick && !defaults.csv && !defaults.markdown);
        assert_eq!(defaults.threads, None);
        assert!(!defaults.config().quick);
    }

    #[test]
    fn no_store_wins_over_everything() {
        assert_eq!(
            store_dir_from_args(&args(&["--store-dir", "/tmp/x", "--no-store"])),
            None
        );
    }

    #[test]
    fn explicit_dir_is_used() {
        assert_eq!(
            store_dir_from_args(&args(&["--quick", "--store-dir", "/tmp/x"])),
            Some(PathBuf::from("/tmp/x"))
        );
    }

    #[test]
    fn equals_form_is_supported() {
        assert_eq!(
            store_dir_from_args(&args(&["--store-dir=/tmp/y"])),
            Some(PathBuf::from("/tmp/y"))
        );
    }

    #[test]
    fn absent_flags_and_env_mean_no_store() {
        // The test runner never sets CONFLUENCE_STORE; guard anyway.
        if std::env::var_os(STORE_ENV).is_none() {
            assert_eq!(store_dir_from_args(&args(&["--quick"])), None);
        }
    }
}
