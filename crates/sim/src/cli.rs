//! Shared command-line plumbing for the figure binaries: every runner
//! accepts the same persistent-store options and prints the same cache
//! summary.
//!
//! Resolution order for the store directory:
//!
//! 1. `--no-store` — run with the in-memory cache only;
//! 2. `--store-dir DIR` — explicit location;
//! 3. `CONFLUENCE_STORE=DIR` — environment override for CI and shells;
//! 4. otherwise no persistence.
//!
//! The store is always opened at the current [`SCHEMA_VERSION`]
//! (`crate::codec`), so entries written by older schemas are invisible
//! rather than wrong.
//!
//! With a store attached, runs also use its **warm-artifact tier** —
//! persisted path-memo tables that let executors replay from record zero
//! even in a cold process — unless `--no-warm-artifacts` (or the
//! [`NO_WARM_ARTIFACTS_ENV`](crate::engine::NO_WARM_ARTIFACTS_ENV)
//! environment variable) turns it off. Artifacts never change results,
//! only wall-clock time.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use confluence_store::ResultStore;
use confluence_trace::ExecMode;

use crate::codec::SCHEMA_VERSION;
use crate::engine::{EngineStats, SimEngine};
use crate::experiments::{unique_jobs, ExperimentConfig};
use crate::job::Job;
use crate::report::Report;

/// Environment variable naming the default store directory.
pub const STORE_ENV: &str = "CONFLUENCE_STORE";

/// Environment variable naming the default store size cap in bytes.
pub const STORE_CAP_ENV: &str = "CONFLUENCE_STORE_CAP";

/// Environment variable naming the default daemon socket for
/// `--connect` mode.
pub const CONNECT_ENV: &str = "CONFLUENCE_CONNECT";

/// Environment variable naming default peer sockets for the remote warm
/// tier (comma-separated, same order as repeated `--peer` flags).
pub const PEER_ENV: &str = "CONFLUENCE_PEER";

/// The boolean flags every engine-running binary accepts (the shared
/// half of each binary's known-flag table — see [`reject_unknown_args`]).
pub const COMMON_SWITCHES: &[&str] = &[
    "--quick",
    "--csv",
    "--markdown",
    "--no-store",
    "--no-warm-artifacts",
    "--no-fastpath",
];

/// The value-taking flags every engine-running binary accepts.
pub const COMMON_VALUE_FLAGS: &[&str] = &[
    "--threads",
    "--store-dir",
    "--store-cap-bytes",
    "--peer",
    "--peer-timeout-ms",
];

/// Everything on the command line that is not in the known-flag tables,
/// in argument order: unknown `--flags`, known switches spelled with a
/// value (`--quick=1`), and stray positional words. `value_flags`
/// consume the following token as their value (space form) unless it
/// looks like another flag, matching [`flag_value`]'s grammar exactly —
/// so a `--threads` with a missing value is *not* reported here (it is
/// `flag_value`'s own exit-2 case, with a more precise message).
pub fn find_unknown_args(args: &[String], switches: &[&str], value_flags: &[&str]) -> Vec<String> {
    let mut unknown = Vec::new();
    let mut i = 1; // args[0] is the binary path
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        if let Some(rest) = arg.strip_prefix("--") {
            let name: &str = &arg[..2 + rest.find('=').unwrap_or(rest.len())];
            let has_eq = rest.contains('=');
            if value_flags.contains(&name) {
                if !has_eq {
                    // Space-form value: consume it (when present).
                    if args.get(i).is_some_and(|v| !v.starts_with("--")) {
                        i += 1;
                    }
                }
            } else if !switches.contains(&name) || has_eq {
                unknown.push(arg.clone());
            }
        } else {
            unknown.push(arg.clone());
        }
    }
    unknown
}

/// The strict-parsing gate every binary runs right after collecting its
/// arguments: anything [`find_unknown_args`] flags is an error — printed
/// with the binary's usage line — and exit 2. Before this gate a typo
/// like `--qiuck` silently fell through the string probes and ran the
/// full multi-hour suite.
pub fn reject_unknown_args(args: &[String], switches: &[&str], value_flags: &[&str], usage: &str) {
    let unknown = find_unknown_args(args, switches, value_flags);
    if unknown.is_empty() {
        return;
    }
    for arg in &unknown {
        eprintln!("error: unrecognized argument '{arg}'");
    }
    eprintln!("usage: {usage}");
    std::process::exit(2);
}

/// The usage tail shared by every single-figure binary (see
/// [`run_figure`]); batch binaries append their extras to it.
pub const FIGURE_USAGE_TAIL: &str = "[--quick] [--csv | --markdown] [--threads N] \
     [--store-dir DIR | --no-store] [--store-cap-bytes N] \
     [--peer SOCK]... [--peer-timeout-ms N] \
     [--no-warm-artifacts] [--no-fastpath]";

/// The value of `--flag V` or `--flag=V` on the command line, else the
/// `env` fallback (when given and non-empty). `what` names the expected
/// value in the error message. Exits with status 2 when the flag is
/// present without a usable value — every option shared by the figure
/// binaries parses through this one helper, so the accepted spellings
/// cannot drift apart.
fn flag_value(args: &[String], flag: &str, what: &str, env: Option<&str>) -> Option<String> {
    let eq_form = format!("{flag}=");
    if let Some(v) = args.iter().find_map(|a| a.strip_prefix(eq_form.as_str())) {
        if v.is_empty() {
            eprintln!("error: {flag} requires {what}");
            std::process::exit(2);
        }
        return Some(v.to_string());
    }
    if let Some(i) = args.iter().position(|a| a == flag) {
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => return Some(v.clone()),
            _ => {
                eprintln!("error: {flag} requires {what}");
                std::process::exit(2);
            }
        }
    }
    env.and_then(std::env::var_os)
        .filter(|v| !v.is_empty())
        .and_then(|v| v.into_string().ok())
}

/// Every value of a **repeatable** `--flag V` / `--flag=V`, in command
/// line order; when the flag never appears, the `env` fallback split on
/// commas. Exits with status 2 on any occurrence without a usable value
/// — a silently dropped peer would quietly turn a fleet-warm run cold.
fn flag_values(args: &[String], flag: &str, what: &str, env: Option<&str>) -> Vec<String> {
    let eq_form = format!("{flag}=");
    let mut values = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        if let Some(v) = arg.strip_prefix(eq_form.as_str()) {
            if v.is_empty() {
                eprintln!("error: {flag} requires {what}");
                std::process::exit(2);
            }
            values.push(v.to_string());
        } else if arg == flag {
            match args.get(i) {
                Some(v) if !v.starts_with("--") => {
                    values.push(v.clone());
                    i += 1;
                }
                _ => {
                    eprintln!("error: {flag} requires {what}");
                    std::process::exit(2);
                }
            }
        }
    }
    if values.is_empty() {
        if let Some(list) = env
            .and_then(std::env::var_os)
            .filter(|v| !v.is_empty())
            .and_then(|v| v.into_string().ok())
        {
            values.extend(
                list.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from),
            );
        }
    }
    values
}

/// The execution mode the given command line asks for: `--no-fastpath`
/// forces the reference interpreter, otherwise the
/// [`CONFLUENCE_NO_FASTPATH`](confluence_trace::NO_FASTPATH_ENV)
/// environment variable decides (defaulting to the compiled fast path).
/// Either way the outputs are bit-identical — the flag only trades speed
/// for a shorter audit trail.
pub fn exec_mode_from_args(args: &[String]) -> ExecMode {
    if args.iter().any(|a| a == "--no-fastpath") {
        ExecMode::Reference
    } else {
        ExecMode::from_env()
    }
}

/// The store directory the given command line asks for, if any.
/// Exits with status 2 on a malformed `--store-dir`.
pub fn store_dir_from_args(args: &[String]) -> Option<PathBuf> {
    if args.iter().any(|a| a == "--no-store") {
        return None;
    }
    flag_value(args, "--store-dir", "a path", Some(STORE_ENV)).map(PathBuf::from)
}

/// The daemon socket the command line asks to run against, if any: the
/// `--connect` flag, else the `CONFLUENCE_CONNECT` environment
/// variable. With a socket set, the batch binaries submit their jobs to
/// a running `confluence-serve` instead of simulating in process.
/// Exits with status 2 on a malformed `--connect`.
pub fn connect_from_args(args: &[String]) -> Option<PathBuf> {
    flag_value(args, "--connect", "a socket path", Some(CONNECT_ENV)).map(PathBuf::from)
}

/// The socket path a daemon invocation asks to listen on (`--socket`).
/// Exits with status 2 on a malformed value.
pub fn socket_from_args(args: &[String]) -> Option<PathBuf> {
    flag_value(args, "--socket", "a socket path", None).map(PathBuf::from)
}

/// The per-peer I/O timeout the command line asks for
/// (`--peer-timeout-ms`), defaulting to
/// [`DEFAULT_PEER_TIMEOUT`](crate::peers::DEFAULT_PEER_TIMEOUT).
/// Exits with status 2 on a malformed value.
pub fn peer_timeout_from_args(args: &[String]) -> Duration {
    match flag_value(args, "--peer-timeout-ms", "a millisecond count", None) {
        Some(v) => Duration::from_millis(v.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("error: --peer-timeout-ms requires a millisecond count, got '{v}'");
            std::process::exit(2);
        })),
        None => crate::peers::DEFAULT_PEER_TIMEOUT,
    }
}

/// The remote warm tier the command line asks for: every `--peer SOCK`
/// (repeatable, consulted in order), else the comma-separated
/// [`PEER_ENV`] fallback. Returns `None` when no peers are named. Exits
/// with status 2 on a `--peer` without a value or a malformed
/// `--peer-timeout-ms`.
pub fn peers_from_args(args: &[String]) -> Option<crate::peers::PeerSet> {
    let sockets: Vec<PathBuf> = flag_values(args, "--peer", "a socket path", Some(PEER_ENV))
        .into_iter()
        .map(PathBuf::from)
        .collect();
    if sockets.is_empty() {
        return None;
    }
    Some(crate::peers::PeerSet::new(
        sockets,
        peer_timeout_from_args(args),
    ))
}

/// Whether the command line leaves the store's warm-artifact tier on:
/// `--no-warm-artifacts` turns it off, everything else defers to the
/// engine's environment-resolved default.
pub fn warm_artifacts_from_args(args: &[String]) -> bool {
    !args.iter().any(|a| a == "--no-warm-artifacts")
}

/// Attaches the persistent store requested by `args` (if any) to an
/// engine, honouring `--no-warm-artifacts`. Exits with status 2 if an
/// explicitly requested store cannot be opened — silently dropping
/// persistence the caller asked for would waste every simulation in the
/// run.
pub fn attach_store(engine: SimEngine, args: &[String]) -> SimEngine {
    // In connect mode persistence belongs to the daemon: jobs never
    // execute locally, so a local store would only record nothing and
    // confuse the accounting. The same goes for peers — read-through
    // happens on whichever engine executes, which is the daemon's.
    if connect_from_args(args).is_some() {
        if store_dir_from_args(args).is_some() {
            eprintln!(
                "note: --connect routes jobs to the daemon's store; ignoring the local store"
            );
        }
        if peers_from_args(args).is_some() {
            eprintln!(
                "note: --connect routes jobs to the daemon; pass --peer to the daemon instead"
            );
        }
        return engine;
    }
    let engine = if warm_artifacts_from_args(args) {
        engine
    } else {
        engine.with_warm_artifacts(false)
    };
    let engine = match store_dir_from_args(args) {
        Some(dir) => match ResultStore::open(&dir, SCHEMA_VERSION) {
            Ok(store) => engine.with_store(store),
            Err(e) => {
                eprintln!("error: cannot open result store at {}: {e}", dir.display());
                std::process::exit(2);
            }
        },
        None => engine,
    };
    match peers_from_args(args) {
        Some(peers) => {
            // Fetched entries are promoted into the local store before
            // they serve — that write-through is what makes a lying
            // peer recoverable (adopt re-verifies every byte) and what
            // keeps repeat runs local. No store, nowhere to promote.
            if engine.store().is_none() {
                eprintln!(
                    "error: --peer requires a persistent store to promote fetched entries \
                     into; pass --store-dir DIR (or set {STORE_ENV})"
                );
                std::process::exit(2);
            }
            engine.with_peers(peers)
        }
        None => engine,
    }
}

/// The store size cap the command line asks for, if any: the
/// `--store-cap-bytes` flag, else the `CONFLUENCE_STORE_CAP` environment
/// variable. Exits with status 2 on a malformed value.
pub fn store_cap_from_args(args: &[String]) -> Option<u64> {
    flag_value(
        args,
        "--store-cap-bytes",
        "a byte count",
        Some(STORE_CAP_ENV),
    )
    .map(|v| {
        v.parse::<u64>().unwrap_or_else(|_| {
            // Name whichever spelling actually supplied the bad value so
            // the fix is obvious from the message alone.
            let source = if args
                .iter()
                .any(|a| a == "--store-cap-bytes" || a.starts_with("--store-cap-bytes="))
            {
                "--store-cap-bytes"
            } else {
                STORE_CAP_ENV
            };
            eprintln!("error: {source} requires a byte count, got '{v}'");
            std::process::exit(2);
        })
    })
}

/// Applies the requested store cap (if any) after a batch: evicts
/// oldest-written entries until the store fits, reporting what went. Runs
/// after the batch — never between jobs — so a capped store still serves
/// every intra-run hit and only sheds history it can re-derive.
pub fn run_store_gc(engine: &SimEngine, args: &[String]) {
    let (Some(store), Some(cap)) = (engine.store(), store_cap_from_args(args)) else {
        return;
    };
    let gc = store.evict_to_cap(cap);
    if gc.evicted_entries > 0 {
        eprintln!(
            "store gc: evicted {} entries ({} bytes) to fit the {} byte cap",
            gc.evicted_entries, gc.evicted_bytes, cap
        );
    }
}

/// The store tail of every run: write newly recorded path-memo tables
/// back to the warm-artifact tier, then apply the requested GC cap (the
/// order matters — fresh artifacts must be on disk before the cap
/// decides what to shed). A no-op without a store.
pub fn finish_store(engine: &SimEngine, args: &[String]) {
    let written = engine.persist_warm_artifacts();
    if written > 0 {
        eprintln!("warm artifacts: wrote {written} memo table(s) to the store");
    }
    run_store_gc(engine, args);
}

/// The flags shared by the multi-report binaries (`all_experiments`,
/// `sweeps`): scale, output format, and worker-pool width.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommonFlags {
    /// `--quick`: reduced simulation sizes.
    pub quick: bool,
    /// `--csv`: CSV output instead of aligned tables.
    pub csv: bool,
    /// `--markdown`: GitHub-flavoured markdown tables.
    pub markdown: bool,
    /// `--threads N`: explicit worker-pool width.
    pub threads: Option<usize>,
}

impl CommonFlags {
    /// The experiment configuration these flags select.
    pub fn config(&self) -> ExperimentConfig {
        if self.quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::full()
        }
    }

    /// Renders a report in the selected output format.
    pub fn render(&self, r: &Report) -> String {
        if self.csv {
            r.to_csv()
        } else if self.markdown {
            r.to_markdown()
        } else {
            r.to_table()
        }
    }
}

/// Parses the [`CommonFlags`] out of a command line. Exits with status 2
/// on a malformed `--threads`, a malformed store cap
/// (`--store-cap-bytes` / `CONFLUENCE_STORE_CAP`), or a malformed
/// [`CONFLUENCE_MEMO_CAP`](confluence_trace::MEMO_CAP_ENV) — bad knobs
/// fail up front, before any workload is generated, instead of being
/// silently replaced by defaults mid-run.
pub fn parse_common(args: &[String]) -> CommonFlags {
    if let Err(e) = confluence_trace::MemoCaps::try_from_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    store_cap_from_args(args); // exits 2 on a malformed cap
    let threads = flag_value(args, "--threads", "an integer value", None).map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("error: --threads requires an integer value, got '{v}'");
            std::process::exit(2);
        })
    });
    CommonFlags {
        quick: args.iter().any(|a| a == "--quick"),
        csv: args.iter().any(|a| a == "--csv"),
        markdown: args.iter().any(|a| a == "--markdown"),
        threads,
    }
}

/// The whole main of a single-figure binary: parse the shared flags
/// ([`CommonFlags`] plus the store options), build the engine, render
/// the figure produced by `figure`, and print the cache summary to
/// stderr. The nine `figN`-style binaries differ only in the formatter
/// they pass.
pub fn run_figure(figure: fn(&SimEngine, &ExperimentConfig) -> Report) {
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .first()
        .map(|p| {
            std::path::Path::new(p)
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.clone())
        })
        .unwrap_or_else(|| "figure".to_string());
    reject_unknown_args(
        &args,
        COMMON_SWITCHES,
        COMMON_VALUE_FLAGS,
        &format!("{name} {FIGURE_USAGE_TAIL}"),
    );
    let flags = parse_common(&args);
    let cfg = flags.config();
    let mut engine = cfg.engine().with_exec_mode(exec_mode_from_args(&args));
    if let Some(n) = flags.threads {
        engine = engine.with_threads(n);
    }
    let engine = attach_store(engine, &args);
    println!("{}", flags.render(&figure(&engine, &cfg)));
    finish_store(&engine, &args);
    eprintln!("{}", cache_summary(&engine));
}

/// Accounting from one [`run_batch`] pass, consumed by [`finish_batch`]
/// (purity baseline) and [`compare_serial`] (timed reference).
pub struct BatchRun {
    /// Engine accounting right after the batch returned.
    pub stats: EngineStats,
    /// Wall-clock time of the batch.
    pub elapsed: Duration,
    /// Distinct job keys in the batch.
    pub unique: usize,
    /// The daemon's per-batch accounting, when the batch ran over
    /// `--connect` instead of in process. [`finish_batch`] renders the
    /// cache summary from this instead of the (execution-free) local
    /// engine counters.
    pub daemon: Option<confluence_serve::BatchStats>,
}

/// The batch-run half of a multi-report binary's main: announce the
/// batch, execute it on the engine's pool, and assert the engine's
/// headline contract — every unique simulation ran exactly once or came
/// from the persistent store. The `context` string names the batch in
/// the announcement ("across figures", "across 6 studies", ...).
pub fn run_batch(engine: &SimEngine, jobs: &[Job], context: &str) -> BatchRun {
    let unique = unique_jobs(jobs);
    eprintln!(
        "running {} unique simulations ({} requested {context}) on {} thread(s)...",
        unique,
        jobs.len(),
        engine.threads()
    );
    let start = Instant::now();
    engine.run(jobs);
    let elapsed = start.elapsed();
    let stats = engine.stats();
    assert_eq!(
        stats.executed + stats.disk_hits,
        unique as u64,
        "each unique simulation must be executed once or served from the store"
    );
    eprintln!(
        "engine: executed {} simulations in {:.2?} ({} requests, {} memory hits, {} disk hits)",
        stats.executed, elapsed, stats.requests, stats.hits, stats.disk_hits
    );
    BatchRun {
        stats,
        elapsed,
        unique,
        daemon: None,
    }
}

/// Routes one batch by command line: [`run_batch_connected`] when
/// `--connect` (or `CONFLUENCE_CONNECT`) names a daemon socket,
/// [`run_batch`] in process otherwise. The batch binaries call this so
/// the daemon mode threads through every one of them identically.
pub fn dispatch_batch(
    engine: &SimEngine,
    jobs: &[Job],
    context: &str,
    args: &[String],
) -> BatchRun {
    match connect_from_args(args) {
        Some(sock) => run_batch_connected(engine, jobs, context, &sock),
        None => run_batch(engine, jobs, context),
    }
}

/// The `--connect` counterpart of [`run_batch`]: submit the jobs to the
/// daemon at `sock`, seed every result into the local engine's cache
/// (so the caller's formatters are pure local reads, and stdout is
/// byte-identical to an in-process run), and report the daemon's
/// per-batch accounting. Exits with status 1 on any daemon failure —
/// there is no silent local fallback, because a half-remote run would
/// produce correct output while quietly not testing what was asked.
pub fn run_batch_connected(
    engine: &SimEngine,
    jobs: &[Job],
    context: &str,
    sock: &std::path::Path,
) -> BatchRun {
    let unique = unique_jobs(jobs);
    eprintln!(
        "submitting {} unique simulations ({} requested {context}) to the daemon at {}...",
        unique,
        jobs.len(),
        sock.display()
    );
    let start = Instant::now();
    let stats = match crate::daemon::submit_jobs(sock, engine, jobs) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = start.elapsed();
    eprintln!(
        "daemon: executed {} simulations in {:.2?} ({} requests, {} memory hits, {} disk hits)",
        stats.executed, elapsed, stats.requests, stats.hits, stats.disk_hits
    );
    BatchRun {
        stats: engine.stats(),
        elapsed,
        unique,
        daemon: Some(stats),
    }
}

/// The rendering half: print every report in the selected format, assert
/// that formatting was pure cache reads (no re-simulation), apply the
/// requested store GC, and print the cache summary. Returns the rendered
/// reports so `--compare-serial` can diff them against a reference run.
pub fn finish_batch(
    engine: &SimEngine,
    flags: &CommonFlags,
    run: &BatchRun,
    reports: &[Report],
    args: &[String],
) -> Vec<String> {
    let rendered: Vec<String> = reports.iter().map(|r| flags.render(r)).collect();
    for out in &rendered {
        println!("{out}");
    }
    let final_stats = engine.stats();
    assert_eq!(
        (final_stats.executed, final_stats.disk_hits),
        (run.stats.executed, run.stats.disk_hits),
        "formatting must be pure cache hits"
    );
    finish_store(engine, args);
    match &run.daemon {
        Some(stats) => eprintln!("{}", daemon_cache_summary(stats)),
        None => eprintln!("{}", cache_summary(engine)),
    }
    rendered
}

/// The `--compare-serial` tail of a multi-report binary: re-run the same
/// batch on a fresh single-threaded engine (sharing the `Arc`'d
/// programs, never the cache), assert its rendering is **byte-identical**
/// to the parallel run's, and report the speedup — the validation hook
/// for both job-grain parallelism and the core-grain two-phase tick.
///
/// Skipped with an explanation when a store is attached: warm, the timed
/// run measured disk reads; cold, it paid store writes the reference
/// would not — either way the wall-clocks would not compare simulation
/// against simulation.
pub fn compare_serial(
    engine: &SimEngine,
    flags: &CommonFlags,
    jobs: &[Job],
    run: &BatchRun,
    parallel_rendering: &[String],
    render: impl Fn(&SimEngine) -> Vec<Report>,
) {
    if engine.store().is_some() {
        eprintln!(
            "skipping serial comparison: a result store was attached to the timed \
             run ({} jobs served from disk), so wall-clocks are not comparable \
             (re-run with --no-store to compare)",
            run.stats.disk_hits
        );
        return;
    }
    eprintln!("re-running the batch serially for comparison...");
    let reference = SimEngine::new(engine.workloads().to_vec())
        .with_threads(1)
        .with_exec_mode(engine.exec_mode());
    let start = Instant::now();
    reference.run(jobs);
    let serial_elapsed = start.elapsed();
    assert_eq!(
        reference.stats().executed,
        run.unique as u64,
        "the serial reference must actually simulate every unique job"
    );
    let serial_rendering: Vec<String> =
        render(&reference).iter().map(|r| flags.render(r)).collect();
    assert_eq!(
        serial_rendering, parallel_rendering,
        "serial and parallel runs must render identical reports"
    );
    eprintln!(
        "serial reference output is byte-identical to the parallel run ({} reports)",
        serial_rendering.len()
    );
    eprintln!(
        "serial: {:.2?}; parallel: {:.2?}; speedup {:.2}x on {} threads",
        serial_elapsed,
        run.elapsed,
        serial_elapsed.as_secs_f64() / run.elapsed.as_secs_f64(),
        engine.threads()
    );
}

/// One-line cache accounting for a finished run, printed to stderr by
/// every binary so report output on stdout stays byte-comparable. The
/// trailing memo section is the warm-path audit trail: a fully
/// artifact-warm run shows replay hits with `0 recorded` (CI asserts
/// exactly that).
pub fn cache_summary(engine: &SimEngine) -> String {
    let stats = engine.stats();
    let store = match engine.store() {
        Some(s) => {
            let usage = s.usage();
            store_segment(
                &s.root().display().to_string(),
                s.schema(),
                usage.entries as u64,
                usage.bytes,
                usage.artifacts as u64,
                usage.artifact_bytes,
            )
        }
        None => "store disabled".to_string(),
    };
    let memo = engine.memo_stats();
    summary_line(
        "cache",
        &stats,
        &store,
        memo.replayed,
        memo.recorded,
        memo.live,
        memo.tables as u64,
        memo.steps as u64,
    )
}

/// The same one-line accounting, rendered from a daemon's `BatchDone`
/// stats instead of a local engine — so a `--connect` run's stderr
/// carries the identical audit trail (CI greps the `0 recorded` memo
/// tail on warm daemon runs exactly as it does in process). The
/// `daemon cache:` prefix marks whose counters these are.
pub fn daemon_cache_summary(stats: &confluence_serve::BatchStats) -> String {
    let store = match &stats.store {
        Some(l) => store_segment(
            &l.root,
            l.schema,
            l.entries,
            l.bytes,
            l.artifacts,
            l.artifact_bytes,
        ),
        None => "store disabled".to_string(),
    };
    let engine_stats = EngineStats {
        requests: stats.requests,
        executed: stats.executed,
        hits: stats.hits,
        disk_hits: stats.disk_hits,
        remote_hits: stats.remote_hits,
        remote_round_trips: stats.remote_round_trips,
        remote_bytes: stats.remote_bytes,
    };
    summary_line(
        "daemon cache",
        &engine_stats,
        &store,
        stats.memo_replayed,
        stats.memo_recorded,
        stats.memo_live,
        stats.memo_tables,
        stats.memo_steps,
    )
}

/// The store segment of a cache summary, shared by the local and daemon
/// renderings so the two cannot drift apart.
fn store_segment(
    root: &str,
    schema: u32,
    entries: u64,
    bytes: u64,
    artifacts: u64,
    artifact_bytes: u64,
) -> String {
    format!(
        "store {root} (schema v{schema}, {entries} entries, {bytes} bytes, \
         {artifacts} artifacts, {artifact_bytes} artifact bytes)"
    )
}

#[allow(clippy::too_many_arguments)]
fn summary_line(
    label: &str,
    stats: &EngineStats,
    store: &str,
    replayed: u64,
    recorded: u64,
    live: u64,
    tables: u64,
    steps: u64,
) -> String {
    // The remote tail is always rendered — `0 fetched` on peerless runs —
    // so scripts can grep one stable shape everywhere (local, daemon,
    // and search summaries alike).
    format!(
        "{label}: {} requests = {} executed + {} memory hits + {} disk hits; {store}; \
         memo: {replayed} replay hits, {recorded} recorded, {live} live, \
         {tables} tables ({steps} steps); \
         remote: {} fetched, {} bytes, {} round trip(s)",
        stats.requests,
        stats.executed,
        stats.hits,
        stats.disk_hits,
        stats.remote_hits,
        stats.remote_bytes,
        stats.remote_round_trips,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cache_summary_reports_store_entry_count_and_bytes() {
        let dir =
            std::env::temp_dir().join(format!("confluence-cli-summary-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir, SCHEMA_VERSION).expect("temp dir writable");
        let program = std::sync::Arc::new(
            confluence_trace::Program::generate(&confluence_trace::WorkloadSpec::tiny()).unwrap(),
        );
        let engine = SimEngine::new(vec![(confluence_trace::Workload::WebFrontend, program)])
            .with_store(store);
        assert!(cache_summary(&engine).contains("0 entries, 0 bytes"));

        engine.coverage(&crate::job::CoverageJob {
            workload: confluence_trace::Workload::WebFrontend,
            btb: crate::job::BtbSpec::Perfect,
            opts: crate::coverage::CoverageOptions {
                warmup_instrs: 5_000,
                measure_instrs: 5_000,
                ..Default::default()
            },
        });
        let bytes = engine.store().unwrap().size_bytes();
        assert!(bytes > 0, "execution must spill to the store");
        let summary = cache_summary(&engine);
        assert!(
            summary.contains(&format!("1 entries, {bytes} bytes")),
            "summary must carry the store usage: {summary}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn common_flags_parse() {
        let flags = parse_common(&args(&["--quick", "--csv", "--threads", "3"]));
        assert!(flags.quick && flags.csv && !flags.markdown);
        assert_eq!(flags.threads, Some(3));
        // The shared flag parser accepts the `=` spelling everywhere.
        assert_eq!(parse_common(&args(&["--threads=5"])).threads, Some(5));
        assert!(flags.config().quick);
        let defaults = parse_common(&args(&[]));
        assert!(!defaults.quick && !defaults.csv && !defaults.markdown);
        assert_eq!(defaults.threads, None);
        assert!(!defaults.config().quick);
    }

    #[test]
    fn store_cap_parses_both_spellings() {
        assert_eq!(
            store_cap_from_args(&args(&["--store-cap-bytes", "4096"])),
            Some(4096)
        );
        assert_eq!(
            store_cap_from_args(&args(&["--store-cap-bytes=123456"])),
            Some(123456)
        );
        if std::env::var_os(STORE_CAP_ENV).is_none() {
            assert_eq!(store_cap_from_args(&args(&["--quick"])), None);
        }
    }

    #[test]
    fn warm_artifact_flag_parses() {
        assert!(warm_artifacts_from_args(&args(&["--quick"])));
        assert!(!warm_artifacts_from_args(&args(&[
            "--quick",
            "--no-warm-artifacts"
        ])));
    }

    #[test]
    fn cache_summary_carries_the_memo_audit_trail() {
        let program = std::sync::Arc::new(
            confluence_trace::Program::generate(&confluence_trace::WorkloadSpec::tiny()).unwrap(),
        );
        let engine = SimEngine::new(vec![(confluence_trace::Workload::WebFrontend, program)]);
        let summary = cache_summary(&engine);
        assert!(
            summary.contains("memo: 0 replay hits, 0 recorded, 0 live, 0 tables (0 steps)"),
            "untranslated engine reports an empty memo section: {summary}"
        );
        engine.coverage(&crate::job::CoverageJob {
            workload: confluence_trace::Workload::WebFrontend,
            btb: crate::job::BtbSpec::Perfect,
            opts: crate::coverage::CoverageOptions {
                warmup_instrs: 5_000,
                measure_instrs: 5_000,
                ..Default::default()
            },
        });
        let memo = engine.memo_stats();
        assert!(memo.recorded > 0, "a cold run records paths");
        assert!(
            cache_summary(&engine).contains(&format!("{} recorded", memo.recorded)),
            "summary must carry the memo counters"
        );
    }

    #[test]
    fn unknown_args_catches_typos_and_strays() {
        let check = |list: &[&str]| -> Vec<String> {
            // Prepend the binary-path slot the real args vector has.
            let mut full = vec!["target/debug/fig1".to_string()];
            full.extend(list.iter().map(|s| s.to_string()));
            find_unknown_args(&full, COMMON_SWITCHES, COMMON_VALUE_FLAGS)
        };
        // A typo'd switch is flagged; so is a bare positional word.
        assert_eq!(check(&["--qiuck"]), vec!["--qiuck"]);
        assert_eq!(check(&["--quick", "extra"]), vec!["extra"]);
        // A known switch spelled with a value is an error, not a value flag.
        assert_eq!(check(&["--quick=1"]), vec!["--quick=1"]);
        // Multiple offenders are all reported, in order.
        assert_eq!(
            check(&["--stduy", "history", "--quick", "--csvv"]),
            vec!["--stduy", "history", "--csvv"]
        );
    }

    #[test]
    fn unknown_args_accepts_well_formed_lines() {
        let check = |list: &[&str]| -> Vec<String> {
            let mut full = vec!["target/debug/fig1".to_string()];
            full.extend(list.iter().map(|s| s.to_string()));
            find_unknown_args(&full, COMMON_SWITCHES, COMMON_VALUE_FLAGS)
        };
        assert!(check(&[]).is_empty());
        assert!(check(&["--quick", "--csv"]).is_empty());
        // Value flags consume their value in both spellings.
        assert!(check(&["--threads", "3", "--store-dir", "/tmp/x"]).is_empty());
        assert!(check(&["--threads=3", "--store-dir=/tmp/x", "--quick"]).is_empty());
        assert!(check(&["--store-cap-bytes", "4096", "--no-store"]).is_empty());
        // A value flag with a missing value is flag_value's case, not ours.
        assert!(check(&["--threads"]).is_empty());
        assert!(check(&["--threads", "--quick"]).is_empty());
        // Extra per-binary flags extend the tables.
        let switches = [COMMON_SWITCHES, &["--list"]].concat();
        let values = [COMMON_VALUE_FLAGS, &["--study"]].concat();
        let mut full = vec!["sweeps".to_string()];
        full.extend(
            ["--list", "--study", "history", "--study=btb-capacity"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(find_unknown_args(&full, &switches, &values).is_empty());
    }

    #[test]
    fn no_store_wins_over_everything() {
        assert_eq!(
            store_dir_from_args(&args(&["--store-dir", "/tmp/x", "--no-store"])),
            None
        );
    }

    #[test]
    fn explicit_dir_is_used() {
        assert_eq!(
            store_dir_from_args(&args(&["--quick", "--store-dir", "/tmp/x"])),
            Some(PathBuf::from("/tmp/x"))
        );
    }

    #[test]
    fn equals_form_is_supported() {
        assert_eq!(
            store_dir_from_args(&args(&["--store-dir=/tmp/y"])),
            Some(PathBuf::from("/tmp/y"))
        );
    }

    #[test]
    fn absent_flags_and_env_mean_no_store() {
        // The test runner never sets CONFLUENCE_STORE; guard anyway.
        if std::env::var_os(STORE_ENV).is_none() {
            assert_eq!(store_dir_from_args(&args(&["--quick"])), None);
        }
    }
}
