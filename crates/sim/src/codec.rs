//! The versioned binary schema for persisting engine results: how a
//! [`Job`] key and a [`JobOutput`] value are laid out on the wire.
//!
//! Built on `confluence_store`'s [`Encode`]/[`Decode`] traits and wire
//! conventions (varint integers, bit-exact `f64`, 1-byte enum tags).
//! Domain types owned by other crates (`Workload`, `CoreParams`,
//! `MemParams`, `AirBtbMode`) are encoded through free functions here so
//! the whole schema lives in one reviewable file.
//!
//! **Versioning contract:** any change to these encodings — or to the
//! simulators, such that an old stored result would no longer equal a
//! fresh run — must bump [`SCHEMA_VERSION`]. The store segregates entries
//! by version, so a bump silently orphans old entries rather than
//! serving stale results. Tag values and field orders below are pinned
//! by the golden-bytes tests at the bottom of this file.

use std::sync::Arc;

use confluence_core::AirBtbMode;
use confluence_store::{Decode, Encode, Reader, WireError};
use confluence_trace::{Program, Workload, WorkloadSpec};
use confluence_uarch::{CoreParams, MemParams};

use crate::cmp::{TimingConfig, TimingResult};
use crate::coverage::{CoverageOptions, CoverageResult};
use crate::designs::DesignPoint;
use crate::job::{BtbSpec, CoverageJob, DensityJob, Job, JobOutput, TimingJob};
use crate::timing::CoreStats;

/// Version of the persisted schema: job keys, output values, and the
/// simulator behavior they summarize. Bump on any change that would make
/// a stored result differ from a fresh simulation.
pub const SCHEMA_VERSION: u32 = 1;

/// The on-disk lookup key: the job *and* the workload spec its program
/// was generated from. `Job` alone names the workload by enum variant,
/// which aliases across configurations that tune the generator (quick
/// mode quarters `target_code_kb`); folding the full spec into the key
/// keeps such runs from ever sharing an entry.
#[derive(Clone, Copy, Debug)]
pub struct StoreKey<'a> {
    /// Spec of the program the job executes against.
    pub spec: &'a WorkloadSpec,
    /// The content-keyed job itself.
    pub job: &'a Job,
}

impl Encode for StoreKey<'_> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_spec(self.spec, out);
        self.job.encode(out);
    }
}

/// The on-disk key of a workload's warm-execution artifact (its
/// converged path-memo table): a domain tag plus the generating spec.
/// Program generation and translation are deterministic functions of the
/// spec, so the spec's content hash names the memo exactly; the domain
/// tag keeps artifact keys from ever colliding with [`StoreKey`] bytes
/// even though the tiers already live in separate files.
#[derive(Clone, Copy, Debug)]
pub struct ArtifactKey<'a> {
    /// Spec of the program the memo was converged over.
    pub spec: &'a WorkloadSpec,
}

impl Encode for ArtifactKey<'_> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"warm-memo");
        encode_spec(self.spec, out);
    }
}

fn tag_error(offset: usize, reason: &'static str) -> WireError {
    WireError { offset, reason }
}

// ---------------------------------------------------------------------------
// Foreign leaf types (encoded via free functions; tags are schema-pinned).

fn encode_workload(w: Workload, out: &mut Vec<u8>) {
    out.push(match w {
        Workload::OltpDb2 => 0,
        Workload::OltpOracle => 1,
        Workload::DssQueries => 2,
        Workload::MediaStreaming => 3,
        Workload::WebFrontend => 4,
    });
}

fn decode_workload(r: &mut Reader<'_>) -> Result<Workload, WireError> {
    let offset = r.offset();
    Ok(match r.u8()? {
        0 => Workload::OltpDb2,
        1 => Workload::OltpOracle,
        2 => Workload::DssQueries,
        3 => Workload::MediaStreaming,
        4 => Workload::WebFrontend,
        _ => return Err(tag_error(offset, "unknown workload tag")),
    })
}

fn encode_airbtb_mode(m: AirBtbMode, out: &mut Vec<u8>) {
    out.push(match m {
        AirBtbMode::CapacityOnly => 0,
        AirBtbMode::SpatialLocality => 1,
        AirBtbMode::Prefetching => 2,
        AirBtbMode::Full => 3,
    });
}

fn decode_airbtb_mode(r: &mut Reader<'_>) -> Result<AirBtbMode, WireError> {
    let offset = r.offset();
    Ok(match r.u8()? {
        0 => AirBtbMode::CapacityOnly,
        1 => AirBtbMode::SpatialLocality,
        2 => AirBtbMode::Prefetching,
        3 => AirBtbMode::Full,
        _ => return Err(tag_error(offset, "unknown AirBTB mode tag")),
    })
}

fn encode_core_params(p: &CoreParams, out: &mut Vec<u8>) {
    p.fetch_queue_regions.encode(out);
    p.btb_miss_seq_instrs.encode(out);
    p.misfetch_penalty.encode(out);
    p.mispredict_penalty.encode(out);
    p.retire_width.encode(out);
    p.instr_buffer.encode(out);
    p.predictions_per_cycle.encode(out);
    p.fetch_width.encode(out);
}

fn decode_core_params(r: &mut Reader<'_>) -> Result<CoreParams, WireError> {
    Ok(CoreParams {
        fetch_queue_regions: Decode::decode(r)?,
        btb_miss_seq_instrs: Decode::decode(r)?,
        misfetch_penalty: Decode::decode(r)?,
        mispredict_penalty: Decode::decode(r)?,
        retire_width: Decode::decode(r)?,
        instr_buffer: Decode::decode(r)?,
        predictions_per_cycle: Decode::decode(r)?,
        fetch_width: Decode::decode(r)?,
    })
}

fn encode_mem_params(p: &MemParams, out: &mut Vec<u8>) {
    p.l1i_bytes.encode(out);
    p.l1i_ways.encode(out);
    p.l1i_latency.encode(out);
    p.l1i_mshrs.encode(out);
    p.cores.encode(out);
    p.llc_slice_bytes.encode(out);
    p.llc_ways.encode(out);
    p.llc_bank_latency.encode(out);
    p.noc_hop_latency.encode(out);
    p.mem_latency.encode(out);
    p.block_bytes.encode(out);
}

fn decode_mem_params(r: &mut Reader<'_>) -> Result<MemParams, WireError> {
    Ok(MemParams {
        l1i_bytes: Decode::decode(r)?,
        l1i_ways: Decode::decode(r)?,
        l1i_latency: Decode::decode(r)?,
        l1i_mshrs: Decode::decode(r)?,
        cores: Decode::decode(r)?,
        llc_slice_bytes: Decode::decode(r)?,
        llc_ways: Decode::decode(r)?,
        llc_bank_latency: Decode::decode(r)?,
        noc_hop_latency: Decode::decode(r)?,
        mem_latency: Decode::decode(r)?,
        block_bytes: Decode::decode(r)?,
    })
}

/// Encodes the full workload-generator spec (key-side only — specs are
/// never decoded back, just compared as bytes). The exhaustive
/// destructuring (no `..`) makes a newly added `WorkloadSpec` or
/// `TermMix` field a compile error here, instead of a silently aliasing
/// store key; when that fires, append the field below and bump
/// [`SCHEMA_VERSION`].
fn encode_spec(s: &WorkloadSpec, out: &mut Vec<u8>) {
    let WorkloadSpec {
        name,
        structure_seed,
        target_code_kb,
        layers,
        request_types,
        shared_frac,
        bb_per_func,
        plain_len_mean,
        plain_len_cold,
        taken_bias_frac,
        term_mix,
        cold_call_prob,
        loop_prob,
        loop_continue,
        strong_bias,
        mixed_frac,
        indirect_fanout,
        os_interleave,
        request_zipf,
        flavors_per_request,
        call_scale,
        backend_stall_prob,
    } = s;
    let confluence_trace::TermMix {
        cond,
        call,
        jump,
        indirect_call,
        indirect_jump,
        ret,
        fallthrough,
    } = term_mix;
    name.encode(out);
    structure_seed.encode(out);
    target_code_kb.encode(out);
    layers.encode(out);
    request_types.encode(out);
    shared_frac.encode(out);
    bb_per_func.encode(out);
    plain_len_mean.encode(out);
    plain_len_cold.encode(out);
    taken_bias_frac.encode(out);
    cond.encode(out);
    call.encode(out);
    jump.encode(out);
    indirect_call.encode(out);
    indirect_jump.encode(out);
    ret.encode(out);
    fallthrough.encode(out);
    cold_call_prob.encode(out);
    loop_prob.encode(out);
    loop_continue.encode(out);
    strong_bias.encode(out);
    mixed_frac.encode(out);
    indirect_fanout.encode(out);
    os_interleave.encode(out);
    request_zipf.encode(out);
    flavors_per_request.encode(out);
    call_scale.encode(out);
    backend_stall_prob.encode(out);
}

// ---------------------------------------------------------------------------
// Sim-owned key types.

impl Encode for DesignPoint {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            DesignPoint::Baseline => 0,
            DesignPoint::BaselineShift => 1,
            DesignPoint::Fdp => 2,
            DesignPoint::PhantomFdp => 3,
            DesignPoint::TwoLevelFdp => 4,
            DesignPoint::PhantomShift => 5,
            DesignPoint::TwoLevelShift => 6,
            DesignPoint::Confluence => 7,
            DesignPoint::IdealBtbShift => 8,
            DesignPoint::Ideal => 9,
        });
    }
}

impl Decode for DesignPoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        Ok(match r.u8()? {
            0 => DesignPoint::Baseline,
            1 => DesignPoint::BaselineShift,
            2 => DesignPoint::Fdp,
            3 => DesignPoint::PhantomFdp,
            4 => DesignPoint::TwoLevelFdp,
            5 => DesignPoint::PhantomShift,
            6 => DesignPoint::TwoLevelShift,
            7 => DesignPoint::Confluence,
            8 => DesignPoint::IdealBtbShift,
            9 => DesignPoint::Ideal,
            _ => return Err(tag_error(offset, "unknown design-point tag")),
        })
    }
}

impl Encode for BtbSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            BtbSpec::Conventional {
                entries,
                ways,
                victim_entries,
            } => {
                out.push(0);
                entries.encode(out);
                ways.encode(out);
                victim_entries.encode(out);
            }
            BtbSpec::Baseline1k => out.push(1),
            BtbSpec::Large16k => out.push(2),
            BtbSpec::Phantom { llc_latency } => {
                out.push(3);
                llc_latency.encode(out);
            }
            BtbSpec::TwoLevelPaper => out.push(4),
            BtbSpec::AirBtb {
                mode,
                bundles,
                bundle_entries,
                overflow_entries,
            } => {
                out.push(5);
                encode_airbtb_mode(mode, out);
                bundles.encode(out);
                bundle_entries.encode(out);
                overflow_entries.encode(out);
            }
            BtbSpec::Ideal16k => out.push(6),
            BtbSpec::Perfect => out.push(7),
        }
    }
}

impl Decode for BtbSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        Ok(match r.u8()? {
            0 => BtbSpec::Conventional {
                entries: Decode::decode(r)?,
                ways: Decode::decode(r)?,
                victim_entries: Decode::decode(r)?,
            },
            1 => BtbSpec::Baseline1k,
            2 => BtbSpec::Large16k,
            3 => BtbSpec::Phantom {
                llc_latency: Decode::decode(r)?,
            },
            4 => BtbSpec::TwoLevelPaper,
            5 => BtbSpec::AirBtb {
                mode: decode_airbtb_mode(r)?,
                bundles: Decode::decode(r)?,
                bundle_entries: Decode::decode(r)?,
                overflow_entries: Decode::decode(r)?,
            },
            6 => BtbSpec::Ideal16k,
            7 => BtbSpec::Perfect,
            _ => return Err(tag_error(offset, "unknown BTB-spec tag")),
        })
    }
}

impl Encode for CoverageOptions {
    fn encode(&self, out: &mut Vec<u8>) {
        self.warmup_instrs.encode(out);
        self.measure_instrs.encode(out);
        self.seed.encode(out);
        self.use_shift.encode(out);
        self.history_entries.encode(out);
        // Schema v1 **tail extension** (L1-I capacity + SHIFT lookahead
        // sweeps): both fields are appended together, and only when at
        // least one is non-default. Default-valued options keep the
        // original five-field byte layout, so every pre-extension content
        // key — and every stored entry — is unchanged; non-default
        // options get strictly longer (hence distinct) keys. Sound
        // because `CoverageOptions` sits in tail position of every
        // encoding that contains it (`CoverageJob`, `Job`, `StoreKey`),
        // which is what lets the decoder treat "no bytes left" as "both
        // defaults".
        if self.l1i_kb != crate::coverage::DEFAULT_L1I_KB
            || self.shift_lookahead != confluence_prefetch::DEFAULT_LOOKAHEAD
        {
            self.l1i_kb.encode(out);
            self.shift_lookahead.encode(out);
        }
    }
}

impl Decode for CoverageOptions {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut opts = CoverageOptions {
            warmup_instrs: Decode::decode(r)?,
            measure_instrs: Decode::decode(r)?,
            seed: Decode::decode(r)?,
            use_shift: Decode::decode(r)?,
            history_entries: Decode::decode(r)?,
            ..CoverageOptions::default()
        };
        if !r.is_empty() {
            opts.l1i_kb = Decode::decode(r)?;
            opts.shift_lookahead = Decode::decode(r)?;
        }
        Ok(opts)
    }
}

impl Encode for TimingConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cores.encode(out);
        self.warmup_instrs.encode(out);
        self.measure_instrs.encode(out);
        self.history_entries.encode(out);
        self.seed.encode(out);
        encode_core_params(&self.core, out);
        encode_mem_params(&self.mem, out);
    }
}

impl Decode for TimingConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TimingConfig {
            cores: Decode::decode(r)?,
            warmup_instrs: Decode::decode(r)?,
            measure_instrs: Decode::decode(r)?,
            history_entries: Decode::decode(r)?,
            seed: Decode::decode(r)?,
            core: decode_core_params(r)?,
            mem: decode_mem_params(r)?,
        })
    }
}

impl Encode for CoverageJob {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_workload(self.workload, out);
        self.btb.encode(out);
        self.opts.encode(out);
    }
}

impl Decode for CoverageJob {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CoverageJob {
            workload: decode_workload(r)?,
            btb: Decode::decode(r)?,
            opts: Decode::decode(r)?,
        })
    }
}

impl Encode for TimingJob {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_workload(self.workload, out);
        self.design.encode(out);
        self.cfg.encode(out);
    }
}

impl Decode for TimingJob {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TimingJob {
            workload: decode_workload(r)?,
            design: Decode::decode(r)?,
            cfg: Decode::decode(r)?,
        })
    }
}

impl Encode for DensityJob {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_workload(self.workload, out);
        self.instrs.encode(out);
        self.seed.encode(out);
    }
}

impl Decode for DensityJob {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DensityJob {
            workload: decode_workload(r)?,
            instrs: Decode::decode(r)?,
            seed: Decode::decode(r)?,
        })
    }
}

impl Encode for Job {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Job::Coverage(j) => {
                out.push(0);
                j.encode(out);
            }
            Job::Timing(j) => {
                out.push(1);
                j.encode(out);
            }
            Job::Density(j) => {
                out.push(2);
                j.encode(out);
            }
        }
    }
}

impl Decode for Job {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        Ok(match r.u8()? {
            0 => Job::Coverage(Decode::decode(r)?),
            1 => Job::Timing(Decode::decode(r)?),
            2 => Job::Density(Decode::decode(r)?),
            _ => return Err(tag_error(offset, "unknown job tag")),
        })
    }
}

// ---------------------------------------------------------------------------
// Output values.

impl Encode for CoverageResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.instrs.encode(out);
        self.branches.encode(out);
        self.taken_branches.encode(out);
        self.btb_misses.encode(out);
        self.l1i_accesses.encode(out);
        self.l1i_misses.encode(out);
        self.prefetch_fills.encode(out);
    }
}

impl Decode for CoverageResult {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CoverageResult {
            instrs: Decode::decode(r)?,
            branches: Decode::decode(r)?,
            taken_branches: Decode::decode(r)?,
            btb_misses: Decode::decode(r)?,
            l1i_accesses: Decode::decode(r)?,
            l1i_misses: Decode::decode(r)?,
            prefetch_fills: Decode::decode(r)?,
        })
    }
}

impl Encode for CoreStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cycles.encode(out);
        self.retired.encode(out);
        self.branches.encode(out);
        self.taken_branches.encode(out);
        self.btb_misses.encode(out);
        self.misfetches.encode(out);
        self.l2_bubble_cycles.encode(out);
        self.mispredicts.encode(out);
        self.l1i_accesses.encode(out);
        self.l1i_misses.encode(out);
        self.prefetch_fills.encode(out);
        self.fetch_stall_cycles.encode(out);
    }
}

impl Decode for CoreStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CoreStats {
            cycles: Decode::decode(r)?,
            retired: Decode::decode(r)?,
            branches: Decode::decode(r)?,
            taken_branches: Decode::decode(r)?,
            btb_misses: Decode::decode(r)?,
            misfetches: Decode::decode(r)?,
            l2_bubble_cycles: Decode::decode(r)?,
            mispredicts: Decode::decode(r)?,
            l1i_accesses: Decode::decode(r)?,
            l1i_misses: Decode::decode(r)?,
            prefetch_fills: Decode::decode(r)?,
            fetch_stall_cycles: Decode::decode(r)?,
        })
    }
}

impl Encode for TimingResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.design.encode(out);
        self.per_core.encode(out);
        self.total_cycles.encode(out);
    }
}

impl Decode for TimingResult {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TimingResult {
            design: Decode::decode(r)?,
            per_core: Decode::decode(r)?,
            total_cycles: Decode::decode(r)?,
        })
    }
}

impl Encode for JobOutput {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JobOutput::Coverage(res) => {
                out.push(0);
                res.encode(out);
            }
            JobOutput::Timing(res) => {
                out.push(1);
                res.encode(out);
            }
            JobOutput::Density(stat, dynamic) => {
                out.push(2);
                stat.encode(out);
                dynamic.encode(out);
            }
        }
    }
}

impl Decode for JobOutput {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        Ok(match r.u8()? {
            0 => JobOutput::Coverage(Decode::decode(r)?),
            1 => JobOutput::Timing(Arc::new(Decode::decode(r)?)),
            2 => JobOutput::Density(Decode::decode(r)?, Decode::decode(r)?),
            _ => return Err(tag_error(offset, "unknown job-output tag")),
        })
    }
}

/// FNV-1a fingerprint of an engine's workload configuration: every
/// workload tag plus its full generating spec, in declaration order.
/// The daemon handshake compares fingerprints so a quick-mode client
/// talking to a full-mode daemon (or any other spec divergence — the
/// `Job` bytes alone do not carry the spec) is a typed refusal up
/// front instead of silently different results.
pub fn workloads_fingerprint(workloads: &[(Workload, Arc<Program>)]) -> u64 {
    let mut bytes = Vec::new();
    for (w, program) in workloads {
        encode_workload(*w, &mut bytes);
        encode_spec(program.spec(), &mut bytes);
    }
    confluence_store::wire::fnv1a(&bytes)
}

/// True when a decoded output is the kind `job` produces. A store entry
/// that parses but answers a different question (only possible through
/// corruption that survives every other check) must be treated as a miss.
pub fn output_matches(job: &Job, output: &JobOutput) -> bool {
    matches!(
        (job, output),
        (Job::Coverage(_), JobOutput::Coverage(_))
            | (Job::Timing(_), JobOutput::Timing(_))
            | (Job::Density(_), JobOutput::Density(..))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn roundtrip_job(job: Job) {
        let bytes = job.to_bytes();
        assert_eq!(Job::from_bytes(&bytes).unwrap(), job, "{job:?}");
    }

    fn roundtrip_output(out: JobOutput) {
        let bytes = out.to_bytes();
        assert_eq!(JobOutput::from_bytes(&bytes).unwrap(), out, "{out:?}");
    }

    #[test]
    fn every_btb_spec_variant_roundtrips() {
        let specs = [
            BtbSpec::Conventional {
                entries: 2048,
                ways: 4,
                victim_entries: 64,
            },
            BtbSpec::Baseline1k,
            BtbSpec::Large16k,
            BtbSpec::Phantom { llc_latency: 26 },
            BtbSpec::TwoLevelPaper,
            BtbSpec::airbtb_paper(),
            BtbSpec::Ideal16k,
            BtbSpec::Perfect,
        ];
        for spec in specs {
            let bytes = spec.to_bytes();
            assert_eq!(BtbSpec::from_bytes(&bytes).unwrap(), spec, "{spec:?}");
        }
    }

    #[test]
    fn every_job_kind_roundtrips() {
        roundtrip_job(Job::Coverage(CoverageJob {
            workload: Workload::OltpOracle,
            btb: BtbSpec::airbtb_paper(),
            opts: CoverageOptions::quick().with_shift(),
        }));
        roundtrip_job(Job::Timing(TimingJob {
            workload: Workload::MediaStreaming,
            design: DesignPoint::Confluence,
            cfg: TimingConfig::quick(),
        }));
        roundtrip_job(Job::Density(DensityJob {
            workload: Workload::WebFrontend,
            instrs: 600_000,
            seed: 3,
        }));
    }

    #[test]
    fn every_output_kind_roundtrips() {
        roundtrip_output(JobOutput::Coverage(CoverageResult {
            instrs: 1,
            branches: 2,
            taken_branches: 3,
            btb_misses: 4,
            l1i_accesses: 5,
            l1i_misses: 6,
            prefetch_fills: 7,
        }));
        roundtrip_output(JobOutput::Timing(Arc::new(TimingResult {
            design: DesignPoint::Ideal,
            per_core: vec![
                CoreStats {
                    cycles: 100,
                    retired: 90,
                    ..Default::default()
                },
                CoreStats::default(),
            ],
            total_cycles: 100,
        })));
        roundtrip_output(JobOutput::Density(3.25, -0.0));
    }

    #[test]
    fn unknown_tags_error_with_offsets() {
        assert_eq!(Job::from_bytes(&[9]).unwrap_err().offset, 0);
        assert_eq!(JobOutput::from_bytes(&[9]).unwrap_err().offset, 0);
        assert_eq!(BtbSpec::from_bytes(&[99]).unwrap_err().offset, 0);
        assert_eq!(DesignPoint::from_bytes(&[10]).unwrap_err().offset, 0);
    }

    #[test]
    fn store_keys_differ_when_only_the_spec_differs() {
        let job = Job::Density(DensityJob {
            workload: Workload::WebFrontend,
            instrs: 1000,
            seed: 1,
        });
        let full = Workload::WebFrontend.spec();
        let mut quick = Workload::WebFrontend.spec();
        quick.target_code_kb /= 4;
        let a = StoreKey {
            spec: &full,
            job: &job,
        }
        .to_bytes();
        let b = StoreKey {
            spec: &quick,
            job: &job,
        }
        .to_bytes();
        assert_ne!(a, b, "spec must be part of the persisted key");
    }

    /// Golden bytes: pins tag values, field order, and integer encodings
    /// of schema v1. If this test fails, the wire format changed — bump
    /// [`SCHEMA_VERSION`] and update the expectation.
    #[test]
    fn golden_bytes_pin_schema_v1() {
        assert_eq!(SCHEMA_VERSION, 1);
        let job = Job::Coverage(CoverageJob {
            workload: Workload::DssQueries,
            btb: BtbSpec::AirBtb {
                mode: AirBtbMode::Full,
                bundles: 512,
                bundle_entries: 3,
                overflow_entries: 32,
            },
            opts: CoverageOptions {
                warmup_instrs: 300_000,
                measure_instrs: 500_000,
                seed: 1,
                use_shift: true,
                history_entries: 8192,
                ..CoverageOptions::default()
            },
        });
        assert_eq!(hex(&job.to_bytes()), "0002050380040320e0a712a0c21e01018040");

        let output = JobOutput::Density(1.5, 2.0);
        assert_eq!(
            hex(&output.to_bytes()),
            "02000000000000f83f0000000000000040"
        );
    }

    /// The v1 tail extension: default L1-I capacity and SHIFT lookahead
    /// encode to *nothing* (the original five-field layout — pinned by
    /// `golden_bytes_pin_schema_v1` staying green without a regold), and
    /// a non-default value of either appends both fields.
    #[test]
    fn coverage_options_tail_extension_is_default_invisible() {
        let default_form = CoverageOptions::quick().to_bytes();
        let spelled_out = CoverageOptions {
            l1i_kb: crate::coverage::DEFAULT_L1I_KB,
            shift_lookahead: confluence_prefetch::DEFAULT_LOOKAHEAD,
            ..CoverageOptions::quick()
        }
        .to_bytes();
        assert_eq!(
            default_form, spelled_out,
            "default tail values must not change the encoding"
        );

        for opts in [
            CoverageOptions {
                l1i_kb: 64,
                ..CoverageOptions::quick()
            },
            CoverageOptions {
                shift_lookahead: 8,
                ..CoverageOptions::quick()
            },
        ] {
            let bytes = opts.to_bytes();
            assert_eq!(
                bytes.len(),
                default_form.len() + 2,
                "a non-default tail appends both varint fields"
            );
            assert_eq!(CoverageOptions::from_bytes(&bytes).unwrap(), opts);
        }

        // Golden bytes for the extended form: five quick-mode fields plus
        // the (l1i_kb, shift_lookahead) tail.
        let extended = CoverageOptions {
            l1i_kb: 128,
            shift_lookahead: 48,
            ..CoverageOptions::quick()
        };
        assert_eq!(hex(&extended.to_bytes()), "c09a0c80b5180100808002800130");
    }

    /// Dropping the whole tail of an extended encoding yields the
    /// default-tail options (the price of a default-invisible extension,
    /// harmless because the store compares full key bytes); any *partial*
    /// tail is an error.
    #[test]
    fn truncated_tail_extension_never_half_decodes() {
        let extended = CoverageOptions {
            l1i_kb: 64,
            shift_lookahead: 8,
            ..CoverageOptions::quick()
        };
        let bytes = extended.to_bytes();
        let without_tail = CoverageOptions::from_bytes(&bytes[..bytes.len() - 2]).unwrap();
        assert_eq!(without_tail, CoverageOptions::quick());
        assert!(CoverageOptions::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }
}
