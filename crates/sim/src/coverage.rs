//! Functional (content-only) simulation: BTB miss coverage and L1-I miss
//! coverage, the harness behind Figures 1, 8, 9, 10 and Table 2.
//!
//! The harness walks a core's committed trace and models structure
//! *contents* exactly — what is resident when — without cycle timing.
//! BTB misses follow the paper's definition: an entry for a taken branch is
//! absent at prediction time (Section 2.1).
//!
//! The record streams consumed here come from [`Program::stream`], so
//! when the engine has pre-loaded a warm-execution artifact (a persisted
//! path-memo table), every run starts in replay mode from record zero —
//! the streams, and therefore every counter, are bit-identical either
//! way; warmth only changes how fast the records are produced.

use confluence_btb::{BtbDesign, ResolvedBranch};
use confluence_prefetch::{ShiftEngine, ShiftHistory};
use confluence_trace::{ExecMode, Program};
use confluence_types::{BlockAddr, PredecodeSource, VAddr};
use confluence_uarch::L1ICache;

/// Options for a functional coverage run.
///
/// `Eq`/`Hash` let the options participate in [`crate::CoverageJob`] cache
/// keys: two runs with equal options (and equal program + BTB spec) are
/// interchangeable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CoverageOptions {
    /// Instructions executed before counters start.
    pub warmup_instrs: u64,
    /// Instructions measured after warm-up.
    pub measure_instrs: u64,
    /// Executor seed (per-core dynamic behaviour).
    pub seed: u64,
    /// Attach a SHIFT stream prefetcher to the L1-I (and, through the fill
    /// hooks, to L1-I-synchronized BTBs).
    pub use_shift: bool,
    /// SHIFT history capacity in entries.
    pub history_entries: usize,
    /// L1-I capacity in kilobytes (paper Table 1: 32). The capacity axis
    /// of the `l1i-size` sensitivity sweep.
    pub l1i_kb: usize,
    /// SHIFT stream lookahead depth in blocks. The depth axis of the
    /// `shift-lookahead` sensitivity sweep.
    pub shift_lookahead: usize,
}

/// The paper's L1-I capacity (Table 1), the [`CoverageOptions`] default.
pub const DEFAULT_L1I_KB: usize = 32;

impl Default for CoverageOptions {
    fn default() -> Self {
        CoverageOptions {
            warmup_instrs: 2_000_000,
            measure_instrs: 4_000_000,
            seed: 1,
            use_shift: false,
            history_entries: confluence_prefetch::DEFAULT_HISTORY_ENTRIES,
            l1i_kb: DEFAULT_L1I_KB,
            shift_lookahead: confluence_prefetch::DEFAULT_LOOKAHEAD,
        }
    }
}

impl CoverageOptions {
    /// A fast configuration for unit tests.
    pub fn quick() -> Self {
        CoverageOptions {
            warmup_instrs: 200_000,
            measure_instrs: 400_000,
            ..Default::default()
        }
    }

    /// Enables SHIFT prefetching.
    pub fn with_shift(mut self) -> Self {
        self.use_shift = true;
        self
    }
}

/// Counters from a functional coverage run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoverageResult {
    /// Instructions measured.
    pub instrs: u64,
    /// Dynamic branches measured.
    pub branches: u64,
    /// Dynamic taken branches measured.
    pub taken_branches: u64,
    /// BTB misses (taken branch without an entry at prediction time).
    pub btb_misses: u64,
    /// Block-grain L1-I demand accesses.
    pub l1i_accesses: u64,
    /// L1-I demand misses.
    pub l1i_misses: u64,
    /// Blocks installed by the prefetcher.
    pub prefetch_fills: u64,
}

impl CoverageResult {
    /// BTB misses per kilo-instruction (Figure 1's metric).
    pub fn btb_mpki(&self) -> f64 {
        per_kilo(self.btb_misses, self.instrs)
    }

    /// L1-I demand misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        per_kilo(self.l1i_misses, self.instrs)
    }

    /// Fraction of `baseline`'s BTB misses this run eliminated (the y-axis
    /// of Figures 8, 9 and 10; can be negative when this design misses
    /// more than the baseline, as B:3/OB:0 does in Figure 10).
    pub fn btb_miss_coverage_vs(&self, baseline: &CoverageResult) -> f64 {
        coverage(self.btb_mpki(), baseline.btb_mpki())
    }

    /// Fraction of `baseline`'s L1-I misses this run eliminated.
    pub fn l1i_miss_coverage_vs(&self, baseline: &CoverageResult) -> f64 {
        coverage(self.l1i_mpki(), baseline.l1i_mpki())
    }
}

fn per_kilo(count: u64, instrs: u64) -> f64 {
    if instrs == 0 {
        0.0
    } else {
        count as f64 * 1000.0 / instrs as f64
    }
}

fn coverage(mpki: f64, baseline_mpki: f64) -> f64 {
    if baseline_mpki == 0.0 {
        0.0
    } else {
        1.0 - mpki / baseline_mpki
    }
}

/// Block-grain L1-I residency tracking shared by the coverage harness and
/// the branch-density characterization: collapses consecutive accesses to
/// the same block into one demand access, so the two measurements cannot
/// drift apart in how they define a block touch.
struct BlockResidency {
    l1i: L1ICache,
    last_block: Option<BlockAddr>,
}

impl BlockResidency {
    fn new(l1i: L1ICache) -> BlockResidency {
        BlockResidency {
            l1i,
            last_block: None,
        }
    }

    /// Registers a fetch at `block`: `None` while execution stays within
    /// the previously accessed block, `Some(hit)` on the first touch of a
    /// new block.
    #[inline]
    fn access(&mut self, block: BlockAddr) -> Option<bool> {
        if self.last_block == Some(block) {
            return None;
        }
        self.last_block = Some(block);
        Some(self.l1i.access(block))
    }

    fn fill(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        self.l1i.fill(block)
    }

    fn contains(&self, block: BlockAddr) -> bool {
        self.l1i.contains(block)
    }
}

/// Runs the functional harness for one BTB design over one core's trace.
///
/// Per committed instruction the harness:
/// 1. performs the BPU-side BTB lookup for branch records (*before* the
///    block's demand access — the BPU runs ahead of fetch, which is what
///    makes prefetch-driven insertion matter for first-touch branches);
/// 2. performs the block-grain L1-I access (collapsing consecutive
///    accesses to the same block), filling on miss with the predecode and
///    eviction hooks wired to the BTB;
/// 3. runs the SHIFT engine when enabled, performing its prefetch fills;
/// 4. trains the BTB with the resolved branch.
pub fn run_coverage(
    program: &Program,
    btb: &mut dyn BtbDesign,
    opts: &CoverageOptions,
) -> CoverageResult {
    run_coverage_mode(program, btb, opts, ExecMode::from_env())
}

/// [`run_coverage`] through an explicit execution path.
///
/// The default entry point resolves the path from the environment; this
/// variant lets the experiment engine (and the equivalence harness) pin it
/// in-process.
pub fn run_coverage_mode(
    program: &Program,
    btb: &mut dyn BtbDesign,
    opts: &CoverageOptions,
    mode: ExecMode,
) -> CoverageResult {
    let mut result = CoverageResult::default();
    let mut stream = program.stream(opts.seed, mode);
    let l1i = L1ICache::with_capacity_kb(opts.l1i_kb).expect("valid L1-I capacity");
    let mut residency = BlockResidency::new(l1i);
    let mut history = ShiftHistory::with_capacity(opts.history_entries);
    let mut engine = ShiftEngine::with_lookahead(opts.shift_lookahead);
    let mut prefetches: Vec<BlockAddr> = Vec::with_capacity(32);

    let mut bb_start: Option<VAddr> = None;
    let total = opts.warmup_instrs + opts.measure_instrs;
    let mut i = 0u64;

    stream.for_each_record(total, |r| {
        let measuring = i >= opts.warmup_instrs;
        i += 1;
        if measuring {
            result.instrs += 1;
        }
        let bb = bb_start.unwrap_or(r.pc);

        // 1. BPU-side lookup, ahead of the fetch stream.
        let outcome = r.branch.map(|_| btb.lookup(bb, r.pc));

        // 2. Fetch-side block access.
        let block = r.pc.block();
        if let Some(hit) = residency.access(block) {
            if measuring {
                result.l1i_accesses += 1;
                if !hit {
                    result.l1i_misses += 1;
                }
            }
            if !hit {
                btb.on_l1i_fill(block, program.branches_in_block(block));
                if let Some(evicted) = residency.fill(block) {
                    btb.on_l1i_evict(evicted);
                }
            }
            // 3. Stream prefetching.
            if opts.use_shift {
                prefetches.clear();
                engine.on_access(&history, block, !hit, &mut prefetches);
                for &p in &prefetches {
                    if !residency.contains(p) {
                        if measuring {
                            result.prefetch_fills += 1;
                        }
                        btb.on_l1i_fill(p, program.branches_in_block(p));
                        if let Some(evicted) = residency.fill(p) {
                            btb.on_l1i_evict(evicted);
                        }
                    }
                }
                history.record(block);
            }
        }

        // 4. Resolve and train.
        if let Some(b) = r.branch {
            if measuring {
                result.branches += 1;
                if b.taken {
                    result.taken_branches += 1;
                    if !outcome.expect("branch records produce outcomes").hit {
                        result.btb_misses += 1;
                    }
                }
            }
            btb.update(&ResolvedBranch {
                bb_start: bb,
                pc: r.pc,
                kind: b.kind,
                taken: b.taken,
                target: b.target,
            });
            bb_start = Some(r.next_pc());
        }
    });
    result
}

/// Runs the functional harness with a freshly built BTB.
///
/// This is the `Send`-friendly entry point used by the experiment engine:
/// instead of threading externally owned `&mut dyn BtbDesign` state through
/// the call, the job supplies a factory and the whole simulation is
/// self-contained — exactly what makes job-level parallelism safe.
pub fn run_coverage_with(
    program: &Program,
    make_btb: impl FnOnce() -> Box<dyn BtbDesign>,
    opts: &CoverageOptions,
) -> CoverageResult {
    run_coverage_with_mode(program, make_btb, opts, ExecMode::from_env())
}

/// [`run_coverage_with`] through an explicit execution path.
pub fn run_coverage_with_mode(
    program: &Program,
    make_btb: impl FnOnce() -> Box<dyn BtbDesign>,
    opts: &CoverageOptions,
    mode: ExecMode,
) -> CoverageResult {
    let mut btb = make_btb();
    run_coverage_mode(program, &mut *btb, opts, mode)
}

/// Table 2's branch-density characterization: mean static branches per
/// demand-fetched block, and mean distinct taken branches executed during a
/// block's L1-I residency ("dynamic").
pub fn branch_density(program: &Program, instrs: u64, seed: u64) -> (f64, f64) {
    branch_density_mode(program, instrs, seed, ExecMode::from_env())
}

/// [`branch_density`] through an explicit execution path.
///
/// Shares [`BlockResidency`] with the coverage harness, so both define a
/// block touch (and therefore a residency) identically.
pub fn branch_density_mode(
    program: &Program,
    instrs: u64,
    seed: u64,
    mode: ExecMode,
) -> (f64, f64) {
    use std::collections::{HashMap, HashSet};
    let mut stream = program.stream(seed, mode);
    let mut residency = BlockResidency::new(L1ICache::new_32k());
    // Distinct taken-branch PCs executed during the current residency.
    let mut live: HashMap<BlockAddr, HashSet<VAddr>> = HashMap::new();
    let mut static_sum = 0u64;
    let mut static_n = 0u64;
    let mut dyn_sum = 0u64;
    let mut dyn_n = 0u64;

    stream.for_each_record(instrs, |r| {
        let block = r.pc.block();
        if residency.access(block) == Some(false) {
            static_sum += program.branches_in_block(block).len() as u64;
            static_n += 1;
            live.insert(block, HashSet::new());
            if let Some(evicted) = residency.fill(block) {
                if let Some(set) = live.remove(&evicted) {
                    dyn_sum += set.len() as u64;
                    dyn_n += 1;
                }
            }
        }
        if let Some(b) = r.branch {
            if b.taken {
                if let Some(set) = live.get_mut(&block) {
                    set.insert(r.pc);
                }
            }
        }
    });
    // Account for blocks still resident at the end.
    for (_, set) in live {
        dyn_sum += set.len() as u64;
        dyn_n += 1;
    }
    let stat = if static_n == 0 {
        0.0
    } else {
        static_sum as f64 / static_n as f64
    };
    let dynamic = if dyn_n == 0 {
        0.0
    } else {
        dyn_sum as f64 / dyn_n as f64
    };
    (stat, dynamic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_btb::ConventionalBtb;
    use confluence_core::{AirBtb, AirBtbMode};
    use confluence_trace::WorkloadSpec;

    fn program() -> Program {
        // A working set well beyond the 32 KB L1-I and the 1K-entry BTB,
        // so miss-coverage mechanisms have something to cover.
        Program::generate(&WorkloadSpec::base().with_code_kb(1024)).unwrap()
    }

    #[test]
    fn bigger_btb_misses_less() {
        let p = program();
        let opts = CoverageOptions::quick();
        let mut small = ConventionalBtb::new("s", 512, 4, 0).unwrap();
        let mut large = ConventionalBtb::new("l", 8192, 4, 0).unwrap();
        let rs = run_coverage(&p, &mut small, &opts);
        let rl = run_coverage(&p, &mut large, &opts);
        assert!(
            rl.btb_mpki() < rs.btb_mpki() * 0.8,
            "large {} vs small {}",
            rl.btb_mpki(),
            rs.btb_mpki()
        );
    }

    #[test]
    fn baseline_btb_mpki_is_serverlike() {
        // Figure 1: tens of misses per kilo-instruction at 1K entries.
        let p = program();
        let mut btb = ConventionalBtb::baseline_1k().unwrap();
        let r = run_coverage(&p, &mut btb, &CoverageOptions::quick());
        let mpki = r.btb_mpki();
        assert!((5.0..120.0).contains(&mpki), "baseline MPKI {mpki}");
    }

    #[test]
    fn shift_covers_most_l1i_misses() {
        let p = program();
        let mut a = ConventionalBtb::baseline_1k().unwrap();
        let base = run_coverage(&p, &mut a, &CoverageOptions::quick());
        let mut b = ConventionalBtb::baseline_1k().unwrap();
        let with = run_coverage(&p, &mut b, &CoverageOptions::quick().with_shift());
        let cov = with.l1i_miss_coverage_vs(&base);
        assert!(cov > 0.5, "SHIFT L1-I coverage {cov}");
    }

    #[test]
    fn full_airbtb_with_shift_beats_baseline() {
        let p = program();
        let mut base = ConventionalBtb::baseline_1k().unwrap();
        let rb = run_coverage(&p, &mut base, &CoverageOptions::quick());
        let mut air = AirBtb::paper_config();
        let ra = run_coverage(&p, &mut air, &CoverageOptions::quick().with_shift());
        let cov = ra.btb_miss_coverage_vs(&rb);
        assert!(
            cov > 0.5,
            "AirBTB coverage {cov} (misses {} vs {})",
            ra.btb_misses,
            rb.btb_misses
        );
    }

    #[test]
    fn ablation_ladder_is_monotonic() {
        let p = program();
        let opts = CoverageOptions::quick();
        let mut capacity = AirBtb::new(AirBtbMode::CapacityOnly, 512, 3, 32);
        let mut spatial = AirBtb::new(AirBtbMode::SpatialLocality, 512, 3, 32)
            .with_oracle(std::sync::Arc::new(p.clone()));
        let mut full = AirBtb::paper_config();
        let rc = run_coverage(&p, &mut capacity, &opts);
        let rs = run_coverage(&p, &mut spatial, &opts);
        let rf = run_coverage(&p, &mut full, &opts.clone().with_shift());
        assert!(
            rs.btb_mpki() < rc.btb_mpki(),
            "spatial {} !< capacity {}",
            rs.btb_mpki(),
            rc.btb_mpki()
        );
        assert!(
            rf.btb_mpki() < rs.btb_mpki(),
            "full {} !< spatial {}",
            rf.btb_mpki(),
            rs.btb_mpki()
        );
    }

    #[test]
    fn coverage_paths_are_bit_identical() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let opts = CoverageOptions {
            warmup_instrs: 50_000,
            measure_instrs: 100_000,
            ..Default::default()
        }
        .with_shift();
        let mut a = ConventionalBtb::baseline_1k().unwrap();
        let fast = run_coverage_mode(&p, &mut a, &opts, ExecMode::Compiled);
        let mut b = ConventionalBtb::baseline_1k().unwrap();
        let slow = run_coverage_mode(&p, &mut b, &opts, ExecMode::Reference);
        assert_eq!(fast, slow);

        let df = branch_density_mode(&p, 200_000, 1, ExecMode::Compiled);
        let ds = branch_density_mode(&p, 200_000, 1, ExecMode::Reference);
        assert_eq!(df.0.to_bits(), ds.0.to_bits());
        assert_eq!(df.1.to_bits(), ds.1.to_bits());
    }

    #[test]
    fn branch_density_matches_table2_band() {
        let p = program();
        let (stat, dynamic) = branch_density(&p, 600_000, 1);
        assert!((2.0..5.5).contains(&stat), "static {stat}");
        assert!((0.5..3.5).contains(&dynamic), "dynamic {dynamic}");
        assert!(dynamic < stat, "dynamic must be below static");
    }
}
