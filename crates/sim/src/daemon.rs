//! The engine-facing halves of the experiment daemon: the
//! [`BatchHost`] implementation the `confluence-serve` binary mounts a
//! [`SimEngine`] behind, and the client helper the `--connect` mode of
//! the figure binaries submits batches through.
//!
//! `confluence_serve` deliberately knows nothing about simulation — job
//! payloads are opaque bytes at its layer. This module is where the
//! opacity ends: [`EngineHost`] decodes each payload with the job codec
//! (`crate::codec`), runs it through the shared engine (inheriting its
//! in-flight dedup, so two clients submitting the same content-keyed
//! job trigger one execution and two results), and settles each batch
//! with artifact persistence and store GC. The handshake pins
//! [`SCHEMA_VERSION`] and the [`workloads_fingerprint`] of the engine's
//! generator specs, so a quick-mode client talking to a full-mode
//! daemon is a typed `ConfigMismatch` refusal, never silently different
//! numbers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use confluence_serve::{BatchHost, BatchStats, ErrorCode, Rejection, StoreLine};
use confluence_serve::{Client, ClientError};
use confluence_store::{Decode, Encode, Tier};
use confluence_trace::MemoStats;

use crate::codec::{output_matches, workloads_fingerprint, SCHEMA_VERSION};
use crate::engine::{EngineStats, SimEngine};
use crate::job::{Job, JobOutput};

/// A [`SimEngine`] mounted behind the daemon protocol.
pub struct EngineHost {
    engine: SimEngine,
    fingerprint: u64,
    store_cap: Option<u64>,
}

/// Pre-batch accounting marks; [`BatchHost::finish_batch`] diffs them
/// into the per-batch deltas a `BatchDone` frame carries.
pub struct EngineSnapshot {
    stats: EngineStats,
    memo: MemoStats,
}

impl EngineHost {
    /// Mounts `engine` as a batch host. `store_cap` (from
    /// `--store-cap-bytes` / `CONFLUENCE_STORE_CAP`) is applied to the
    /// engine's store after every batch, so a long-running daemon keeps
    /// its disk footprint bounded without ever evicting mid-batch.
    pub fn new(engine: SimEngine, store_cap: Option<u64>) -> Self {
        let fingerprint = workloads_fingerprint(engine.workloads());
        EngineHost {
            engine,
            fingerprint,
            store_cap,
        }
    }

    /// The mounted engine.
    pub fn engine(&self) -> &SimEngine {
        &self.engine
    }

    /// The workload-config fingerprint clients must present.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl BatchHost for EngineHost {
    type Snapshot = EngineSnapshot;

    fn schema(&self) -> u32 {
        SCHEMA_VERSION
    }

    fn validate_hello(&self, schema: u32, fingerprint: u64) -> Result<(), Rejection> {
        if schema != SCHEMA_VERSION {
            return Err(Rejection::new(
                ErrorCode::SchemaMismatch,
                format!("daemon serves job schema v{SCHEMA_VERSION}, client speaks v{schema}"),
            ));
        }
        if fingerprint != self.fingerprint {
            return Err(Rejection::new(
                ErrorCode::ConfigMismatch,
                format!(
                    "client workload configuration {fingerprint:016x} differs from the \
                     daemon's {:016x} (e.g. --quick against a full-scale daemon)",
                    self.fingerprint
                ),
            ));
        }
        Ok(())
    }

    fn threads(&self) -> usize {
        self.engine.threads()
    }

    fn cost_hint(&self, job: &[u8]) -> u64 {
        // Undecodable payloads rank anywhere; run_job rejects them with
        // a proper typed error when their turn comes.
        Job::from_bytes(job).map_or(0, |j| j.cost_hint())
    }

    fn run_job(&self, payload: &[u8]) -> Result<Vec<u8>, Rejection> {
        let job = Job::from_bytes(payload).map_err(|e| {
            Rejection::new(
                ErrorCode::MalformedJob,
                format!("job failed to decode: {e}"),
            )
        })?;
        let workload = job.workload();
        if !self.engine.workloads().iter().any(|(w, _)| *w == workload) {
            return Err(Rejection::new(
                ErrorCode::MalformedJob,
                format!("daemon serves no workload {workload:?}"),
            ));
        }
        // A panicking job must stay a connection-scoped failure, not a
        // daemon crash. The engine's slot bookkeeping survives the
        // unwind (waiters on the key re-panic and land here too).
        let output = catch_unwind(AssertUnwindSafe(|| self.engine.output(&job)))
            .map_err(|_| Rejection::new(ErrorCode::JobFailed, format!("job {job:?} failed")))?;
        Ok(output.to_bytes())
    }

    fn prepare_batch(&self, jobs: &[Vec<u8>]) {
        // The batched remote pre-pass: decode what decodes (undecodable
        // payloads earn their typed rejection in run_job) and fetch
        // every local miss from the peers in one round trip. Called
        // after `snapshot`, so the promotions land in this batch's
        // remote-counter deltas.
        let decoded: Vec<Job> = jobs
            .iter()
            .filter_map(|payload| Job::from_bytes(payload).ok())
            .collect();
        self.engine.prefetch_remote(&decoded);
    }

    fn fetch_batch(&self, tier: Tier, ttl: u32, keys: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        self.engine.fetch_remote_raw(tier, ttl, keys)
    }

    fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            stats: self.engine.stats(),
            memo: self.engine.memo_stats(),
        }
    }

    fn finish_batch(&self, before: EngineSnapshot) -> BatchStats {
        // Maintenance first — fresh artifacts on disk, then the cap —
        // so the store line below reports post-GC occupancy.
        let written = self.engine.persist_warm_artifacts();
        if written > 0 {
            eprintln!("confluence-serve: wrote {written} memo table(s) to the store");
        }
        if let (Some(store), Some(cap)) = (self.engine.store(), self.store_cap) {
            let gc = store.evict_to_cap(cap);
            if gc.evicted_entries > 0 {
                eprintln!(
                    "confluence-serve: store gc evicted {} entries ({} bytes) to fit {cap} bytes",
                    gc.evicted_entries, gc.evicted_bytes
                );
            }
        }
        let stats = self.engine.stats();
        let memo = self.engine.memo_stats();
        BatchStats {
            // Saturating: concurrent batches race these counters, and a
            // neighbour's increment between our snapshot and theirs must
            // never underflow a delta.
            requests: stats.requests.saturating_sub(before.stats.requests),
            executed: stats.executed.saturating_sub(before.stats.executed),
            hits: stats.hits.saturating_sub(before.stats.hits),
            disk_hits: stats.disk_hits.saturating_sub(before.stats.disk_hits),
            memo_replayed: memo.replayed.saturating_sub(before.memo.replayed),
            memo_recorded: memo.recorded.saturating_sub(before.memo.recorded),
            memo_live: memo.live.saturating_sub(before.memo.live),
            memo_tables: memo.tables as u64,
            memo_steps: memo.steps as u64,
            store: self.engine.store().map(|s| {
                let usage = s.usage();
                StoreLine {
                    root: s.root().display().to_string(),
                    schema: s.schema(),
                    entries: usage.entries as u64,
                    bytes: usage.bytes,
                    artifacts: usage.artifacts as u64,
                    artifact_bytes: usage.artifact_bytes,
                }
            }),
            remote_hits: stats.remote_hits.saturating_sub(before.stats.remote_hits),
            remote_round_trips: stats
                .remote_round_trips
                .saturating_sub(before.stats.remote_round_trips),
            remote_bytes: stats.remote_bytes.saturating_sub(before.stats.remote_bytes),
        }
    }
}

/// Submits `jobs` to the daemon at `sock` and seeds every result into
/// `engine`'s in-memory cache, so the caller's report formatters are
/// pure local hits afterwards — the same post-condition as
/// `SimEngine::run`. Duplicate keys are collapsed before submission
/// (result frames refer to jobs by index, so the daemon never needs to
/// see a duplicate). Returns the daemon's per-batch accounting.
///
/// # Errors
///
/// [`ClientError::Daemon`] carries the daemon's typed refusal; any
/// output that fails to decode or answers the wrong job kind is a
/// [`ClientError::Protocol`].
pub fn submit_jobs(
    sock: &Path,
    engine: &SimEngine,
    jobs: &[Job],
) -> Result<BatchStats, ClientError> {
    let fingerprint = workloads_fingerprint(engine.workloads());
    let mut client = Client::connect(sock, SCHEMA_VERSION, fingerprint)?;

    let mut deduped: Vec<&Job> = Vec::with_capacity(jobs.len());
    let mut seen = std::collections::HashSet::with_capacity(jobs.len());
    for job in jobs {
        if seen.insert(job) {
            deduped.push(job);
        }
    }
    let payloads: Vec<Vec<u8>> = deduped.iter().map(|j| j.to_bytes()).collect();
    let reply = client.submit(1, payloads)?;

    for (job, bytes) in deduped.into_iter().zip(&reply.outputs) {
        let output = JobOutput::from_bytes(bytes)
            .map_err(|e| ClientError::Protocol(format!("daemon result failed to decode: {e}")))?;
        if !output_matches(job, &output) {
            return Err(ClientError::Protocol(format!(
                "daemon answered job {job:?} with the wrong output kind"
            )));
        }
        engine.seed(job.clone(), output);
    }
    Ok(reply.stats)
}
