//! Named frontend design points: the configurations compared throughout the
//! paper's evaluation.

use confluence_btb::{BtbDesign, ConventionalBtb, IdealBtb, PerfectBtb, PhantomBtb, TwoLevelBtb};
use confluence_core::{AirBtb, AirBtbMode};
use confluence_prefetch::ShiftHistory;
use confluence_types::StorageProfile;

/// Instruction-prefetch scheme attached to a design point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrefetchScheme {
    /// No instruction prefetching.
    None,
    /// Fetch-directed prefetching from the BPU's fetch queue.
    Fdp,
    /// SHIFT stream prefetching from the shared LLC-virtualized history.
    Shift,
}

/// The frontend configurations evaluated in Figures 2, 6, and 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DesignPoint {
    /// 1K-entry conventional BTB + victim buffer, no prefetching (the
    /// normalization point of Figures 2 and 6).
    Baseline,
    /// Baseline BTB + SHIFT (the normalization point of Figure 7).
    BaselineShift,
    /// Baseline BTB + fetch-directed prefetching.
    Fdp,
    /// PhantomBTB + FDP.
    PhantomFdp,
    /// Two-level BTB (1K + 16K dedicated) + FDP.
    TwoLevelFdp,
    /// PhantomBTB + SHIFT (Figure 7).
    PhantomShift,
    /// Two-level BTB + SHIFT (best prior-art point of Figure 6).
    TwoLevelShift,
    /// Confluence: AirBTB filled by SHIFT (the paper's contribution).
    Confluence,
    /// 16K-entry single-cycle BTB + SHIFT (Figure 7 upper bound).
    IdealBtbShift,
    /// Perfect BTB and perfect L1-I (Figures 2/6 upper bound).
    Ideal,
}

impl DesignPoint {
    /// All design points, in presentation order.
    pub const ALL: [DesignPoint; 10] = [
        DesignPoint::Baseline,
        DesignPoint::BaselineShift,
        DesignPoint::Fdp,
        DesignPoint::PhantomFdp,
        DesignPoint::TwoLevelFdp,
        DesignPoint::PhantomShift,
        DesignPoint::TwoLevelShift,
        DesignPoint::Confluence,
        DesignPoint::IdealBtbShift,
        DesignPoint::Ideal,
    ];

    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            DesignPoint::Baseline => "Baseline(1K BTB)",
            DesignPoint::BaselineShift => "1K BTB+SHIFT",
            DesignPoint::Fdp => "FDP",
            DesignPoint::PhantomFdp => "PhantomBTB+FDP",
            DesignPoint::TwoLevelFdp => "2LevelBTB+FDP",
            DesignPoint::PhantomShift => "PhantomBTB+SHIFT",
            DesignPoint::TwoLevelShift => "2LevelBTB+SHIFT",
            DesignPoint::Confluence => "Confluence",
            DesignPoint::IdealBtbShift => "IdealBTB+SHIFT",
            DesignPoint::Ideal => "Ideal",
        }
    }

    /// The prefetch scheme this design uses.
    pub fn prefetch(self) -> PrefetchScheme {
        match self {
            DesignPoint::Baseline => PrefetchScheme::None,
            DesignPoint::Fdp | DesignPoint::PhantomFdp | DesignPoint::TwoLevelFdp => {
                PrefetchScheme::Fdp
            }
            DesignPoint::BaselineShift
            | DesignPoint::PhantomShift
            | DesignPoint::TwoLevelShift
            | DesignPoint::Confluence
            | DesignPoint::IdealBtbShift => PrefetchScheme::Shift,
            // The ideal frontend needs no prefetcher: the L1-I is perfect.
            DesignPoint::Ideal => PrefetchScheme::None,
        }
    }

    /// True if the design models a perfect (always-hit) L1-I.
    pub fn perfect_l1i(self) -> bool {
        matches!(self, DesignPoint::Ideal)
    }

    /// True if the design runs the predecoder on L1-I fills (Confluence).
    pub fn predecodes_fills(self) -> bool {
        matches!(self, DesignPoint::Confluence)
    }

    /// Builds the design's BTB. `llc_latency` parameterizes PhantomBTB's
    /// virtualized second level.
    pub fn build_btb(self, llc_latency: u64) -> Box<dyn BtbDesign> {
        match self {
            DesignPoint::Baseline | DesignPoint::BaselineShift | DesignPoint::Fdp => {
                Box::new(ConventionalBtb::baseline_1k().expect("valid geometry"))
            }
            DesignPoint::PhantomFdp | DesignPoint::PhantomShift => {
                Box::new(PhantomBtb::paper_config(llc_latency).expect("valid geometry"))
            }
            DesignPoint::TwoLevelFdp | DesignPoint::TwoLevelShift => {
                Box::new(TwoLevelBtb::paper_config().expect("valid geometry"))
            }
            DesignPoint::Confluence => Box::new(AirBtb::paper_config()),
            DesignPoint::IdealBtbShift => Box::new(IdealBtb::new_16k().expect("valid geometry")),
            DesignPoint::Ideal => Box::new(PerfectBtb::new()),
        }
    }

    /// Storage profile used for the relative-area axis of Figures 2 and 6.
    pub fn storage_profile(self) -> StorageProfile {
        let btb = self.build_btb(30).storage();
        match self.prefetch() {
            PrefetchScheme::Shift => btb.merge(ShiftHistory::new_32k().storage()),
            // FDP reuses branch-predictor metadata; the ideal frontend is
            // plotted at the baseline's area (paper Figure 2).
            PrefetchScheme::Fdp | PrefetchScheme::None => {
                if self == DesignPoint::Ideal {
                    DesignPoint::Baseline.storage_profile()
                } else {
                    btb
                }
            }
        }
    }

    /// True if this design keeps AirBTB synchronized with the L1-I.
    pub fn syncs_btb_with_l1i(self) -> bool {
        matches!(self, DesignPoint::Confluence)
    }
}

/// Builds an AirBTB ablation-ladder design (Figure 8).
pub fn airbtb_ablation(mode: AirBtbMode) -> AirBtb {
    AirBtb::new(
        mode,
        confluence_core::DEFAULT_BUNDLES,
        confluence_core::DEFAULT_BUNDLE_ENTRIES,
        confluence_core::DEFAULT_OVERFLOW_ENTRIES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_design_builds_a_btb() {
        for d in DesignPoint::ALL {
            let btb = d.build_btb(30);
            assert!(!btb.name().is_empty());
        }
    }

    #[test]
    fn prefetch_wiring_matches_paper() {
        assert_eq!(DesignPoint::Baseline.prefetch(), PrefetchScheme::None);
        assert_eq!(DesignPoint::Fdp.prefetch(), PrefetchScheme::Fdp);
        assert_eq!(DesignPoint::Confluence.prefetch(), PrefetchScheme::Shift);
        assert!(DesignPoint::Ideal.perfect_l1i());
        assert!(DesignPoint::Confluence.predecodes_fills());
        assert!(DesignPoint::Confluence.syncs_btb_with_l1i());
    }

    #[test]
    fn area_ordering_matches_figure_6() {
        use confluence_area::AreaModel;
        let model = AreaModel::paper();
        let base = DesignPoint::Baseline.storage_profile();
        let rel = |d: DesignPoint| model.relative_area(&d.storage_profile(), &base);
        // Paper x-axis: Baseline = Phantom ≈ 1.0 < Confluence ≈ 1.01
        // < 2LevelBTB+FDP ≈ 1.08 <= 2LevelBTB+SHIFT.
        assert!((rel(DesignPoint::PhantomFdp) - 1.0).abs() < 0.005);
        let conf = rel(DesignPoint::Confluence);
        assert!((1.002..1.02).contains(&conf), "Confluence at {conf}");
        let two = rel(DesignPoint::TwoLevelFdp);
        assert!((1.06..1.11).contains(&two), "2Level at {two}");
        assert!(rel(DesignPoint::TwoLevelShift) > two);
    }
}
