//! The parallel memoizing experiment engine.
//!
//! [`SimEngine`] owns the generated workload programs (shared via `Arc`,
//! never cloned) and a content-keyed result cache. Figures declare the
//! [`Job`]s they need; the engine executes each *unique* job exactly once —
//! on a scoped worker pool when batched through [`SimEngine::run`], or
//! inline on first demand — and every later request for the same key is a
//! cache hit. Requests that race an in-flight execution block on that
//! execution instead of recomputing.
//!
//! Jobs are pure functions of their key (the simulators are deterministic
//! and each job builds its own structures from a [`crate::BtbSpec`]
//! factory), so parallel and serial execution produce byte-identical
//! results; `engine_determinism` in the integration suite asserts this.
//!
//! Scheduling is **cost-aware**: batches start their most expensive jobs
//! first ([`Job::cost_hint`] — CMP timing runs dwarf everything else),
//! and a timing run that begins while pool slots sit idle borrows them
//! as core shards (`crate::cmp::simulate_cmp_with_shards`), so a thin
//! batch or a batch's tail parallelizes *inside* the job instead of
//! leaving workers parked. Lending never changes results — the two-phase
//! tick is byte-identical at any shard count.
//!
//! With a [`ResultStore`] attached ([`SimEngine::with_store`]) the cache
//! grows a second, persistent tier: a claimed key consults **memory →
//! disk → execute**, fresh executions are spilled back to disk, and a
//! later process re-running the same jobs serves them all from the store
//! (`disk_hits` in [`EngineStats`]). Corrupt or stale entries fail the
//! store's verification and simply re-execute. In-flight blocking
//! semantics are unchanged: racing requests for a key wait on whichever
//! thread claimed it, whether that thread loads from disk or simulates.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use confluence_serve::FETCH_HOP_LIMIT;
use confluence_store::{Encode, ResultStore, Tier};
use confluence_trace::{ExecMode, MemoStats, MemoTable, Program, Workload};

use crate::cmp::{simulate_cmp_with_shards_mode, TimingResult};
use crate::codec::{output_matches, workloads_fingerprint, ArtifactKey, StoreKey};
use crate::coverage::{branch_density_mode, run_coverage_with_mode, CoverageResult};
use crate::job::{CoverageJob, DensityJob, Job, JobOutput, TimingJob};
use crate::peers::PeerSet;

/// Environment variable that disables the persistent warm-artifact tier
/// when set to a non-empty value other than `0` (the
/// `--no-warm-artifacts` CLI flag sets the same thing explicitly).
/// Results never depend on it — artifacts only replay paths the executor
/// would re-derive bit-identically.
pub const NO_WARM_ARTIFACTS_ENV: &str = "CONFLUENCE_NO_WARM_ARTIFACTS";

/// Resolves the warm-artifact default from [`NO_WARM_ARTIFACTS_ENV`].
fn warm_artifacts_from_env() -> bool {
    !matches!(std::env::var_os(NO_WARM_ARTIFACTS_ENV), Some(v) if !v.is_empty() && v != *"0")
}

/// Snapshot of the engine's cache accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total job requests served (executions + hits).
    pub requests: u64,
    /// Unique jobs actually simulated.
    pub executed: u64,
    /// Requests satisfied from the in-memory cache (or by waiting on an
    /// in-flight execution of the same key).
    pub hits: u64,
    /// Unique jobs served from the persistent result store instead of
    /// being simulated.
    pub disk_hits: u64,
    /// Entries (results and artifacts) fetched from remote peers and
    /// promoted into the local store. A promoted result is then served
    /// as a `disk_hits` entry — `remote_hits` counts where the bytes
    /// came from, not an extra serving tier.
    pub remote_hits: u64,
    /// Completed batched fetch exchanges with peers (at most one per
    /// consulted peer per tier per batch).
    pub remote_round_trips: u64,
    /// Raw entry bytes received from peers (verified or not).
    pub remote_bytes: u64,
}

/// What a filled cache slot holds: the job's output, or a record that the
/// executing thread panicked — waiters re-panic instead of deadlocking.
type SlotResult = Result<Arc<JobOutput>, String>;

/// One cache slot: filled exactly once, then read forever. Requests that
/// find the slot before its result is ready wait on the condvar.
struct Slot {
    ready: Mutex<Option<SlotResult>>,
    cond: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            ready: Mutex::new(None),
            cond: Condvar::new(),
        }
    }

    fn fill(&self, result: SlotResult) {
        *self.ready.lock().expect("slot poisoned") = Some(result);
        self.cond.notify_all();
    }
}

/// Parallel memoizing executor for simulation jobs.
pub struct SimEngine {
    workloads: Vec<(Workload, Arc<Program>)>,
    threads: usize,
    /// Record-stream path every job executes through. Outputs are
    /// byte-identical across modes, so the mode is *not* part of any cache
    /// or store key — entries are shared freely between fast-path and
    /// reference runs. The compiled form itself is cached on each
    /// `Arc<Program>` (`Program::compiled`), so the whole suite pays one
    /// translation per workload per process, shared across jobs and shards.
    mode: ExecMode,
    cache: Mutex<HashMap<Job, Arc<Slot>>>,
    store: Option<ResultStore>,
    /// Whether the store's warm-artifact tier is consulted/written. With
    /// it on, the first job to *execute* against a workload first imports
    /// that workload's persisted path-memo table (so even a cold process
    /// replays from record zero), and [`SimEngine::persist_warm_artifacts`]
    /// writes back whatever the run newly recorded.
    warm_artifacts: bool,
    /// Workloads whose artifact load already happened (hit or miss) —
    /// the import is idempotent but the disk read is worth doing once.
    warm_loaded: Mutex<HashSet<Workload>>,
    /// Artifact imports that actually loaded a table, over the engine's
    /// whole lifetime. Observability for the daemon's once-per-lifetime
    /// import guarantee: a second batch over the same workloads must
    /// leave this unchanged.
    warm_imports: AtomicU64,
    /// The remote warm tier: peer daemons consulted (batched, once per
    /// batch) for keys missing from both memory and local disk. Fetched
    /// entries are re-verified and promoted into the local store, so
    /// the per-job lookup chain below never talks to the network.
    peers: Option<PeerSet>,
    requests: AtomicU64,
    executed: AtomicU64,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    remote_hits: AtomicU64,
    remote_round_trips: AtomicU64,
    remote_bytes: AtomicU64,
    /// Jobs currently being served (executing or loading from disk),
    /// across the worker pool and direct callers. The pool's width minus
    /// this count is the engine's idle capacity — the workers a CMP
    /// timing job may borrow as core shards.
    in_flight: AtomicUsize,
    /// Pool slots currently lent out as core shards. Claims serialize
    /// through this counter so concurrent timing jobs split the idle
    /// capacity instead of each taking all of it.
    lent: AtomicUsize,
}

impl SimEngine {
    /// Creates an engine over the given workload programs, sized to the
    /// host's available parallelism.
    pub fn new(workloads: Vec<(Workload, Arc<Program>)>) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SimEngine {
            workloads,
            threads,
            mode: ExecMode::from_env(),
            cache: Mutex::new(HashMap::new()),
            store: None,
            warm_artifacts: warm_artifacts_from_env(),
            warm_loaded: Mutex::new(HashSet::new()),
            warm_imports: AtomicU64::new(0),
            peers: None,
            requests: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            remote_hits: AtomicU64::new(0),
            remote_round_trips: AtomicU64::new(0),
            remote_bytes: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            lent: AtomicUsize::new(0),
        }
    }

    /// Overrides the worker-pool width. `1` forces serial execution (the
    /// reference path for determinism checks and speedup baselines).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the record-stream execution path (the default is
    /// resolved from `CONFLUENCE_NO_FASTPATH`). Results do not depend on
    /// the mode, only wall-clock time does.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// The record-stream path this engine executes jobs through.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Attaches a persistent result store as the second cache tier:
    /// lookups go memory → disk → execute, and fresh executions are
    /// written back to the store.
    pub fn with_store(mut self, store: ResultStore) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Attaches a remote warm tier: peer daemons consulted (in one
    /// batched round trip per batch) for keys missing from memory and
    /// local disk. Requires an attached store — fetched entries are
    /// promoted through the store's verified atomic write path, never
    /// trusted directly.
    pub fn with_peers(mut self, peers: PeerSet) -> Self {
        self.peers = Some(peers);
        self
    }

    /// The attached peer set, if any.
    pub fn peers(&self) -> Option<&PeerSet> {
        self.peers.as_ref()
    }

    /// Overrides whether the store's warm-artifact tier is used (the
    /// default is resolved from [`NO_WARM_ARTIFACTS_ENV`]). Like the exec
    /// mode, this only moves wall-clock time: artifacts replay paths the
    /// executors would otherwise re-record, bit for bit.
    pub fn with_warm_artifacts(mut self, on: bool) -> Self {
        self.warm_artifacts = on;
        self
    }

    /// Whether the warm-artifact tier is enabled (it still needs an
    /// attached store to do anything).
    pub fn warm_artifacts(&self) -> bool {
        self.warm_artifacts
    }

    /// The worker-pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The workload programs, in presentation order.
    pub fn workloads(&self) -> &[(Workload, Arc<Program>)] {
        &self.workloads
    }

    /// The program generated for `workload`.
    ///
    /// # Panics
    ///
    /// Panics if the engine was not built with that workload.
    pub fn program(&self, workload: Workload) -> &Arc<Program> {
        self.workloads
            .iter()
            .find(|(w, _)| *w == workload)
            .map(|(_, p)| p)
            .unwrap_or_else(|| panic!("engine has no program for workload {workload:?}"))
    }

    /// Current cache accounting.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.requests.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            remote_round_trips: self.remote_round_trips.load(Ordering::Relaxed),
            remote_bytes: self.remote_bytes.load(Ordering::Relaxed),
        }
    }

    /// Executes a batch of jobs on the worker pool. Duplicate keys within
    /// the batch are collapsed first; keys already cached are hits. Returns
    /// once every job's result is cached, so subsequent per-job accessors
    /// are pure lookups.
    pub fn run(&self, jobs: &[Job]) {
        // Remote warm tier first, while the batch is still a batch: one
        // fetch round trip covers every local miss, after which the
        // per-job chain below finds the promoted entries on local disk.
        self.prefetch_remote(jobs);
        let mut deduped: Vec<&Job> = Vec::with_capacity(jobs.len());
        let mut seen = std::collections::HashSet::with_capacity(jobs.len());
        for job in jobs {
            if seen.insert(job) {
                deduped.push(job);
            }
        }
        // Drop jobs whose results are already cached — the warm path pays
        // no worker spawn/join for what amounts to pure cache reads. Keys
        // that are merely in flight stay in the batch so `run` still
        // returns only once their results land.
        let mut unique: Vec<&Job> = {
            let cache = self.cache.lock().expect("engine cache poisoned");
            deduped
                .into_iter()
                .filter(|job| match cache.get(*job) {
                    Some(slot) => slot.ready.lock().expect("slot poisoned").is_none(),
                    None => true,
                })
                .collect()
        };
        if unique.is_empty() {
            return;
        }
        // Most-expensive first: a CMP timing run started last would pin
        // the batch's tail to a single worker, while one started first
        // overlaps with the swarm of cheap coverage/density jobs (and the
        // true tail inherits the pool as core shards). The sort is stable,
        // so equal-cost jobs keep their declaration order.
        unique.sort_by_key(|job| std::cmp::Reverse(job.cost_hint()));
        let workers = self.threads.min(unique.len()).max(1);
        if workers == 1 {
            for job in unique {
                self.fetch(job);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = unique.get(i) else { break };
                    self.fetch(job);
                });
            }
        });
    }

    /// Result of a coverage job (computed now if absent).
    pub fn coverage(&self, job: &CoverageJob) -> CoverageResult {
        match &*self.fetch(&Job::Coverage(job.clone())) {
            JobOutput::Coverage(r) => *r,
            other => unreachable!("coverage job produced {other:?}"),
        }
    }

    /// Result of a timing job (computed now if absent), shared straight
    /// out of the cache.
    pub fn timing(&self, job: &TimingJob) -> Arc<TimingResult> {
        match &*self.fetch(&Job::Timing(job.clone())) {
            JobOutput::Timing(r) => Arc::clone(r),
            other => unreachable!("timing job produced {other:?}"),
        }
    }

    /// Result of any job by key (computed now if absent), shared straight
    /// out of the cache. The daemon's entry point: one method serving
    /// whatever an encoded request decodes to, with the same memoization
    /// and in-flight dedup as the typed accessors.
    pub fn output(&self, job: &Job) -> Arc<JobOutput> {
        self.fetch(job)
    }

    /// Installs an already-known result for `job` without touching the
    /// stats counters, the disk tier, or the executors. The client side
    /// of a daemon run uses this to inject daemon-computed outputs so
    /// the figure formatters' subsequent reads are pure local hits. A
    /// key that is already cached (or in flight) is left alone.
    pub fn seed(&self, job: Job, output: JobOutput) {
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        if let Entry::Vacant(v) = cache.entry(job) {
            let slot = Arc::new(Slot::new());
            slot.fill(Ok(Arc::new(output)));
            v.insert(slot);
        }
    }

    /// `(static, dynamic)` densities of a density job (computed now if
    /// absent).
    pub fn density(&self, job: &DensityJob) -> (f64, f64) {
        match &*self.fetch(&Job::Density(job.clone())) {
            JobOutput::Density(s, d) => (*s, *d),
            other => unreachable!("density job produced {other:?}"),
        }
    }

    /// Memoized fetch: the first request for a key claims it and executes;
    /// concurrent requests for the same key wait for that execution;
    /// later requests read the cached result.
    fn fetch(&self, job: &Job) -> Arc<JobOutput> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let (slot, claimed) = {
            let mut cache = self.cache.lock().expect("engine cache poisoned");
            match cache.entry(job.clone()) {
                Entry::Occupied(e) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    (Arc::clone(e.get()), false)
                }
                Entry::Vacant(v) => {
                    let slot = Arc::new(Slot::new());
                    v.insert(Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if claimed {
            // Catch panics over the whole claimed path — disk tier
            // included, since `store_key`/`program` can panic too — so
            // racing waiters on this key re-panic instead of blocking
            // forever on a slot that will never fill.
            let _serving = InFlightGuard::enter(&self.in_flight);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match self.load_from_store(job) {
                    Some(out) => (out, true),
                    None => {
                        let output = self.execute(job);
                        self.save_to_store(job, &output);
                        (Arc::new(output), false)
                    }
                }
            }));
            match outcome {
                Ok((out, from_disk)) => {
                    let counter = if from_disk {
                        &self.disk_hits
                    } else {
                        &self.executed
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    slot.fill(Ok(Arc::clone(&out)));
                    out
                }
                Err(panic) => {
                    let msg = panic_message(&panic);
                    slot.fill(Err(format!("job {job:?} panicked: {msg}")));
                    std::panic::resume_unwind(panic);
                }
            }
        } else {
            let mut ready = slot.ready.lock().expect("slot poisoned");
            while ready.is_none() {
                ready = slot.cond.wait(ready).expect("slot poisoned");
            }
            match ready.as_ref().expect("checked above") {
                Ok(out) => Arc::clone(out),
                Err(msg) => panic!("waited-on {msg}"),
            }
        }
    }

    /// The remote pre-pass of a batch: collects every unique job with
    /// no in-memory result and no local disk entry, fetches the lot
    /// from the peers in **one batched round trip** (per consulted
    /// peer), re-verifies and promotes each returned entry into the
    /// local store, and — only for workloads that still have to execute
    /// — fetches their warm artifacts the same way. A no-op without
    /// peers or without a store; any peer failure degrades to local
    /// simulation. Jobs whose workload this engine does not serve are
    /// skipped here and left to the per-job path's own error handling.
    pub fn prefetch_remote(&self, jobs: &[Job]) {
        let (Some(peers), Some(store)) = (&self.peers, &self.store) else {
            return;
        };
        let fingerprint = workloads_fingerprint(&self.workloads);
        // Unique jobs missing from both local tiers. Keys merely in
        // flight are skipped too: whoever claimed them is already
        // producing the result.
        let mut missing: Vec<(&Job, Vec<u8>)> = Vec::new();
        {
            let mut seen = HashSet::with_capacity(jobs.len());
            let cache = self.cache.lock().expect("engine cache poisoned");
            for job in jobs {
                if !seen.insert(job) || cache.contains_key(job) {
                    continue;
                }
                if !self.workloads.iter().any(|(w, _)| *w == job.workload()) {
                    continue;
                }
                let key = self.store_key(job).to_bytes();
                if store.load_raw(&key, Tier::Result).is_none() {
                    missing.push((job, key));
                }
            }
        }
        if missing.is_empty() {
            return;
        }
        let keys: Vec<Vec<u8>> = missing.iter().map(|(_, k)| k.clone()).collect();
        let fetched = peers.fetch(fingerprint, Tier::Result, FETCH_HOP_LIMIT, &keys);
        self.remote_round_trips
            .fetch_add(fetched.round_trips, Ordering::Relaxed);
        self.remote_bytes
            .fetch_add(fetched.bytes, Ordering::Relaxed);
        let mut unresolved: Vec<&Job> = Vec::new();
        for ((job, key), entry) in missing.iter().zip(fetched.entries) {
            match entry {
                // adopt_raw re-verifies every byte; a lying peer's entry
                // falls through to `unresolved` and re-simulates.
                Some(data) if store.adopt_raw(key, &data, Tier::Result) => {
                    self.remote_hits.fetch_add(1, Ordering::Relaxed);
                }
                _ => unresolved.push(job),
            }
        }
        // Warm artifacts only help jobs that will actually execute, so a
        // fully-served batch stops at exactly one round trip.
        if !self.warm_artifacts || unresolved.is_empty() {
            return;
        }
        let mut wl_seen = HashSet::new();
        let mut art_keys: Vec<Vec<u8>> = Vec::new();
        {
            let loaded = self.warm_loaded.lock().expect("warm-loaded poisoned");
            for job in unresolved {
                let workload = job.workload();
                if !wl_seen.insert(workload) || loaded.contains(&workload) {
                    continue;
                }
                let key = ArtifactKey {
                    spec: self.program(workload).spec(),
                }
                .to_bytes();
                if store.load_raw(&key, Tier::Artifact).is_none() {
                    art_keys.push(key);
                }
            }
        }
        if art_keys.is_empty() {
            return;
        }
        let fetched = peers.fetch(fingerprint, Tier::Artifact, FETCH_HOP_LIMIT, &art_keys);
        self.remote_round_trips
            .fetch_add(fetched.round_trips, Ordering::Relaxed);
        self.remote_bytes
            .fetch_add(fetched.bytes, Ordering::Relaxed);
        for (key, entry) in art_keys.iter().zip(fetched.entries) {
            if let Some(data) = entry {
                if store.adopt_raw(key, &data, Tier::Artifact) {
                    self.remote_hits.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The serving side of the remote warm tier: answers a peer's (or a
    /// daemonless client's) batched fetch with raw verified entries
    /// from the local store. Keys the local store misses are forwarded
    /// to this engine's own peers while `ttl > 0` (with `ttl - 1`, so
    /// mutually-peered daemons terminate instead of recursing); entries
    /// a further peer supplies are promoted locally before being served
    /// onward. Without a store everything is a miss.
    pub fn fetch_remote_raw(&self, tier: Tier, ttl: u32, keys: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        let Some(store) = &self.store else {
            return vec![None; keys.len()];
        };
        let mut entries: Vec<Option<Vec<u8>>> =
            keys.iter().map(|k| store.load_raw(k, tier)).collect();
        let missing: Vec<usize> = (0..keys.len()).filter(|&i| entries[i].is_none()).collect();
        if missing.is_empty() || ttl == 0 {
            return entries;
        }
        let Some(peers) = &self.peers else {
            return entries;
        };
        let subset: Vec<Vec<u8>> = missing.iter().map(|&i| keys[i].clone()).collect();
        let fingerprint = workloads_fingerprint(&self.workloads);
        let fetched = peers.fetch(fingerprint, tier, ttl - 1, &subset);
        self.remote_round_trips
            .fetch_add(fetched.round_trips, Ordering::Relaxed);
        self.remote_bytes
            .fetch_add(fetched.bytes, Ordering::Relaxed);
        for (&slot, entry) in missing.iter().zip(fetched.entries) {
            if let Some(data) = entry {
                if store.adopt_raw(&keys[slot], &data, tier) {
                    self.remote_hits.fetch_add(1, Ordering::Relaxed);
                    entries[slot] = Some(data);
                }
            }
        }
        entries
    }

    /// The persistent key for `job`: the job plus the spec its program
    /// was generated from, so runs over differently-tuned programs never
    /// share an entry even when the `Job` itself is equal.
    fn store_key<'a>(&'a self, job: &'a Job) -> StoreKey<'a> {
        StoreKey {
            spec: self.program(job.workload()).spec(),
            job,
        }
    }

    /// Disk tier of a claimed fetch. `None` on any miss: absent store,
    /// absent entry, failed verification, or (belt and braces) an entry
    /// whose output kind does not answer this job.
    fn load_from_store(&self, job: &Job) -> Option<Arc<JobOutput>> {
        let store = self.store.as_ref()?;
        let output: JobOutput = store.load(&self.store_key(job))?;
        if !output_matches(job, &output) {
            return None;
        }
        Some(Arc::new(output))
    }

    /// Spills a fresh execution to the store. Best-effort: a write
    /// failure (full disk, read-only store) costs a re-simulation in the
    /// next process, never correctness, so it is not propagated.
    fn save_to_store(&self, job: &Job, output: &JobOutput) {
        if let Some(store) = &self.store {
            let _ = store.save(&self.store_key(job), output);
        }
    }

    /// Pre-loads `workload`'s persisted path-memo table before its first
    /// execution in this process, so the executors the job spins up start
    /// in replay mode from record zero. Runs at most one disk read per
    /// workload; a missing, corrupt, or mismatched artifact is simply a
    /// miss (the run re-records and [`SimEngine::persist_warm_artifacts`]
    /// repairs the file).
    fn ensure_warm_artifacts(&self, workload: Workload) {
        if !self.warm_artifacts {
            return;
        }
        let Some(store) = &self.store else { return };
        let mut loaded = self.warm_loaded.lock().expect("warm-loaded poisoned");
        if !loaded.insert(workload) {
            return;
        }
        let program = self.program(workload);
        if let Some(table) = store.load_artifact::<MemoTable>(&ArtifactKey {
            spec: program.spec(),
        }) {
            program.compiled().import_memo(&table);
            self.warm_imports.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many warm-artifact imports actually loaded a table so far.
    /// At most one per workload per engine lifetime — the figure a
    /// long-running daemon amortizes across every batch it serves.
    pub fn warm_imports(&self) -> u64 {
        self.warm_imports.load(Ordering::Relaxed)
    }

    /// Writes each workload's newly recorded paths back to the store's
    /// artifact tier; returns how many artifact files were written. A
    /// no-op without a store or with the tier disabled, and — because
    /// imports mark the bank clean — a fully warm run writes nothing,
    /// leaving artifact mtimes (and thus GC order) undisturbed.
    /// Workloads the run never translated are skipped, not compiled.
    pub fn persist_warm_artifacts(&self) -> usize {
        if !self.warm_artifacts {
            return 0;
        }
        let Some(store) = &self.store else { return 0 };
        let mut written = 0;
        for (_, program) in &self.workloads {
            let Some(compiled) = program.compiled_if_translated() else {
                continue;
            };
            let Some(table) = compiled.export_new_memo() else {
                continue;
            };
            let key = ArtifactKey {
                spec: program.spec(),
            };
            if store.save_artifact(&key, &table).is_ok() {
                written += 1;
            }
        }
        written
    }

    /// Aggregate path-memo accounting across the workloads this process
    /// actually translated (untranslated programs have no bank to read).
    pub fn memo_stats(&self) -> MemoStats {
        let mut total = MemoStats::default();
        for (_, program) in &self.workloads {
            if let Some(compiled) = program.compiled_if_translated() {
                let s = compiled.memo_stats();
                total.tables += s.tables;
                total.steps += s.steps;
                total.replayed += s.replayed;
                total.recorded += s.recorded;
                total.live += s.live;
            }
        }
        total
    }

    fn execute(&self, job: &Job) -> JobOutput {
        self.ensure_warm_artifacts(job.workload());
        match job {
            Job::Coverage(c) => {
                let program = self.program(c.workload);
                JobOutput::Coverage(run_coverage_with_mode(
                    program,
                    || c.btb.build(program),
                    &c.opts,
                    self.mode,
                ))
            }
            Job::Timing(t) => {
                let program = self.program(t.workload);
                let lease = self.borrow_idle_slots();
                JobOutput::Timing(Arc::new(simulate_cmp_with_shards_mode(
                    program,
                    t.design,
                    &t.cfg,
                    1 + lease.extra,
                    self.mode,
                )))
            }
            Job::Density(d) => {
                let program = self.program(d.workload);
                let (s, dy) = branch_density_mode(program, d.instrs, d.seed, self.mode);
                JobOutput::Density(s, dy)
            }
        }
    }

    /// Claims the pool's currently idle slots for one CMP timing run's
    /// core shards, returning a lease that gives them back on drop.
    /// During a wide batch there is nothing to claim (job-grain
    /// parallelism already saturates the pool); in a thin batch or at a
    /// batch's tail the idle workers go to the run instead of waiting it
    /// out. Claims serialize through the `lent` counter, so concurrent
    /// borrowers split the idle capacity instead of each taking all of
    /// it; the `in_flight` snapshot is still racy, but a stale read only
    /// costs a transient slot of oversubscription, never correctness —
    /// results are shard-count-invariant, and a 1-thread engine always
    /// lends nothing, keeping the serial reference path truly serial.
    fn borrow_idle_slots(&self) -> ShardLease<'_> {
        let busy = self.in_flight.load(Ordering::Relaxed).max(1);
        let mut extra = 0;
        let _ = self
            .lent
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |lent| {
                extra = self.threads.saturating_sub(busy + lent);
                (extra > 0).then_some(lent + extra)
            });
        ShardLease {
            counter: &self.lent,
            extra,
        }
    }
}

/// RAII claim on lent pool slots; gives them back when the timing run
/// completes.
struct ShardLease<'a> {
    counter: &'a AtomicUsize,
    extra: usize,
}

impl Drop for ShardLease<'_> {
    fn drop(&mut self) {
        if self.extra > 0 {
            self.counter.fetch_sub(self.extra, Ordering::Relaxed);
        }
    }
}

/// RAII increment of the engine's in-flight job count.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl<'a> InFlightGuard<'a> {
    fn enter(counter: &'a AtomicUsize) -> Self {
        counter.fetch_add(1, Ordering::Relaxed);
        InFlightGuard(counter)
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageOptions;
    use crate::designs::DesignPoint;
    use crate::job::BtbSpec;
    use crate::TimingConfig;
    use confluence_trace::WorkloadSpec;
    use confluence_uarch::MemParams;

    fn tiny_engine() -> SimEngine {
        let program = Arc::new(Program::generate(&WorkloadSpec::tiny()).expect("valid spec"));
        SimEngine::new(vec![(Workload::WebFrontend, program)])
    }

    fn tiny_opts() -> CoverageOptions {
        CoverageOptions {
            warmup_instrs: 20_000,
            measure_instrs: 40_000,
            ..Default::default()
        }
    }

    #[test]
    fn repeated_requests_execute_once() {
        let engine = tiny_engine();
        let job = CoverageJob {
            workload: Workload::WebFrontend,
            btb: BtbSpec::Baseline1k,
            opts: tiny_opts(),
        };
        let a = engine.coverage(&job);
        let b = engine.coverage(&job);
        assert_eq!(a, b);
        let stats = engine.stats();
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn batch_collapses_duplicates_across_job_kinds() {
        let engine = tiny_engine().with_threads(4);
        let cov: Job = CoverageJob {
            workload: Workload::WebFrontend,
            btb: BtbSpec::Baseline1k,
            opts: tiny_opts(),
        }
        .into();
        let timing: Job = TimingJob {
            workload: Workload::WebFrontend,
            design: DesignPoint::Baseline,
            cfg: TimingConfig {
                cores: 2,
                warmup_instrs: 20_000,
                measure_instrs: 20_000,
                mem: MemParams {
                    cores: 4,
                    ..MemParams::default()
                },
                ..TimingConfig::default()
            },
        }
        .into();
        let density: Job = DensityJob {
            workload: Workload::WebFrontend,
            instrs: 50_000,
            seed: 3,
        }
        .into();
        let batch: Vec<Job> = vec![
            cov.clone(),
            timing.clone(),
            density.clone(),
            cov.clone(),
            timing.clone(),
            density,
        ];
        engine.run(&batch);
        assert_eq!(engine.stats().executed, 3, "duplicates must collapse");
        // A second identical batch is all hits.
        engine.run(&batch);
        assert_eq!(engine.stats().executed, 3);
    }

    /// A fresh store directory under the system temp dir; removed on drop.
    struct StoreDir(std::path::PathBuf);

    impl StoreDir {
        fn new(tag: &str) -> StoreDir {
            let path = std::env::temp_dir().join(format!(
                "confluence-engine-store-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            StoreDir(path)
        }

        fn open(&self) -> ResultStore {
            ResultStore::open(&self.0, crate::codec::SCHEMA_VERSION).expect("temp dir writable")
        }
    }

    impl Drop for StoreDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn tiny_job() -> CoverageJob {
        CoverageJob {
            workload: Workload::WebFrontend,
            btb: BtbSpec::Baseline1k,
            opts: tiny_opts(),
        }
    }

    /// The on-disk entry file for `job` in a tiny engine's store.
    fn tiny_entry_path(engine: &SimEngine, job: &CoverageJob) -> std::path::PathBuf {
        let job = Job::Coverage(job.clone());
        let key = StoreKey {
            spec: engine.program(Workload::WebFrontend).spec(),
            job: &job,
        };
        engine.store().expect("store attached").entry_path(&key)
    }

    #[test]
    fn second_engine_serves_from_disk() {
        let dir = StoreDir::new("warm");
        let job = tiny_job();

        let cold = tiny_engine().with_store(dir.open());
        let first = cold.coverage(&job);
        assert_eq!(cold.stats().executed, 1);
        assert_eq!(cold.stats().disk_hits, 0);
        assert_eq!(cold.store().unwrap().len(), 1);

        // A fresh engine (fresh process, in spirit) re-derives nothing.
        let warm = tiny_engine().with_store(dir.open());
        let second = warm.coverage(&job);
        assert_eq!(second, first, "stored result must equal the fresh one");
        let stats = warm.stats();
        assert_eq!(stats.executed, 0, "warm run must not simulate");
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.hits, 0);

        // Within the warm engine, later requests are memory hits, not
        // repeated disk reads.
        warm.coverage(&job);
        assert_eq!(warm.stats().disk_hits, 1);
        assert_eq!(warm.stats().hits, 1);
    }

    #[test]
    fn truncated_entry_is_resimulated_and_overwritten() {
        let dir = StoreDir::new("truncate");
        let job = tiny_job();

        let cold = tiny_engine().with_store(dir.open());
        let expected = cold.coverage(&job);
        let path = tiny_entry_path(&cold, &job);
        let clean = std::fs::read(&path).expect("entry written");
        std::fs::write(&path, &clean[..clean.len() / 2]).unwrap();

        let repaired = tiny_engine().with_store(dir.open());
        assert_eq!(repaired.coverage(&job), expected);
        let stats = repaired.stats();
        assert_eq!(stats.executed, 1, "corrupt entry must re-simulate");
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            clean,
            "re-simulation must overwrite the corrupt entry in place"
        );

        // The overwritten entry serves the next engine from disk again.
        let warm = tiny_engine().with_store(dir.open());
        assert_eq!(warm.coverage(&job), expected);
        assert_eq!(warm.stats().disk_hits, 1);
    }

    #[test]
    fn bit_flipped_entry_is_resimulated_not_trusted() {
        let dir = StoreDir::new("bitflip");
        let job = tiny_job();

        let cold = tiny_engine().with_store(dir.open());
        let expected = cold.coverage(&job);
        let path = tiny_entry_path(&cold, &job);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the middle of the value region.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let repaired = tiny_engine().with_store(dir.open());
        assert_eq!(
            repaired.coverage(&job),
            expected,
            "garbled entry must never leak into results"
        );
        assert_eq!(repaired.stats().executed, 1);
        assert_eq!(repaired.stats().disk_hits, 0);
    }

    /// Regression: with a store attached, the disk tier runs *inside*
    /// the claimed path's panic guard. A job whose workload the engine
    /// lacks panics in `store_key` — racing waiters must re-panic, not
    /// block forever on a slot that never fills.
    #[test]
    fn store_tier_panic_reaches_waiters_instead_of_deadlocking() {
        let dir = StoreDir::new("panic");
        let engine = tiny_engine().with_store(dir.open());
        // tiny_engine only has WebFrontend.
        let job = CoverageJob {
            workload: Workload::OltpDb2,
            ..tiny_job()
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            engine.coverage(&job)
                        }))
                        .is_err()
                    })
                })
                .collect();
            for h in handles {
                assert!(h.join().unwrap(), "every request must observe the panic");
            }
        });
    }

    #[test]
    fn run_batches_mix_disk_hits_and_executions() {
        let dir = StoreDir::new("batch");
        let a: Job = tiny_job().into();
        let b: Job = CoverageJob {
            btb: BtbSpec::Perfect,
            ..tiny_job()
        }
        .into();

        let cold = tiny_engine().with_store(dir.open());
        cold.run(std::slice::from_ref(&a));
        assert_eq!(cold.stats().executed, 1);

        // Warm engine: `a` comes from disk, `b` still executes; both are
        // persisted afterwards.
        let mixed = tiny_engine().with_store(dir.open()).with_threads(2);
        mixed.run(&[a.clone(), b.clone()]);
        let stats = mixed.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.executed, 1);
        assert_eq!(mixed.store().unwrap().len(), 2);
    }

    /// Concurrent timing jobs must *split* the pool's idle capacity, not
    /// each claim all of it (which would oversubscribe the host with
    /// spin-barrier shard threads for the length of every run).
    #[test]
    fn shard_lending_splits_idle_capacity() {
        let engine = tiny_engine().with_threads(8);
        engine.in_flight.store(3, Ordering::Relaxed);
        let a = engine.borrow_idle_slots();
        let b = engine.borrow_idle_slots();
        assert_eq!(a.extra, 5, "first borrower takes the idle capacity");
        assert_eq!(b.extra, 0, "second borrower must not double-claim");
        drop(a);
        let c = engine.borrow_idle_slots();
        assert_eq!(c.extra, 5, "a dropped lease returns its slots");
        drop(c);
        drop(b);
        assert_eq!(engine.lent.load(Ordering::Relaxed), 0);
        // A 1-thread engine never lends: the serial path stays serial.
        let serial = tiny_engine().with_threads(1);
        serial.in_flight.store(1, Ordering::Relaxed);
        assert_eq!(serial.borrow_idle_slots().extra, 0);
    }

    /// The on-disk warm-artifact file for a tiny engine's workload.
    fn tiny_artifact_path(engine: &SimEngine) -> std::path::PathBuf {
        let key = ArtifactKey {
            spec: engine.program(Workload::WebFrontend).spec(),
        };
        engine.store().expect("store attached").artifact_path(&key)
    }

    #[test]
    fn warm_artifacts_preload_replays_instead_of_recording() {
        let dir = StoreDir::new("artifact");
        let job = tiny_job();

        let cold = tiny_engine()
            .with_store(dir.open())
            .with_warm_artifacts(true);
        let expected = cold.coverage(&job);
        assert!(cold.memo_stats().recorded > 0, "cold run must record paths");
        assert_eq!(cold.persist_warm_artifacts(), 1);
        let art_path = tiny_artifact_path(&cold);
        assert!(art_path.is_file(), "artifact file must land on disk");
        // Nothing new recorded since the export: a second persist is a
        // no-op and must not rewrite the file.
        let mtime = std::fs::metadata(&art_path).unwrap().modified().unwrap();
        assert_eq!(cold.persist_warm_artifacts(), 0);
        assert_eq!(
            std::fs::metadata(&art_path).unwrap().modified().unwrap(),
            mtime
        );

        // Make the fresh engine actually execute (not disk-hit the
        // result): drop the result tier, keep the artifact tier.
        std::fs::remove_file(tiny_entry_path(&cold, &job)).unwrap();

        let warm = tiny_engine()
            .with_store(dir.open())
            .with_warm_artifacts(true);
        assert_eq!(
            warm.coverage(&job),
            expected,
            "warm replay is bit-identical"
        );
        let stats = warm.memo_stats();
        assert!(stats.replayed > 0, "warm run must replay from the artifact");
        assert_eq!(stats.recorded, 0, "a fully warm run records nothing new");
        assert_eq!(warm.persist_warm_artifacts(), 0, "imported bank is clean");
    }

    #[test]
    fn corrupt_artifact_is_a_miss_then_repaired() {
        let dir = StoreDir::new("artifact-corrupt");
        let job = tiny_job();

        let cold = tiny_engine()
            .with_store(dir.open())
            .with_warm_artifacts(true);
        let expected = cold.coverage(&job);
        cold.persist_warm_artifacts();
        let art_path = tiny_artifact_path(&cold);
        let clean = std::fs::read(&art_path).unwrap();
        let mut garbled = clean.clone();
        let mid = garbled.len() / 2;
        garbled[mid] ^= 0x04;
        std::fs::write(&art_path, &garbled).unwrap();
        std::fs::remove_file(tiny_entry_path(&cold, &job)).unwrap();

        let repaired = tiny_engine()
            .with_store(dir.open())
            .with_warm_artifacts(true);
        assert_eq!(
            repaired.coverage(&job),
            expected,
            "a garbled artifact must never change results"
        );
        // In-process memo hits still happen, but the import itself must
        // have missed: the run re-records (a warm import records nothing).
        assert!(
            repaired.memo_stats().recorded > 0,
            "corrupt artifact must be a miss that re-records"
        );
        assert_eq!(repaired.persist_warm_artifacts(), 1);
        assert_eq!(
            std::fs::read(&art_path).unwrap(),
            clean,
            "re-recording must rebuild the identical canonical artifact"
        );
    }

    #[test]
    fn warm_artifacts_off_touches_no_artifact_files() {
        let dir = StoreDir::new("artifact-off");
        let job = tiny_job();
        let engine = tiny_engine()
            .with_store(dir.open())
            .with_warm_artifacts(false);
        engine.coverage(&job);
        assert_eq!(engine.persist_warm_artifacts(), 0);
        assert!(!tiny_artifact_path(&engine).exists());
        assert_eq!(engine.store().unwrap().usage().artifacts, 0);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let program = Arc::new(Program::generate(&WorkloadSpec::tiny()).expect("valid spec"));
        let parallel =
            SimEngine::new(vec![(Workload::WebFrontend, Arc::clone(&program))]).with_threads(4);
        let serial = SimEngine::new(vec![(Workload::WebFrontend, program)]).with_threads(1);
        let jobs: Vec<Job> = [BtbSpec::Baseline1k, BtbSpec::Large16k, BtbSpec::Perfect]
            .into_iter()
            .map(|btb| {
                CoverageJob {
                    workload: Workload::WebFrontend,
                    btb,
                    opts: tiny_opts(),
                }
                .into()
            })
            .collect();
        parallel.run(&jobs);
        serial.run(&jobs);
        for job in &jobs {
            let Job::Coverage(c) = job else {
                unreachable!()
            };
            assert_eq!(parallel.coverage(c), serial.coverage(c));
        }
    }
}
