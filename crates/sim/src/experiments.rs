//! Experiment runners: one function per table/figure of the paper.
//!
//! Every runner regenerates the same rows/series the paper reports and
//! returns them as a [`Report`]. The `all_experiments` binary chains them
//! and emits an EXPERIMENTS.md-style summary with the paper's published
//! values alongside the measured ones.

use std::sync::Arc;

use confluence_area::AreaModel;
use confluence_btb::{ConventionalBtb, PhantomBtb};
use confluence_core::{AirBtb, AirBtbMode};
use confluence_trace::{Program, Workload};
use confluence_uarch::MemParams;

use crate::cmp::{simulate_cmp, TimingConfig};
use crate::coverage::{branch_density, run_coverage, CoverageOptions, CoverageResult};
use crate::designs::DesignPoint;
use crate::report::{f, pct, Report};

/// Shared experiment configuration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Reduced sizes for smoke tests and Criterion benches. Preserves
    /// orderings; absolute numbers are noisier.
    pub quick: bool,
}

impl ExperimentConfig {
    /// Full-size configuration (used by the figure binaries).
    pub fn full() -> Self {
        ExperimentConfig { quick: false }
    }

    /// Reduced configuration.
    pub fn quick() -> Self {
        ExperimentConfig { quick: true }
    }

    /// Coverage-harness options for this configuration.
    pub fn coverage(&self) -> CoverageOptions {
        if self.quick {
            CoverageOptions { warmup_instrs: 300_000, measure_instrs: 500_000, ..Default::default() }
        } else {
            CoverageOptions {
                warmup_instrs: 1_500_000,
                measure_instrs: 2_500_000,
                ..Default::default()
            }
        }
    }

    /// Timing-simulation configuration.
    pub fn timing(&self) -> TimingConfig {
        if self.quick {
            TimingConfig {
                cores: 4,
                warmup_instrs: 120_000,
                measure_instrs: 120_000,
                mem: MemParams { cores: 4, ..MemParams::default() },
                ..TimingConfig::default()
            }
        } else {
            TimingConfig {
                cores: 8,
                warmup_instrs: 200_000,
                measure_instrs: 250_000,
                mem: MemParams { cores: 16, ..MemParams::default() },
                ..TimingConfig::default()
            }
        }
    }

    /// Generates the five paper workloads (scaled down in quick mode).
    pub fn workloads(&self) -> Vec<(Workload, Program)> {
        Workload::ALL
            .into_iter()
            .map(|w| {
                let mut spec = w.spec();
                if self.quick {
                    spec.target_code_kb /= 4;
                }
                (w, Program::generate(&spec).expect("preset specs are valid"))
            })
            .collect()
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Figure 1: BTB MPKI as a function of BTB capacity (1K-32K entries).
pub fn fig1(workloads: &[(Workload, Program)], cfg: &ExperimentConfig) -> Report {
    const CAPACITIES: [usize; 6] = [1, 2, 4, 8, 16, 32];
    let mut report = Report::new(
        "Figure 1: BTB MPKI vs capacity (conventional BTB, kilo-entries)",
        &["workload", "1K", "2K", "4K", "8K", "16K", "32K"],
    );
    let opts = cfg.coverage();
    for (w, p) in workloads {
        let mut cells = vec![w.name().to_string()];
        for k in CAPACITIES {
            let mut btb = ConventionalBtb::new("sweep", k * 1024, 4, 64).expect("valid geometry");
            let r = run_coverage(p, &mut btb, &opts);
            cells.push(f(r.btb_mpki(), 1));
        }
        report.row(cells);
    }
    report
}

/// Table 2: static and dynamic branch density in demand-fetched blocks.
pub fn table2(workloads: &[(Workload, Program)], cfg: &ExperimentConfig) -> Report {
    // Paper values (Table 2).
    let paper: [(f64, f64); 5] = [(3.6, 1.4), (2.5, 1.6), (3.4, 1.4), (3.5, 1.5), (4.3, 1.5)];
    let mut report = Report::new(
        "Table 2: branch density per 64B block (measured vs paper)",
        &["workload", "static", "static(paper)", "dynamic", "dynamic(paper)"],
    );
    let instrs = if cfg.quick { 600_000 } else { 3_000_000 };
    for (i, (w, p)) in workloads.iter().enumerate() {
        let (stat, dynamic) = branch_density(p, instrs, 3);
        report.row(vec![
            w.name().to_string(),
            f(stat, 2),
            f(paper[i].0, 1),
            f(dynamic, 2),
            f(paper[i].1, 1),
        ]);
    }
    report
}

/// Runs the coverage harness for one AirBTB ablation mode.
fn airbtb_coverage(
    program: &Program,
    mode: AirBtbMode,
    bundle: usize,
    overflow: usize,
    opts: &CoverageOptions,
) -> CoverageResult {
    let mut btb = AirBtb::new(mode, confluence_core::DEFAULT_BUNDLES, bundle, overflow);
    if mode == AirBtbMode::SpatialLocality {
        btb = btb.with_oracle(Arc::new(program.clone()));
    }
    let o = match mode {
        AirBtbMode::Prefetching | AirBtbMode::Full => opts.clone().with_shift(),
        _ => opts.clone(),
    };
    run_coverage(program, &mut btb, &o)
}

/// Figure 8: breakdown of AirBTB miss-coverage benefits over the 1K-entry
/// conventional BTB (Capacity, +Spatial Locality, +Prefetching,
/// +Block-Based Organization).
pub fn fig8(workloads: &[(Workload, Program)], cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new(
        "Figure 8: AirBTB coverage breakdown vs 1K conventional BTB \
         (cumulative factors; paper avg: 18% / +57% / +7% / +11% = 93%)",
        &["workload", "capacity", "+spatial", "+prefetch", "+block org (total)"],
    );
    let opts = cfg.coverage();
    for (w, p) in workloads {
        let mut base = ConventionalBtb::baseline_1k().expect("valid geometry");
        let rb = run_coverage(p, &mut base, &opts);
        let steps = [
            airbtb_coverage(p, AirBtbMode::CapacityOnly, 3, 32, &opts),
            airbtb_coverage(p, AirBtbMode::SpatialLocality, 3, 32, &opts),
            airbtb_coverage(p, AirBtbMode::Prefetching, 3, 32, &opts),
            airbtb_coverage(p, AirBtbMode::Full, 3, 32, &opts),
        ];
        let cov: Vec<f64> = steps.iter().map(|r| r.btb_miss_coverage_vs(&rb)).collect();
        report.row(vec![
            w.name().to_string(),
            pct(cov[0]),
            pct(cov[1]),
            pct(cov[2]),
            pct(cov[3]),
        ]);
    }
    report
}

/// Figure 9: BTB misses eliminated vs the 1K-entry conventional BTB for
/// PhantomBTB, AirBTB (Confluence), and a 16K conventional BTB.
pub fn fig9(workloads: &[(Workload, Program)], cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new(
        "Figure 9: BTB miss coverage vs 1K conventional BTB \
         (paper avg: PhantomBTB 61%, AirBTB 93%, 16K BTB 95%)",
        &["workload", "PhantomBTB", "AirBTB", "16K BTB"],
    );
    let opts = cfg.coverage();
    for (w, p) in workloads {
        let mut base = ConventionalBtb::baseline_1k().expect("valid geometry");
        let rb = run_coverage(p, &mut base, &opts);
        let mut ph = PhantomBtb::paper_config(26).expect("valid geometry");
        let rp = run_coverage(p, &mut ph, &opts);
        let ra = airbtb_coverage(p, AirBtbMode::Full, 3, 32, &opts);
        let mut big = ConventionalBtb::large_16k().expect("valid geometry");
        let r16 = run_coverage(p, &mut big, &opts);
        report.row(vec![
            w.name().to_string(),
            pct(rp.btb_miss_coverage_vs(&rb)),
            pct(ra.btb_miss_coverage_vs(&rb)),
            pct(r16.btb_miss_coverage_vs(&rb)),
        ]);
    }
    report
}

/// Figure 10: AirBTB sensitivity to bundle size (B) and overflow buffer
/// entries (OB).
pub fn fig10(workloads: &[(Workload, Program)], cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new(
        "Figure 10: AirBTB miss coverage for (B, OB) configurations \
         (paper: B:3/OB:0 can be negative; B:3/OB:32 = 93%; B:4/OB:32 = +2%)",
        &["workload", "B:3,OB:0", "B:3,OB:32", "B:4,OB:0", "B:4,OB:32"],
    );
    let opts = cfg.coverage();
    for (w, p) in workloads {
        let mut base = ConventionalBtb::baseline_1k().expect("valid geometry");
        let rb = run_coverage(p, &mut base, &opts);
        let configs = [(3usize, 0usize), (3, 32), (4, 0), (4, 32)];
        let mut cells = vec![w.name().to_string()];
        for (b, ob) in configs {
            let r = airbtb_coverage(p, AirBtbMode::Full, b, ob, &opts);
            cells.push(pct(r.btb_miss_coverage_vs(&rb)));
        }
        report.row(cells);
    }
    report
}

/// Supplementary: SHIFT's L1-I miss coverage (paper Section 5.1 cites
/// ~85-90% of L1-I misses eliminated).
pub fn l1i_coverage(workloads: &[(Workload, Program)], cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new(
        "SHIFT L1-I miss coverage vs no prefetching (paper: ~90%)",
        &["workload", "base L1-I MPKI", "SHIFT L1-I MPKI", "coverage"],
    );
    let opts = cfg.coverage();
    for (w, p) in workloads {
        let mut a = ConventionalBtb::baseline_1k().expect("valid geometry");
        let rb = run_coverage(p, &mut a, &opts);
        let mut b = ConventionalBtb::baseline_1k().expect("valid geometry");
        let rs = run_coverage(p, &mut b, &opts.clone().with_shift());
        report.row(vec![
            w.name().to_string(),
            f(rb.l1i_mpki(), 1),
            f(rs.l1i_mpki(), 1),
            pct(rs.l1i_miss_coverage_vs(&rb)),
        ]);
    }
    report
}

/// The design points plotted in Figure 2 (conventional mechanisms only).
pub const FIG2_DESIGNS: [DesignPoint; 6] = [
    DesignPoint::Baseline,
    DesignPoint::Fdp,
    DesignPoint::PhantomFdp,
    DesignPoint::TwoLevelFdp,
    DesignPoint::TwoLevelShift,
    DesignPoint::Ideal,
];

/// The design points plotted in Figure 6 (Figure 2 + Confluence).
pub const FIG6_DESIGNS: [DesignPoint; 7] = [
    DesignPoint::Baseline,
    DesignPoint::Fdp,
    DesignPoint::PhantomFdp,
    DesignPoint::TwoLevelFdp,
    DesignPoint::TwoLevelShift,
    DesignPoint::Confluence,
    DesignPoint::Ideal,
];

/// Figures 2 and 6: relative performance and relative per-core area of the
/// frontend designs, normalized to the baseline (geometric mean across
/// workloads).
pub fn fig_perf_area(
    workloads: &[(Workload, Program)],
    designs: &[DesignPoint],
    cfg: &ExperimentConfig,
    caption: &str,
) -> Report {
    let mut report = Report::new(
        caption.to_string(),
        &["design", "rel. performance", "rel. area", "btb MPKI", "L1-I MPKI"],
    );
    let tcfg = cfg.timing();
    let area = AreaModel::paper();
    let base_profile = DesignPoint::Baseline.storage_profile();

    // Baseline IPC per workload for normalization.
    let base_ipc: Vec<f64> = workloads
        .iter()
        .map(|(_, p)| simulate_cmp(p, DesignPoint::Baseline, &tcfg).ipc())
        .collect();

    for &d in designs {
        let mut rel_product = 1.0;
        let mut btb_mpki = 0.0;
        let mut l1i_mpki = 0.0;
        for (i, (_, p)) in workloads.iter().enumerate() {
            let r = if d == DesignPoint::Baseline {
                // Reuse the normalization run's statistics.
                simulate_cmp(p, DesignPoint::Baseline, &tcfg)
            } else {
                simulate_cmp(p, d, &tcfg)
            };
            rel_product *= r.ipc() / base_ipc[i];
            btb_mpki += r.btb_mpki();
            l1i_mpki += r.l1i_mpki();
        }
        let n = workloads.len() as f64;
        let geo = rel_product.powf(1.0 / n);
        let rel_area = area.relative_area(&d.storage_profile(), &base_profile);
        report.row(vec![
            d.name().to_string(),
            f(geo, 3),
            f(rel_area, 3),
            f(btb_mpki / n, 1),
            f(l1i_mpki / n, 1),
        ]);
    }
    report
}

/// Figure 2 wrapper.
pub fn fig2(workloads: &[(Workload, Program)], cfg: &ExperimentConfig) -> Report {
    fig_perf_area(
        workloads,
        &FIG2_DESIGNS,
        cfg,
        "Figure 2: relative performance & area of conventional frontends \
         (paper: FDP 1.05, PhantomBTB+FDP 1.09, 2LevelBTB+SHIFT 1.22, Ideal 1.35)",
    )
}

/// Figure 6 wrapper.
pub fn fig6(workloads: &[(Workload, Program)], cfg: &ExperimentConfig) -> Report {
    fig_perf_area(
        workloads,
        &FIG6_DESIGNS,
        cfg,
        "Figure 6: relative performance & area including Confluence \
         (paper: Confluence 1.30 at ~1.01x area = 85% of Ideal's improvement)",
    )
}

/// Figure 7: per-workload speedup of BTB designs (all coupled with SHIFT)
/// over the 1K-entry conventional BTB + SHIFT.
pub fn fig7(workloads: &[(Workload, Program)], cfg: &ExperimentConfig) -> Report {
    let designs = [
        DesignPoint::PhantomShift,
        DesignPoint::TwoLevelShift,
        DesignPoint::Confluence,
        DesignPoint::IdealBtbShift,
    ];
    let mut report = Report::new(
        "Figure 7: speedup of BTB designs (each coupled with SHIFT) over the \
         1K-entry conventional-BTB baseline \
         (paper: Phantom lowest; 2Level = 51% and Confluence = 90% of IdealBTB's speedup)",
        &["workload", "PhantomBTB+SHIFT", "2LevelBTB+SHIFT", "Confluence", "IdealBTB+SHIFT"],
    );
    let tcfg = cfg.timing();
    for (w, p) in workloads {
        let base = simulate_cmp(p, DesignPoint::Baseline, &tcfg);
        let mut cells = vec![w.name().to_string()];
        for d in designs {
            let r = simulate_cmp(p, d, &tcfg);
            cells.push(f(r.speedup_over(&base), 3));
        }
        report.row(cells);
    }
    report
}

/// Section 4.2 storage/area accounting table.
pub fn area_table() -> Report {
    let mut report = Report::new(
        "Storage & area accounting (paper Section 4.2; CACTI-lite @40nm)",
        &["structure", "dedicated KB", "LLC-resident KB", "per-core mm2", "rel. area"],
    );
    let model = AreaModel::paper();
    let base = DesignPoint::Baseline.storage_profile();
    for d in [
        DesignPoint::Baseline,
        DesignPoint::PhantomFdp,
        DesignPoint::TwoLevelFdp,
        DesignPoint::TwoLevelShift,
        DesignPoint::Confluence,
        DesignPoint::IdealBtbShift,
    ] {
        let p = d.storage_profile();
        report.row(vec![
            d.name().to_string(),
            f(p.dedicated_kib(), 1),
            f(p.llc_resident_bytes as f64 / 1024.0, 0),
            f(model.frontend_mm2(&p), 3),
            f(model.relative_area(&p, &base), 4),
        ]);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_workloads() -> Vec<(Workload, Program)> {
        // Two workloads keep test time sane.
        let cfg = ExperimentConfig::quick();
        cfg.workloads().into_iter().take(2).collect()
    }

    #[test]
    fn fig1_mpki_declines_with_capacity() {
        let ws = quick_workloads();
        let r = fig1(&ws, &ExperimentConfig::quick());
        assert_eq!(r.len(), ws.len());
        let table = r.to_csv();
        // Parse first data row and check monotone non-increase 1K -> 32K.
        let row = table.lines().nth(2).unwrap();
        let vals: Vec<f64> =
            row.split(',').skip(1).map(|v| v.parse().unwrap()).collect();
        assert!(vals[0] >= vals[5], "1K {} should exceed 32K {}", vals[0], vals[5]);
    }

    #[test]
    fn table2_produces_all_rows() {
        let ws = quick_workloads();
        let r = table2(&ws, &ExperimentConfig::quick());
        assert_eq!(r.len(), ws.len());
    }

    #[test]
    fn fig9_airbtb_beats_phantom() {
        let ws = quick_workloads();
        let r = fig9(&ws, &ExperimentConfig::quick());
        let csv = r.to_csv();
        for line in csv.lines().skip(2) {
            let cells: Vec<&str> = line.split(',').collect();
            let phantom: f64 = cells[1].trim_end_matches('%').parse().unwrap();
            let air: f64 = cells[2].trim_end_matches('%').parse().unwrap();
            assert!(air > phantom, "AirBTB {air}% must beat PhantomBTB {phantom}% ({line})");
        }
    }

    #[test]
    fn area_table_matches_paper_budgets() {
        let r = area_table();
        let csv = r.to_csv();
        let conf_row = csv.lines().find(|l| l.starts_with("Confluence")).unwrap();
        let cells: Vec<&str> = conf_row.split(',').collect();
        let rel: f64 = cells[4].parse().unwrap();
        assert!((1.003..1.02).contains(&rel), "Confluence rel. area {rel}");
    }
}
