//! Experiment runners: one function per table/figure of the paper.
//!
//! Each figure is split into two pure halves that meet at the
//! [`SimEngine`](crate::SimEngine) cache:
//!
//! - a **job builder** (`fig8_jobs`, …) declaring the unique simulations
//!   the figure needs as content-keyed [`Job`]s;
//! - a **formatter** (`fig8`, …) that reads the cached results and lays
//!   out the same rows/series the paper reports as a [`Report`].
//!
//! Formatters fetch through the engine, so calling one directly still
//! works — missing jobs are computed on demand — but batching the jobs
//! first (`engine.run(&all_jobs(..))`, as the `all_experiments` binary
//! does) executes everything on the worker pool with each unique
//! simulation run exactly once across all figures: the 1K-baseline
//! coverage run is shared by Figures 8/9/10 and the L1-I table, and the
//! Baseline timing run is shared by Figures 2/6/7 and each figure's own
//! normalization row.

use std::sync::Arc;

use confluence_area::AreaModel;
use confluence_trace::{Program, Workload};
use confluence_uarch::MemParams;

use crate::cmp::TimingConfig;
use crate::coverage::CoverageOptions;
use crate::designs::DesignPoint;
use crate::engine::SimEngine;
use crate::job::{BtbSpec, CoverageJob, DensityJob, Job, TimingJob};
use crate::report::{f, pct, Report};

use confluence_core::AirBtbMode;

/// Shared experiment configuration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Reduced sizes for smoke tests and Criterion benches. Preserves
    /// orderings; absolute numbers are noisier.
    pub quick: bool,
}

impl ExperimentConfig {
    /// Full-size configuration (used by the figure binaries).
    pub fn full() -> Self {
        ExperimentConfig { quick: false }
    }

    /// Reduced configuration.
    pub fn quick() -> Self {
        ExperimentConfig { quick: true }
    }

    /// Coverage-harness options for this configuration.
    pub fn coverage(&self) -> CoverageOptions {
        if self.quick {
            CoverageOptions {
                warmup_instrs: 300_000,
                measure_instrs: 500_000,
                ..Default::default()
            }
        } else {
            CoverageOptions {
                warmup_instrs: 1_500_000,
                measure_instrs: 2_500_000,
                ..Default::default()
            }
        }
    }

    /// Timing-simulation configuration.
    pub fn timing(&self) -> TimingConfig {
        if self.quick {
            TimingConfig {
                cores: 4,
                warmup_instrs: 120_000,
                measure_instrs: 120_000,
                mem: MemParams {
                    cores: 4,
                    ..MemParams::default()
                },
                ..TimingConfig::default()
            }
        } else {
            TimingConfig {
                cores: 8,
                warmup_instrs: 200_000,
                measure_instrs: 250_000,
                mem: MemParams {
                    cores: 16,
                    ..MemParams::default()
                },
                ..TimingConfig::default()
            }
        }
    }

    /// The timing configuration at an explicit core count. The LLC gets
    /// the smallest square tile mesh that accommodates the cores (the
    /// NoC models a square mesh, paper Table 1) — *uniformly*, so
    /// LLC-per-core scales consistently along a core sweep rather than
    /// jumping at the suite's native point. In quick mode the 4-core
    /// result is structurally identical to [`ExperimentConfig::timing`],
    /// so that sweep point shares cache keys with the timing figures.
    pub fn timing_with_cores(&self, cores: usize) -> TimingConfig {
        let base = self.timing();
        let mesh_dim = (cores as f64).sqrt().ceil() as usize;
        TimingConfig {
            cores,
            mem: MemParams {
                cores: mesh_dim * mesh_dim,
                ..base.mem
            },
            ..base
        }
    }

    /// Instructions walked by the Table 2 density characterization.
    pub fn density_instrs(&self) -> u64 {
        if self.quick {
            600_000
        } else {
            3_000_000
        }
    }

    /// Generates one workload's program under this configuration's
    /// scaling — the per-workload slice of
    /// [`ExperimentConfig::workloads`], for tests and tools that only
    /// need a subset without paying for all five programs.
    pub fn workload_program(&self, w: Workload) -> Arc<Program> {
        let mut spec = w.spec();
        if self.quick {
            spec.target_code_kb /= 4;
        }
        Arc::new(Program::generate(&spec).expect("preset specs are valid"))
    }

    /// Generates the five paper workloads (scaled down in quick mode),
    /// shared via `Arc` so every job reads one copy.
    pub fn workloads(&self) -> Vec<(Workload, Arc<Program>)> {
        Workload::ALL
            .into_iter()
            .map(|w| (w, self.workload_program(w)))
            .collect()
    }

    /// Builds an engine over this configuration's workloads.
    pub fn engine(&self) -> SimEngine {
        SimEngine::new(self.workloads())
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// The 1K-conventional-BTB coverage baseline every coverage figure
/// normalizes against. One shared key — Figures 8, 9, 10 and the L1-I
/// table all reuse this run.
fn baseline_coverage_job(workload: Workload, cfg: &ExperimentConfig) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::Baseline1k,
        opts: cfg.coverage(),
    }
}

/// An AirBTB ablation coverage job (Figures 8 and 10). SHIFT is attached
/// exactly when the ablation level includes prefetch-driven fill.
fn airbtb_job(
    workload: Workload,
    mode: AirBtbMode,
    bundle_entries: usize,
    overflow_entries: usize,
    cfg: &ExperimentConfig,
) -> CoverageJob {
    let opts = match mode {
        AirBtbMode::Prefetching | AirBtbMode::Full => cfg.coverage().with_shift(),
        _ => cfg.coverage(),
    };
    CoverageJob {
        workload,
        btb: BtbSpec::AirBtb {
            mode,
            bundles: confluence_core::DEFAULT_BUNDLES,
            bundle_entries,
            overflow_entries,
        },
        opts,
    }
}

/// The Figure 9 PhantomBTB comparison point.
fn phantom_job(workload: Workload, cfg: &ExperimentConfig) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::Phantom { llc_latency: 26 },
        opts: cfg.coverage(),
    }
}

/// The Figure 9 16K-conventional comparison point.
fn large16k_job(workload: Workload, cfg: &ExperimentConfig) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::Large16k,
        opts: cfg.coverage(),
    }
}

/// The baseline BTB with SHIFT attached (the L1-I coverage table).
fn shift_baseline_job(workload: Workload, cfg: &ExperimentConfig) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::Baseline1k,
        opts: cfg.coverage().with_shift(),
    }
}

/// One Figure 1 sweep point (`kilo` kilo-entries).
fn fig1_job(workload: Workload, kilo: usize, cfg: &ExperimentConfig) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::Conventional {
            entries: kilo * 1024,
            ways: 4,
            victim_entries: 64,
        },
        opts: cfg.coverage(),
    }
}

/// The Table 2 characterization run for one workload.
fn density_job(workload: Workload, cfg: &ExperimentConfig) -> DensityJob {
    DensityJob {
        workload,
        instrs: cfg.density_instrs(),
        seed: 3,
    }
}

/// A timing run of one design point (Figures 2, 6, 7).
fn timing_job(workload: Workload, design: DesignPoint, cfg: &ExperimentConfig) -> TimingJob {
    TimingJob {
        workload,
        design,
        cfg: cfg.timing(),
    }
}

/// The Baseline timing run shared by Figures 2, 6 and 7 (normalization
/// denominator and the Baseline row itself).
fn baseline_timing_job(workload: Workload, cfg: &ExperimentConfig) -> TimingJob {
    timing_job(workload, DesignPoint::Baseline, cfg)
}

const FIG1_CAPACITIES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Jobs for Figure 1.
pub fn fig1_jobs(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (w, _) in engine.workloads() {
        for k in FIG1_CAPACITIES {
            jobs.push(fig1_job(*w, k, cfg).into());
        }
    }
    jobs
}

/// Figure 1: BTB MPKI as a function of BTB capacity (1K-32K entries).
pub fn fig1(engine: &SimEngine, cfg: &ExperimentConfig) -> Report {
    engine.run(&fig1_jobs(engine, cfg));
    let mut report = Report::new(
        "Figure 1: BTB MPKI vs capacity (conventional BTB, kilo-entries)",
        &["workload", "1K", "2K", "4K", "8K", "16K", "32K"],
    );
    for (w, _) in engine.workloads() {
        let mut cells = vec![w.name().to_string()];
        for k in FIG1_CAPACITIES {
            let r = engine.coverage(&fig1_job(*w, k, cfg));
            cells.push(f(r.btb_mpki(), 1));
        }
        report.row(cells);
    }
    report
}

/// Jobs for Table 2.
pub fn table2_jobs(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Job> {
    engine
        .workloads()
        .iter()
        .map(|(w, _)| density_job(*w, cfg).into())
        .collect()
}

/// The paper's published Table 2 `(static, dynamic)` densities, keyed by
/// workload so the reference column stays correct for any workload subset
/// or ordering.
fn table2_paper_densities(workload: Workload) -> (f64, f64) {
    match workload {
        Workload::OltpDb2 => (3.6, 1.4),
        Workload::OltpOracle => (2.5, 1.6),
        Workload::DssQueries => (3.4, 1.4),
        Workload::MediaStreaming => (3.5, 1.5),
        Workload::WebFrontend => (4.3, 1.5),
    }
}

/// Table 2: static and dynamic branch density in demand-fetched blocks.
pub fn table2(engine: &SimEngine, cfg: &ExperimentConfig) -> Report {
    engine.run(&table2_jobs(engine, cfg));
    let mut report = Report::new(
        "Table 2: branch density per 64B block (measured vs paper)",
        &[
            "workload",
            "static",
            "static(paper)",
            "dynamic",
            "dynamic(paper)",
        ],
    );
    for (w, _) in engine.workloads() {
        let (stat, dynamic) = engine.density(&density_job(*w, cfg));
        let (paper_stat, paper_dyn) = table2_paper_densities(*w);
        report.row(vec![
            w.name().to_string(),
            f(stat, 2),
            f(paper_stat, 1),
            f(dynamic, 2),
            f(paper_dyn, 1),
        ]);
    }
    report
}

const FIG8_LADDER: [AirBtbMode; 4] = [
    AirBtbMode::CapacityOnly,
    AirBtbMode::SpatialLocality,
    AirBtbMode::Prefetching,
    AirBtbMode::Full,
];

/// Jobs for Figure 8 (the baseline coverage run plus the ablation ladder).
pub fn fig8_jobs(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (w, _) in engine.workloads() {
        jobs.push(baseline_coverage_job(*w, cfg).into());
        for mode in FIG8_LADDER {
            jobs.push(airbtb_job(*w, mode, 3, 32, cfg).into());
        }
    }
    jobs
}

/// Figure 8: breakdown of AirBTB miss-coverage benefits over the 1K-entry
/// conventional BTB (Capacity, +Spatial Locality, +Prefetching,
/// +Block-Based Organization).
pub fn fig8(engine: &SimEngine, cfg: &ExperimentConfig) -> Report {
    engine.run(&fig8_jobs(engine, cfg));
    let mut report = Report::new(
        "Figure 8: AirBTB coverage breakdown vs 1K conventional BTB \
         (cumulative factors; paper avg: 18% / +57% / +7% / +11% = 93%)",
        &[
            "workload",
            "capacity",
            "+spatial",
            "+prefetch",
            "+block org (total)",
        ],
    );
    for (w, _) in engine.workloads() {
        let rb = engine.coverage(&baseline_coverage_job(*w, cfg));
        let mut cells = vec![w.name().to_string()];
        for mode in FIG8_LADDER {
            let r = engine.coverage(&airbtb_job(*w, mode, 3, 32, cfg));
            cells.push(pct(r.btb_miss_coverage_vs(&rb)));
        }
        report.row(cells);
    }
    report
}

/// Jobs for Figure 9.
pub fn fig9_jobs(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (w, _) in engine.workloads() {
        jobs.push(baseline_coverage_job(*w, cfg).into());
        jobs.push(phantom_job(*w, cfg).into());
        jobs.push(airbtb_job(*w, AirBtbMode::Full, 3, 32, cfg).into());
        jobs.push(large16k_job(*w, cfg).into());
    }
    jobs
}

/// Figure 9: BTB misses eliminated vs the 1K-entry conventional BTB for
/// PhantomBTB, AirBTB (Confluence), and a 16K conventional BTB.
pub fn fig9(engine: &SimEngine, cfg: &ExperimentConfig) -> Report {
    engine.run(&fig9_jobs(engine, cfg));
    let mut report = Report::new(
        "Figure 9: BTB miss coverage vs 1K conventional BTB \
         (paper avg: PhantomBTB 61%, AirBTB 93%, 16K BTB 95%)",
        &["workload", "PhantomBTB", "AirBTB", "16K BTB"],
    );
    for (w, _) in engine.workloads() {
        let rb = engine.coverage(&baseline_coverage_job(*w, cfg));
        let rp = engine.coverage(&phantom_job(*w, cfg));
        let ra = engine.coverage(&airbtb_job(*w, AirBtbMode::Full, 3, 32, cfg));
        let r16 = engine.coverage(&large16k_job(*w, cfg));
        report.row(vec![
            w.name().to_string(),
            pct(rp.btb_miss_coverage_vs(&rb)),
            pct(ra.btb_miss_coverage_vs(&rb)),
            pct(r16.btb_miss_coverage_vs(&rb)),
        ]);
    }
    report
}

const FIG10_CONFIGS: [(usize, usize); 4] = [(3, 0), (3, 32), (4, 0), (4, 32)];

/// Jobs for Figure 10.
pub fn fig10_jobs(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (w, _) in engine.workloads() {
        jobs.push(baseline_coverage_job(*w, cfg).into());
        for (b, ob) in FIG10_CONFIGS {
            jobs.push(airbtb_job(*w, AirBtbMode::Full, b, ob, cfg).into());
        }
    }
    jobs
}

/// Figure 10: AirBTB sensitivity to bundle size (B) and overflow buffer
/// entries (OB).
pub fn fig10(engine: &SimEngine, cfg: &ExperimentConfig) -> Report {
    engine.run(&fig10_jobs(engine, cfg));
    let mut report = Report::new(
        "Figure 10: AirBTB miss coverage for (B, OB) configurations \
         (paper: B:3/OB:0 can be negative; B:3/OB:32 = 93%; B:4/OB:32 = +2%)",
        &["workload", "B:3,OB:0", "B:3,OB:32", "B:4,OB:0", "B:4,OB:32"],
    );
    for (w, _) in engine.workloads() {
        let rb = engine.coverage(&baseline_coverage_job(*w, cfg));
        let mut cells = vec![w.name().to_string()];
        for (b, ob) in FIG10_CONFIGS {
            let r = engine.coverage(&airbtb_job(*w, AirBtbMode::Full, b, ob, cfg));
            cells.push(pct(r.btb_miss_coverage_vs(&rb)));
        }
        report.row(cells);
    }
    report
}

/// Jobs for the L1-I coverage table.
pub fn l1i_coverage_jobs(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (w, _) in engine.workloads() {
        jobs.push(baseline_coverage_job(*w, cfg).into());
        jobs.push(shift_baseline_job(*w, cfg).into());
    }
    jobs
}

/// Supplementary: SHIFT's L1-I miss coverage (paper Section 5.1 cites
/// ~85-90% of L1-I misses eliminated).
pub fn l1i_coverage(engine: &SimEngine, cfg: &ExperimentConfig) -> Report {
    engine.run(&l1i_coverage_jobs(engine, cfg));
    let mut report = Report::new(
        "SHIFT L1-I miss coverage vs no prefetching (paper: ~90%)",
        &["workload", "base L1-I MPKI", "SHIFT L1-I MPKI", "coverage"],
    );
    for (w, _) in engine.workloads() {
        let rb = engine.coverage(&baseline_coverage_job(*w, cfg));
        let rs = engine.coverage(&shift_baseline_job(*w, cfg));
        report.row(vec![
            w.name().to_string(),
            f(rb.l1i_mpki(), 1),
            f(rs.l1i_mpki(), 1),
            pct(rs.l1i_miss_coverage_vs(&rb)),
        ]);
    }
    report
}

/// The design points plotted in Figure 2 (conventional mechanisms only).
pub const FIG2_DESIGNS: [DesignPoint; 6] = [
    DesignPoint::Baseline,
    DesignPoint::Fdp,
    DesignPoint::PhantomFdp,
    DesignPoint::TwoLevelFdp,
    DesignPoint::TwoLevelShift,
    DesignPoint::Ideal,
];

/// The design points plotted in Figure 6 (Figure 2 + Confluence).
pub const FIG6_DESIGNS: [DesignPoint; 7] = [
    DesignPoint::Baseline,
    DesignPoint::Fdp,
    DesignPoint::PhantomFdp,
    DesignPoint::TwoLevelFdp,
    DesignPoint::TwoLevelShift,
    DesignPoint::Confluence,
    DesignPoint::Ideal,
];

/// Jobs for a perf/area figure over `designs` (always including the
/// Baseline normalization run — which *is* the Baseline row's run).
pub fn fig_perf_area_jobs(
    engine: &SimEngine,
    designs: &[DesignPoint],
    cfg: &ExperimentConfig,
) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (w, _) in engine.workloads() {
        jobs.push(baseline_timing_job(*w, cfg).into());
        for &d in designs {
            jobs.push(timing_job(*w, d, cfg).into());
        }
    }
    jobs
}

/// Figures 2 and 6: relative performance and relative per-core area of the
/// frontend designs, normalized to the baseline (geometric mean across
/// workloads).
///
/// The Baseline normalization run and the Baseline row share one cache
/// key, so the design that used to be simulated twice per workload is now
/// structurally simulated once.
pub fn fig_perf_area(
    engine: &SimEngine,
    designs: &[DesignPoint],
    cfg: &ExperimentConfig,
    caption: &str,
) -> Report {
    engine.run(&fig_perf_area_jobs(engine, designs, cfg));
    let mut report = Report::new(
        caption.to_string(),
        &[
            "design",
            "rel. performance",
            "rel. area",
            "btb MPKI",
            "L1-I MPKI",
        ],
    );
    let area = AreaModel::paper();
    let base_profile = DesignPoint::Baseline.storage_profile();

    // Baseline IPC per workload for normalization — the same cached runs
    // back the Baseline row below.
    let base_ipc: Vec<f64> = engine
        .workloads()
        .iter()
        .map(|(w, _)| engine.timing(&baseline_timing_job(*w, cfg)).ipc())
        .collect();

    for &d in designs {
        let mut rel_product = 1.0;
        let mut btb_mpki = 0.0;
        let mut l1i_mpki = 0.0;
        for (i, (w, _)) in engine.workloads().iter().enumerate() {
            let r = engine.timing(&timing_job(*w, d, cfg));
            rel_product *= r.ipc() / base_ipc[i];
            btb_mpki += r.btb_mpki();
            l1i_mpki += r.l1i_mpki();
        }
        let n = engine.workloads().len() as f64;
        let geo = rel_product.powf(1.0 / n);
        let rel_area = area.relative_area(&d.storage_profile(), &base_profile);
        report.row(vec![
            d.name().to_string(),
            f(geo, 3),
            f(rel_area, 3),
            f(btb_mpki / n, 1),
            f(l1i_mpki / n, 1),
        ]);
    }
    report
}

/// Figure 2 wrapper.
pub fn fig2(engine: &SimEngine, cfg: &ExperimentConfig) -> Report {
    fig_perf_area(
        engine,
        &FIG2_DESIGNS,
        cfg,
        "Figure 2: relative performance & area of conventional frontends \
         (paper: FDP 1.05, PhantomBTB+FDP 1.09, 2LevelBTB+SHIFT 1.22, Ideal 1.35)",
    )
}

/// Figure 6 wrapper.
pub fn fig6(engine: &SimEngine, cfg: &ExperimentConfig) -> Report {
    fig_perf_area(
        engine,
        &FIG6_DESIGNS,
        cfg,
        "Figure 6: relative performance & area including Confluence \
         (paper: Confluence 1.30 at ~1.01x area = 85% of Ideal's improvement)",
    )
}

const FIG7_DESIGNS: [DesignPoint; 4] = [
    DesignPoint::PhantomShift,
    DesignPoint::TwoLevelShift,
    DesignPoint::Confluence,
    DesignPoint::IdealBtbShift,
];

/// Jobs for Figure 7.
pub fn fig7_jobs(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (w, _) in engine.workloads() {
        jobs.push(baseline_timing_job(*w, cfg).into());
        for d in FIG7_DESIGNS {
            jobs.push(timing_job(*w, d, cfg).into());
        }
    }
    jobs
}

/// Figure 7: per-workload speedup of BTB designs (all coupled with SHIFT)
/// over the 1K-entry conventional BTB + SHIFT.
pub fn fig7(engine: &SimEngine, cfg: &ExperimentConfig) -> Report {
    engine.run(&fig7_jobs(engine, cfg));
    let mut report = Report::new(
        "Figure 7: speedup of BTB designs (each coupled with SHIFT) over the \
         1K-entry conventional-BTB baseline \
         (paper: Phantom lowest; 2Level = 51% and Confluence = 90% of IdealBTB's speedup)",
        &[
            "workload",
            "PhantomBTB+SHIFT",
            "2LevelBTB+SHIFT",
            "Confluence",
            "IdealBTB+SHIFT",
        ],
    );
    for (w, _) in engine.workloads() {
        let base = engine.timing(&baseline_timing_job(*w, cfg));
        let mut cells = vec![w.name().to_string()];
        for d in FIG7_DESIGNS {
            let r = engine.timing(&timing_job(*w, d, cfg));
            cells.push(f(r.speedup_over(&base), 3));
        }
        report.row(cells);
    }
    report
}

/// Section 4.2 storage/area accounting table (pure arithmetic, no jobs).
pub fn area_table() -> Report {
    let mut report = Report::new(
        "Storage & area accounting (paper Section 4.2; CACTI-lite @40nm)",
        &[
            "structure",
            "dedicated KB",
            "LLC-resident KB",
            "per-core mm2",
            "rel. area",
        ],
    );
    let model = AreaModel::paper();
    let base = DesignPoint::Baseline.storage_profile();
    for d in [
        DesignPoint::Baseline,
        DesignPoint::PhantomFdp,
        DesignPoint::TwoLevelFdp,
        DesignPoint::TwoLevelShift,
        DesignPoint::Confluence,
        DesignPoint::IdealBtbShift,
    ] {
        let p = d.storage_profile();
        report.row(vec![
            d.name().to_string(),
            f(p.dedicated_kib(), 1),
            f(p.llc_resident_bytes as f64 / 1024.0, 0),
            f(model.frontend_mm2(&p), 3),
            f(model.relative_area(&p, &base), 4),
        ]);
    }
    report
}

/// Every job any figure or table in the suite needs, in one batch. The
/// engine collapses the overlap (coverage baselines shared by Figures
/// 8/9/10 + L1-I, timing runs shared by Figures 2/6/7), so one
/// `engine.run(&all_jobs(..))` executes each unique simulation exactly
/// once.
pub fn all_jobs(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Job> {
    let mut jobs = Vec::new();
    jobs.extend(fig1_jobs(engine, cfg));
    jobs.extend(table2_jobs(engine, cfg));
    jobs.extend(fig8_jobs(engine, cfg));
    jobs.extend(fig9_jobs(engine, cfg));
    jobs.extend(fig10_jobs(engine, cfg));
    jobs.extend(l1i_coverage_jobs(engine, cfg));
    jobs.extend(fig_perf_area_jobs(engine, &FIG2_DESIGNS, cfg));
    jobs.extend(fig_perf_area_jobs(engine, &FIG6_DESIGNS, cfg));
    jobs.extend(fig7_jobs(engine, cfg));
    jobs.extend(crate::sweeps::all_sweep_jobs(engine, cfg));
    jobs
}

/// Number of distinct keys in a job list (what a fully shared run
/// executes).
pub fn unique_jobs(jobs: &[Job]) -> usize {
    jobs.iter().collect::<std::collections::HashSet<_>>().len()
}

/// Every report of the full suite, in the presentation order the
/// `all_experiments` binary prints. Batch [`all_jobs`] through the engine
/// first so the formatters here read a warm cache; the warm-store
/// determinism test renders this twice (fresh engine, same store) and
/// asserts byte-identical output with zero executions.
pub fn suite_reports(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Report> {
    let mut reports = vec![
        fig1(engine, cfg),
        table2(engine, cfg),
        fig8(engine, cfg),
        fig9(engine, cfg),
        fig10(engine, cfg),
        l1i_coverage(engine, cfg),
        area_table(),
        fig2(engine, cfg),
        fig6(engine, cfg),
        fig7(engine, cfg),
    ];
    reports.extend(crate::sweeps::sweep_reports(engine, cfg));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_engine() -> (SimEngine, ExperimentConfig) {
        // Two workloads keep test time sane.
        let cfg = ExperimentConfig::quick();
        let workloads = cfg.workloads().into_iter().take(2).collect();
        (SimEngine::new(workloads), cfg)
    }

    #[test]
    fn fig1_mpki_declines_with_capacity() {
        let (engine, cfg) = quick_engine();
        let r = fig1(&engine, &cfg);
        assert_eq!(r.len(), engine.workloads().len());
        let table = r.to_csv();
        // Parse first data row and check monotone non-increase 1K -> 32K.
        let row = table.lines().nth(2).unwrap();
        let vals: Vec<f64> = row.split(',').skip(1).map(|v| v.parse().unwrap()).collect();
        assert!(
            vals[0] >= vals[5],
            "1K {} should exceed 32K {}",
            vals[0],
            vals[5]
        );
    }

    #[test]
    fn table2_produces_all_rows() {
        let (engine, cfg) = quick_engine();
        let r = table2(&engine, &cfg);
        assert_eq!(r.len(), engine.workloads().len());
    }

    #[test]
    fn fig9_airbtb_beats_phantom() {
        let (engine, cfg) = quick_engine();
        let r = fig9(&engine, &cfg);
        let csv = r.to_csv();
        for line in csv.lines().skip(2) {
            let cells: Vec<&str> = line.split(',').collect();
            let phantom: f64 = cells[1].trim_end_matches('%').parse().unwrap();
            let air: f64 = cells[2].trim_end_matches('%').parse().unwrap();
            assert!(
                air > phantom,
                "AirBTB {air}% must beat PhantomBTB {phantom}% ({line})"
            );
        }
    }

    #[test]
    fn area_table_matches_paper_budgets() {
        let r = area_table();
        let csv = r.to_csv();
        let conf_row = csv.lines().find(|l| l.starts_with("Confluence")).unwrap();
        let cells: Vec<&str> = conf_row.split(',').collect();
        let rel: f64 = cells[4].parse().unwrap();
        assert!((1.003..1.02).contains(&rel), "Confluence rel. area {rel}");
    }

    #[test]
    fn coverage_figures_share_the_baseline_run() {
        let (engine, cfg) = quick_engine();
        let n = engine.workloads().len() as u64;
        fig8(&engine, &cfg);
        let after_fig8 = engine.stats().executed;
        // Figure 9 adds Phantom + 16K per workload; its baseline run and
        // its full-AirBTB run are both cache hits from Figure 8.
        fig9(&engine, &cfg);
        let after_fig9 = engine.stats().executed;
        assert_eq!(
            after_fig9 - after_fig8,
            2 * n,
            "fig9 must only add 2 new runs/workload"
        );
        // Figure 10 shares the baseline and the (3,32) point with Fig 8.
        fig10(&engine, &cfg);
        assert_eq!(engine.stats().executed - after_fig9, 3 * n);
        // The L1-I table shares the baseline; only +SHIFT is new.
        let before = engine.stats().executed;
        l1i_coverage(&engine, &cfg);
        assert_eq!(engine.stats().executed - before, n);
    }

    #[test]
    fn all_jobs_overlap_is_collapsed() {
        let (engine, cfg) = quick_engine();
        let jobs = all_jobs(&engine, &cfg);
        let unique = unique_jobs(&jobs);
        assert!(
            unique < jobs.len(),
            "figures must overlap: {unique} unique of {} requested",
            jobs.len()
        );
    }
}
