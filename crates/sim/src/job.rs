//! Content-keyed job descriptions for the experiment engine.
//!
//! A [`Job`] is a self-contained, hashable description of one simulation:
//! the workload, the structure under test, and every option that affects
//! the result. Two jobs with equal keys produce byte-identical results, so
//! the engine can run each unique key exactly once across *all* figures and
//! hand the cached result to every consumer (the 1K-baseline coverage run
//! shared by Figures 8/9/10 and the L1-I table, or the design points shared
//! by Figures 2/6/7).
//!
//! The BTB under test is described by a [`BtbSpec`] — a factory, not live
//! `&mut` state — which is what makes jobs safe to execute on any engine
//! worker thread.

use std::sync::Arc;

use confluence_btb::{BtbDesign, ConventionalBtb, IdealBtb, PerfectBtb, PhantomBtb, TwoLevelBtb};
use confluence_core::{AirBtb, AirBtbMode};
use confluence_trace::{Program, Workload};
use confluence_types::PredecodeSource;

use crate::cmp::{TimingConfig, TimingResult};
use crate::coverage::{CoverageOptions, CoverageResult};
use crate::designs::DesignPoint;

/// Self-contained description of a BTB to construct: the factory half of a
/// coverage job. Building from a spec (rather than borrowing caller-owned
/// `&mut dyn BtbDesign` state) keeps every job independent of every other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BtbSpec {
    /// `ConventionalBtb::new` with explicit geometry (Figure 1 sweeps).
    Conventional {
        /// Total entries.
        entries: usize,
        /// Associativity.
        ways: usize,
        /// Victim-buffer entries.
        victim_entries: usize,
    },
    /// The paper's 1K-entry baseline (`ConventionalBtb::baseline_1k`).
    Baseline1k,
    /// The 16K-entry comparison point (`ConventionalBtb::large_16k`).
    Large16k,
    /// PhantomBTB with its virtualized second level at the given latency.
    Phantom {
        /// LLC round-trip latency seen by group fetches.
        llc_latency: u64,
    },
    /// The dedicated two-level BTB (`TwoLevelBtb::paper_config`).
    TwoLevelPaper,
    /// An AirBTB ablation point (Figures 8 and 10).
    AirBtb {
        /// Which AirBTB ingredients are enabled.
        mode: AirBtbMode,
        /// Bundle count.
        bundles: usize,
        /// Branch entries per bundle.
        bundle_entries: usize,
        /// Overflow-buffer entries.
        overflow_entries: usize,
    },
    /// 16K-entry single-cycle BTB (`IdealBtb::new_16k`).
    Ideal16k,
    /// Always-hit BTB (`PerfectBtb`).
    Perfect,
}

impl BtbSpec {
    /// The paper's full AirBTB configuration.
    pub fn airbtb_paper() -> Self {
        BtbSpec::AirBtb {
            mode: AirBtbMode::Full,
            bundles: confluence_core::DEFAULT_BUNDLES,
            bundle_entries: confluence_core::DEFAULT_BUNDLE_ENTRIES,
            overflow_entries: confluence_core::DEFAULT_OVERFLOW_ENTRIES,
        }
    }

    /// Builds a fresh BTB for one job execution. `program` provides the
    /// predecode oracle for the `SpatialLocality` AirBTB ablation (shared
    /// by `Arc`, never cloned).
    pub fn build(self, program: &Arc<Program>) -> Box<dyn BtbDesign> {
        match self {
            BtbSpec::Conventional {
                entries,
                ways,
                victim_entries,
            } => Box::new(
                ConventionalBtb::new("sweep", entries, ways, victim_entries)
                    .expect("valid geometry"),
            ),
            BtbSpec::Baseline1k => {
                Box::new(ConventionalBtb::baseline_1k().expect("valid geometry"))
            }
            BtbSpec::Large16k => Box::new(ConventionalBtb::large_16k().expect("valid geometry")),
            BtbSpec::Phantom { llc_latency } => {
                Box::new(PhantomBtb::paper_config(llc_latency).expect("valid geometry"))
            }
            BtbSpec::TwoLevelPaper => {
                Box::new(TwoLevelBtb::paper_config().expect("valid geometry"))
            }
            BtbSpec::AirBtb {
                mode,
                bundles,
                bundle_entries,
                overflow_entries,
            } => {
                let mut btb = AirBtb::new(mode, bundles, bundle_entries, overflow_entries);
                if mode == AirBtbMode::SpatialLocality {
                    let oracle: Arc<dyn PredecodeSource + Send + Sync> = Arc::clone(program) as _;
                    btb = btb.with_oracle(oracle);
                }
                Box::new(btb)
            }
            BtbSpec::Ideal16k => Box::new(IdealBtb::new_16k().expect("valid geometry")),
            BtbSpec::Perfect => Box::new(PerfectBtb::new()),
        }
    }
}

/// Key of one functional coverage run (Figures 1, 8, 9, 10, L1-I table).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CoverageJob {
    /// Workload whose program the harness walks.
    pub workload: Workload,
    /// The BTB under test.
    pub btb: BtbSpec,
    /// Harness options (window sizes, SHIFT, seed).
    pub opts: CoverageOptions,
}

/// Key of one CMP timing run (Figures 2, 6, 7).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TimingJob {
    /// Workload whose program every core executes.
    pub workload: Workload,
    /// The frontend design point.
    pub design: DesignPoint,
    /// Timing configuration.
    pub cfg: TimingConfig,
}

/// Key of one branch-density characterization run (Table 2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DensityJob {
    /// Workload to characterize.
    pub workload: Workload,
    /// Instructions walked.
    pub instrs: u64,
    /// Executor seed.
    pub seed: u64,
}

/// One unit of simulation work, keyed by content.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Job {
    /// Functional coverage run.
    Coverage(CoverageJob),
    /// CMP timing run.
    Timing(TimingJob),
    /// Branch-density characterization.
    Density(DensityJob),
}

impl Job {
    /// The workload this job simulates.
    pub fn workload(&self) -> Workload {
        match self {
            Job::Coverage(j) => j.workload,
            Job::Timing(j) => j.workload,
            Job::Density(j) => j.workload,
        }
    }

    /// Relative execution-cost hint for the engine's scheduler. Timing
    /// jobs step every core every cycle, so they cost roughly
    /// `cores × instructions`; coverage and density runs walk one trace
    /// functionally and are orders of magnitude cheaper — a flat `1`
    /// keeps them behind every timing job without pretending the model
    /// can rank them finely. Only the *ordering* matters: the engine
    /// starts expensive jobs first so the batch never ends with one long
    /// timing run hogging a single worker (and when one does run last,
    /// the idle workers are lent to it as core shards).
    pub fn cost_hint(&self) -> u64 {
        match self {
            Job::Timing(t) => {
                let instrs = t.cfg.warmup_instrs.saturating_add(t.cfg.measure_instrs);
                (t.cfg.cores as u64).saturating_mul(instrs).max(2)
            }
            Job::Coverage(_) | Job::Density(_) => 1,
        }
    }
}

impl From<CoverageJob> for Job {
    fn from(j: CoverageJob) -> Job {
        Job::Coverage(j)
    }
}

impl From<TimingJob> for Job {
    fn from(j: TimingJob) -> Job {
        Job::Timing(j)
    }
}

impl From<DensityJob> for Job {
    fn from(j: DensityJob) -> Job {
        Job::Density(j)
    }
}

/// Result of one executed [`Job`], cached by the engine. `PartialEq`
/// compares timing results structurally and densities bit-for-bit, which
/// is exactly what the persistent store's round-trip tests need.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutput {
    /// Counters from a coverage run.
    Coverage(CoverageResult),
    /// Aggregated timing-run result (`Arc` so every consumer shares the
    /// cached per-core statistics).
    Timing(Arc<TimingResult>),
    /// `(static, dynamic)` branch densities per 64-byte block.
    Density(f64, f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(job: &Job) -> u64 {
        let mut h = DefaultHasher::new();
        job.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_jobs_share_a_key() {
        let mk = || {
            Job::Coverage(CoverageJob {
                workload: Workload::WebFrontend,
                btb: BtbSpec::Baseline1k,
                opts: CoverageOptions::quick(),
            })
        };
        assert_eq!(mk(), mk());
        assert_eq!(hash_of(&mk()), hash_of(&mk()));
    }

    #[test]
    fn option_changes_change_the_key() {
        let base = CoverageJob {
            workload: Workload::WebFrontend,
            btb: BtbSpec::Baseline1k,
            opts: CoverageOptions::quick(),
        };
        let shifted = CoverageJob {
            opts: base.opts.clone().with_shift(),
            ..base.clone()
        };
        assert_ne!(Job::Coverage(base), Job::Coverage(shifted));
    }

    #[test]
    fn every_spec_builds() {
        let program = Arc::new(Program::generate(&confluence_trace::WorkloadSpec::tiny()).unwrap());
        let specs = [
            BtbSpec::Conventional {
                entries: 1024,
                ways: 4,
                victim_entries: 64,
            },
            BtbSpec::Baseline1k,
            BtbSpec::Large16k,
            BtbSpec::Phantom { llc_latency: 26 },
            BtbSpec::TwoLevelPaper,
            BtbSpec::airbtb_paper(),
            BtbSpec::AirBtb {
                mode: AirBtbMode::SpatialLocality,
                bundles: 512,
                bundle_entries: 3,
                overflow_entries: 32,
            },
            BtbSpec::Ideal16k,
            BtbSpec::Perfect,
        ];
        for spec in specs {
            let btb = spec.build(&program);
            assert!(!btb.name().is_empty());
        }
    }
}
