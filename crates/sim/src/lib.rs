//! Cycle-level frontend CMP simulator, design points, and experiment
//! runners for the Confluence reproduction.

#![warn(missing_docs)]

mod cmp;
mod coverage;
mod designs;
pub mod experiments;
pub mod report;
mod timing;

pub use coverage::{branch_density, run_coverage, CoverageOptions, CoverageResult};
pub use designs::{airbtb_ablation, DesignPoint, PrefetchScheme};
pub use cmp::{simulate_cmp, TimingConfig, TimingResult};
pub use timing::{CoreFrontend, CoreStats};
