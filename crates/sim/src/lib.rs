//! Cycle-level frontend CMP simulator, design points, and experiment
//! runners for the Confluence reproduction.

#![warn(missing_docs)]

pub mod cli;
mod cmp;
pub mod codec;
mod coverage;
pub mod daemon;
mod designs;
mod engine;
pub mod experiments;
mod job;
pub mod peers;
pub mod report;
pub mod sweeps;
mod timing;

pub use cmp::{
    simulate_cmp, simulate_cmp_with_shards, simulate_cmp_with_shards_mode, TimingConfig,
    TimingResult,
};
pub use codec::SCHEMA_VERSION;
pub use confluence_trace::{ExecMode, NO_FASTPATH_ENV};
pub use coverage::{
    branch_density, branch_density_mode, run_coverage, run_coverage_mode, run_coverage_with,
    run_coverage_with_mode, CoverageOptions, CoverageResult, DEFAULT_L1I_KB,
};
pub use designs::{airbtb_ablation, DesignPoint, PrefetchScheme};
pub use engine::{EngineStats, SimEngine};
pub use job::{BtbSpec, CoverageJob, DensityJob, Job, JobOutput, TimingJob};
pub use peers::{PeerSet, DEFAULT_PEER_TIMEOUT};
pub use sweeps::{SweepAxis, SweepSpec};
pub use timing::{CoreFrontend, CoreStats};
