//! The remote warm tier's client side: an ordered list of peer daemon
//! sockets consulted when a key misses both the in-memory cache and the
//! local disk store.
//!
//! A [`PeerSet`] never changes results, only where warm bytes come
//! from. Every fetch is **batched** — one `FetchResults` /
//! `FetchArtifacts` exchange per peer per batch of misses, so a cold
//! batch costs one round trip, not one per job — and every fetched
//! entry is re-verified byte-for-byte by `ResultStore::adopt_raw`
//! before anything trusts it: a corrupt or lying peer demotes to a
//! miss (the job re-simulates and the write-back repairs the local
//! slot), never poisons the store. A dead or wedged peer surfaces as a
//! timed-out connect/read, earns one stderr note, and the batch
//! completes by simulating locally — degradation, not failure.
//!
//! Peers are consulted in command-line order; later peers see only the
//! keys earlier peers missed. The handshake each connection performs
//! pins the job schema version and workload-config fingerprint exactly
//! like a batch client, so differently-configured fleets refuse each
//! other typed instead of aliasing entries.

use std::path::{Path, PathBuf};
use std::time::Duration;

use confluence_serve::{Client, ClientError};
use confluence_store::Tier;

use crate::codec::SCHEMA_VERSION;

/// Peer connect/read timeout when `--peer-timeout-ms` is absent.
pub const DEFAULT_PEER_TIMEOUT: Duration = Duration::from_millis(2000);

/// An ordered set of peer daemon sockets forming the remote warm tier.
#[derive(Clone, Debug)]
pub struct PeerSet {
    sockets: Vec<PathBuf>,
    timeout: Duration,
}

/// What one batched [`PeerSet::fetch`] brought back.
#[derive(Debug)]
pub struct PeerFetch {
    /// One slot per requested key, index-aligned: the raw entry bytes a
    /// peer returned (unverified — the caller must `adopt_raw` them),
    /// or `None` when every reachable peer missed.
    pub entries: Vec<Option<Vec<u8>>>,
    /// Completed fetch exchanges (one per peer that answered). The
    /// figure the one-round-trip-per-batch contract is asserted on.
    pub round_trips: u64,
    /// Total raw entry bytes received.
    pub bytes: u64,
}

impl PeerSet {
    /// A peer set over `sockets`, consulted in order, with `timeout`
    /// bounding every connect, read, and write per peer.
    pub fn new(sockets: Vec<PathBuf>, timeout: Duration) -> Self {
        PeerSet { sockets, timeout }
    }

    /// The peer sockets, in consultation order.
    pub fn sockets(&self) -> &[PathBuf] {
        &self.sockets
    }

    /// The per-peer I/O timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Fetches `keys` from the peers in one batched exchange per peer:
    /// the first peer sees every key, each later peer only what is
    /// still missing, and the loop stops as soon as nothing is. A peer
    /// that cannot be reached (or breaks protocol) is noted on stderr
    /// and skipped — its keys stay misses. `fingerprint` is this
    /// engine's workload-config fingerprint for the handshake; `ttl`
    /// bounds how many further hops a peer may take on our behalf.
    pub fn fetch(&self, fingerprint: u64, tier: Tier, ttl: u32, keys: &[Vec<u8>]) -> PeerFetch {
        let mut out = PeerFetch {
            entries: vec![None; keys.len()],
            round_trips: 0,
            bytes: 0,
        };
        for sock in &self.sockets {
            let missing: Vec<usize> = (0..keys.len())
                .filter(|&i| out.entries[i].is_none())
                .collect();
            if missing.is_empty() {
                break;
            }
            let subset: Vec<Vec<u8>> = missing.iter().map(|&i| keys[i].clone()).collect();
            match fetch_one(sock, self.timeout, fingerprint, tier, ttl, subset) {
                Ok(fetched) => {
                    out.round_trips += 1;
                    for (&slot, entry) in missing.iter().zip(fetched) {
                        if let Some(data) = entry {
                            out.bytes += data.len() as u64;
                            out.entries[slot] = Some(data);
                        }
                    }
                }
                Err(e) => {
                    eprintln!(
                        "note: peer {} unavailable ({e}); treating its entries as misses",
                        sock.display()
                    );
                }
            }
        }
        out
    }
}

/// One peer, one connection, one batched fetch.
fn fetch_one(
    sock: &Path,
    timeout: Duration,
    fingerprint: u64,
    tier: Tier,
    ttl: u32,
    keys: Vec<Vec<u8>>,
) -> Result<Vec<Option<Vec<u8>>>, ClientError> {
    let mut client = Client::connect_with_timeout(sock, SCHEMA_VERSION, fingerprint, timeout)?;
    client.fetch(tier, ttl, keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_peer_is_a_noted_miss_not_a_failure() {
        let peers = PeerSet::new(
            vec![PathBuf::from("/nonexistent/confluence-peer.sock")],
            Duration::from_millis(50),
        );
        let keys = vec![vec![1u8, 2, 3], vec![4u8]];
        let fetched = peers.fetch(0xABCD, Tier::Result, 1, &keys);
        assert_eq!(fetched.entries, vec![None, None]);
        assert_eq!(
            fetched.round_trips, 0,
            "a failed peer completes no round trip"
        );
        assert_eq!(fetched.bytes, 0);
    }

    #[test]
    fn empty_peer_set_fetches_nothing() {
        let peers = PeerSet::new(Vec::new(), DEFAULT_PEER_TIMEOUT);
        let fetched = peers.fetch(0, Tier::Artifact, 0, &[vec![9u8]]);
        assert_eq!(fetched.entries, vec![None]);
        assert_eq!(fetched.round_trips, 0);
    }
}
