//! Table and CSV formatting for experiment output.

use std::fmt::Write as _;

/// A simple experiment report: a caption, column headers, and rows.
///
/// Renders as an aligned ASCII table (the default) or as CSV (`--csv`),
/// matching the rows/series the paper's figures plot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report with a caption and column headers.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The caption.
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// Renders an aligned ASCII table.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.caption);
        let line: String = widths.iter().map(|w| "-".repeat(w + 2)).collect();
        let _ = writeln!(out, "{line}");
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}  ", c, w = widths[i]))
                .collect::<String>()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders CSV (caption as a `#` comment line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.caption);
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Parses a report back from its [`Report::to_csv`] rendering —
    /// the inverse the formatting round-trip property tests pin (the
    /// sweep harness byte-compares its goldens and checks this round
    /// trip separately). Returns `None` for anything
    /// that is not a well-formed CSV report (missing caption comment,
    /// row arity disagreeing with the header). Cells containing commas
    /// or newlines are not representable in this CSV dialect and do not
    /// round-trip.
    pub fn from_csv(text: &str) -> Option<Report> {
        let mut lines = text.lines();
        let caption = lines.next()?.strip_prefix("# ")?.to_string();
        let headers: Vec<String> = lines.next()?.split(',').map(str::to_string).collect();
        let mut rows = Vec::new();
        for line in lines {
            let cells: Vec<String> = line.split(',').map(str::to_string).collect();
            if cells.len() != headers.len() {
                return None;
            }
            rows.push(cells);
        }
        Some(Report {
            caption,
            headers,
            rows,
        })
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows (stringified cells, one `Vec` per row).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.caption);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("Test table", &["name", "value"]);
        r.row(vec!["alpha".into(), f(1.234, 2)]);
        r.row(vec!["beta".into(), f(5.6, 2)]);
        r
    }

    #[test]
    fn table_alignment_includes_all_rows() {
        let t = sample().to_table();
        assert!(t.contains("Test table"));
        assert!(t.contains("alpha"));
        assert!(t.contains("5.60"));
        assert_eq!(t.lines().count(), 6);
    }

    #[test]
    fn csv_is_machine_readable() {
        let c = sample().to_csv();
        let mut lines = c.lines();
        assert!(lines.next().unwrap().starts_with('#'));
        assert_eq!(lines.next().unwrap(), "name,value");
        assert_eq!(lines.next().unwrap(), "alpha,1.23");
    }

    #[test]
    fn csv_round_trips_through_from_csv() {
        let r = sample();
        assert_eq!(Report::from_csv(&r.to_csv()), Some(r));
    }

    #[test]
    fn from_csv_rejects_malformed_text() {
        assert_eq!(Report::from_csv(""), None, "no caption line");
        assert_eq!(
            Report::from_csv("caption\nh1,h2\n"),
            None,
            "missing # prefix"
        );
        assert_eq!(Report::from_csv("# caption"), None, "missing header line");
        assert_eq!(
            Report::from_csv("# caption\nh1,h2\nonly-one-cell\n"),
            None,
            "row arity mismatch"
        );
    }

    #[test]
    fn markdown_has_separator() {
        let m = sample().to_markdown();
        assert!(m.contains("|---|---|"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.934), "93.4%");
    }
}
