//! Declarative sensitivity-sweep studies over the experiment engine.
//!
//! The paper's headline claims rest on *sensitivity* behavior — how the
//! unified instruction supply holds up as SHIFT history capacity, AirBTB
//! bundle geometry, and core count vary — but the figure runners only
//! reproduce the published points. A [`SweepSpec`] names a **study**: a
//! [`SweepAxis`] (which parameter is swept, and its point list) expanded
//! by a job builder into ordinary content-keyed [`Job`]s. Because points
//! reuse the suite's native configurations wherever they coincide (the
//! 32K-entry SHIFT history point *is* the L1-I table's run, the
//! 512-bundle geometry points *are* Figure 10's, and in quick mode the
//! 4-core scaling point *is* Figures 2/6/7's Baseline), the engine
//! cache and the persistent store dedupe overlapping points across
//! studies and figures.
//!
//! Studies follow the same two-pure-halves shape as the figures in
//! [`crate::experiments`]: [`SweepSpec::jobs`] declares, and
//! [`SweepSpec::report`] formats from the warm cache. The `sweeps` binary
//! lists and runs studies from [`registry`]; `all_experiments` batches
//! every study alongside the figures.
//!
//! Adding a study: push a `SweepSpec` in [`registry`] (new axis variants
//! get a `points`/`build`/`cell` arm each). The golden harness in
//! `tests/sweeps.rs` pins each registered study's quick-mode report —
//! regenerate with `CONFLUENCE_REGOLD=1 cargo test`.
//!
//! The per-point job constructors ([`history_job`], [`scaling_job`],
//! [`capacity_job`], ...) are public: the `confluence-search` subsystem
//! maps its search-space points through the same constructors, so a
//! search probe and the matching sweep point share one content key (and
//! therefore one cached simulation).

use confluence_core::AirBtbMode;
use confluence_trace::Workload;

use crate::coverage::CoverageOptions;
use crate::designs::DesignPoint;
use crate::engine::SimEngine;
use crate::experiments::ExperimentConfig;
use crate::job::{BtbSpec, CoverageJob, Job, TimingJob};
use crate::report::{f, pct, Report};

/// The designs compared at every core count by the core-scaling study:
/// the paper's lower bound, its contribution, and its upper bound.
pub const SCALING_DESIGNS: [DesignPoint; 3] = [
    DesignPoint::Baseline,
    DesignPoint::Confluence,
    DesignPoint::Ideal,
];

/// The swept parameter of a study, with its point list.
///
/// Each variant knows how to expand one `(workload, point)` pair into a
/// [`Job`] and how to read the study's metric back out of the cache; the
/// variants deliberately reuse the figure suite's configurations at
/// coinciding points so the cache collapses the overlap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepAxis {
    /// SHIFT history capacity in entries, on the baseline BTB + SHIFT
    /// coverage run. Metric: L1-I miss coverage vs the no-prefetch
    /// baseline.
    HistoryEntries(Vec<usize>),
    /// AirBTB bundle geometry `(bundles, entries_per_bundle,
    /// overflow_entries)` in Full mode with SHIFT attached. Metric: BTB
    /// miss coverage vs the 1K conventional baseline.
    BundleGeometry(Vec<(usize, usize, usize)>),
    /// CMP core count, timing-simulated for every [`SCALING_DESIGNS`]
    /// design. Metric: per-core IPC.
    Cores(Vec<usize>),
    /// Conventional-BTB capacity in entries (Figure 1's geometry at
    /// arbitrary sizes). Metric: BTB MPKI.
    BtbCapacity(Vec<usize>),
    /// L1-I capacity in kilobytes, on the baseline (no-prefetch) coverage
    /// run. Metric: L1-I demand MPKI.
    L1iSizeKb(Vec<usize>),
    /// SHIFT stream lookahead depth in blocks, on the baseline BTB +
    /// SHIFT coverage run. Metric: L1-I miss coverage vs the no-prefetch
    /// baseline.
    ShiftLookahead(Vec<usize>),
}

impl SweepAxis {
    /// Human-readable labels of the axis points, in sweep order (one
    /// report column per label).
    pub fn point_labels(&self) -> Vec<String> {
        match self {
            SweepAxis::HistoryEntries(points) => {
                points.iter().map(|&n| format!("{}", Kilo(n))).collect()
            }
            SweepAxis::BundleGeometry(points) => points
                .iter()
                .map(|&(b, e, ob)| format!("{b}x{e}+{ob}"))
                .collect(),
            SweepAxis::Cores(points) => points.iter().map(|&c| format!("{c}c")).collect(),
            SweepAxis::BtbCapacity(points) => {
                points.iter().map(|&n| format!("{}", Kilo(n))).collect()
            }
            SweepAxis::L1iSizeKb(points) => points.iter().map(|&kb| format!("{kb}KB")).collect(),
            SweepAxis::ShiftLookahead(points) => points.iter().map(|&d| format!("d{d}")).collect(),
        }
    }

    /// Number of points along the axis.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::HistoryEntries(p) => p.len(),
            SweepAxis::BundleGeometry(p) => p.len(),
            SweepAxis::Cores(p) => p.len(),
            SweepAxis::BtbCapacity(p) => p.len(),
            SweepAxis::L1iSizeKb(p) => p.len(),
            SweepAxis::ShiftLookahead(p) => p.len(),
        }
    }

    /// True when the axis has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One-word description of the swept parameter (for `--list`).
    pub fn parameter(&self) -> &'static str {
        match self {
            SweepAxis::HistoryEntries(_) => "shift-history-entries",
            SweepAxis::BundleGeometry(_) => "airbtb-bundle-geometry",
            SweepAxis::Cores(_) => "cmp-core-count",
            SweepAxis::BtbCapacity(_) => "conventional-btb-entries",
            SweepAxis::L1iSizeKb(_) => "l1i-capacity-kb",
            SweepAxis::ShiftLookahead(_) => "shift-lookahead-blocks",
        }
    }
}

/// `1024 -> "1K"`, `512 -> "512"`, `131072 -> "128K"`.
struct Kilo(usize);

impl std::fmt::Display for Kilo {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(fm, "{}K", self.0 / 1024)
        } else {
            write!(fm, "{}", self.0)
        }
    }
}

/// A named sensitivity study: an axis × the suite's workloads × a job
/// builder, riding the shared engine cache.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Registry name (`sweeps --study <name>`).
    pub name: &'static str,
    /// Report caption.
    pub caption: &'static str,
    /// The swept parameter and its points.
    pub axis: SweepAxis,
}

/// The baseline coverage run sweeps normalize against — the exact job
/// Figures 8/9/10 and the L1-I table share.
pub fn baseline_job(workload: Workload, cfg: &ExperimentConfig) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::Baseline1k,
        opts: cfg.coverage(),
    }
}

/// Baseline BTB + SHIFT with an explicit history capacity. At the default
/// capacity this is byte-for-byte the L1-I table's `+SHIFT` job.
pub fn history_job(workload: Workload, entries: usize, cfg: &ExperimentConfig) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::Baseline1k,
        opts: CoverageOptions {
            history_entries: entries,
            ..cfg.coverage().with_shift()
        },
    }
}

/// Full-mode AirBTB + SHIFT at an explicit bundle geometry. At 512
/// bundles this aliases Figure 10's `(entries, overflow)` grid points.
pub fn geometry_job(
    workload: Workload,
    (bundles, bundle_entries, overflow_entries): (usize, usize, usize),
    cfg: &ExperimentConfig,
) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::AirBtb {
            mode: AirBtbMode::Full,
            bundles,
            bundle_entries,
            overflow_entries,
        },
        opts: cfg.coverage().with_shift(),
    }
}

/// A timing run of `design` at an explicit core count (the LLC mesh
/// scales uniformly with the cores — see
/// [`ExperimentConfig::timing_with_cores`]). In quick mode the 4-core
/// point is the exact job Figures 2/6/7 run, so it is always a cache
/// hit; in full mode no point coincides, because the suite's native
/// config pairs 8 cores with a 16-slice LLC while the sweep keeps
/// LLC-per-core consistent along the axis.
pub fn scaling_job(
    workload: Workload,
    design: DesignPoint,
    cores: usize,
    cfg: &ExperimentConfig,
) -> TimingJob {
    TimingJob {
        workload,
        design,
        cfg: cfg.timing_with_cores(cores),
    }
}

/// The baseline (no-prefetch) coverage run at an explicit L1-I capacity.
/// At the paper's 32 KB this *is* the shared coverage baseline — the tail
/// extension of the persisted key encodes to nothing at the default.
pub fn l1i_size_job(workload: Workload, kb: usize, cfg: &ExperimentConfig) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::Baseline1k,
        opts: CoverageOptions {
            l1i_kb: kb,
            ..cfg.coverage()
        },
    }
}

/// Baseline BTB + SHIFT at an explicit stream lookahead depth. At the
/// default depth (24) this is byte-for-byte the L1-I table's `+SHIFT`
/// job.
pub fn lookahead_job(workload: Workload, depth: usize, cfg: &ExperimentConfig) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::Baseline1k,
        opts: CoverageOptions {
            shift_lookahead: depth,
            ..cfg.coverage().with_shift()
        },
    }
}

/// Figure 1's conventional-BTB geometry at an arbitrary capacity. At
/// whole kilo-entry points this aliases Figure 1's sweep.
pub fn capacity_job(workload: Workload, entries: usize, cfg: &ExperimentConfig) -> CoverageJob {
    CoverageJob {
        workload,
        btb: BtbSpec::Conventional {
            entries,
            ways: 4,
            victim_entries: 64,
        },
        opts: cfg.coverage(),
    }
}

impl SweepSpec {
    /// Expands the study into content-keyed jobs for the given workloads
    /// (no engine required — usable by codec tests and planners).
    pub fn jobs_for(&self, workloads: &[Workload], cfg: &ExperimentConfig) -> Vec<Job> {
        let mut jobs = Vec::new();
        for &w in workloads {
            match &self.axis {
                SweepAxis::HistoryEntries(points) => {
                    jobs.push(baseline_job(w, cfg).into());
                    for &n in points {
                        jobs.push(history_job(w, n, cfg).into());
                    }
                }
                SweepAxis::BundleGeometry(points) => {
                    jobs.push(baseline_job(w, cfg).into());
                    for &g in points {
                        jobs.push(geometry_job(w, g, cfg).into());
                    }
                }
                SweepAxis::Cores(points) => {
                    for &c in points {
                        for d in SCALING_DESIGNS {
                            jobs.push(scaling_job(w, d, c, cfg).into());
                        }
                    }
                }
                SweepAxis::BtbCapacity(points) => {
                    for &n in points {
                        jobs.push(capacity_job(w, n, cfg).into());
                    }
                }
                SweepAxis::L1iSizeKb(points) => {
                    for &kb in points {
                        jobs.push(l1i_size_job(w, kb, cfg).into());
                    }
                }
                SweepAxis::ShiftLookahead(points) => {
                    jobs.push(baseline_job(w, cfg).into());
                    for &d in points {
                        jobs.push(lookahead_job(w, d, cfg).into());
                    }
                }
            }
        }
        jobs
    }

    /// The study's jobs over the engine's workloads.
    pub fn jobs(&self, engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Job> {
        let workloads: Vec<Workload> = engine.workloads().iter().map(|(w, _)| *w).collect();
        self.jobs_for(&workloads, cfg)
    }

    /// Formats the study from the engine cache (missing points are
    /// computed on demand, like any figure formatter).
    pub fn report(&self, engine: &SimEngine, cfg: &ExperimentConfig) -> Report {
        engine.run(&self.jobs(engine, cfg));
        let labels = self.axis.point_labels();
        match &self.axis {
            SweepAxis::HistoryEntries(points) => {
                let mut report = self.table(&["workload"], &labels);
                for (w, _) in engine.workloads() {
                    let base = engine.coverage(&baseline_job(*w, cfg));
                    let mut cells = vec![w.name().to_string()];
                    for &n in points {
                        let r = engine.coverage(&history_job(*w, n, cfg));
                        cells.push(pct(r.l1i_miss_coverage_vs(&base)));
                    }
                    report.row(cells);
                }
                report
            }
            SweepAxis::BundleGeometry(points) => {
                let mut report = self.table(&["workload"], &labels);
                for (w, _) in engine.workloads() {
                    let base = engine.coverage(&baseline_job(*w, cfg));
                    let mut cells = vec![w.name().to_string()];
                    for &g in points {
                        let r = engine.coverage(&geometry_job(*w, g, cfg));
                        cells.push(pct(r.btb_miss_coverage_vs(&base)));
                    }
                    report.row(cells);
                }
                report
            }
            SweepAxis::Cores(points) => {
                let mut report = self.table(&["workload", "design"], &labels);
                for (w, _) in engine.workloads() {
                    for d in SCALING_DESIGNS {
                        let mut cells = vec![w.name().to_string(), d.name().to_string()];
                        for &c in points {
                            let r = engine.timing(&scaling_job(*w, d, c, cfg));
                            cells.push(f(r.ipc(), 3));
                        }
                        report.row(cells);
                    }
                }
                report
            }
            SweepAxis::BtbCapacity(points) => {
                let mut report = self.table(&["workload"], &labels);
                for (w, _) in engine.workloads() {
                    let mut cells = vec![w.name().to_string()];
                    for &n in points {
                        let r = engine.coverage(&capacity_job(*w, n, cfg));
                        cells.push(f(r.btb_mpki(), 2));
                    }
                    report.row(cells);
                }
                report
            }
            SweepAxis::L1iSizeKb(points) => {
                let mut report = self.table(&["workload"], &labels);
                for (w, _) in engine.workloads() {
                    let mut cells = vec![w.name().to_string()];
                    for &kb in points {
                        let r = engine.coverage(&l1i_size_job(*w, kb, cfg));
                        cells.push(f(r.l1i_mpki(), 2));
                    }
                    report.row(cells);
                }
                report
            }
            SweepAxis::ShiftLookahead(points) => {
                let mut report = self.table(&["workload"], &labels);
                for (w, _) in engine.workloads() {
                    let base = engine.coverage(&baseline_job(*w, cfg));
                    let mut cells = vec![w.name().to_string()];
                    for &d in points {
                        let r = engine.coverage(&lookahead_job(*w, d, cfg));
                        cells.push(pct(r.l1i_miss_coverage_vs(&base)));
                    }
                    report.row(cells);
                }
                report
            }
        }
    }

    fn table(&self, row_headers: &[&str], labels: &[String]) -> Report {
        let headers: Vec<&str> = row_headers
            .iter()
            .copied()
            .chain(labels.iter().map(String::as_str))
            .collect();
        Report::new(self.caption, &headers)
    }
}

/// Every registered study, in presentation order.
pub fn registry() -> Vec<SweepSpec> {
    vec![
        SweepSpec {
            name: "shift-history",
            caption: "Sweep: SHIFT history capacity vs L1-I miss coverage \
                      (baseline BTB + SHIFT; paper runs 32K entries at ~90%)",
            axis: SweepAxis::HistoryEntries(vec![2 * 1024, 8 * 1024, 32 * 1024, 128 * 1024]),
        },
        SweepSpec {
            name: "bundle-geometry",
            caption: "Sweep: AirBTB bundle geometry (entries/bundle x overflow) vs \
                      BTB miss coverage (Full mode + SHIFT; paper point is 512x3+32). \
                      Full-mode bundles mirror the 512-block L1-I, so the grid sweeps \
                      the binding parameters: branch entries per bundle and overflow \
                      capacity (Figure 10's four points plus a 2-entry column)",
            axis: SweepAxis::BundleGeometry(vec![
                (512, 2, 0),
                (512, 2, 32),
                (512, 3, 0),
                (512, 3, 32),
                (512, 4, 0),
                (512, 4, 32),
            ]),
        },
        SweepSpec {
            name: "core-scaling",
            caption: "Sweep: CMP core count vs per-core IPC \
                      (Baseline / Confluence / Ideal frontends share one LLC)",
            axis: SweepAxis::Cores(vec![4, 8, 16]),
        },
        SweepSpec {
            name: "btb-capacity",
            caption: "Sweep: conventional-BTB capacity vs BTB MPKI \
                      (Figure 1's geometry at half-K granularity)",
            axis: SweepAxis::BtbCapacity(vec![512, 1024, 4096, 16 * 1024, 64 * 1024]),
        },
        SweepSpec {
            name: "l1i-size",
            caption: "Sweep: L1-I capacity vs demand MPKI \
                      (baseline BTB, no prefetch; paper Table 1 runs 32 KB — \
                      the capacity wall SHIFT exists to climb over)",
            axis: SweepAxis::L1iSizeKb(vec![16, 32, 64, 128]),
        },
        SweepSpec {
            name: "shift-lookahead",
            caption: "Sweep: SHIFT stream lookahead depth vs L1-I miss coverage \
                      (baseline BTB + SHIFT; the engine's default depth is 24 blocks)",
            axis: SweepAxis::ShiftLookahead(vec![4, 8, 24, 48]),
        },
    ]
}

/// Looks up a registered study by name.
pub fn find(name: &str) -> Option<SweepSpec> {
    registry().into_iter().find(|s| s.name == name)
}

/// Every study's jobs in one batch (what `all_experiments` appends to the
/// figure suite).
pub fn all_sweep_jobs(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Job> {
    registry()
        .iter()
        .flat_map(|s| s.jobs(engine, cfg))
        .collect()
}

/// Every study's report, in registry order.
pub fn sweep_reports(engine: &SimEngine, cfg: &ExperimentConfig) -> Vec<Report> {
    registry().iter().map(|s| s.report(engine, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::unique_jobs;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let studies = registry();
        assert!(studies.len() >= 3, "at least three studies must register");
        let mut names: Vec<&str> = studies.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), studies.len(), "study names must be unique");
        for s in &studies {
            assert!(!s.axis.is_empty(), "{}: axis has no points", s.name);
            assert_eq!(find(s.name).map(|f| f.name), Some(s.name));
        }
        assert!(find("no-such-study").is_none());
    }

    #[test]
    fn studies_overlap_each_other_and_the_figure_suite() {
        let cfg = ExperimentConfig::quick();
        let workloads = [Workload::OltpDb2, Workload::WebFrontend];
        let sweep_jobs: Vec<Job> = registry()
            .iter()
            .flat_map(|s| s.jobs_for(&workloads, &cfg))
            .collect();
        assert!(
            unique_jobs(&sweep_jobs) < sweep_jobs.len(),
            "studies must share points (the coverage baseline at least)"
        );
        // The native-capacity history point is the L1-I table's job, and
        // the native core count is the timing figures' exact config.
        let native_history: Job = history_job(
            Workload::OltpDb2,
            confluence_prefetch::DEFAULT_HISTORY_ENTRIES,
            &cfg,
        )
        .into();
        assert!(sweep_jobs.contains(&native_history));
        let native_timing: Job = TimingJob {
            workload: Workload::OltpDb2,
            design: DesignPoint::Baseline,
            cfg: cfg.timing(),
        }
        .into();
        assert!(
            sweep_jobs.contains(&native_timing),
            "core-scaling must reuse the suite's native timing config"
        );
    }

    #[test]
    fn point_labels_match_axis_arity() {
        for s in registry() {
            let labels = s.axis.point_labels();
            assert_eq!(labels.len(), s.axis.len(), "{}", s.name);
            let mut sorted = labels.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), labels.len(), "{}: duplicate labels", s.name);
        }
    }

    #[test]
    fn kilo_labels_render() {
        assert_eq!(format!("{}", Kilo(512)), "512");
        assert_eq!(format!("{}", Kilo(1024)), "1K");
        assert_eq!(format!("{}", Kilo(128 * 1024)), "128K");
        assert_eq!(format!("{}", Kilo(1536)), "1536");
    }
}
