//! Cycle-level model of one core's frontend pipeline.
//!
//! The model reproduces the paper's performance effects rather than every
//! pipeline latch: a branch prediction unit that emits one fetch region
//! (basic block) per cycle into a six-region fetch queue; an in-order fetch
//! stage that needs a region's blocks resident in the L1-I; an instruction
//! buffer decoupling fetch from a 3-wide retire drain whose slots stall
//! with a workload-calibrated probability (standing in for the OoO
//! backend's data misses, which a frontend trace cannot replay).
//!
//! Penalty events (paper Section 4.1):
//!
//! - **misfetch** — taken branch with no BTB entry, discovered in decode:
//!   4-cycle BPU bubble;
//! - **second-level BTB fill** — L1-BTB miss served by a dedicated L2 or
//!   an LLC-resident level: BPU bubble equal to the level's latency;
//! - **direction / indirect / return mispredict** — resolve-time flush:
//!   fetch queue discarded plus a full pipeline-refill bubble;
//! - **L1-I miss** — fetch stalls until the fill returns from the LLC
//!   (MSHR-tracked; prefetched blocks may be partially in flight);
//! - **Confluence demand fill** — adds the predecoder's scan latency.
//!
//! # The two-phase tick
//!
//! A cycle is two phases. [`CoreFrontend::step_local`] advances every
//! core-private structure (pipeline latches, L1-I, BTB, predictors, RNG),
//! reading the shared SHIFT history through a
//! [`HistoryView`](confluence_prefetch::HistoryView) and *deferring* every
//! shared-LLC access as a typed [`FillRequest`];
//! [`CoreFrontend::commit_fills`] then replays those requests against the
//! LLC. Within one cycle nothing reads a fill's latency — only its
//! presence — so splitting request from commit changes no result, and the
//! CMP executor (`crate::cmp`) can run phase 1 for all cores concurrently
//! while phase 2 commits serially in fixed core order, byte-identical to
//! serial stepping at any shard count.

use std::collections::VecDeque;

use confluence_btb::{BtbDesign, ResolvedBranch};
use confluence_prefetch::{Fdp, HistoryView, ShiftEngine, ShiftHistory};
use confluence_trace::{ExecMode, Program, RecordStream};
use confluence_types::{
    BlockAddr, BranchKind, DetRng, FetchRegion, PredecodeSource, TraceRecord, VAddr,
};
use confluence_uarch::{
    CoreParams, FillKind, FillRequest, HybridDirectionPredictor, IndirectTargetCache, L1ICache,
    MshrFile, Predecoder, ReturnAddressStack, SharedLlc, PENDING_FILL,
};

use crate::designs::{DesignPoint, PrefetchScheme};

/// Maximum instructions per fetch region (fetch-width bound on straight-line
/// runs; basic blocks are normally much shorter).
const REGION_CAP: usize = 16;
/// Outstanding prefetch fills per core.
const PREFETCH_SLOTS: usize = 32;
/// Probability that one queued fetch region lies on the correct path, as
/// seen by FDP. The trace-driven BPU always knows the correct path, but a
/// real FDP's lookahead quality decays geometrically with speculation depth
/// (paper Section 2.1: "its miss rate geometrically compounds"); prefetches
/// issued at queue depth `d` are useful only with probability `acc^d`.
const FDP_REGION_ACCURACY: f64 = 0.72;
/// Records pulled from the executor per lookahead refill. Batch stepping
/// lets the compiled stream emit whole staged chains per pull instead of
/// paying the mode dispatch and staging checks on every record; the
/// records are identical to per-record pulls, so the consumption grain
/// is invisible to the model.
const LOOKAHEAD_BLOCK: u64 = 64;

/// Measured-phase counters for one core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles in the measured phase.
    pub cycles: u64,
    /// Instructions retired in the measured phase.
    pub retired: u64,
    /// Dynamic branches seen by the BPU.
    pub branches: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// BTB misses (taken branch, no entry anywhere).
    pub btb_misses: u64,
    /// Misfetch events (4-cycle redirects).
    pub misfetches: u64,
    /// Cycles of exposed second-level BTB fill bubbles.
    pub l2_bubble_cycles: u64,
    /// Direction/indirect/return mispredict flushes.
    pub mispredicts: u64,
    /// Block-grain demand accesses to the L1-I.
    pub l1i_accesses: u64,
    /// Demand misses in the L1-I.
    pub l1i_misses: u64,
    /// Blocks installed by prefetching.
    pub prefetch_fills: u64,
    /// Cycles the fetch stage spent stalled on instruction supply.
    pub fetch_stall_cycles: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Events per kilo-instruction helper.
    pub fn pki(&self, count: u64) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / self.retired as f64
        }
    }
}

/// A fetch region queued between the BPU and the fetch stage.
#[derive(Clone, Debug)]
struct PendingRegion {
    len: usize,
    blocks: Vec<BlockAddr>,
    next_block: usize,
    /// Instructions already delivered to the instruction buffer.
    fetched: usize,
}

/// One core's frontend pipeline state.
pub struct CoreFrontend<'p> {
    id: usize,
    program: &'p Program,
    stream: RecordStream<'p>,
    btb: Box<dyn BtbDesign>,
    dir: HybridDirectionPredictor,
    itc: IndirectTargetCache,
    ras: ReturnAddressStack,
    fdp: Option<Fdp>,
    shift: Option<ShiftEngine>,
    l1i: L1ICache,
    mshrs: MshrFile,
    predecoder: Predecoder,
    perfect_l1i: bool,
    predecode_fills: bool,
    records_history: bool,
    core: CoreParams,
    backend_stall_prob: f64,
    rng: DetRng,

    lookahead: VecDeque<TraceRecord>,
    fetch_queue: VecDeque<PendingRegion>,
    instr_buffer: usize,
    bpu_ready_at: u64,
    inflight_prefetch: Vec<(BlockAddr, u64)>,
    last_demand_block: Option<BlockAddr>,
    scratch: Vec<BlockAddr>,
    /// Shared-hierarchy accesses deferred from phase 1 to phase 2, in the
    /// exact order serial stepping would have performed them.
    pending_fills: Vec<FillRequest>,

    retired: u64,
    warmup_instrs: u64,
    target_instrs: u64,
    warm_start_cycle: Option<u64>,
    done_at: Option<u64>,
    stats: CoreStats,
}

impl<'p> CoreFrontend<'p> {
    /// Creates one core's pipeline for the given design point.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        program: &'p Program,
        design: DesignPoint,
        llc_latency: u64,
        core: CoreParams,
        warmup_instrs: u64,
        measure_instrs: u64,
        seed: u64,
        mode: ExecMode,
    ) -> Self {
        let spec = program.spec();
        CoreFrontend {
            id,
            program,
            stream: program.stream(seed ^ (id as u64) << 32, mode),
            btb: design.build_btb(llc_latency),
            dir: HybridDirectionPredictor::new_16k(),
            itc: IndirectTargetCache::new_1k(),
            ras: ReturnAddressStack::new_64(),
            fdp: matches!(design.prefetch(), PrefetchScheme::Fdp).then(Fdp::new),
            shift: matches!(design.prefetch(), PrefetchScheme::Shift).then(ShiftEngine::new),
            l1i: L1ICache::new_32k(),
            mshrs: MshrFile::new(confluence_uarch::MemParams::default().l1i_mshrs),
            predecoder: Predecoder::new(),
            perfect_l1i: design.perfect_l1i(),
            predecode_fills: design.predecodes_fills(),
            records_history: id == 0,
            core,
            backend_stall_prob: spec.backend_stall_prob,
            rng: DetRng::seed_from(seed ^ 0xBACC ^ id as u64),
            lookahead: VecDeque::with_capacity(LOOKAHEAD_BLOCK as usize),
            fetch_queue: VecDeque::with_capacity(core.fetch_queue_regions),
            instr_buffer: 0,
            bpu_ready_at: 0,
            inflight_prefetch: Vec::with_capacity(PREFETCH_SLOTS),
            last_demand_block: None,
            scratch: Vec::with_capacity(32),
            pending_fills: Vec::with_capacity(PREFETCH_SLOTS),
            retired: 0,
            warmup_instrs,
            target_instrs: warmup_instrs + measure_instrs,
            warm_start_cycle: None,
            done_at: None,
            stats: CoreStats::default(),
        }
    }

    /// True once the core has retired its full instruction budget.
    pub fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    /// Cycle at which the core finished, if done.
    pub fn done_at(&self) -> Option<u64> {
        self.done_at
    }

    /// Measured-phase statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    fn measuring(&self) -> bool {
        self.warm_start_cycle.is_some()
    }

    /// Advances the core by one cycle against live shared state: the
    /// serial convenience wrapper over the two-phase tick
    /// ([`CoreFrontend::step_local`] then [`CoreFrontend::commit_fills`]).
    /// Single-core harnesses and unit tests use this; the CMP executor
    /// drives the phases itself so cores can step concurrently.
    pub fn step(&mut self, now: u64, llc: &mut SharedLlc, history: &mut ShiftHistory) {
        self.step_local(now, &mut HistoryView::Writer(history));
        self.commit_fills(now, llc);
    }

    /// Phase 1 of the tick: advances every core-private structure by one
    /// cycle, reading the shared SHIFT history through `history` and
    /// deferring every shared-LLC access into the core's fill-request log.
    /// Safe to run concurrently across cores (each holds `&mut self` and
    /// an immutable history view); the history generator core must step
    /// first, alone, with the `Writer` view, so its records of this cycle
    /// are visible to every follower — the order serial stepping imposes.
    pub fn step_local(&mut self, now: u64, history: &mut HistoryView<'_>) {
        if self.done_at.is_some() {
            return;
        }
        if self.measuring() {
            self.stats.cycles += 1;
        }
        self.drain_fills(now);
        self.retire(now);
        self.fetch(history);
        self.predict(now);
    }

    /// Phase 2 of the tick: replays this core's deferred fill requests
    /// against the shared LLC, in emission order, patching each pending
    /// MSHR entry or prefetch slot with its real completion cycle. The
    /// executor calls this serially in fixed core order, which is exactly
    /// the LLC access order of fully serial stepping — so latencies, LRU
    /// state, and hit/miss counters are byte-identical at any shard count.
    pub fn commit_fills(&mut self, now: u64, llc: &mut SharedLlc) {
        for i in 0..self.pending_fills.len() {
            let req = self.pending_fills[i];
            let latency = llc.commit_fill(self.id, &req);
            match req.kind {
                FillKind::Demand => self.mshrs.commit_ready(req.block, now + latency),
                FillKind::Prefetch(slot) => {
                    let entry = &mut self.inflight_prefetch[slot];
                    debug_assert_eq!(entry.0, req.block, "prefetch slot moved mid-cycle");
                    debug_assert_eq!(entry.1, PENDING_FILL, "slot already committed");
                    entry.1 = now + latency;
                }
            }
        }
        self.pending_fills.clear();
    }

    /// Installs completed demand and prefetch fills.
    fn drain_fills(&mut self, now: u64) {
        for block in self.mshrs.drain_completed(now) {
            self.install(block);
        }
        let mut arrived = Vec::new();
        self.inflight_prefetch.retain(|&(b, ready)| {
            if ready <= now {
                arrived.push(b);
                false
            } else {
                true
            }
        });
        for b in arrived {
            self.install(b);
        }
    }

    /// Installs a block into the L1-I with the BTB synchronization hooks.
    fn install(&mut self, block: BlockAddr) {
        self.btb
            .on_l1i_fill(block, self.program.branches_in_block(block));
        if let Some(evicted) = self.l1i.fill(block) {
            self.btb.on_l1i_evict(evicted);
        }
    }

    /// Retires up to `retire_width` instructions; slots stall with the
    /// workload's backend probability.
    fn retire(&mut self, now: u64) {
        for _ in 0..self.core.retire_width {
            if self.instr_buffer == 0 {
                break;
            }
            if self.rng.chance(self.backend_stall_prob) {
                continue;
            }
            self.instr_buffer -= 1;
            self.retired += 1;
            if self.measuring() {
                self.stats.retired += 1;
            }
            if self.retired == self.warmup_instrs {
                self.warm_start_cycle = Some(now);
            }
            if self.retired >= self.target_instrs && self.done_at.is_none() {
                self.done_at = Some(now);
            }
        }
    }

    /// Fetch stage: brings the head region's blocks in and delivers up to
    /// `fetch_width` instructions per cycle into the instruction buffer.
    fn fetch(&mut self, history: &mut HistoryView<'_>) {
        let Some(head) = self.fetch_queue.front() else {
            return;
        };
        // Check/collect the region's blocks in order.
        let blocks: Vec<BlockAddr> = head.blocks.clone();
        let mut next = head.next_block;
        while next < blocks.len() {
            let block = blocks[next];
            if self.perfect_l1i {
                next += 1;
                continue;
            }
            let resident = self.block_demand_access(history, block);
            if !resident {
                if self.measuring() {
                    self.stats.fetch_stall_cycles += 1;
                }
                self.fetch_queue
                    .front_mut()
                    .expect("head exists")
                    .next_block = next;
                return; // stall until the fill lands
            }
            next += 1;
        }
        let room = self.core.instr_buffer.saturating_sub(self.instr_buffer);
        let head = self.fetch_queue.front_mut().expect("head exists");
        head.next_block = next;
        let delivered = self.core.fetch_width.min(head.len - head.fetched).min(room);
        head.fetched += delivered;
        self.instr_buffer += delivered;
        if head.fetched == head.len {
            self.fetch_queue.pop_front();
        }
    }

    /// Performs one demand access at block grain, issuing fills and driving
    /// the SHIFT engine. Returns whether the block is usable this cycle.
    ///
    /// The fetch stage retries stalled blocks every cycle; only the first
    /// touch counts statistics and feeds the prefetcher/history.
    fn block_demand_access(&mut self, history: &mut HistoryView<'_>, block: BlockAddr) -> bool {
        let first_touch = self.last_demand_block != Some(block);
        let hit;
        if first_touch {
            self.last_demand_block = Some(block);
            hit = self.l1i.access(block);
            if self.measuring() {
                self.stats.l1i_accesses += 1;
                if !hit {
                    self.stats.l1i_misses += 1;
                }
            }
            // SHIFT observes every demanded block (hit or miss); the
            // engine must consult the history *before* this access is
            // recorded so the index resolves to the previous occurrence.
            if self.shift.is_some() {
                self.scratch.clear();
                let mut candidates = std::mem::take(&mut self.scratch);
                self.shift.as_mut().expect("checked").on_access(
                    history.history(),
                    block,
                    !hit,
                    &mut candidates,
                );
                for p in &candidates {
                    self.issue_prefetch(*p);
                }
                self.scratch = candidates;
            }
            if self.records_history {
                let recorded = history.record(block);
                debug_assert!(recorded, "generator core stepped with a Reader view");
            }
        } else {
            hit = self.l1i.contains(block);
        }
        if hit {
            return true;
        }
        // Not resident: make sure a fill is outstanding (the MSHR may have
        // been full on a previous attempt). The latency is a phase-2
        // concern: reserve the entry now, let the commit patch it.
        if self.mshr_or_inflight(block).is_none() && !self.mshrs.is_full() {
            let allocated = self.mshrs.allocate_pending(block);
            debug_assert!(allocated);
            self.pending_fills.push(FillRequest {
                block,
                kind: FillKind::Demand,
                extra_latency: self.fill_extra_latency(),
            });
        }
        false
    }

    /// Core-private latency added to every fill's LLC access (the
    /// Confluence predecoder's scan, for designs that predecode fills).
    fn fill_extra_latency(&self) -> u64 {
        if self.predecode_fills {
            self.predecoder.latency()
        } else {
            0
        }
    }

    fn mshr_or_inflight(&self, block: BlockAddr) -> Option<u64> {
        self.mshrs.ready_at(block).or_else(|| {
            self.inflight_prefetch
                .iter()
                .find(|&&(b, _)| b == block)
                .map(|&(_, t)| t)
        })
    }

    /// Issues one prefetch fill if the block is not already resident or in
    /// flight and a prefetch slot is free. The slot is reserved
    /// immediately (same-cycle dedup sees it); its completion cycle is a
    /// deferred fill request committed in phase 2.
    fn issue_prefetch(&mut self, block: BlockAddr) {
        if self.perfect_l1i
            || self.l1i.contains(block)
            || self.mshr_or_inflight(block).is_some()
            || self.inflight_prefetch.len() >= PREFETCH_SLOTS
        {
            return;
        }
        if self.measuring() {
            self.stats.prefetch_fills += 1;
        }
        self.inflight_prefetch.push((block, PENDING_FILL));
        self.pending_fills.push(FillRequest {
            block,
            kind: FillKind::Prefetch(self.inflight_prefetch.len() - 1),
            extra_latency: self.fill_extra_latency(),
        });
    }

    /// BPU stage: produce one fetch region per cycle (when not stalled) and
    /// account branch-prediction penalties.
    fn predict(&mut self, now: u64) {
        if now < self.bpu_ready_at || self.fetch_queue.len() >= self.core.fetch_queue_regions {
            return;
        }
        // Build the next region from the trace lookahead.
        let mut len = 0usize;
        let mut start: Option<VAddr> = None;
        let mut terminator: Option<TraceRecord> = None;
        while len < REGION_CAP {
            let r = self.next_record();
            if start.is_none() {
                start = Some(r.pc);
            }
            len += 1;
            if r.branch.is_some() {
                terminator = Some(r);
                break;
            }
        }
        let start = start.expect("region has at least one instruction");
        let region = FetchRegion::new(start, len);
        let blocks: Vec<BlockAddr> = region.blocks().collect();

        let mut bubble: u64 = 0;
        if let Some(term) = terminator {
            let b = term.branch.expect("terminator is a branch");
            let outcome = self.btb.lookup(start, term.pc);
            if self.measuring() {
                self.stats.branches += 1;
                if b.taken {
                    self.stats.taken_branches += 1;
                }
                self.stats.l2_bubble_cycles += outcome.fill_bubble;
            }
            bubble += outcome.fill_bubble;

            // Penalty semantics: a BTB miss can be repaired at *decode*
            // (4-cycle misfetch) only when the decoder can re-derive the
            // redirect — a direct branch whose direction predictor says
            // taken, or an indirect/return whose ITC/RAS supplies the
            // target. A hard-to-predict branch flushes at resolve time
            // whether or not the BTB held its entry; a BTB entry never
            // converts a genuine misprediction into a cheap misfetch.
            let mut mispredicted = false; // resolve-time flush
            let mut decode_redirect = false; // 4-cycle decode repair
            match b.kind {
                BranchKind::Conditional => {
                    let predicted_taken = self.dir.predict(term.pc);
                    if outcome.hit {
                        mispredicted = predicted_taken != b.taken;
                    } else if b.taken {
                        if predicted_taken {
                            decode_redirect = true;
                        } else {
                            mispredicted = true;
                        }
                    }
                    self.dir.update(term.pc, b.taken);
                }
                BranchKind::Unconditional | BranchKind::Call => {
                    if !outcome.hit {
                        // Decode always identifies a direct taken branch.
                        decode_redirect = true;
                    }
                }
                BranchKind::Return => {
                    let predicted = self.ras.pop();
                    if !outcome.hit {
                        decode_redirect = true;
                    }
                    if predicted != Some(b.target) {
                        mispredicted = true;
                    }
                }
                BranchKind::IndirectJump | BranchKind::IndirectCall => {
                    let predicted = self.itc.predict(term.pc);
                    if !outcome.hit {
                        decode_redirect = true;
                    }
                    if predicted != Some(b.target) {
                        mispredicted = true;
                    }
                    self.itc.update(term.pc, b.target);
                }
            }
            if b.kind.pushes_ras() {
                self.ras.push(term.pc.next_instr());
            }

            if !outcome.hit && b.taken && self.measuring() {
                self.stats.btb_misses += 1;
            }
            if mispredicted {
                // Resolve-time redirect. Regions already queued are *older*
                // than the branch and stay valid; the wrong-path fetch
                // window of a real pipeline is modelled as a production
                // stall of the full refill latency.
                if self.measuring() {
                    self.stats.mispredicts += 1;
                }
                bubble += self.core.mispredict_penalty;
            } else if decode_redirect {
                if self.measuring() {
                    self.stats.misfetches += 1;
                }
                bubble += self.core.misfetch_penalty;
            }

            self.btb.update(&ResolvedBranch {
                bb_start: start,
                pc: term.pc,
                kind: b.kind,
                taken: b.taken,
                target: b.target,
            });
        }

        self.fetch_queue.push_back(PendingRegion {
            len,
            blocks: blocks.clone(),
            next_block: 0,
            fetched: 0,
        });

        // Fetch-directed prefetching sees the region as it is enqueued.
        // The deeper the BPU speculates ahead of fetch, the less likely the
        // region is on the correct path — wrong-path prefetches are
        // modelled as dropped issues.
        if self.fdp.is_some() {
            let depth = self.fetch_queue.len() as i32;
            let useful_prob = FDP_REGION_ACCURACY.powi(depth.max(0));
            self.scratch.clear();
            let mut candidates = std::mem::take(&mut self.scratch);
            self.fdp
                .as_mut()
                .expect("checked")
                .on_region_enqueued(region, &mut candidates);
            for p in &candidates {
                if self.rng.chance(useful_prob) {
                    self.issue_prefetch(*p);
                }
            }
            self.scratch = candidates;
        }

        self.bpu_ready_at = now + 1 + bubble;
    }

    fn next_record(&mut self) -> TraceRecord {
        if let Some(r) = self.lookahead.pop_front() {
            return r;
        }
        let CoreFrontend {
            stream, lookahead, ..
        } = self;
        stream.for_each_record(LOOKAHEAD_BLOCK, |r| lookahead.push_back(r));
        self.lookahead.pop_front().expect("executor never ends")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::DesignPoint;
    use confluence_trace::WorkloadSpec;
    use confluence_uarch::MemParams;

    fn run_one(design: DesignPoint, instrs: u64) -> CoreStats {
        let program = Program::generate(&WorkloadSpec::tiny()).unwrap();
        run_on(&program, design, instrs)
    }

    fn run_on(program: &Program, design: DesignPoint, instrs: u64) -> CoreStats {
        run_on_mode(program, design, instrs, ExecMode::from_env())
    }

    fn run_on_mode(
        program: &Program,
        design: DesignPoint,
        instrs: u64,
        mode: ExecMode,
    ) -> CoreStats {
        let mut llc = SharedLlc::new(MemParams::default()).unwrap();
        let mut history = ShiftHistory::with_capacity(8192);
        let mut core = CoreFrontend::new(
            0,
            program,
            design,
            30,
            CoreParams::default(),
            instrs / 2,
            instrs / 2,
            7,
            mode,
        );
        let mut now = 0;
        while !core.is_done() && now < instrs * 50 {
            core.step(now, &mut llc, &mut history);
            now += 1;
        }
        assert!(core.is_done(), "core did not finish within the cycle guard");
        core.stats()
    }

    #[test]
    fn core_stats_identical_across_exec_modes() {
        let program = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let fast = run_on_mode(
            &program,
            DesignPoint::Confluence,
            60_000,
            ExecMode::Compiled,
        );
        let slow = run_on_mode(
            &program,
            DesignPoint::Confluence,
            60_000,
            ExecMode::Reference,
        );
        assert_eq!(fast, slow);
    }

    #[test]
    fn baseline_core_completes_with_sane_ipc() {
        let stats = run_one(DesignPoint::Baseline, 100_000);
        let ipc = stats.ipc();
        assert!((0.2..3.0).contains(&ipc), "IPC {ipc}");
        assert!(stats.branches > 0);
        assert!(stats.l1i_accesses > 0);
    }

    #[test]
    fn ideal_beats_baseline() {
        let base = run_one(DesignPoint::Baseline, 100_000).ipc();
        let ideal = run_one(DesignPoint::Ideal, 100_000).ipc();
        assert!(ideal > base, "ideal {ideal} vs baseline {base}");
    }

    #[test]
    fn ideal_has_no_frontend_misses() {
        let stats = run_one(DesignPoint::Ideal, 50_000);
        assert_eq!(stats.btb_misses, 0);
        assert_eq!(stats.misfetches, 0);
        assert_eq!(stats.l1i_misses, 0);
    }

    #[test]
    fn btb_misses_do_not_convert_flushes_into_misfetches() {
        // With the decode-repair semantics, a design with a worse BTB can
        // never have *fewer* resolve-time flushes: direction mispredicts
        // flush whether or not the BTB held the entry.
        let program = Program::generate(&WorkloadSpec::base().with_code_kb(768)).unwrap();
        let base = run_on(&program, DesignPoint::Baseline, 150_000);
        let ideal_btb = run_on(&program, DesignPoint::IdealBtbShift, 150_000);
        let per_k = |s: &CoreStats, c| c as f64 * 1000.0 / s.retired as f64;
        let base_misp = per_k(&base, base.mispredicts);
        let ideal_misp = per_k(&ideal_btb, ideal_btb.mispredicts);
        assert!(
            base_misp >= ideal_misp * 0.8,
            "baseline mispredicts {base_misp}/K vs ideal-BTB {ideal_misp}/K: conversion artifact"
        );
    }

    #[test]
    fn better_btb_means_fewer_misfetches() {
        // Needs a program whose BTB footprint exceeds 1K entries.
        let program = Program::generate(&WorkloadSpec::base().with_code_kb(768)).unwrap();
        let base = run_on(&program, DesignPoint::Baseline, 150_000);
        let ideal_btb = run_on(&program, DesignPoint::IdealBtbShift, 150_000);
        assert!(
            ideal_btb.btb_misses < base.btb_misses,
            "IdealBTB {} should miss less than baseline {}",
            ideal_btb.btb_misses,
            base.btb_misses
        );
    }

    #[test]
    fn stats_counters_are_consistent() {
        let s = run_one(DesignPoint::Baseline, 80_000);
        assert!(s.taken_branches <= s.branches);
        assert!(s.btb_misses <= s.taken_branches);
        assert!(s.l1i_misses <= s.l1i_accesses);
        assert!(s.retired > 0 && s.cycles > 0);
    }
}
