//! Spawn tests for strict argument parsing: every binary rejects
//! unknown flags with exit code 2, the offending argument, and a usage
//! line — a typo'd `--qiuck` must not silently run the full experiment
//! it was trying to abbreviate. Malformed cache-cap environment
//! variables get the same treatment from both knobs.
//!
//! These run the real release of each binary via `CARGO_BIN_EXE_*`, so
//! they pin the end-to-end behaviour (argv → exit status → stderr), not
//! just the parsing helper.

use std::process::{Command, Output};

fn run(exe: &str, args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(exe);
    cmd.args(args);
    // The suite's own store/connect env must not leak into the spawned
    // binaries; tests set exactly what they mean to test.
    for var in [
        "CONFLUENCE_STORE",
        "CONFLUENCE_STORE_CAP",
        "CONFLUENCE_CONNECT",
        "CONFLUENCE_MEMO_CAP",
        "CONFLUENCE_PEER",
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("binary spawns")
}

/// Asserts the rejection contract: exit 2, named offender, usage line.
fn assert_rejects(exe: &str, args: &[&str], offender: &str) {
    let out = run(exe, args, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{exe} {args:?} must exit 2, stderr: {stderr}"
    );
    assert!(
        stderr.contains(&format!("unrecognized argument '{offender}'")),
        "{exe} {args:?} must name the offender, stderr: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{exe} {args:?} must print usage, stderr: {stderr}"
    );
}

#[test]
fn figure_binaries_reject_typoed_flags() {
    assert_rejects(env!("CARGO_BIN_EXE_fig1"), &["--qiuck"], "--qiuck");
    assert_rejects(env!("CARGO_BIN_EXE_fig9"), &["--quick", "extra"], "extra");
    // A switch given a value is not the switch.
    assert_rejects(env!("CARGO_BIN_EXE_table2"), &["--quick=1"], "--quick=1");
}

#[test]
fn batch_binaries_reject_typoed_flags() {
    assert_rejects(
        env!("CARGO_BIN_EXE_all_experiments"),
        &["--qiuck"],
        "--qiuck",
    );
    assert_rejects(
        env!("CARGO_BIN_EXE_sweeps"),
        &["--stduy", "history"],
        "--stduy",
    );
    assert_rejects(env!("CARGO_BIN_EXE_timing_figs"), &["--sreial"], "--sreial");
}

#[test]
fn pure_arithmetic_and_daemon_binaries_reject_typoed_flags() {
    assert_rejects(env!("CARGO_BIN_EXE_area_table"), &["--csvv"], "--csvv");
    assert_rejects(
        env!("CARGO_BIN_EXE_confluence-serve"),
        &[
            "--socket",
            "/tmp/confluence-cli-strict-unused.sock",
            "--bogus",
        ],
        "--bogus",
    );
}

#[test]
fn well_formed_invocations_still_run() {
    // area_table simulates nothing, so it doubles as the cheap positive
    // control that strict parsing accepts the documented spellings.
    let out = run(env!("CARGO_BIN_EXE_area_table"), &["--csv"], &[]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("structure,"));
    let out = run(env!("CARGO_BIN_EXE_area_table"), &["--markdown"], &[]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("| structure |"));
}

#[test]
fn peer_flags_parse_strictly_in_every_binary() {
    // Typos stay typos now that --peer is a known flag elsewhere.
    assert_rejects(
        env!("CARGO_BIN_EXE_fig1"),
        &["--quick", "--perr", "/tmp/x"],
        "--perr",
    );
    assert_rejects(
        env!("CARGO_BIN_EXE_timing_figs"),
        &["--quick", "--peers", "/tmp/x"],
        "--peers",
    );
    assert_rejects(
        env!("CARGO_BIN_EXE_confluence-serve"),
        &["--socket", "/tmp/unused.sock", "--peer-timeout", "10"],
        "--peer-timeout",
    );

    // A --peer with no value is its own exit-2 case with a precise
    // message, from every binary that accepts the flag.
    for (exe, args) in [
        (
            env!("CARGO_BIN_EXE_fig1"),
            &["--quick", "--peer"] as &[&str],
        ),
        (
            env!("CARGO_BIN_EXE_all_experiments"),
            &["--quick", "--peer"],
        ),
        (env!("CARGO_BIN_EXE_sweeps"), &["--quick", "--peer"]),
        (env!("CARGO_BIN_EXE_timing_figs"), &["--quick", "--peer"]),
        (
            env!("CARGO_BIN_EXE_confluence-serve"),
            &["--socket", "/tmp/unused.sock", "--quick", "--peer"],
        ),
    ] {
        let out = run(exe, args, &[]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{exe}: stderr: {stderr}");
        assert!(
            stderr.contains("--peer requires a socket path"),
            "{exe} must name the missing value: {stderr}"
        );
    }

    // Malformed --peer-timeout-ms: exit 2, named flag and value.
    let out = run(
        env!("CARGO_BIN_EXE_fig1"),
        &[
            "--quick",
            "--peer",
            "/tmp/x.sock",
            "--peer-timeout-ms",
            "soon",
        ],
        &[],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("--peer-timeout-ms") && stderr.contains("soon"),
        "stderr must name the flag and value: {stderr}"
    );

    // --peer without a store has nowhere to promote fetched entries:
    // exit 2 pointing at --store-dir, before any workload generates.
    let out = run(
        env!("CARGO_BIN_EXE_fig1"),
        &["--quick", "--no-store", "--peer", "/tmp/x.sock"],
        &[],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("--peer requires a persistent store"),
        "stderr must explain the store requirement: {stderr}"
    );

    // The CONFLUENCE_PEER environment fallback hits the same gate.
    let out = run(
        env!("CARGO_BIN_EXE_fig1"),
        &["--quick", "--no-store"],
        &[("CONFLUENCE_PEER", "/tmp/a.sock,/tmp/b.sock")],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("--peer requires a persistent store"),
        "env-supplied peers must hit the same gate: {stderr}"
    );
}

#[test]
fn malformed_cache_caps_exit_2_from_both_knobs() {
    // The memo cap (compile-time memoization) and the store cap (disk
    // store eviction) fail the same way: exit 2, named variable.
    let out = run(
        env!("CARGO_BIN_EXE_fig1"),
        &["--quick"],
        &[("CONFLUENCE_MEMO_CAP", "banana")],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("CONFLUENCE_MEMO_CAP") && stderr.contains("banana"),
        "stderr must name the variable and value: {stderr}"
    );

    let out = run(
        env!("CARGO_BIN_EXE_fig1"),
        &["--quick"],
        &[("CONFLUENCE_STORE_CAP", "banana")],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("CONFLUENCE_STORE_CAP"),
        "stderr must name the variable: {stderr}"
    );
}
