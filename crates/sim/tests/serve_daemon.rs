//! End-to-end tests of the experiment daemon: an in-process
//! `confluence_serve::Server` mounted over an [`EngineHost`], exercised
//! through real Unix-domain sockets by real [`Client`]s — concurrent
//! clients with overlapping batches, warm second batches, store GC,
//! once-per-lifetime artifact imports, and the protocol's typed failure
//! paths.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use confluence_serve::protocol::{self, Frame};
use confluence_serve::{Client, ClientError, ErrorCode, Server, ServerHandle};
use confluence_sim::daemon::{submit_jobs, EngineHost};
use confluence_sim::{
    BtbSpec, CoverageJob, CoverageOptions, DensityJob, Job, PeerSet, SimEngine, SCHEMA_VERSION,
};
use confluence_store::{Encode, ResultStore};
use confluence_trace::{Program, Workload, WorkloadSpec};

/// Fresh per-test scratch directory (sockets and stores live here).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "confluence-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir writable");
    dir
}

/// An engine over the deterministic tiny workload; every call generates
/// an identical program, so daemon and clients share a fingerprint.
fn tiny_engine() -> SimEngine {
    let program = Arc::new(Program::generate(&WorkloadSpec::tiny()).expect("tiny spec generates"));
    SimEngine::new(vec![(Workload::WebFrontend, program)]).with_threads(2)
}

/// A small mixed batch: three coverage points and a density probe, all
/// cheap enough for CI but distinct content keys.
fn tiny_jobs() -> Vec<Job> {
    let opts = CoverageOptions {
        warmup_instrs: 5_000,
        measure_instrs: 5_000,
        ..Default::default()
    };
    let coverage = |btb| {
        Job::Coverage(CoverageJob {
            workload: Workload::WebFrontend,
            btb,
            opts: opts.clone(),
        })
    };
    vec![
        coverage(BtbSpec::Perfect),
        coverage(BtbSpec::Baseline1k),
        coverage(BtbSpec::Ideal16k),
        Job::Density(DensityJob {
            workload: Workload::WebFrontend,
            instrs: 5_000,
            seed: 7,
        }),
    ]
}

fn spawn_daemon(
    engine: SimEngine,
    sock: &Path,
    cap: Option<u64>,
) -> (Arc<EngineHost>, ServerHandle) {
    let host = Arc::new(EngineHost::new(engine, cap));
    let server = Server::bind(sock, Arc::clone(&host)).expect("bind test socket");
    (host, server.spawn())
}

/// Reference outputs computed in process, for byte comparison.
fn reference_outputs(jobs: &[Job]) -> Vec<Vec<u8>> {
    let engine = tiny_engine();
    jobs.iter().map(|j| engine.output(j).to_bytes()).collect()
}

#[test]
fn concurrent_clients_share_exactly_once_execution() {
    let dir = scratch("concurrent");
    let sock = dir.join("daemon.sock");
    let (host, handle) = spawn_daemon(tiny_engine(), &sock, None);

    let jobs = tiny_jobs();
    let expected = reference_outputs(&jobs);

    // Four clients, overlapping batches over the same content keys, each
    // seeding its own local engine — the in-process shape of four
    // separate figure binaries pointed at one daemon.
    let client_stats: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (sock, jobs) = (&sock, &jobs);
                scope.spawn(move || {
                    let local = tiny_engine();
                    let stats = submit_jobs(sock, &local, jobs).expect("batch succeeds");
                    let outputs: Vec<Vec<u8>> =
                        jobs.iter().map(|j| local.output(j).to_bytes()).collect();
                    (stats, outputs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-identical results for every client, against an in-process run.
    for (_, outputs) in &client_stats {
        assert_eq!(outputs, &expected, "daemon results must match in-process");
    }
    // Exactly once across all four clients: the daemon's engine executed
    // each unique job a single time and served everything else as hits.
    let unique = jobs.len() as u64;
    let totals = host.engine().stats();
    assert_eq!(totals.executed, unique);
    assert_eq!(totals.requests, 4 * unique);
    assert_eq!(totals.hits, 3 * unique);
    // Per-batch deltas are windows over the shared counters: overlapping
    // batches each see the executions that landed during their window,
    // so each delta is bounded by the truth even though concurrent
    // windows overlap.
    for (stats, _) in &client_stats {
        assert!(
            stats.executed <= unique,
            "no batch can over-claim: {stats:?}"
        );
    }

    handle.stop().expect("clean shutdown");
    assert!(!sock.exists(), "stop removes the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_second_batch_executes_nothing_and_reimports_nothing() {
    let dir = scratch("warm");
    let sock = dir.join("daemon.sock");
    let store_dir = dir.join("store");
    let jobs = tiny_jobs();

    // Populate the store — results and warm artifacts — with a plain
    // in-process run, then delete the result entries so only the
    // artifact tier remains: the CI "artifact-warm" shape.
    {
        let engine = tiny_engine()
            .with_store(ResultStore::open(&store_dir, SCHEMA_VERSION).expect("store opens"));
        engine.run(&jobs);
        assert!(engine.persist_warm_artifacts() > 0, "artifacts written");
    }
    let versioned = store_dir.join(format!("v{SCHEMA_VERSION}"));
    for entry in std::fs::read_dir(&versioned).expect("store dir exists") {
        let path = entry.expect("readable").path();
        if path.extension().is_some_and(|x| x == "bin") {
            std::fs::remove_file(&path).expect("evict result entry");
        }
    }

    let engine = tiny_engine()
        .with_store(ResultStore::open(&store_dir, SCHEMA_VERSION).expect("store reopens"))
        .with_warm_artifacts(true);
    let (host, handle) = spawn_daemon(engine, &sock, None);

    // Batch 1: result entries are gone, so everything executes — but in
    // replay mode off the imported artifact, recording nothing new.
    let local1 = tiny_engine();
    let stats1 = submit_jobs(&sock, &local1, &jobs).expect("first batch");
    assert_eq!(stats1.executed, jobs.len() as u64);
    assert!(stats1.memo_replayed > 0, "artifact-warm run replays");
    assert_eq!(stats1.memo_recorded, 0, "artifact-warm run records nothing");
    let imports_after_first = host.engine().warm_imports();
    assert_eq!(imports_after_first, 1, "one workload, one import");

    // Batch 2 (fresh client): pure memory hits, and — the PR 7 caveat
    // fixed — the daemon does not re-import the memo table per batch.
    let local2 = tiny_engine();
    let stats2 = submit_jobs(&sock, &local2, &jobs).expect("second batch");
    assert_eq!(stats2.executed, 0, "warm daemon executes nothing");
    assert_eq!(stats2.disk_hits, 0);
    assert_eq!(stats2.hits, jobs.len() as u64);
    assert_eq!(
        host.engine().warm_imports(),
        imports_after_first,
        "second batch must not re-import artifacts"
    );

    // Both clients still decode identical bytes.
    let expected = reference_outputs(&jobs);
    for local in [&local1, &local2] {
        let outputs: Vec<Vec<u8>> = jobs.iter().map(|j| local.output(j).to_bytes()).collect();
        assert_eq!(outputs, expected);
    }

    handle.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_applies_store_cap_after_each_batch() {
    let dir = scratch("gc");
    let sock = dir.join("daemon.sock");
    let store_dir = dir.join("store");
    let engine = tiny_engine()
        .with_store(ResultStore::open(&store_dir, SCHEMA_VERSION).expect("store opens"));
    // A 1-byte cap: every entry the batch writes must be evicted again
    // in the daemon's post-batch maintenance.
    let (host, handle) = spawn_daemon(engine, &sock, Some(1));

    let jobs = tiny_jobs();
    let local = tiny_engine();
    let stats = submit_jobs(&sock, &local, &jobs).expect("batch succeeds");
    assert_eq!(stats.executed, jobs.len() as u64);

    let usage = host.engine().store().expect("store attached").usage();
    assert_eq!(
        (usage.entries, usage.artifacts),
        (0, 0),
        "post-batch GC must enforce the cap"
    );
    // The BatchDone store line reflects post-GC occupancy.
    let line = stats.store.expect("store line present");
    assert_eq!(line.entries, 0);

    handle.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_handshakes_are_typed_refusals() {
    let dir = scratch("handshake");
    let sock = dir.join("daemon.sock");
    let (host, handle) = spawn_daemon(tiny_engine(), &sock, None);
    let fingerprint = host.fingerprint();

    match Client::connect(&sock, SCHEMA_VERSION + 1, fingerprint) {
        Err(ClientError::Daemon { code, .. }) => assert_eq!(code, ErrorCode::SchemaMismatch),
        Err(other) => panic!("schema mismatch must be a typed refusal, got {other:?}"),
        Ok(_) => panic!("schema mismatch must not connect"),
    }
    match Client::connect(&sock, SCHEMA_VERSION, fingerprint ^ 1) {
        Err(ClientError::Daemon { code, .. }) => assert_eq!(code, ErrorCode::ConfigMismatch),
        Err(other) => panic!("config mismatch must be a typed refusal, got {other:?}"),
        Ok(_) => panic!("config mismatch must not connect"),
    }
    // The daemon is not poisoned: a correct handshake still succeeds.
    Client::connect(&sock, SCHEMA_VERSION, fingerprint).expect("valid handshake accepted");

    handle.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_traffic_gets_typed_errors_and_never_poisons() {
    let dir = scratch("malformed");
    let sock = dir.join("daemon.sock");
    let (host, handle) = spawn_daemon(tiny_engine(), &sock, None);
    let fingerprint = host.fingerprint();

    // A frame that decodes to garbage (valid envelope, junk payload):
    // the daemon answers with a typed Error frame, not a hangup.
    {
        use std::os::unix::net::UnixStream;
        let mut stream = UnixStream::connect(&sock).expect("connect");
        confluence_store::write_frame(&mut stream, &[0xFF, 0x01, 0x02]).expect("send junk");
        match protocol::recv(&mut stream) {
            Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::MalformedFrame),
            other => panic!("junk frame must earn a typed error, got {other:?}"),
        }
    }

    // A well-formed frame protocol carrying an undecodable job payload.
    {
        let mut client = Client::connect(&sock, SCHEMA_VERSION, fingerprint).expect("handshake");
        match client.submit(1, vec![b"not a job".to_vec()]) {
            Err(ClientError::Daemon { code, .. }) => assert_eq!(code, ErrorCode::MalformedJob),
            other => panic!("bad job payload must be a typed error, got {other:?}"),
        }
    }

    // A client that submits a batch and vanishes without reading.
    {
        use std::os::unix::net::UnixStream;
        let mut stream = UnixStream::connect(&sock).expect("connect");
        protocol::send(
            &mut stream,
            &Frame::Hello {
                proto: protocol::PROTO_VERSION,
                schema: SCHEMA_VERSION,
                fingerprint,
            },
        )
        .expect("hello");
        assert!(matches!(
            protocol::recv(&mut stream),
            Ok(Frame::HelloAck { .. })
        ));
        let payloads = tiny_jobs().iter().map(Encode::to_bytes).collect();
        protocol::send(
            &mut stream,
            &Frame::SubmitBatch {
                batch_id: 9,
                jobs: payloads,
            },
        )
        .expect("submit");
        drop(stream); // gone before a single result frame is read
    }

    // After all of that, an honest client still gets full service and
    // exactly-once totals hold.
    let jobs = tiny_jobs();
    let local = tiny_engine();
    submit_jobs(&sock, &local, &jobs).expect("daemon survives hostile clients");
    let expected = reference_outputs(&jobs);
    let outputs: Vec<Vec<u8>> = jobs.iter().map(|j| local.output(j).to_bytes()).collect();
    assert_eq!(outputs, expected);

    handle.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A result-store directory pre-warmed with every `tiny_jobs` result
/// (and warm artifacts) by a plain in-process run.
fn warmed_store(dir: &Path) -> PathBuf {
    let store_dir = dir.join("store-warm");
    let engine = tiny_engine()
        .with_store(ResultStore::open(&store_dir, SCHEMA_VERSION).expect("store opens"));
    engine.run(&tiny_jobs());
    engine.persist_warm_artifacts();
    store_dir
}

/// The acceptance shape of the remote warm tier: daemon A holds a warm
/// store, daemon B starts with an empty one and `--peer A`. B's first
/// batch simulates nothing — every key is fetched from A in **one**
/// round trip, promoted into B's store, and served as a local disk hit
/// — and the client's bytes are identical to an in-process run.
#[test]
fn peered_daemon_serves_first_batch_without_simulating() {
    let dir = scratch("remote-tier");
    let sock_a = dir.join("a.sock");
    let sock_b = dir.join("b.sock");
    let jobs = tiny_jobs();

    let engine_a = tiny_engine().with_store(
        ResultStore::open(warmed_store(&dir), SCHEMA_VERSION).expect("warm store reopens"),
    );
    let (_host_a, handle_a) = spawn_daemon(engine_a, &sock_a, None);

    let store_b = dir.join("store-b");
    let engine_b = tiny_engine()
        .with_store(ResultStore::open(&store_b, SCHEMA_VERSION).expect("empty store opens"))
        .with_peers(PeerSet::new(vec![sock_a.clone()], Duration::from_secs(5)));
    let (_host_b, handle_b) = spawn_daemon(engine_b, &sock_b, None);

    let local = tiny_engine();
    let stats = submit_jobs(&sock_b, &local, &jobs).expect("batch against B succeeds");

    let unique = jobs.len() as u64;
    assert_eq!(stats.executed, 0, "B must simulate nothing");
    assert_eq!(stats.remote_hits, unique, "every key fetched from A");
    assert_eq!(
        stats.remote_round_trips, 1,
        "a fully-served batch costs exactly one round trip"
    );
    assert!(stats.remote_bytes > 0, "fetched entries have bytes");
    assert_eq!(
        stats.disk_hits, unique,
        "promoted entries serve as local disk hits"
    );

    // Byte-identical to an in-process run.
    let expected = reference_outputs(&jobs);
    let outputs: Vec<Vec<u8>> = jobs.iter().map(|j| local.output(j).to_bytes()).collect();
    assert_eq!(outputs, expected, "remote-served results must match");

    // The promotion is durable: kill A, and a cold engine over B's
    // store still serves everything from disk.
    handle_a.stop().expect("A shuts down");
    handle_b.stop().expect("B shuts down");
    let replay = tiny_engine()
        .with_store(ResultStore::open(&store_b, SCHEMA_VERSION).expect("B's store reopens"));
    replay.run(&jobs);
    let replay_stats = replay.stats();
    assert_eq!(replay_stats.executed, 0, "B's store was really populated");
    assert_eq!(replay_stats.disk_hits, unique);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A dead peer ahead of a live one degrades to a skip, not a failure:
/// the batch still completes remotely in one round trip.
#[test]
fn dead_first_peer_falls_through_to_the_live_one() {
    let dir = scratch("remote-dead-first");
    let sock_a = dir.join("a.sock");
    let jobs = tiny_jobs();

    let engine_a = tiny_engine().with_store(
        ResultStore::open(warmed_store(&dir), SCHEMA_VERSION).expect("warm store reopens"),
    );
    let (_host_a, handle_a) = spawn_daemon(engine_a, &sock_a, None);

    let engine_b = tiny_engine()
        .with_store(ResultStore::open(dir.join("store-b"), SCHEMA_VERSION).expect("store opens"))
        .with_peers(PeerSet::new(
            vec![dir.join("nobody-home.sock"), sock_a.clone()],
            Duration::from_millis(500),
        ));
    engine_b.run(&jobs);

    let stats = engine_b.stats();
    assert_eq!(stats.executed, 0, "the live peer still serves everything");
    assert_eq!(stats.remote_hits, jobs.len() as u64);
    assert_eq!(
        stats.remote_round_trips, 1,
        "a dead peer completes no round trip"
    );

    handle_a.stop().expect("A shuts down");
    let _ = std::fs::remove_dir_all(&dir);
}

/// With every peer dead, the remote tier degrades all the way to local
/// simulation — the run completes, it is just cold.
#[test]
fn all_peers_dead_degrades_to_local_simulation() {
    let dir = scratch("remote-all-dead");
    let jobs = tiny_jobs();
    let engine = tiny_engine()
        .with_store(ResultStore::open(dir.join("store"), SCHEMA_VERSION).expect("store opens"))
        .with_peers(PeerSet::new(
            vec![dir.join("gone.sock")],
            Duration::from_millis(200),
        ));
    engine.run(&jobs);
    let stats = engine.stats();
    assert_eq!(stats.executed, jobs.len() as u64, "everything simulates");
    assert_eq!(stats.remote_hits, 0);
    assert_eq!(stats.remote_round_trips, 0);

    let expected = reference_outputs(&jobs);
    let outputs: Vec<Vec<u8>> = jobs.iter().map(|j| engine.output(j).to_bytes()).collect();
    assert_eq!(outputs, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mutually-peered daemons, both cold: the fetch forwards A → B → A …
/// until the hop limit runs out, terminates with a miss (no livelock,
/// no stack of daemons waiting on each other forever), and the batch
/// completes by simulating locally.
#[test]
fn mutually_peered_daemons_terminate_with_a_miss() {
    let dir = scratch("remote-loop");
    let sock_a = dir.join("a.sock");
    let sock_b = dir.join("b.sock");
    let jobs = tiny_jobs();

    let peers_to = |sock: &Path| PeerSet::new(vec![sock.to_path_buf()], Duration::from_secs(5));
    let engine_a = tiny_engine()
        .with_store(ResultStore::open(dir.join("store-a"), SCHEMA_VERSION).expect("store opens"))
        .with_peers(peers_to(&sock_b));
    let engine_b = tiny_engine()
        .with_store(ResultStore::open(dir.join("store-b"), SCHEMA_VERSION).expect("store opens"))
        .with_peers(peers_to(&sock_a));
    let (_host_a, handle_a) = spawn_daemon(engine_a, &sock_a, None);
    let (_host_b, handle_b) = spawn_daemon(engine_b, &sock_b, None);

    let local = tiny_engine();
    let stats = submit_jobs(&sock_a, &local, &jobs).expect("looped fetch terminates");
    assert_eq!(
        stats.executed,
        jobs.len() as u64,
        "nobody holds the entries, so A simulates them"
    );
    assert_eq!(stats.remote_hits, 0, "a miss everywhere stays a miss");

    let expected = reference_outputs(&jobs);
    let outputs: Vec<Vec<u8>> = jobs.iter().map(|j| local.output(j).to_bytes()).collect();
    assert_eq!(outputs, expected);

    handle_a.stop().expect("A shuts down");
    handle_b.stop().expect("B shuts down");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A lying peer — right protocol, garbage entry bytes — demotes to a
/// miss: `adopt_raw` re-verifies every byte and rejects, the job
/// re-simulates locally, and the write-back repairs the local slot. The
/// store is never poisoned.
#[test]
fn lying_peer_demotes_to_miss_and_write_back_repairs() {
    let dir = scratch("remote-liar");
    let sock = dir.join("liar.sock");
    let jobs = tiny_jobs();

    // A hand-rolled peer that answers every fetch with a well-formed
    // FetchHit whose entry bytes are garbage (wrong checksum, wrong
    // everything) — the protocol-level shape of a corrupt or malicious
    // fleet member.
    let listener = std::os::unix::net::UnixListener::bind(&sock).expect("bind liar socket");
    std::thread::spawn(move || {
        while let Ok((mut stream, _)) = listener.accept() {
            let Ok(Frame::Hello { schema, .. }) = protocol::recv(&mut stream) else {
                continue;
            };
            let _ = protocol::send(
                &mut stream,
                &Frame::HelloAck {
                    proto: protocol::PROTO_VERSION,
                    schema,
                },
            );
            let keys = match protocol::recv(&mut stream) {
                Ok(Frame::FetchResults { keys, .. }) | Ok(Frame::FetchArtifacts { keys, .. }) => {
                    keys
                }
                _ => continue,
            };
            for idx in 0..keys.len() as u32 {
                let _ = protocol::send(
                    &mut stream,
                    &Frame::FetchHit {
                        idx,
                        entry: vec![0xAB; 64],
                    },
                );
            }
            let _ = protocol::send(
                &mut stream,
                &Frame::FetchDone {
                    hits: keys.len() as u32,
                    misses: 0,
                },
            );
        }
    });

    let store_dir = dir.join("store");
    let engine = tiny_engine()
        .with_store(ResultStore::open(&store_dir, SCHEMA_VERSION).expect("store opens"))
        .with_peers(PeerSet::new(vec![sock.clone()], Duration::from_secs(5)));
    engine.run(&jobs);

    let stats = engine.stats();
    assert_eq!(stats.remote_hits, 0, "garbage entries must never adopt");
    assert_eq!(
        stats.executed,
        jobs.len() as u64,
        "every lied-about key re-simulates"
    );
    assert!(
        stats.remote_bytes > 0,
        "the lie was received, then rejected"
    );

    // Results are correct despite the hostile peer...
    let expected = reference_outputs(&jobs);
    let outputs: Vec<Vec<u8>> = jobs.iter().map(|j| engine.output(j).to_bytes()).collect();
    assert_eq!(outputs, expected);

    // ...and the write-back repaired the local slots with verified
    // bytes: a cold engine over the same store is pure disk hits.
    drop(engine);
    let replay = tiny_engine()
        .with_store(ResultStore::open(&store_dir, SCHEMA_VERSION).expect("store reopens"));
    replay.run(&jobs);
    assert_eq!(replay.stats().executed, 0, "store holds verified entries");
    assert_eq!(replay.stats().disk_hits, jobs.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}
