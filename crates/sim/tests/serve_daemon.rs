//! End-to-end tests of the experiment daemon: an in-process
//! `confluence_serve::Server` mounted over an [`EngineHost`], exercised
//! through real Unix-domain sockets by real [`Client`]s — concurrent
//! clients with overlapping batches, warm second batches, store GC,
//! once-per-lifetime artifact imports, and the protocol's typed failure
//! paths.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use confluence_serve::protocol::{self, Frame};
use confluence_serve::{Client, ClientError, ErrorCode, Server, ServerHandle};
use confluence_sim::daemon::{submit_jobs, EngineHost};
use confluence_sim::{
    BtbSpec, CoverageJob, CoverageOptions, DensityJob, Job, SimEngine, SCHEMA_VERSION,
};
use confluence_store::{Encode, ResultStore};
use confluence_trace::{Program, Workload, WorkloadSpec};

/// Fresh per-test scratch directory (sockets and stores live here).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "confluence-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir writable");
    dir
}

/// An engine over the deterministic tiny workload; every call generates
/// an identical program, so daemon and clients share a fingerprint.
fn tiny_engine() -> SimEngine {
    let program = Arc::new(Program::generate(&WorkloadSpec::tiny()).expect("tiny spec generates"));
    SimEngine::new(vec![(Workload::WebFrontend, program)]).with_threads(2)
}

/// A small mixed batch: three coverage points and a density probe, all
/// cheap enough for CI but distinct content keys.
fn tiny_jobs() -> Vec<Job> {
    let opts = CoverageOptions {
        warmup_instrs: 5_000,
        measure_instrs: 5_000,
        ..Default::default()
    };
    let coverage = |btb| {
        Job::Coverage(CoverageJob {
            workload: Workload::WebFrontend,
            btb,
            opts: opts.clone(),
        })
    };
    vec![
        coverage(BtbSpec::Perfect),
        coverage(BtbSpec::Baseline1k),
        coverage(BtbSpec::Ideal16k),
        Job::Density(DensityJob {
            workload: Workload::WebFrontend,
            instrs: 5_000,
            seed: 7,
        }),
    ]
}

fn spawn_daemon(
    engine: SimEngine,
    sock: &Path,
    cap: Option<u64>,
) -> (Arc<EngineHost>, ServerHandle) {
    let host = Arc::new(EngineHost::new(engine, cap));
    let server = Server::bind(sock, Arc::clone(&host)).expect("bind test socket");
    (host, server.spawn())
}

/// Reference outputs computed in process, for byte comparison.
fn reference_outputs(jobs: &[Job]) -> Vec<Vec<u8>> {
    let engine = tiny_engine();
    jobs.iter().map(|j| engine.output(j).to_bytes()).collect()
}

#[test]
fn concurrent_clients_share_exactly_once_execution() {
    let dir = scratch("concurrent");
    let sock = dir.join("daemon.sock");
    let (host, handle) = spawn_daemon(tiny_engine(), &sock, None);

    let jobs = tiny_jobs();
    let expected = reference_outputs(&jobs);

    // Four clients, overlapping batches over the same content keys, each
    // seeding its own local engine — the in-process shape of four
    // separate figure binaries pointed at one daemon.
    let client_stats: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (sock, jobs) = (&sock, &jobs);
                scope.spawn(move || {
                    let local = tiny_engine();
                    let stats = submit_jobs(sock, &local, jobs).expect("batch succeeds");
                    let outputs: Vec<Vec<u8>> =
                        jobs.iter().map(|j| local.output(j).to_bytes()).collect();
                    (stats, outputs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-identical results for every client, against an in-process run.
    for (_, outputs) in &client_stats {
        assert_eq!(outputs, &expected, "daemon results must match in-process");
    }
    // Exactly once across all four clients: the daemon's engine executed
    // each unique job a single time and served everything else as hits.
    let unique = jobs.len() as u64;
    let totals = host.engine().stats();
    assert_eq!(totals.executed, unique);
    assert_eq!(totals.requests, 4 * unique);
    assert_eq!(totals.hits, 3 * unique);
    // Per-batch deltas are windows over the shared counters: overlapping
    // batches each see the executions that landed during their window,
    // so each delta is bounded by the truth even though concurrent
    // windows overlap.
    for (stats, _) in &client_stats {
        assert!(
            stats.executed <= unique,
            "no batch can over-claim: {stats:?}"
        );
    }

    handle.stop().expect("clean shutdown");
    assert!(!sock.exists(), "stop removes the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_second_batch_executes_nothing_and_reimports_nothing() {
    let dir = scratch("warm");
    let sock = dir.join("daemon.sock");
    let store_dir = dir.join("store");
    let jobs = tiny_jobs();

    // Populate the store — results and warm artifacts — with a plain
    // in-process run, then delete the result entries so only the
    // artifact tier remains: the CI "artifact-warm" shape.
    {
        let engine = tiny_engine()
            .with_store(ResultStore::open(&store_dir, SCHEMA_VERSION).expect("store opens"));
        engine.run(&jobs);
        assert!(engine.persist_warm_artifacts() > 0, "artifacts written");
    }
    let versioned = store_dir.join(format!("v{SCHEMA_VERSION}"));
    for entry in std::fs::read_dir(&versioned).expect("store dir exists") {
        let path = entry.expect("readable").path();
        if path.extension().is_some_and(|x| x == "bin") {
            std::fs::remove_file(&path).expect("evict result entry");
        }
    }

    let engine = tiny_engine()
        .with_store(ResultStore::open(&store_dir, SCHEMA_VERSION).expect("store reopens"))
        .with_warm_artifacts(true);
    let (host, handle) = spawn_daemon(engine, &sock, None);

    // Batch 1: result entries are gone, so everything executes — but in
    // replay mode off the imported artifact, recording nothing new.
    let local1 = tiny_engine();
    let stats1 = submit_jobs(&sock, &local1, &jobs).expect("first batch");
    assert_eq!(stats1.executed, jobs.len() as u64);
    assert!(stats1.memo_replayed > 0, "artifact-warm run replays");
    assert_eq!(stats1.memo_recorded, 0, "artifact-warm run records nothing");
    let imports_after_first = host.engine().warm_imports();
    assert_eq!(imports_after_first, 1, "one workload, one import");

    // Batch 2 (fresh client): pure memory hits, and — the PR 7 caveat
    // fixed — the daemon does not re-import the memo table per batch.
    let local2 = tiny_engine();
    let stats2 = submit_jobs(&sock, &local2, &jobs).expect("second batch");
    assert_eq!(stats2.executed, 0, "warm daemon executes nothing");
    assert_eq!(stats2.disk_hits, 0);
    assert_eq!(stats2.hits, jobs.len() as u64);
    assert_eq!(
        host.engine().warm_imports(),
        imports_after_first,
        "second batch must not re-import artifacts"
    );

    // Both clients still decode identical bytes.
    let expected = reference_outputs(&jobs);
    for local in [&local1, &local2] {
        let outputs: Vec<Vec<u8>> = jobs.iter().map(|j| local.output(j).to_bytes()).collect();
        assert_eq!(outputs, expected);
    }

    handle.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_applies_store_cap_after_each_batch() {
    let dir = scratch("gc");
    let sock = dir.join("daemon.sock");
    let store_dir = dir.join("store");
    let engine = tiny_engine()
        .with_store(ResultStore::open(&store_dir, SCHEMA_VERSION).expect("store opens"));
    // A 1-byte cap: every entry the batch writes must be evicted again
    // in the daemon's post-batch maintenance.
    let (host, handle) = spawn_daemon(engine, &sock, Some(1));

    let jobs = tiny_jobs();
    let local = tiny_engine();
    let stats = submit_jobs(&sock, &local, &jobs).expect("batch succeeds");
    assert_eq!(stats.executed, jobs.len() as u64);

    let usage = host.engine().store().expect("store attached").usage();
    assert_eq!(
        (usage.entries, usage.artifacts),
        (0, 0),
        "post-batch GC must enforce the cap"
    );
    // The BatchDone store line reflects post-GC occupancy.
    let line = stats.store.expect("store line present");
    assert_eq!(line.entries, 0);

    handle.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_handshakes_are_typed_refusals() {
    let dir = scratch("handshake");
    let sock = dir.join("daemon.sock");
    let (host, handle) = spawn_daemon(tiny_engine(), &sock, None);
    let fingerprint = host.fingerprint();

    match Client::connect(&sock, SCHEMA_VERSION + 1, fingerprint) {
        Err(ClientError::Daemon { code, .. }) => assert_eq!(code, ErrorCode::SchemaMismatch),
        Err(other) => panic!("schema mismatch must be a typed refusal, got {other:?}"),
        Ok(_) => panic!("schema mismatch must not connect"),
    }
    match Client::connect(&sock, SCHEMA_VERSION, fingerprint ^ 1) {
        Err(ClientError::Daemon { code, .. }) => assert_eq!(code, ErrorCode::ConfigMismatch),
        Err(other) => panic!("config mismatch must be a typed refusal, got {other:?}"),
        Ok(_) => panic!("config mismatch must not connect"),
    }
    // The daemon is not poisoned: a correct handshake still succeeds.
    Client::connect(&sock, SCHEMA_VERSION, fingerprint).expect("valid handshake accepted");

    handle.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_traffic_gets_typed_errors_and_never_poisons() {
    let dir = scratch("malformed");
    let sock = dir.join("daemon.sock");
    let (host, handle) = spawn_daemon(tiny_engine(), &sock, None);
    let fingerprint = host.fingerprint();

    // A frame that decodes to garbage (valid envelope, junk payload):
    // the daemon answers with a typed Error frame, not a hangup.
    {
        use std::os::unix::net::UnixStream;
        let mut stream = UnixStream::connect(&sock).expect("connect");
        confluence_store::write_frame(&mut stream, &[0xFF, 0x01, 0x02]).expect("send junk");
        match protocol::recv(&mut stream) {
            Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::MalformedFrame),
            other => panic!("junk frame must earn a typed error, got {other:?}"),
        }
    }

    // A well-formed frame protocol carrying an undecodable job payload.
    {
        let mut client = Client::connect(&sock, SCHEMA_VERSION, fingerprint).expect("handshake");
        match client.submit(1, vec![b"not a job".to_vec()]) {
            Err(ClientError::Daemon { code, .. }) => assert_eq!(code, ErrorCode::MalformedJob),
            other => panic!("bad job payload must be a typed error, got {other:?}"),
        }
    }

    // A client that submits a batch and vanishes without reading.
    {
        use std::os::unix::net::UnixStream;
        let mut stream = UnixStream::connect(&sock).expect("connect");
        protocol::send(
            &mut stream,
            &Frame::Hello {
                proto: protocol::PROTO_VERSION,
                schema: SCHEMA_VERSION,
                fingerprint,
            },
        )
        .expect("hello");
        assert!(matches!(
            protocol::recv(&mut stream),
            Ok(Frame::HelloAck { .. })
        ));
        let payloads = tiny_jobs().iter().map(Encode::to_bytes).collect();
        protocol::send(
            &mut stream,
            &Frame::SubmitBatch {
                batch_id: 9,
                jobs: payloads,
            },
        )
        .expect("submit");
        drop(stream); // gone before a single result frame is read
    }

    // After all of that, an honest client still gets full service and
    // exactly-once totals hold.
    let jobs = tiny_jobs();
    let local = tiny_engine();
    submit_jobs(&sock, &local, &jobs).expect("daemon survives hostile clients");
    let expected = reference_outputs(&jobs);
    let outputs: Vec<Vec<u8>> = jobs.iter().map(|j| local.output(j).to_bytes()).collect();
    assert_eq!(outputs, expected);

    handle.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
