//! The [`Encode`]/[`Decode`] traits of the hand-rolled versioned binary
//! codec, plus impls for the primitives every schema is built from.
//!
//! The conventions are deliberately minimal and stable:
//!
//! - integers (`u32`/`u64`/`usize`) are LEB128 varints;
//! - `bool` is one byte, `0` or `1` (anything else is a decode error);
//! - `f64` is its fixed-width IEEE-754 bit pattern (bit-exact);
//! - `str` is a varint-length-prefixed UTF-8 byte string;
//! - `Vec<T>` is a varint count followed by its elements;
//! - enums are a 1-byte tag followed by the variant's fields (tags are
//!   assigned by each schema and pinned by golden-bytes tests).
//!
//! Schema evolution is by versioning, not negotiation: a type's encoding
//! never changes in place — consumers bump their schema version (see
//! `ResultStore`) and old entries are simply left behind. The one
//! sanctioned in-place evolution is a **tail extension**: a type that
//! always sits in tail position of its schema's top-level values may
//! append fields that encode to nothing at their defaults (decode treats
//! buffer exhaustion as "all defaults"), leaving every previously
//! written key and entry byte-identical — see `CoverageOptions` in
//! `confluence_sim::codec` for the pattern and its invariants.

use crate::wire::{self, Reader, WireError};

/// A value that can be written to the wire.
pub trait Encode {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// This value's encoding as a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// A value that can be read back from the wire.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// Errors on truncated input, unknown tags, or malformed fields.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Decodes a buffer that must contain exactly one value.
    ///
    /// # Errors
    ///
    /// Errors as [`Decode::decode`] does, or if trailing bytes remain.
    fn from_bytes(data: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(data);
        let value = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(r.error("trailing bytes after value"));
        }
        Ok(value)
    }
}

impl Encode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, *self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.varint()
    }
}

impl Encode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, u64::from(*self));
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let start = r.offset();
        u32::try_from(r.varint()?).map_err(|_| WireError {
            offset: start,
            reason: "varint overflows u32",
        })
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_usize(out, *self);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.usize_varint()
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let start = r.offset();
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError {
                offset: start,
                reason: "invalid bool byte",
            }),
        }
    }
}

impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_f64(out, *self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.f64_bits()
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_length_prefixed(out, self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let start = r.offset();
        let bytes = r.length_prefixed()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError {
                offset: start,
                reason: "invalid UTF-8 in string",
            })
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_usize(out, self.len());
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.usize_varint()?;
        // Guard the allocation against garbled counts: a buffer holding
        // `len` items is at least `len` bytes long.
        if len > r.remaining() {
            return Err(r.error("element count exceeds buffer"));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(u32::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(-0.0f64);
        roundtrip(f64::NAN.to_bits() as f64);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip((7usize, 3.5f64));
        roundtrip(String::new());
        roundtrip("schema mismatch: daemon is v2".to_string());
    }

    #[test]
    fn invalid_utf8_string_errors() {
        let mut bytes = Vec::new();
        wire::put_length_prefixed(&mut bytes, &[0xFF, 0xFE]);
        assert_eq!(
            String::from_bytes(&bytes).unwrap_err().reason,
            "invalid UTF-8 in string"
        );
    }

    #[test]
    fn nan_bits_survive() {
        let bytes = f64::NAN.to_bytes();
        let back = f64::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn invalid_bool_errors() {
        assert_eq!(
            bool::from_bytes(&[2]).unwrap_err().reason,
            "invalid bool byte"
        );
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = 5u64.to_bytes();
        bytes.push(0);
        assert!(u64::from_bytes(&bytes)
            .unwrap_err()
            .to_string()
            .contains("trailing"));
    }

    #[test]
    fn garbled_vec_count_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        wire::put_varint(&mut bytes, u64::MAX / 2);
        assert!(Vec::<u64>::from_bytes(&bytes).is_err());
    }
}
