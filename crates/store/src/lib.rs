//! Persistent content-addressed result store for the Confluence
//! reproduction.
//!
//! Three layers, lowest first:
//!
//! - [`wire`] — shared framing primitives (varints, length prefixes,
//!   fixed-width integers, FNV-1a), also used by the trace serializer;
//! - [`Encode`]/[`Decode`] — the hand-rolled versioned binary codec
//!   traits, with impls for primitives and containers (schemas for
//!   domain types live next to those types, e.g. `confluence_sim`'s job
//!   codec);
//! - [`ResultStore`] — one verified file per key under
//!   `<dir>/v<schema>/<key-hash>.bin`, written atomically, with
//!   corruption demoted to a cache miss.
//!
//! Everything here assumes results are pure functions of their keys:
//! there is no invalidation protocol, only schema versioning.

#![warn(missing_docs)]

mod codec;
mod store;
pub mod wire;

pub use codec::{Decode, Encode};
pub use store::{verify_entry, GcStats, ResultStore, StoreUsage, Tier};
pub use wire::{read_frame, write_frame, FrameError, Reader, WireError};
