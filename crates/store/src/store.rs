//! The persistent content-addressed result store.
//!
//! One entry per key, one file per entry, under
//! `<dir>/v<schema>/<fnv64-of-key>.bin`. Results must be a pure function
//! of their key: the store never invalidates, it only segregates by
//! schema version. Every read is fully verified — checksum, header, and
//! an exact comparison of the embedded key bytes against the probe key —
//! so truncated, garbled, or hash-colliding entries behave like misses
//! and are later overwritten by a fresh [`ResultStore::save`].
//!
//! Entry layout (all integers little-endian, lengths LEB128):
//!
//! ```text
//! magic   b"CFRS"
//! u8      container version (1)
//! u32     caller schema version
//! bytes   key   (varint length + encoded key)
//! bytes   value (varint length + encoded value)
//! u64     FNV-1a checksum of every preceding byte
//! ```
//!
//! Writes go to a process+sequence-unique `.tmp` sibling and are
//! `rename`d into place, so concurrent writers (threads or processes)
//! leave either the old entry or a complete new one, never a torn file.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{Decode, Encode};
use crate::wire::{self, Reader};

const MAGIC: [u8; 4] = *b"CFRS";
const CONTAINER_VERSION: u8 = 1;
/// magic + container version + schema + trailing checksum.
const MIN_ENTRY_LEN: usize = 4 + 1 + 4 + 8;
/// File extension of the result tier.
const RESULT_EXT: &str = "bin";
/// File extension of the warm-artifact tier (persisted execution warmth —
/// e.g. converged path-memo tables — as opposed to job results). Same
/// container, same verification, same atomicity; a separate extension so
/// the two tiers are accounted for distinctly while GC sweeps both.
const ARTIFACT_EXT: &str = "art";

/// Which of the store's two on-disk tiers an operation addresses:
/// `.bin` job results or `.art` warm-execution artifacts. Raw-bytes
/// operations ([`ResultStore::load_raw`], [`ResultStore::adopt_raw`])
/// name the tier explicitly; the typed paths have one method per tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The `.bin` result tier.
    Result,
    /// The `.art` warm-artifact tier.
    Artifact,
}

impl Tier {
    fn ext(self) -> &'static str {
        match self {
            Tier::Result => RESULT_EXT,
            Tier::Artifact => ARTIFACT_EXT,
        }
    }
}

/// A persistent, content-addressed map from encoded keys to encoded
/// values, safe for concurrent use from multiple threads and processes.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    schema: u32,
    tmp_seq: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) the store under `dir`, scoped to
    /// `schema`. Entries written under other schema versions are
    /// invisible.
    ///
    /// # Errors
    ///
    /// Errors if the versioned directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, schema: u32) -> io::Result<ResultStore> {
        let root = dir.into().join(format!("v{schema}"));
        fs::create_dir_all(&root)?;
        Ok(ResultStore {
            root,
            schema,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The schema version this store was opened with.
    pub fn schema(&self) -> u32 {
        self.schema
    }

    /// The versioned directory entries live in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file an entry for `key` lives at (whether or not it exists).
    pub fn entry_path(&self, key: &impl Encode) -> PathBuf {
        self.path_for(&key.to_bytes(), RESULT_EXT)
    }

    /// The file a warm artifact for `key` lives at (whether or not it
    /// exists).
    pub fn artifact_path(&self, key: &impl Encode) -> PathBuf {
        self.path_for(&key.to_bytes(), ARTIFACT_EXT)
    }

    fn path_for(&self, key_bytes: &[u8], ext: &str) -> PathBuf {
        self.root
            .join(format!("{:016x}.{ext}", wire::fnv1a(key_bytes)))
    }

    /// Looks up `key`, returning its decoded value. Any failure — missing
    /// file, bad checksum, wrong schema, foreign key in the slot, decode
    /// error — is a miss (`None`): a corrupt entry must never be trusted,
    /// and the caller's re-computation will overwrite it.
    pub fn load<V: Decode>(&self, key: &impl Encode) -> Option<V> {
        self.load_at(key, RESULT_EXT)
    }

    /// Looks up `key` in the warm-artifact tier, with exactly the
    /// verification (and miss semantics) of [`ResultStore::load`].
    pub fn load_artifact<V: Decode>(&self, key: &impl Encode) -> Option<V> {
        self.load_at(key, ARTIFACT_EXT)
    }

    fn load_at<V: Decode>(&self, key: &impl Encode, ext: &str) -> Option<V> {
        let key_bytes = key.to_bytes();
        let data = fs::read(self.path_for(&key_bytes, ext)).ok()?;
        parse_entry(&data, self.schema, &key_bytes)
    }

    /// Writes `key -> value`, replacing any previous entry (including a
    /// corrupt one) atomically.
    ///
    /// # Errors
    ///
    /// Errors if the temporary file cannot be written or renamed into
    /// place. The previous entry, if any, is untouched on error.
    pub fn save(&self, key: &impl Encode, value: &impl Encode) -> io::Result<()> {
        self.save_at(key, value, RESULT_EXT)
    }

    /// Writes `key -> value` into the warm-artifact tier, with exactly
    /// the framing and atomicity of [`ResultStore::save`].
    ///
    /// # Errors
    ///
    /// As [`ResultStore::save`].
    pub fn save_artifact(&self, key: &impl Encode, value: &impl Encode) -> io::Result<()> {
        self.save_at(key, value, ARTIFACT_EXT)
    }

    fn save_at(&self, key: &impl Encode, value: &impl Encode, ext: &str) -> io::Result<()> {
        let key_bytes = key.to_bytes();
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC);
        body.push(CONTAINER_VERSION);
        wire::put_u32_le(&mut body, self.schema);
        wire::put_length_prefixed(&mut body, &key_bytes);
        wire::put_length_prefixed(&mut body, &value.to_bytes());
        let checksum = wire::fnv1a(&body);
        wire::put_u64_le(&mut body, checksum);
        self.write_atomic(&self.path_for(&key_bytes, ext), &body)
    }

    fn write_atomic(&self, final_path: &Path, body: &[u8]) -> io::Result<()> {
        let tmp_path = final_path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        // On any failure, sweep the partial tmp file so aborted saves
        // (full disk, revoked permissions) don't accumulate strays.
        fs::write(&tmp_path, body)
            .and_then(|()| fs::rename(&tmp_path, final_path))
            .inspect_err(|_| {
                let _ = fs::remove_file(&tmp_path);
            })
    }

    /// Looks up `key_bytes` in `tier` and returns the *entire verified
    /// entry file* — container framing included — for transport to
    /// another store. The buffer passes the full read verification
    /// (checksum, header, schema, exact key match) before it is handed
    /// out, so a serving peer never ships a corrupt entry; any defect is
    /// a miss. The receiving side re-verifies via
    /// [`ResultStore::adopt_raw`].
    pub fn load_raw(&self, key_bytes: &[u8], tier: Tier) -> Option<Vec<u8>> {
        let data = fs::read(self.path_for(key_bytes, tier.ext())).ok()?;
        verify_entry(&data, self.schema, key_bytes)?;
        Some(data)
    }

    /// Installs a whole entry buffer fetched from a remote store into
    /// `tier`, re-verifying every byte first: checksum, magic, container
    /// version, schema, an exact match of the embedded key against
    /// `key_bytes`, and full consumption. Returns `false` — and writes
    /// nothing — if the buffer fails verification (a lying or corrupt
    /// peer demotes to a miss, never poisons) or if the atomic write
    /// fails. On `true` the entry is durably in place and a subsequent
    /// typed load will see it.
    pub fn adopt_raw(&self, key_bytes: &[u8], data: &[u8], tier: Tier) -> bool {
        if verify_entry(data, self.schema, key_bytes).is_none() {
            return false;
        }
        self.write_atomic(&self.path_for(key_bytes, tier.ext()), data)
            .is_ok()
    }

    /// Per-tier entry counts and bytes on disk for this schema version,
    /// in one directory pass (the first slice of store GC: knowing what a
    /// wipe would reclaim). Counts only committed `.bin` result entries
    /// and `.art` warm artifacts, never in-flight `.tmp` files, so
    /// concurrent writers don't perturb the figures.
    pub fn usage(&self) -> StoreUsage {
        let Ok(dir) = fs::read_dir(&self.root) else {
            return StoreUsage::default();
        };
        let mut usage = StoreUsage::default();
        for e in dir.filter_map(|e| e.ok()) {
            let path = e.path();
            let Some(ext) = path.extension() else {
                continue;
            };
            let len = e.metadata().map(|m| m.len()).unwrap_or(0);
            if ext == RESULT_EXT {
                usage.entries += 1;
                usage.bytes += len;
            } else if ext == ARTIFACT_EXT {
                usage.artifacts += 1;
                usage.artifact_bytes += len;
            }
        }
        usage
    }

    /// Number of result entries currently on disk for this schema version.
    pub fn len(&self) -> usize {
        self.usage().entries
    }

    /// True when no result entries exist for this schema version.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes on disk for this schema version, across both tiers —
    /// the figure [`ResultStore::evict_to_cap`] caps.
    pub fn size_bytes(&self) -> u64 {
        let usage = self.usage();
        usage.bytes + usage.artifact_bytes
    }

    /// Garbage-collects the store down to `cap_bytes`, deleting
    /// oldest-modified files first (save refreshes an entry's mtime, so
    /// "oldest" means least-recently *written*, the store's best proxy
    /// for cold). Both tiers — result entries and warm artifacts — count
    /// against the cap and age out of one interleaved oldest-first order,
    /// so `--store-cap-bytes` is a true bound on what the store occupies.
    /// Ties break on file name for cross-run determinism.
    ///
    /// Best-effort like every other maintenance path: an entry that
    /// cannot be statted or removed (swept by a concurrent GC, perms) is
    /// skipped, never fatal — an over-cap store costs disk, not
    /// correctness, and the next batch's GC pass retries. Evicted entries
    /// behave exactly like misses: the jobs re-execute and re-warm the
    /// store on next demand.
    pub fn evict_to_cap(&self, cap_bytes: u64) -> GcStats {
        let Ok(dir) = fs::read_dir(&self.root) else {
            return GcStats::default();
        };
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = dir
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.path()
                    .extension()
                    .is_some_and(|x| x == RESULT_EXT || x == ARTIFACT_EXT)
            })
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                Some((meta.modified().ok()?, e.path(), meta.len()))
            })
            .collect();
        let mut total: u64 = entries.iter().map(|(_, _, len)| len).sum();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        let mut stats = GcStats::default();
        for (_, path, len) in entries {
            if total <= cap_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                stats.evicted_entries += 1;
                stats.evicted_bytes += len;
                total -= len;
            }
        }
        stats
    }
}

/// What one [`ResultStore::evict_to_cap`] pass reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Entry files deleted.
    pub evicted_entries: usize,
    /// Their total size in bytes.
    pub evicted_bytes: u64,
}

/// On-disk accounting of one schema version, split by tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreUsage {
    /// Committed result entry files.
    pub entries: usize,
    /// Their total size in bytes.
    pub bytes: u64,
    /// Committed warm-artifact files.
    pub artifacts: usize,
    /// Their total size in bytes.
    pub artifact_bytes: u64,
}

/// Verifies one entry buffer's container framing — trailing checksum,
/// magic, container version, `schema`, an exact match of the embedded
/// key against `key_bytes`, and full consumption — returning the
/// embedded value bytes. `None` on any defect. This is the whole of the
/// store's read-side trust decision; typed loads decode the returned
/// slice, raw transport ([`ResultStore::load_raw`] /
/// [`ResultStore::adopt_raw`]) ships the verified buffer as-is.
pub fn verify_entry<'a>(data: &'a [u8], schema: u32, key_bytes: &[u8]) -> Option<&'a [u8]> {
    if data.len() < MIN_ENTRY_LEN {
        return None;
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let stored_checksum = u64::from_le_bytes(tail.try_into().unwrap());
    if wire::fnv1a(body) != stored_checksum {
        return None;
    }
    let mut r = Reader::new(body);
    if r.bytes(4).ok()? != MAGIC {
        return None;
    }
    if r.u8().ok()? != CONTAINER_VERSION {
        return None;
    }
    if r.u32_le().ok()? != schema {
        return None;
    }
    if r.length_prefixed().ok()? != key_bytes {
        return None;
    }
    let value_bytes = r.length_prefixed().ok()?;
    if !r.is_empty() {
        return None;
    }
    Some(value_bytes)
}

/// Verifies and decodes one entry buffer; `None` on any defect.
fn parse_entry<V: Decode>(data: &[u8], schema: u32, key_bytes: &[u8]) -> Option<V> {
    V::from_bytes(verify_entry(data, schema, key_bytes)?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A fresh store directory per test (same process, distinct names).
    struct TestDir(PathBuf);

    impl TestDir {
        fn new() -> TestDir {
            let path = std::env::temp_dir().join(format!(
                "confluence-store-unit-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&path);
            TestDir(path)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn save_then_load_roundtrips() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        store.save(&7u64, &vec![1u64, 2, 3]).unwrap();
        assert_eq!(store.load::<Vec<u64>>(&7u64), Some(vec![1, 2, 3]));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn size_bytes_tracks_entry_files_exactly() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        assert_eq!(store.size_bytes(), 0);
        store.save(&1u64, &vec![1u64, 2, 3]).unwrap();
        store.save(&2u64, &vec![4u64]).unwrap();
        let expected: u64 = fs::read_dir(store.root())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(expected > 0);
        assert_eq!(store.size_bytes(), expected);
        assert_eq!(store.len(), 2);
        // Overwriting a key must not double-count its bytes.
        store.save(&2u64, &vec![4u64]).unwrap();
        assert_eq!(store.size_bytes(), expected);
        // A stray tmp file (in-flight writer) is not an entry.
        fs::write(store.root().join("deadbeef.tmp.1.2"), b"partial").unwrap();
        assert_eq!(store.size_bytes(), expected);
        assert_eq!(
            store.usage(),
            StoreUsage {
                entries: 2,
                bytes: expected,
                artifacts: 0,
                artifact_bytes: 0,
            },
            "usage must report both figures from one pass"
        );
    }

    #[test]
    fn artifact_tier_roundtrips_and_is_accounted_separately() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        store.save(&7u64, &vec![1u64, 2]).unwrap();
        store.save_artifact(&7u64, &vec![9u64, 8, 7]).unwrap();
        // Same key, two tiers, two files — neither shadows the other.
        assert_eq!(store.load::<Vec<u64>>(&7u64), Some(vec![1, 2]));
        assert_eq!(store.load_artifact::<Vec<u64>>(&7u64), Some(vec![9, 8, 7]));
        assert_ne!(store.entry_path(&7u64), store.artifact_path(&7u64));
        let usage = store.usage();
        assert_eq!((usage.entries, usage.artifacts), (1, 1));
        assert!(usage.artifact_bytes > 0);
        assert_eq!(store.size_bytes(), usage.bytes + usage.artifact_bytes);
        // `len`/`is_empty` speak about results only.
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn corrupt_artifact_is_a_miss_and_a_save_repairs_it() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        store.save_artifact(&3u64, &0xFEEDu64).unwrap();
        let path = store.artifact_path(&3u64);
        let clean = fs::read(&path).unwrap();
        // Truncations and bit flips both demote to a miss.
        fs::write(&path, &clean[..clean.len() / 2]).unwrap();
        assert_eq!(store.load_artifact::<u64>(&3u64), None);
        let mut garbled = clean.clone();
        garbled[clean.len() / 2] ^= 0x40;
        fs::write(&path, &garbled).unwrap();
        assert_eq!(store.load_artifact::<u64>(&3u64), None);
        store.save_artifact(&3u64, &0xFEEDu64).unwrap();
        assert_eq!(store.load_artifact::<u64>(&3u64), Some(0xFEED));
        assert_eq!(fs::read(&path).unwrap(), clean);
    }

    #[test]
    fn gc_cap_spans_both_tiers_oldest_first() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        // Interleave the tiers oldest→newest: result 0, artifact 1,
        // result 2, artifact 3 (distinct mtimes as in the result-only GC
        // test).
        for k in 0..4u64 {
            if k % 2 == 0 {
                store.save(&k, &vec![k; 8]).unwrap();
            } else {
                store.save_artifact(&k, &vec![k; 8]).unwrap();
            }
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        let total = store.size_bytes();
        let entry_len = fs::metadata(store.entry_path(&0u64)).unwrap().len();
        // Room for everything but the two oldest files (one per tier).
        let cap = total - 2 * entry_len + entry_len / 2;
        let gc = store.evict_to_cap(cap);
        assert_eq!(gc.evicted_entries, 2, "cap must evict across both tiers");
        assert!(store.size_bytes() <= cap, "cap must bound both tiers");
        assert_eq!(store.load::<Vec<u64>>(&0u64), None, "oldest result goes");
        assert_eq!(
            store.load_artifact::<Vec<u64>>(&1u64),
            None,
            "oldest artifact goes"
        );
        assert!(store.load::<Vec<u64>>(&2u64).is_some());
        assert!(store.load_artifact::<Vec<u64>>(&3u64).is_some());
        // Cap zero clears artifacts too.
        store.evict_to_cap(0);
        assert_eq!(store.usage(), StoreUsage::default());
    }

    #[test]
    fn missing_key_is_none() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        assert_eq!(store.load::<u64>(&1u64), None);
        assert!(store.is_empty());
    }

    #[test]
    fn overwrite_replaces_the_value() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        store.save(&1u64, &10u64).unwrap();
        store.save(&1u64, &20u64).unwrap();
        assert_eq!(store.load::<u64>(&1u64), Some(20));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn schema_versions_are_segregated() {
        let dir = TestDir::new();
        let v1 = ResultStore::open(&dir.0, 1).unwrap();
        let v2 = ResultStore::open(&dir.0, 2).unwrap();
        v1.save(&1u64, &10u64).unwrap();
        assert_eq!(v2.load::<u64>(&1u64), None);
        assert_eq!(v1.load::<u64>(&1u64), Some(10));
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        store.save(&1u64, &10u64).unwrap();
        let path = store.entry_path(&1u64);
        let bytes = fs::read(&path).unwrap();
        for keep in 0..bytes.len() {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert_eq!(store.load::<u64>(&1u64), None, "kept {keep} bytes");
        }
    }

    #[test]
    fn every_single_bit_flip_is_a_miss() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        store.save(&3u64, &0xABCDu64).unwrap();
        let path = store.entry_path(&3u64);
        let clean = fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut garbled = clean.clone();
                garbled[byte] ^= 1 << bit;
                fs::write(&path, &garbled).unwrap();
                assert_eq!(
                    store.load::<u64>(&3u64),
                    None,
                    "flip of byte {byte} bit {bit} must not be trusted"
                );
            }
        }
        // And a fresh save repairs the slot.
        store.save(&3u64, &0xABCDu64).unwrap();
        assert_eq!(store.load::<u64>(&3u64), Some(0xABCD));
    }

    #[test]
    fn foreign_key_in_the_slot_is_a_miss() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        store.save(&1u64, &10u64).unwrap();
        // Simulate an FNV collision: move the entry into another key's slot.
        let other_path = store.entry_path(&2u64);
        fs::rename(store.entry_path(&1u64), other_path).unwrap();
        assert_eq!(store.load::<u64>(&2u64), None);
    }

    #[test]
    fn gc_caps_the_store_evicting_oldest_first_and_rewarming_works() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        // Distinct mtimes oldest→newest (coarse-mtime filesystems would
        // otherwise collapse the order; ties then break by hash name,
        // which this test cannot pin).
        for k in 0..6u64 {
            store.save(&k, &vec![k; 8]).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        let entry_len = std::fs::metadata(store.entry_path(&0u64)).unwrap().len();
        let cap = entry_len * 3 + entry_len / 2; // room for exactly 3
        let gc = store.evict_to_cap(cap);
        assert_eq!(gc.evicted_entries, 3);
        assert_eq!(gc.evicted_bytes, entry_len * 3);
        assert!(store.size_bytes() <= cap, "store must respect the cap");
        for k in 0..3u64 {
            assert_eq!(store.load::<Vec<u64>>(&k), None, "oldest {k} must go");
        }
        for k in 3..6u64 {
            assert!(store.load::<Vec<u64>>(&k).is_some(), "newest {k} must stay");
        }

        // A satisfied cap is a no-op...
        assert_eq!(store.evict_to_cap(cap), GcStats::default());
        // ...and evicted keys re-warm like any miss, then age out again.
        store.save(&0u64, &vec![0u64; 8]).unwrap();
        assert!(store.load::<Vec<u64>>(&0u64).is_some());
        let gc = store.evict_to_cap(cap);
        assert_eq!(gc.evicted_entries, 1, "re-warming must re-enter the cap");
        assert!(store.size_bytes() <= cap);
    }

    #[test]
    fn gc_cap_zero_empties_the_store() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        for k in 0..4u64 {
            store.save(&k, &k).unwrap();
        }
        let before = store.size_bytes();
        let gc = store.evict_to_cap(0);
        assert_eq!(gc.evicted_entries, 4);
        assert_eq!(gc.evicted_bytes, before);
        assert!(store.is_empty());
    }

    #[test]
    fn load_raw_ships_the_verified_entry_and_adopt_raw_installs_it() {
        let src_dir = TestDir::new();
        let dst_dir = TestDir::new();
        let src = ResultStore::open(&src_dir.0, 1).unwrap();
        let dst = ResultStore::open(&dst_dir.0, 1).unwrap();
        src.save(&7u64, &vec![1u64, 2, 3]).unwrap();
        src.save_artifact(&7u64, &vec![9u64]).unwrap();

        let key = 7u64.to_bytes();
        let raw = src.load_raw(&key, Tier::Result).unwrap();
        assert_eq!(raw, fs::read(src.entry_path(&7u64)).unwrap());
        assert!(dst.adopt_raw(&key, &raw, Tier::Result));
        assert_eq!(dst.load::<Vec<u64>>(&7u64), Some(vec![1, 2, 3]));

        let art = src.load_raw(&key, Tier::Artifact).unwrap();
        assert!(dst.adopt_raw(&key, &art, Tier::Artifact));
        assert_eq!(dst.load_artifact::<Vec<u64>>(&7u64), Some(vec![9]));
        assert_eq!(src.load_raw(&8u64.to_bytes(), Tier::Result), None);
    }

    #[test]
    fn load_raw_never_ships_a_corrupt_entry() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        store.save(&3u64, &0xABCDu64).unwrap();
        let key = 3u64.to_bytes();
        let path = store.entry_path(&3u64);
        let clean = fs::read(&path).unwrap();
        let mut garbled = clean.clone();
        garbled[clean.len() / 2] ^= 0x10;
        fs::write(&path, &garbled).unwrap();
        assert_eq!(store.load_raw(&key, Tier::Result), None);
        fs::write(&path, &clean[..clean.len() - 3]).unwrap();
        assert_eq!(store.load_raw(&key, Tier::Result), None);
    }

    #[test]
    fn adopt_raw_rejects_every_defect_without_writing() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        let donor = TestDir::new();
        let src = ResultStore::open(&donor.0, 1).unwrap();
        src.save(&5u64, &0xBEEFu64).unwrap();
        let key = 5u64.to_bytes();
        let clean = src.load_raw(&key, Tier::Result).unwrap();

        // Every single-bit flip of a fetched entry must be refused.
        for byte in 0..clean.len() {
            let mut garbled = clean.clone();
            garbled[byte] ^= 0x01;
            assert!(
                !store.adopt_raw(&key, &garbled, Tier::Result),
                "flipped byte {byte} must not be adopted"
            );
        }
        // Truncations, garbage, and a foreign key likewise.
        assert!(!store.adopt_raw(&key, &clean[..clean.len() / 2], Tier::Result));
        assert!(!store.adopt_raw(&key, b"not an entry", Tier::Result));
        assert!(!store.adopt_raw(&6u64.to_bytes(), &clean, Tier::Result));
        assert_eq!(store.usage(), StoreUsage::default(), "nothing written");
        // The clean buffer under the right key is adopted.
        assert!(store.adopt_raw(&key, &clean, Tier::Result));
        assert_eq!(store.load::<u64>(&5u64), Some(0xBEEF));
    }

    #[test]
    fn adopt_raw_rejects_cross_schema_entries() {
        let dir = TestDir::new();
        let v1 = ResultStore::open(&dir.0, 1).unwrap();
        let v2 = ResultStore::open(&dir.0, 2).unwrap();
        v1.save(&1u64, &10u64).unwrap();
        let key = 1u64.to_bytes();
        let raw = v1.load_raw(&key, Tier::Result).unwrap();
        assert!(
            !v2.adopt_raw(&key, &raw, Tier::Result),
            "a v1 entry must not enter a v2 store"
        );
    }

    #[test]
    fn no_tmp_files_survive_a_save() {
        let dir = TestDir::new();
        let store = ResultStore::open(&dir.0, 1).unwrap();
        for k in 0..16u64 {
            store.save(&k, &(k * 2)).unwrap();
        }
        let stray: Vec<_> = fs::read_dir(store.root())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_none_or(|x| x != "bin"))
            .collect();
        assert!(stray.is_empty(), "stray files: {stray:?}");
    }
}
