//! Low-level wire primitives shared by every binary codec in the
//! workspace: fixed-width little-endian integers, LEB128 varints,
//! length-prefixed byte strings, and the FNV-1a checksum.
//!
//! Writers are free functions over `Vec<u8>`; reads go through [`Reader`],
//! an offset-tracking cursor whose errors ([`WireError`]) name the byte
//! where decoding failed. The trace serializer
//! (`confluence_trace::serialize`) and the result-store codec are both
//! built on these helpers, so framing bugs get fixed in one place.

use std::error::Error;
use std::fmt;

/// Error returned when decoding a malformed buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode failed at byte {}: {}", self.offset, self.reason)
    }
}

impl Error for WireError {}

/// Offset-tracking read cursor over a byte buffer.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Current byte offset from the start of the buffer.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// A [`WireError`] at the current offset.
    pub fn error(&self, reason: &'static str) -> WireError {
        WireError {
            offset: self.pos,
            reason,
        }
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Errors if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.error("truncated"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Errors if the buffer is exhausted.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a fixed-width little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Errors if fewer than 4 bytes remain.
    pub fn u32_le(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a fixed-width little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Errors if fewer than 8 bytes remain.
    pub fn u64_le(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` stored as its IEEE-754 bit pattern (bit-exact,
    /// which is what makes stored results byte-identical to fresh ones).
    ///
    /// # Errors
    ///
    /// Errors if fewer than 8 bytes remain.
    pub fn f64_bits(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64_le()?))
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// Errors on truncation or a value that overflows 64 bits.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8().map_err(|_| WireError {
                offset: start,
                reason: "truncated varint",
            })?;
            let chunk = (byte & 0x7F) as u64;
            if shift == 63 && chunk > 1 {
                return Err(WireError {
                    offset: start,
                    reason: "varint overflows u64",
                });
            }
            value |= chunk << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(WireError {
            offset: start,
            reason: "varint overflows u64",
        })
    }

    /// Reads a varint that must fit a `usize`.
    ///
    /// # Errors
    ///
    /// Errors on truncation, overflow, or a value wider than `usize`.
    pub fn usize_varint(&mut self) -> Result<usize, WireError> {
        let start = self.pos;
        usize::try_from(self.varint()?).map_err(|_| WireError {
            offset: start,
            reason: "varint overflows usize",
        })
    }

    /// Reads a varint-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Errors if the prefix is malformed or the body is truncated.
    pub fn length_prefixed(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.usize_varint()?;
        self.bytes(len)
    }
}

/// Appends a fixed-width little-endian `u32`.
pub fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a fixed-width little-endian `u64`.
pub fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64_le(out, v.to_bits());
}

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a `usize` as a varint.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_varint(out, v as u64);
}

/// Appends a varint-length-prefixed byte string.
pub fn put_length_prefixed(out: &mut Vec<u8>, bytes: &[u8]) {
    put_usize(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// 64-bit FNV-1a over `data` — the store's key hash and entry checksum.
/// Not cryptographic; collisions are tolerated because entries embed the
/// full key and are compared before use.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_boundary_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v, "value {v}");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_is_minimal_for_small_values() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 127);
        assert_eq!(buf, vec![127]);
        buf.clear();
        put_varint(&mut buf, 128);
        assert_eq!(buf, vec![0x80, 0x01]);
    }

    #[test]
    fn truncated_varint_errors_at_its_start() {
        let err = Reader::new(&[0x80]).varint().unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.to_string().contains("truncated varint"));
    }

    #[test]
    fn overlong_varint_errors() {
        // 11 continuation bytes can never terminate inside 64 bits.
        let buf = [0xFF; 11];
        let err = Reader::new(&buf).varint().unwrap_err();
        assert!(err.to_string().contains("overflows"));
    }

    #[test]
    fn length_prefixed_roundtrips() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        put_length_prefixed(&mut buf, b"");
        let mut r = Reader::new(&buf);
        assert_eq!(r.length_prefixed().unwrap(), b"hello");
        assert_eq!(r.length_prefixed().unwrap(), b"");
        assert!(r.is_empty());
    }

    #[test]
    fn length_prefix_beyond_buffer_errors() {
        let mut buf = Vec::new();
        put_usize(&mut buf, 100);
        buf.extend_from_slice(b"short");
        assert!(Reader::new(&buf).length_prefixed().is_err());
    }

    #[test]
    fn fixed_width_reads_track_offsets() {
        let mut buf = Vec::new();
        put_u32_le(&mut buf, 0xDEAD_BEEF);
        put_u64_le(&mut buf, 42);
        put_f64(&mut buf, -0.5);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.offset(), 4);
        assert_eq!(r.u64_le().unwrap(), 42);
        assert_eq!(r.f64_bits().unwrap(), -0.5);
        assert!(r.is_empty());
        assert_eq!(r.u8().unwrap_err().reason, "truncated");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
