//! Low-level wire primitives shared by every binary codec in the
//! workspace: fixed-width little-endian integers, LEB128 varints,
//! length-prefixed byte strings, the FNV-1a checksum, and checksummed
//! stream frames.
//!
//! Writers are free functions over `Vec<u8>`; reads go through [`Reader`],
//! an offset-tracking cursor whose errors ([`WireError`]) name the byte
//! where decoding failed. The trace serializer
//! (`confluence_trace::serialize`), the result-store codec, and the
//! experiment-service frame protocol (`confluence_serve`) are all built
//! on these helpers, so framing bugs get fixed in one place.
//!
//! The stream half ([`write_frame`]/[`read_frame`]) wraps an opaque
//! payload in the envelope `u32 len | payload | u64 fnv1a(payload)` over
//! any `io::Read`/`io::Write`. A frame either arrives whole and verified
//! or fails with a typed [`FrameError`]; after a corrupt frame the stream
//! cannot be resynchronized and must be closed.

use std::error::Error;
use std::fmt;
use std::io;

/// Error returned when decoding a malformed buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode failed at byte {}: {}", self.offset, self.reason)
    }
}

impl Error for WireError {}

/// Offset-tracking read cursor over a byte buffer.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Current byte offset from the start of the buffer.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// A [`WireError`] at the current offset.
    pub fn error(&self, reason: &'static str) -> WireError {
        WireError {
            offset: self.pos,
            reason,
        }
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Errors if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.error("truncated"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Errors if the buffer is exhausted.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a fixed-width little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Errors if fewer than 4 bytes remain.
    pub fn u32_le(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a fixed-width little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Errors if fewer than 8 bytes remain.
    pub fn u64_le(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` stored as its IEEE-754 bit pattern (bit-exact,
    /// which is what makes stored results byte-identical to fresh ones).
    ///
    /// # Errors
    ///
    /// Errors if fewer than 8 bytes remain.
    pub fn f64_bits(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64_le()?))
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// Errors on truncation or a value that overflows 64 bits.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8().map_err(|_| WireError {
                offset: start,
                reason: "truncated varint",
            })?;
            let chunk = (byte & 0x7F) as u64;
            if shift == 63 && chunk > 1 {
                return Err(WireError {
                    offset: start,
                    reason: "varint overflows u64",
                });
            }
            value |= chunk << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(WireError {
            offset: start,
            reason: "varint overflows u64",
        })
    }

    /// Reads a varint that must fit a `usize`.
    ///
    /// # Errors
    ///
    /// Errors on truncation, overflow, or a value wider than `usize`.
    pub fn usize_varint(&mut self) -> Result<usize, WireError> {
        let start = self.pos;
        usize::try_from(self.varint()?).map_err(|_| WireError {
            offset: start,
            reason: "varint overflows usize",
        })
    }

    /// Reads a varint-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Errors if the prefix is malformed or the body is truncated.
    pub fn length_prefixed(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.usize_varint()?;
        self.bytes(len)
    }
}

/// Appends a fixed-width little-endian `u32`.
pub fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a fixed-width little-endian `u64`.
pub fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64_le(out, v.to_bits());
}

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a `usize` as a varint.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_varint(out, v as u64);
}

/// Appends a varint-length-prefixed byte string.
pub fn put_length_prefixed(out: &mut Vec<u8>, bytes: &[u8]) {
    put_usize(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// Why a stream frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended cleanly at a frame boundary (no bytes of a next
    /// frame had arrived) — the peer closed the connection.
    Closed,
    /// The underlying transport failed, including an EOF that cut a
    /// frame in half.
    Io(io::Error),
    /// The frame failed verification: an oversized length prefix or a
    /// checksum mismatch. The stream cannot be resynchronized past this.
    Corrupt(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "stream closed at a frame boundary"),
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::Corrupt(reason) => write!(f, "corrupt frame: {reason}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one stream frame: `u32 len | payload | u64 fnv1a(payload)`.
/// The checksum covers the payload only; the fixed-width length makes
/// the envelope self-delimiting without touching the payload's encoding.
///
/// # Errors
///
/// Errors if the transport rejects the write.
pub fn write_frame<W: io::Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&fnv1a(payload).to_le_bytes())?;
    w.flush()
}

/// Reads one stream frame written by [`write_frame`], returning its
/// verified payload. `max_len` bounds the length prefix so a garbled
/// (or hostile) peer cannot demand an arbitrary allocation.
///
/// # Errors
///
/// [`FrameError::Closed`] on a clean EOF between frames, [`FrameError::Io`]
/// on transport failure or mid-frame EOF, [`FrameError::Corrupt`] on an
/// oversized length or checksum mismatch.
pub fn read_frame<R: io::Read>(r: &mut R, max_len: u32) -> Result<Vec<u8>, FrameError> {
    let mut len_bytes = [0u8; 4];
    // Distinguish "peer closed between frames" from "frame cut short":
    // only a zero-byte first read is a clean close.
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > max_len {
        return Err(FrameError::Corrupt("frame length exceeds cap"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut checksum_bytes = [0u8; 8];
    r.read_exact(&mut checksum_bytes)?;
    if fnv1a(&payload) != u64::from_le_bytes(checksum_bytes) {
        return Err(FrameError::Corrupt("frame checksum mismatch"));
    }
    Ok(payload)
}

/// 64-bit FNV-1a over `data` — the store's key hash and entry checksum.
/// Not cryptographic; collisions are tolerated because entries embed the
/// full key and are compared before use.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_boundary_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v, "value {v}");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_is_minimal_for_small_values() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 127);
        assert_eq!(buf, vec![127]);
        buf.clear();
        put_varint(&mut buf, 128);
        assert_eq!(buf, vec![0x80, 0x01]);
    }

    #[test]
    fn truncated_varint_errors_at_its_start() {
        let err = Reader::new(&[0x80]).varint().unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.to_string().contains("truncated varint"));
    }

    #[test]
    fn overlong_varint_errors() {
        // 11 continuation bytes can never terminate inside 64 bits.
        let buf = [0xFF; 11];
        let err = Reader::new(&buf).varint().unwrap_err();
        assert!(err.to_string().contains("overflows"));
    }

    #[test]
    fn length_prefixed_roundtrips() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        put_length_prefixed(&mut buf, b"");
        let mut r = Reader::new(&buf);
        assert_eq!(r.length_prefixed().unwrap(), b"hello");
        assert_eq!(r.length_prefixed().unwrap(), b"");
        assert!(r.is_empty());
    }

    #[test]
    fn length_prefix_beyond_buffer_errors() {
        let mut buf = Vec::new();
        put_usize(&mut buf, 100);
        buf.extend_from_slice(b"short");
        assert!(Reader::new(&buf).length_prefixed().is_err());
    }

    #[test]
    fn fixed_width_reads_track_offsets() {
        let mut buf = Vec::new();
        put_u32_le(&mut buf, 0xDEAD_BEEF);
        put_u64_le(&mut buf, 42);
        put_f64(&mut buf, -0.5);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.offset(), 4);
        assert_eq!(r.u64_le().unwrap(), 42);
        assert_eq!(r.f64_bits().unwrap(), -0.5);
        assert!(r.is_empty());
        assert_eq!(r.u8().unwrap_err().reason, "truncated");
    }

    #[test]
    fn stream_frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"third frame").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"first");
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"");
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"third frame");
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Closed)));
    }

    #[test]
    fn truncated_stream_frame_is_io_not_closed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Every strict prefix that cuts into the frame is an I/O error
        // (mid-frame EOF), never a clean close and never a panic.
        for keep in 1..buf.len() {
            let mut r = std::io::Cursor::new(&buf[..keep]);
            assert!(
                matches!(read_frame(&mut r, 1024), Err(FrameError::Io(_))),
                "kept {keep} of {} bytes",
                buf.len()
            );
        }
    }

    #[test]
    fn every_frame_bit_flip_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"sensitive").unwrap();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut garbled = buf.clone();
                garbled[byte] ^= 1 << bit;
                let mut r = std::io::Cursor::new(&garbled);
                // A flip in the length prefix turns into a cap, EOF, or
                // checksum failure; a flip in payload or checksum fails
                // verification. None may yield the clean payload.
                match read_frame(&mut r, 64) {
                    Ok(payload) => {
                        panic!("flip byte {byte} bit {bit} returned {payload:?}")
                    }
                    Err(FrameError::Closed) => {
                        panic!("flip byte {byte} bit {bit} read as clean close")
                    }
                    Err(FrameError::Io(_) | FrameError::Corrupt(_)) => {}
                }
            }
        }
    }

    #[test]
    fn oversized_frame_length_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r, 1 << 20),
            Err(FrameError::Corrupt("frame length exceeds cap"))
        ));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
