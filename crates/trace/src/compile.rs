//! Compiled-program fast path: flattened basic-block streams.
//!
//! The reference [`Executor`] walks the [`Program`]'s `Vec<Bb>` and
//! re-interprets structure per record: it matches the `Term` enum, chases
//! boxed choice slices, re-derives the back-edge trip span from the taken
//! probability, steps fall-through chains block by block, and recomputes
//! `VAddr` offsets for every instruction. All of that is invariant for a
//! given program. Following the translate-once idea of DBT engines,
//! [`CompiledProgram`] folds it out in a single pass:
//!
//! * `pc_table` — every plain instruction's fetch address, laid out
//!   contiguously per fall-through chain. Emitting a run is iterating a
//!   `u64` slice; fall-through "terminators" vanish entirely.
//! * `desc` — one 48-byte descriptor per block packing the block's
//!   `pc_table` run **and** its chain's pre-resolved terminator: dense
//!   opcode, branch pc, successor id, successor base address, and a
//!   per-op immediate. Everything a control transfer needs lives on one
//!   cache line (splitting runs and terminators into separate parallel
//!   arrays costs 3-4 scattered lines per executed block, which is slower
//!   than the reference's warm `Bb` line — measured, not theoretical).
//! * the back-edge test `target <= site` is static, so conditionals split
//!   into [`Op::CondForward`] / [`Op::CondBack`] at translation time; a
//!   forward conditional's taken probability is folded into an exact
//!   2^53-scaled integer threshold (bit-equal to the reference's float
//!   comparison); a back-edge's trip span is precomputed from its static
//!   probability; a call's return-block base address rides in its
//!   descriptor so returns resolve from the stack alone.
//! * `spans` + `choices` — indirect-target lists flattened into one
//!   contiguous array of 16-byte entries with weight totals pre-summed.
//!
//! [`CompiledExecutor`] then steps these tables with the *identical* RNG
//! and float-arithmetic sequence as the reference executor (the mixers are
//! shared, see `exec::mix`/`exec::site_unit`), so the two paths are
//! bit-identical record for record — asserted by the tests below and the
//! `tests/fastpath.rs` harness. The reference path stays selectable via
//! [`NO_FASTPATH_ENV`] / `--no-fastpath` as the escape hatch and
//! equivalence oracle.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use confluence_store::{wire, Decode, Encode, Reader, WireError};
use confluence_types::{BranchKind, DetRng, TraceRecord, VAddr, INSTR_BYTES, VADDR_BITS};

use crate::exec::{mix, site_unit, Executor, STACK_GUARD};
use crate::program::{Program, Term};

/// Environment variable that disables the compiled fast path when set to a
/// non-empty value other than `0` (the `--no-fastpath` CLI flag sets the
/// same mode explicitly).
pub const NO_FASTPATH_ENV: &str = "CONFLUENCE_NO_FASTPATH";

/// Environment variable overriding the request-path memo budget: a total
/// step count (the per-request cap keeps the default 8:1 ratio). Unset or
/// empty keeps [`MemoCaps::DEFAULT`]; a malformed value is a typed
/// [`MemoCapError`] from [`MemoCaps::try_from_env`] — the binaries
/// validate at startup and exit 2, exactly like a malformed
/// `CONFLUENCE_STORE_CAP`.
pub const MEMO_CAP_ENV: &str = "CONFLUENCE_MEMO_CAP";

/// A malformed [`MEMO_CAP_ENV`] value, carrying the rejected text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoCapError {
    /// The value that failed to parse as a step budget.
    pub value: String,
}

impl std::fmt::Display for MemoCapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{MEMO_CAP_ENV} requires a positive step count of at most 2^30, got '{}'",
            self.value
        )
    }
}

impl std::error::Error for MemoCapError {}

/// Budgets of the request-path memo (see [`CompiledExecutor`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoCaps {
    /// Total [`ReplayStep`] arena budget: executors stop recording new
    /// paths once their arena (warm snapshot included) reaches this.
    pub steps: usize,
    /// Longest single request control path worth memoizing.
    pub request_steps: usize,
}

impl MemoCaps {
    /// The hard-coded pre-[`MEMO_CAP_ENV`] values: 64K steps total, 8K
    /// steps per request.
    pub const DEFAULT: MemoCaps = MemoCaps {
        steps: 1 << 16,
        request_steps: 1 << 13,
    };

    /// Parses a [`MEMO_CAP_ENV`] value: a positive decimal step budget
    /// (at most 2^30; the per-request cap scales at 8:1, minimum 1).
    pub fn parse(value: &str) -> Option<MemoCaps> {
        let steps: usize = value.trim().parse().ok()?;
        if steps == 0 || steps > (1 << 30) {
            return None;
        }
        Some(MemoCaps {
            steps,
            request_steps: (steps / 8).max(1),
        })
    }

    /// [`MemoCaps::parse`] with a typed rejection instead of `None`.
    pub fn validate(value: &str) -> Result<MemoCaps, MemoCapError> {
        MemoCaps::parse(value).ok_or_else(|| MemoCapError {
            value: value.to_string(),
        })
    }

    /// The caps [`MEMO_CAP_ENV`] asks for, as a typed result — the
    /// library-path half of cap-env handling. Unset or empty is the
    /// default budget; malformed is an error the caller decides about
    /// (the binaries validate in `parse_common` and exit 2).
    pub fn try_from_env() -> Result<MemoCaps, MemoCapError> {
        match std::env::var(MEMO_CAP_ENV) {
            Ok(v) if !v.is_empty() => MemoCaps::validate(&v),
            _ => Ok(MemoCaps::DEFAULT),
        }
    }

    /// The caps resolved from [`MEMO_CAP_ENV`], computed once per process.
    ///
    /// This sits deep in the execution path where no `Result` can
    /// propagate, so a malformed value falls back to the default budget
    /// with a warning — binaries never get here with one, because
    /// `parse_common` calls [`MemoCaps::try_from_env`] at startup and
    /// exits 2 first; the fallback only fires for embedders that skipped
    /// that validation.
    pub fn from_env() -> MemoCaps {
        static CAPS: OnceLock<MemoCaps> = OnceLock::new();
        *CAPS.get_or_init(|| {
            MemoCaps::try_from_env().unwrap_or_else(|e| {
                eprintln!("warning: {e}; keeping the default memo budget");
                MemoCaps::DEFAULT
            })
        })
    }
}

/// Which record-stream implementation a simulation uses.
///
/// Both produce bit-identical streams; `Reference` exists as the escape
/// hatch and as the oracle for the equivalence harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Step the flattened [`CompiledProgram`] tables (the fast path).
    #[default]
    Compiled,
    /// Step the reference [`Executor`] over the structured program.
    Reference,
}

impl ExecMode {
    /// Resolves the mode from [`NO_FASTPATH_ENV`].
    pub fn from_env() -> ExecMode {
        match std::env::var_os(NO_FASTPATH_ENV) {
            Some(v) if !v.is_empty() && v != *"0" => ExecMode::Reference,
            _ => ExecMode::Compiled,
        }
    }
}

/// Dense terminator opcode; the enum-of-structs [`Term`] flattened to one
/// byte with all operands moved into the block descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum Op {
    /// No branch: execution continues into the next block. Never executed
    /// (fall-through chains are flattened into `pc_table` runs); present
    /// only as the pre-chain-pass marker of non-terminator blocks.
    FallThrough = 0,
    /// Forward conditional; `aux` holds the 2^53-scaled taken threshold.
    CondForward = 1,
    /// Loop back-edge; `aux` holds the precomputed trip-count span.
    CondBack = 2,
    /// Unconditional direct jump.
    Jump = 3,
    /// Direct call; `aux` holds the return block's base address.
    Call = 4,
    /// Indirect call; `target` indexes [`ChoiceSpan`]s, `aux` holds the
    /// return block's base address.
    IndirectCall = 5,
    /// Indirect jump; `target` indexes [`ChoiceSpan`]s.
    IndirectJump = 6,
    /// Return to the caller (or the scheduler at top level).
    Return = 7,
}

/// Record [`BranchKind`] by dense opcode. `Op` values are data-dependent
/// per chain, so a match would be an unpredictable branch in the record
/// loop where a load from an 8-entry table is not. The `FallThrough` slot
/// is never read (chains are flattened).
const KIND_BY_OP: [BranchKind; 8] = [
    BranchKind::Unconditional, // FallThrough (never emitted)
    BranchKind::Conditional,   // CondForward
    BranchKind::Conditional,   // CondBack
    BranchKind::Unconditional, // Jump
    BranchKind::Call,          // Call
    BranchKind::IndirectCall,  // IndirectCall
    BranchKind::IndirectJump,  // IndirectJump
    BranchKind::Return,        // Return
];

/// Call-depth adjustment by dense opcode (+1 call, -1 return), a table
/// load for the same unpredictable-branch reason as [`KIND_BY_OP`].
const DEPTH_BY_OP: [i8; 8] = [0, 0, 0, 0, 1, 1, 0, -1];

/// Low 48 bits of a [`ReplayStep::term_word`]: the terminator's fetch
/// address (the opcode lives above). Identical to [`VAddr::new`]'s own
/// mask, so in release builds the two ANDs fold into one.
const TERM_PC_MASK: u64 = (1 << VADDR_BITS) - 1;

impl Op {
    /// Branch kind of the emitted record (see [`KIND_BY_OP`]).
    #[inline]
    fn kind(self) -> BranchKind {
        KIND_BY_OP[self as usize]
    }

    /// Call-depth adjustment of this terminator (see [`DEPTH_BY_OP`]).
    #[inline]
    fn depth_delta(self) -> i8 {
        DEPTH_BY_OP[self as usize]
    }
}

/// Per-block descriptor: the block's `pc_table` run plus its chain's
/// pre-resolved terminator, packed so one cache line serves a whole
/// control transfer. A branch can target the middle of a fall-through
/// chain, so every member block carries its own `start` with the shared
/// chain tail.
#[derive(Clone, Copy, Debug)]
struct BlockDesc {
    /// Fetch address of the chain terminator's branch instruction.
    term_pc: u64,
    /// Raw base address of the successor (branch-target field of the
    /// emitted record; unused by indirects and returns).
    target_base: u64,
    /// Per-op immediate: the 2^53-scaled taken threshold (`CondForward`),
    /// the trip-count span (`CondBack`), or the return block's base
    /// address (`Call`/`IndirectCall`).
    aux: u64,
    /// First `pc_table` index of this block's plain instructions.
    start: u32,
    /// One past the chain's last `pc_table` index.
    end: u32,
    /// Block id of the chain terminator (the branch "site").
    site: u32,
    /// Successor block id, or the [`ChoiceSpan`] index for indirects.
    target: u32,
    /// Dense opcode of the chain terminator.
    op: Op,
}

/// One indirect site's slice of the flattened [`Choice`] table.
#[derive(Clone, Copy, Debug)]
struct ChoiceSpan {
    /// First index into `choices`.
    start: u32,
    /// Number of choices.
    len: u32,
    /// Weight total, pre-summed in reference iteration order.
    total: f32,
    /// Fallback target (the reference's `choices.last()`).
    last_target: u32,
    /// Raw base address of the fallback target.
    last_base: u64,
}

/// One pre-resolved indirect-branch choice.
#[derive(Clone, Copy, Debug)]
struct Choice {
    /// Raw base address of the target block.
    base: u64,
    /// Selection weight.
    weight: f32,
    /// Target block id.
    target: u32,
}

/// A [`Program`] translated once into flattened block-stream tables.
///
/// All per-block tables are indexed by dense basic-block id; stepping them
/// (see [`CompiledExecutor`]) is an index walk with no enum matching and no
/// per-record address arithmetic. Obtain one via [`Program::compiled`],
/// which caches the translation per program instance (one compile per
/// `Arc<Program>` per process).
#[derive(Debug)]
pub struct CompiledProgram {
    /// Plain-instruction fetch addresses, contiguous per chain.
    pc_table: Vec<u64>,
    /// Per-block run + terminator descriptors.
    desc: Vec<BlockDesc>,
    /// Per-block raw base addresses (scheduler-entry record targets).
    base: Vec<u64>,
    // Flattened indirect-choice tables.
    spans: Vec<ChoiceSpan>,
    choices: Vec<Choice>,
    // Scheduling tables (mirroring `Executor::new` exactly).
    request_entries: Vec<u32>,
    request_cdf: Vec<f64>,
    os_entries: Vec<u32>,
    os_interleave: f64,
    flavors_per_request: u64,
    /// Shared warm-path state: every executor over this translation
    /// snapshots the bank at construction and merges newly recorded paths
    /// back on drop, so memo warmth survives across jobs, cores, and
    /// shards — and, via [`CompiledProgram::export_new_memo`] /
    /// [`CompiledProgram::import_memo`], across processes.
    bank: Mutex<PathBank>,
}

/// Process-wide warm-path state of one [`CompiledProgram`].
///
/// A request's control path is a pure function of its `(entry, flavor)`
/// key — independent of the executor seed, which only decides the request
/// *sequence* — so paths recorded by any executor replay correctly in
/// every other executor over the same translation. Merges are
/// content-idempotent for that reason: two executors racing to record the
/// same key store byte-identical steps, and the bank keeps whichever
/// lands first.
#[derive(Debug, Default)]
struct PathBank {
    map: HashMap<(u32, u64), PathRef, BuildPathHasher>,
    /// Shared step arena. Executors hold an `Arc` clone as their snapshot
    /// (construction never copies steps — the point of the warm tier is
    /// that short jobs start cheap); appends go through `Arc::make_mut`,
    /// which only copies while an older snapshot is still alive, i.e.
    /// never on a fully warm run where nothing records.
    paths: Arc<Vec<ReplayStep>>,
    /// `map.len()` at the last import/export: the write-back dirtiness
    /// mark ([`CompiledProgram::export_new_memo`] returns `None` when no
    /// key landed since).
    clean_keys: usize,
    /// Requests begun in replay mode (memo hits), across all executors.
    replayed: u64,
    /// Requests whose recording was finalized into a memo table.
    recorded: u64,
    /// Requests stepped live (cold keys), recorded or not.
    live: u64,
}

/// Snapshot of a program's warm-path accounting (see
/// [`CompiledProgram::memo_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Memoized request paths in the bank.
    pub tables: usize,
    /// Total [`ReplayStep`]s in the bank arena.
    pub steps: usize,
    /// Requests begun in replay mode (memo hits).
    pub replayed: u64,
    /// Requests whose recording was finalized into a new memo table.
    pub recorded: u64,
    /// Requests stepped live (cold keys).
    pub live: u64,
}

/// A serializable snapshot of one program's converged request-path memo:
/// the persistent warm-execution artifact.
///
/// The table is keyed externally by the generating `WorkloadSpec`'s
/// content hash (program generation and translation are deterministic),
/// and internally fingerprinted by the translation's table sizes as a
/// belt-and-braces guard; [`CompiledProgram::import_memo`] additionally
/// bounds-checks every step so a decodable-but-foreign table demotes to a
/// miss instead of corrupting replay.
///
/// Exports are canonical: entries sorted by key, step offsets rebased —
/// the same warm state always encodes to the same bytes regardless of
/// which executors recorded it in what order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoTable {
    /// Translated block count of the generating program (fingerprint).
    blocks: u32,
    /// `pc_table` length of the generating program (fingerprint).
    pc_len: u32,
    /// Memoized paths, sorted by `(entry, flavor)`.
    entries: Vec<MemoEntry>,
}

/// One memoized request path of a [`MemoTable`].
#[derive(Clone, Debug, PartialEq, Eq)]
struct MemoEntry {
    entry: u32,
    flavor: u64,
    steps: Vec<ReplayStep>,
}

impl MemoTable {
    /// Number of memoized request paths.
    pub fn tables(&self) -> usize {
        self.entries.len()
    }

    /// Total number of stored replay steps.
    pub fn steps(&self) -> usize {
        self.entries.iter().map(|e| e.steps.len()).sum()
    }
}

/// Version byte of the [`MemoTable`] wire encoding. Future fields append
/// in tail position (decode treats buffer exhaustion after the entries as
/// "all defaults", the store codec's sanctioned tail-extension pattern);
/// incompatible layout changes bump this byte instead.
const MEMO_TABLE_VERSION: u8 = 1;

impl Encode for MemoTable {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(MEMO_TABLE_VERSION);
        wire::put_varint(out, u64::from(self.blocks));
        wire::put_varint(out, u64::from(self.pc_len));
        wire::put_usize(out, self.entries.len());
        for e in &self.entries {
            wire::put_varint(out, u64::from(e.entry));
            wire::put_varint(out, e.flavor);
            wire::put_usize(out, e.steps.len());
            for s in &e.steps {
                // Fixed-width words for the packed fields (varints would
                // cost 9-10 bytes on the op/taken top bits), varints for
                // the small table indices.
                wire::put_u64_le(out, s.term_word);
                wire::put_u64_le(out, s.target_taken);
                wire::put_varint(out, u64::from(s.start));
                wire::put_varint(out, u64::from(s.end));
                wire::put_varint(out, u64::from(s.next));
            }
        }
    }
}

impl Decode for MemoTable {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let start = r.offset();
        if r.u8()? != MEMO_TABLE_VERSION {
            return Err(WireError {
                offset: start,
                reason: "unknown memo-table version",
            });
        }
        let blocks = u32::decode(r)?;
        let pc_len = u32::decode(r)?;
        let n = r.usize_varint()?;
        if n > r.remaining() {
            return Err(r.error("entry count exceeds buffer"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let entry = u32::decode(r)?;
            let flavor = r.varint()?;
            let len = r.usize_varint()?;
            if len > r.remaining() {
                return Err(r.error("step count exceeds buffer"));
            }
            let mut steps = Vec::with_capacity(len);
            for _ in 0..len {
                steps.push(ReplayStep {
                    term_word: r.u64_le()?,
                    target_taken: r.u64_le()?,
                    start: u32::decode(r)?,
                    end: u32::decode(r)?,
                    next: u32::decode(r)?,
                });
            }
            entries.push(MemoEntry {
                entry,
                flavor,
                steps,
            });
        }
        Ok(MemoTable {
            blocks,
            pc_len,
            entries,
        })
    }
}

/// Exact integer form of the reference's `site_unit(..) < prob` test.
///
/// `site_unit` is `(m >> 11) as f64 * 2^-53` with `m >> 11 < 2^53`, so both
/// the unit and `prob * 2^53` are exact f64 values; comparing the integer
/// `m >> 11` against `ceil(prob * 2^53)` decides identically (for integral
/// `prob * 2^53`, `ceil` is the identity and `<` agrees directly).
fn unit_threshold(prob: f64) -> u64 {
    (prob * (1u64 << 53) as f64).ceil() as u64
}

impl CompiledProgram {
    /// Translates a program in one pass over its basic blocks.
    pub fn compile(program: &Program) -> CompiledProgram {
        let bbs = program.bbs();
        let n = bbs.len();
        // Block ids travel through u32 tables (and memoized replay steps).
        assert!(n < (1 << 31) as usize, "block id space exceeds 31 bits");
        let mut cp = CompiledProgram {
            pc_table: Vec::new(),
            desc: Vec::with_capacity(n),
            base: bbs.iter().map(|bb| bb.base.raw()).collect(),
            spans: Vec::new(),
            choices: Vec::new(),
            request_entries: Vec::new(),
            request_cdf: Vec::new(),
            os_entries: Vec::new(),
            os_interleave: 0.0,
            flavors_per_request: 1,
            bank: Mutex::new(PathBank::default()),
        };
        // First pass: resolve every block's own terminator.
        for (i, bb) in bbs.iter().enumerate() {
            let ret_base = cp.base.get(i + 1).copied().unwrap_or(0);
            let (op, target, target_base, aux) = match &bb.term {
                Term::FallThrough => (Op::FallThrough, i as u32 + 1, 0, 0),
                Term::Cond { target, taken_prob } => {
                    let t_base = cp.base[*target as usize];
                    if *target <= i as u32 {
                        // The reference re-derives the trip span from the
                        // taken probability on every execution of the
                        // back-edge; it is a pure function of the static
                        // probability, so fold it in here.
                        let mean = (1.0 / (1.0 - taken_prob.min(0.97))).ceil() as u64;
                        let span = (2 * mean).max(2);
                        (Op::CondBack, *target, t_base, span)
                    } else {
                        (
                            Op::CondForward,
                            *target,
                            t_base,
                            unit_threshold(*taken_prob),
                        )
                    }
                }
                Term::Jump { target } => (Op::Jump, *target, cp.base[*target as usize], 0),
                Term::Call { callee } => (Op::Call, *callee, cp.base[*callee as usize], ret_base),
                Term::IndirectCall { choices } => {
                    (Op::IndirectCall, cp.push_choices(choices), 0, ret_base)
                }
                Term::IndirectJump { choices } => {
                    (Op::IndirectJump, cp.push_choices(choices), 0, 0)
                }
                Term::Return => (Op::Return, 0, 0, 0),
            };
            cp.desc.push(BlockDesc {
                term_pc: bb.term_pc().raw(),
                target_base,
                aux,
                start: 0,
                end: 0,
                site: i as u32,
                target,
                op,
            });
        }

        // Second pass: flatten fall-through chains into contiguous pc runs
        // and stamp every member block with its chain's terminator.
        let mut head = 0;
        while head < n {
            let mut j = head;
            loop {
                cp.desc[j].start = cp.pc_table.len() as u32;
                let base = cp.base[j];
                for k in 0..bbs[j].plain as u64 {
                    cp.pc_table.push(base + k * INSTR_BYTES as u64);
                }
                if cp.desc[j].op != Op::FallThrough {
                    break;
                }
                j += 1;
                assert!(j < n, "program ends in a fall-through chain");
            }
            let end = cp.pc_table.len() as u32;
            let term = cp.desc[j];
            for d in &mut cp.desc[head..=j] {
                d.end = end;
                d.site = term.site;
                d.op = term.op;
                d.term_pc = term.term_pc;
                d.target = term.target;
                d.target_base = term.target_base;
                d.aux = term.aux;
            }
            head = j + 1;
        }

        // Scheduling tables: the float arithmetic must match `Executor::new`
        // operation for operation so the request CDF is bit-identical.
        let spec = program.spec();
        let total: f64 = program.request_entries().iter().map(|&(_, w)| w).sum();
        let mut acc = 0.0;
        cp.request_cdf = program
            .request_entries()
            .iter()
            .map(|&(_, w)| {
                acc += w / total;
                acc
            })
            .collect();
        cp.request_entries = program.request_entries().iter().map(|&(b, _)| b).collect();
        cp.os_entries = program.os_entries().to_vec();
        cp.os_interleave = spec.os_interleave;
        cp.flavors_per_request = spec.flavors_per_request as u64;
        cp
    }

    fn push_choices(&mut self, choices: &[(u32, f32)]) -> u32 {
        let start = self.choices.len() as u32;
        // Summed in the same iteration order as the reference's
        // `choices.iter().map(|&(_, w)| w).sum::<f32>()`.
        let mut total = 0.0f32;
        for &(t, w) in choices {
            self.choices.push(Choice {
                base: self.base[t as usize],
                weight: w,
                target: t,
            });
            total += w;
        }
        let &(last_target, _) = choices.last().expect("indirect site has no targets");
        let span_idx = self.spans.len() as u32;
        self.spans.push(ChoiceSpan {
            start,
            len: choices.len() as u32,
            total,
            last_target,
            last_base: self.base[last_target as usize],
        });
        span_idx
    }

    /// Number of translated basic blocks.
    pub fn block_count(&self) -> usize {
        self.desc.len()
    }

    /// Creates a compiled-stream executor with the given per-core seed.
    ///
    /// Seeding is identical to [`Program::executor`]: the same `(program,
    /// seed)` pair yields the same stream through either path.
    pub fn executor(&self, seed: u64) -> CompiledExecutor<'_> {
        CompiledExecutor::new(self, seed)
    }

    /// Current warm-path accounting across every executor this translation
    /// has served.
    pub fn memo_stats(&self) -> MemoStats {
        let bank = self.bank.lock().expect("path bank poisoned");
        MemoStats {
            tables: bank.map.len(),
            steps: bank.paths.len(),
            replayed: bank.replayed,
            recorded: bank.recorded,
            live: bank.live,
        }
    }

    /// Exports the whole warm-path bank as a canonical [`MemoTable`]
    /// (entries sorted by key, offsets rebased), without touching the
    /// dirtiness mark.
    pub fn export_memo(&self) -> MemoTable {
        let bank = self.bank.lock().expect("path bank poisoned");
        self.build_table(&bank)
    }

    /// Exports the bank only if new paths landed since the last
    /// import/export, marking it clean — the write-back probe: `None`
    /// means the persisted artifact is already up to date.
    pub fn export_new_memo(&self) -> Option<MemoTable> {
        let mut bank = self.bank.lock().expect("path bank poisoned");
        if bank.map.len() <= bank.clean_keys {
            return None;
        }
        let table = self.build_table(&bank);
        bank.clean_keys = bank.map.len();
        Some(table)
    }

    fn build_table(&self, bank: &PathBank) -> MemoTable {
        let mut keys: Vec<((u32, u64), PathRef)> = bank.map.iter().map(|(&k, &p)| (k, p)).collect();
        keys.sort_unstable_by_key(|&(k, _)| k);
        MemoTable {
            blocks: self.desc.len() as u32,
            pc_len: self.pc_table.len() as u32,
            entries: keys
                .into_iter()
                .map(|((entry, flavor), p)| MemoEntry {
                    entry,
                    flavor,
                    steps: bank.paths[p.start as usize..p.end as usize].to_vec(),
                })
                .collect(),
        }
    }

    /// Imports a persisted warm-path table into the bank and marks it
    /// clean. Returns `false` — leaving the bank untouched — when the
    /// table does not fingerprint to this translation or any step fails
    /// validation; a decodable-but-wrong artifact must behave like a
    /// cache miss, never corrupt replay (replay indexes `pc_table` and
    /// `desc` straight from the stored words).
    pub fn import_memo(&self, table: &MemoTable) -> bool {
        if table.blocks as usize != self.desc.len() || table.pc_len as usize != self.pc_table.len()
        {
            return false;
        }
        // A genuine export is bounded by the recording caps: each entry is
        // one request's path (request-cap bound), and the bank as a whole
        // grows at most `caps.steps` per flavor (one executor per simulated
        // core records against its own snapshot). Anything far beyond that
        // is garbage regardless of what it fingerprints as.
        let caps = MemoCaps::from_env();
        if table.steps() > caps.steps.saturating_mul(64) {
            return false;
        }
        if table
            .entries
            .iter()
            .any(|e| e.steps.len() > caps.request_steps.saturating_mul(4))
        {
            return false;
        }
        let blocks = self.desc.len();
        let pc_len = self.pc_table.len() as u32;
        for e in &table.entries {
            if (e.entry as usize) >= blocks {
                return false;
            }
            for s in &e.steps {
                let hi = s.term_word >> 48;
                // Bits 48..56 of `term_word` are always zero (48-bit pc);
                // the top byte is the op, which replay indexes with.
                if hi & 0xFF != 0 || !(1..=7).contains(&(hi >> 8)) {
                    return false;
                }
                // `target_taken` holds a 48-bit address plus the taken bit.
                if (s.target_taken >> 48) & 0x7FFF != 0 {
                    return false;
                }
                if (s.next as usize) >= blocks || s.start > s.end || s.end > pc_len {
                    return false;
                }
            }
        }
        let mut guard = self.bank.lock().expect("path bank poisoned");
        let bank = &mut *guard;
        let arena = Arc::make_mut(&mut bank.paths);
        for e in &table.entries {
            let key = (e.entry, e.flavor);
            if bank.map.contains_key(&key) {
                continue;
            }
            let start = arena.len() as u32;
            arena.extend_from_slice(&e.steps);
            let end = arena.len() as u32;
            bank.map.insert(key, PathRef { start, end });
        }
        bank.clean_keys = bank.map.len();
        true
    }

    /// Merges an executor's newly recorded paths and its request counters
    /// into the bank (called on executor drop). Keys already present are
    /// skipped — concurrent recorders produce byte-identical paths for
    /// the same key, so first-in wins loses nothing.
    fn absorb(&self, ex: &CompiledExecutor<'_>) {
        let recorded_new = !ex.fresh.is_empty();
        if !recorded_new && ex.stat_replayed == 0 && ex.stat_live == 0 {
            return;
        }
        let mut guard = self.bank.lock().expect("path bank poisoned");
        let bank = &mut *guard;
        bank.replayed += ex.stat_replayed;
        bank.recorded += ex.stat_recorded;
        bank.live += ex.stat_live;
        if !recorded_new {
            return;
        }
        let arena = Arc::make_mut(&mut bank.paths);
        for (&key, &p) in &ex.memo {
            if p.start < ex.snapshot_len || bank.map.contains_key(&key) {
                continue;
            }
            let (a, b) = (p.start - ex.snapshot_len, p.end - ex.snapshot_len);
            let start = arena.len() as u32;
            arena.extend_from_slice(&ex.fresh[a as usize..b as usize]);
            let end = arena.len() as u32;
            bank.map.insert(key, PathRef { start, end });
        }
    }
}

/// Streaming executor over a [`CompiledProgram`]; the fast-path counterpart
/// of [`Executor`], bit-identical to it record for record.
///
/// Beyond the pull-based [`CompiledExecutor::next_record`], the batch entry
/// point [`CompiledExecutor::for_each_record`] emits whole plain runs by
/// iterating `pc_table` slices — that internal iteration is where the
/// throughput win over the reference executor comes from.
#[derive(Clone, Debug)]
pub struct CompiledExecutor<'c> {
    cp: &'c CompiledProgram,
    /// Next `pc_table` index of the current run.
    run_idx: u32,
    /// Descriptor of the current chain, copied out on entry so the stepping
    /// loop and terminator read executor-local state.
    cur: BlockDesc,
    rng: DetRng,
    /// Return-address stack of `(block id, block base)` pairs; the base
    /// rides along so returns never touch the per-block tables.
    stack: Vec<(u32, u64)>,
    /// Per-request flavor; see [`Executor`] for the recurrence model.
    flavor: u64,
    /// Active back-edge state: `(site, trip << 32 | counter)` pairs,
    /// linearly scanned. A request activates only a handful of loops at a
    /// time, so the scan stays in L1 where a block-indexed table would
    /// cache-miss per back-edge. The trip count is a pure function of
    /// (site, flavor), so it is computed once on loop entry and cached —
    /// the reference re-mixes it every iteration.
    active_loops: Vec<(u32, u64)>,
    instr_count: u64,
    requests_completed: u64,
    // Terminator outcome, staged at chain entry (see `stage`). Nothing
    // observable happens between entering a chain and executing its
    // terminator, so all the pure outcome work — the site mix, the
    // weighted pick, the trip-count test, the return-stack peek — runs at
    // entry, where the out-of-order core overlaps its ~15-cycle serial
    // latency with the run's slice emission instead of serializing it
    // behind the run-exit branch miss. `terminate` only applies side
    // effects and emits the record. Deferred to `terminate`: stack
    // push/pop, loop-counter writes, and the request count, so externally
    // visible state still changes exactly at the branch record.
    /// Staged branch direction.
    pre_taken: bool,
    /// Staged `CondBack`: no active loop entry existed at entry.
    pre_new_loop: bool,
    /// Staged successor block.
    pre_next: u32,
    /// Staged `CondBack`: index of the active loop entry.
    pre_idx: u32,
    /// Staged `CondBack`: trip count for a newly entered loop.
    pre_trip: u64,
    /// Staged branch-target address of the emitted record.
    pre_target: u64,
    /// Staged descriptor of the successor chain, loaded at stage time so
    /// the load overlaps the current run's emission instead of serializing
    /// behind the run-exit branch.
    next_cur: BlockDesc,
    /// Memoized request control paths, keyed by `(entry block, flavor)`.
    ///
    /// No RNG draw happens between two `schedule_next` calls — every
    /// branch outcome inside a request is a pure site mix over the
    /// request's flavor, the loop counters start empty, and the return
    /// stack starts empty — so a request's whole record stream is a pure
    /// function of its key. The first execution records one
    /// [`ReplayStep`] per branch into the shared `paths` arena; later
    /// executions replay the steps with no mixing, no weighted picks,
    /// and no per-op dispatch. Each step carries the fully resolved
    /// transition — direction, record target, and the successor chain's
    /// run bounds and packed terminator — so replay is a straight-line
    /// scan of one contiguous array: no random access back into `desc`
    /// or `base`, no data-dependent target selection, and the hardware
    /// prefetcher sees a sequential address stream.
    memo: HashMap<(u32, u64), PathRef, BuildPathHasher>,
    /// The shared bank arena as of construction — an `Arc` clone, never a
    /// step copy, so executor construction stays O(map) even when the
    /// warm bank holds hundreds of thousands of steps (the short-job
    /// regime the artifact tier exists for). A [`PathRef`] below
    /// `snapshot_len` indexes this arena.
    snapshot: Arc<Vec<ReplayStep>>,
    /// Local arena for paths this executor records; a [`PathRef`] at or
    /// above `snapshot_len` indexes it at `start - snapshot_len`. Paths
    /// never straddle the two arenas, so replay still walks one
    /// contiguous slice.
    fresh: Vec<ReplayStep>,
    /// Control-path recording for the in-flight request, when its key is
    /// cold and the budget allows.
    recording: Option<Vec<ReplayStep>>,
    /// Key of the in-flight request (its flavor is overwritten by the
    /// next `schedule_next` before the recording is finalized).
    req_key: (u32, u64),
    /// Replay cursor: next index in `paths`, or `u32::MAX` when live.
    replay_pos: u32,
    /// One past the active replay path's last `paths` index.
    replay_end: u32,
    /// A replayed branch outcome is staged in `pre_*`/`next_cur`.
    ///
    /// Replay stages one branch ahead (see `replay_stage`) for the same
    /// reason live stepping does: the successor-descriptor load issues a
    /// whole slice emission before its use, instead of serializing
    /// `stored word -> desc -> pc run` behind the run-exit branch.
    replay_staged: bool,
    /// Write-only scratch: staging reads the next chain's first fetch
    /// address into it, pulling that `pc_table` line into L1 a whole
    /// slice emission before the run walks it (chains enter `pc_table`
    /// at data-dependent offsets the hardware prefetcher cannot guess).
    prefetch: u64,
    /// Call depth accumulated by the replay path (the real stack is not
    /// maintained during replay; depth returns to zero by the end of
    /// every request).
    replay_depth: u32,
    /// Memo budgets, resolved once per process (see [`MEMO_CAP_ENV`]).
    caps: MemoCaps,
    /// `snapshot` length: [`PathRef`]s below it index the shared
    /// snapshot, those at or above it index `fresh` (rebased); only the
    /// latter are merged back on drop.
    snapshot_len: u32,
    /// Recycled recording buffer: recording a request reuses one
    /// allocation for the whole executor lifetime instead of paying an
    /// alloc/free per cold request.
    spare: Vec<ReplayStep>,
    /// Requests begun in replay mode.
    stat_replayed: u64,
    /// Requests whose recording was finalized into the memo.
    stat_recorded: u64,
    /// Requests stepped live.
    stat_live: u64,
}

/// `paths`-arena slice of one memoized request's control path.
#[derive(Clone, Copy, Debug)]
struct PathRef {
    start: u32,
    end: u32,
}

/// One memoized chain transition: everything the replay loop needs to
/// emit the current chain's branch record and advance into its successor,
/// resolved at record time.
///
/// The fat 28-byte step trades arena bytes for loop shape: the earlier
/// compact form (successor id + taken bit in one word) made every warm
/// chain transition a bounds-checked random access into the per-block
/// tables plus a data-dependent target select, which dominated the
/// replay loop's critical path. Storing the resolved transition turns
/// all of that into one sequential load; the arena stays bounded by
/// [`MemoCaps::steps`] (~2 MB at the default), and per-flavor cold footprint only
/// matters until the step line is in cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ReplayStep {
    /// This chain's terminator fetch address in the low 48 bits with its
    /// [`Op`] discriminant in the top byte (see [`TERM_PC_MASK`]).
    term_word: u64,
    /// Resolved record target of this chain's branch, with the taken bit
    /// above the 48-bit address (see [`STEP_TAKEN`]).
    target_taken: u64,
    /// Successor chain's first `pc_table` index.
    start: u32,
    /// One past the successor chain's last `pc_table` index.
    end: u32,
    /// Successor block id (rebuilds full descriptor state at loop exit).
    next: u32,
}

/// Taken-bit flag in a [`ReplayStep::target_taken`].
const STEP_TAKEN: u64 = 1 << 63;
/// Sentinel for `replay_pos`: no replay active.
const NO_REPLAY: u32 = u32::MAX;

/// Hasher for the request-path memo: one multiply-fold over the key halves.
///
/// The memo lookup runs once per request begin; SipHash on the 12-byte key
/// is a measurable slice of that. Hash quality only affects bucket spread
/// (the map stores and compares full keys), so a multiplicative fold is
/// safe — and the key space per executor is a few hundred entries.
#[derive(Clone, Copy, Debug, Default)]
struct PathHasher(u64);

/// `BuildHasher` for [`PathHasher`].
#[derive(Clone, Copy, Debug, Default)]
struct BuildPathHasher;

impl std::hash::Hasher for PathHasher {
    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("path keys hash via write_u32/write_u64 only");
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Fibonacci-style multiply-xor fold (cf. FxHash).
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

impl std::hash::BuildHasher for BuildPathHasher {
    type Hasher = PathHasher;
    #[inline]
    fn build_hasher(&self) -> PathHasher {
        PathHasher(0)
    }
}

impl<'c> CompiledExecutor<'c> {
    /// Creates a compiled executor with a dedicated dynamic-behaviour seed.
    ///
    /// The executor starts from a snapshot of the program's shared path
    /// bank, so requests whose keys any earlier executor (or a persisted
    /// artifact import) converged replay from record zero; paths are
    /// seed-independent, so the snapshot is valid under any seed.
    pub fn new(cp: &'c CompiledProgram, seed: u64) -> CompiledExecutor<'c> {
        let (memo, snapshot) = {
            let bank = cp.bank.lock().expect("path bank poisoned");
            (bank.map.clone(), Arc::clone(&bank.paths))
        };
        // Mirrors `Executor::new` draw for draw.
        let mut rng = DetRng::seed_from(seed ^ 0xE8EC_u64.rotate_left(32));
        let mut ex = CompiledExecutor {
            cp,
            run_idx: 0,
            cur: cp.desc[0],
            rng: rng.fork(1),
            stack: Vec::with_capacity(64),
            flavor: 0,
            active_loops: Vec::with_capacity(16),
            instr_count: 0,
            requests_completed: 0,
            pre_taken: false,
            pre_new_loop: false,
            pre_next: 0,
            pre_idx: 0,
            pre_trip: 0,
            pre_target: 0,
            next_cur: cp.desc[0],
            snapshot_len: snapshot.len() as u32,
            memo,
            snapshot,
            fresh: Vec::new(),
            recording: None,
            req_key: (0, 0),
            replay_pos: NO_REPLAY,
            replay_end: 0,
            replay_staged: false,
            prefetch: 0,
            replay_depth: 0,
            caps: MemoCaps::from_env(),
            spare: Vec::new(),
            stat_replayed: 0,
            stat_recorded: 0,
            stat_live: 0,
        };
        let first = ex.schedule_next();
        ex.begin_request(first);
        ex
    }

    /// Instructions emitted so far.
    pub fn instr_count(&self) -> u64 {
        self.instr_count
    }

    /// Requests completed so far (top-level handler returns).
    pub fn requests_completed(&self) -> u64 {
        self.requests_completed
    }

    /// Current call depth.
    pub fn call_depth(&self) -> usize {
        self.stack.len() + self.replay_depth as usize
    }

    /// Fast-forwards the executor by `n` instructions (warm-up).
    pub fn fast_forward(&mut self, n: u64) {
        self.for_each_record(n, |_| {});
    }

    /// Resumes stepping at block `bb`'s first instruction and stages its
    /// chain's terminator outcome. Used for cold entry; steady-state
    /// transfers go through [`CompiledExecutor::advance`], which reuses
    /// the staged descriptor.
    #[inline]
    fn enter(&mut self, bb: u32) {
        self.cur = self.cp.desc[bb as usize];
        self.run_idx = self.cur.start;
        self.stage();
    }

    /// Transfers into the successor chain staged by the last
    /// [`CompiledExecutor::stage`] call.
    #[inline]
    fn advance(&mut self) {
        self.cur = self.next_cur;
        self.run_idx = self.cur.start;
        self.stage();
    }

    /// Starts a request at `entry`: replays its memoized control path if
    /// this `(entry, flavor)` was seen before, otherwise steps it live
    /// (recording the path when the memo budget allows).
    fn begin_request(&mut self, entry: u32) {
        let key = (entry, self.flavor);
        if let Some(&path) = self.memo.get(&key) {
            self.stat_replayed += 1;
            self.replay_pos = path.start;
            self.replay_end = path.end;
            self.cur = self.cp.desc[entry as usize];
            self.run_idx = self.cur.start;
            // Stage the first stored branch (no mixing: replayed
            // terminators come from the stored path).
            self.replay_stage();
        } else {
            self.stat_live += 1;
            if self.snapshot_len as usize + self.fresh.len() < self.caps.steps {
                let mut buf = std::mem::take(&mut self.spare);
                buf.clear();
                self.recording = Some(buf);
                self.req_key = key;
            }
            self.enter(entry);
        }
    }

    /// Stages the current chain's terminator from the memoized control
    /// path: direction, record target, and successor were all resolved
    /// when the step was recorded. Clears `replay_staged` when the stored
    /// path is exhausted — the chain then ends in the request's top-level
    /// return, which executes live.
    /// The arena slice `[a, b)` of one memoized path. A path lives
    /// entirely in one arena (recordings never straddle the snapshot
    /// boundary), so the split costs one predictable branch per replay
    /// session, not per step.
    #[inline]
    fn path_slice(&self, a: u32, b: u32) -> &[ReplayStep] {
        if a < self.snapshot_len {
            &self.snapshot[a as usize..b as usize]
        } else {
            let off = self.snapshot_len;
            &self.fresh[(a - off) as usize..(b - off) as usize]
        }
    }

    #[inline]
    fn replay_stage(&mut self) {
        if self.replay_pos < self.replay_end {
            let step = self.path_slice(self.replay_pos, self.replay_end)[0];
            self.replay_pos += 1;
            self.pre_taken = step.target_taken & STEP_TAKEN != 0;
            self.pre_target = step.target_taken & TERM_PC_MASK;
            self.pre_next = step.next;
            self.next_cur = self.cp.desc[step.next as usize];
            self.prefetch = self
                .cp
                .pc_table
                .get(step.start as usize)
                .copied()
                .unwrap_or(0);
            self.replay_staged = true;
        } else {
            self.replay_staged = false;
        }
    }

    /// Precomputes the current chain's terminator outcome (`pre_*`).
    ///
    /// Every computation here is a pure function of executor state that
    /// cannot change before the terminator executes; RNG draws (top-level
    /// return scheduling) keep their reference order because no other draw
    /// can intervene. Only the `requests_completed` bump and the
    /// return-stack pop are deferred so observable state still changes at
    /// the branch record itself.
    #[inline]
    fn stage(&mut self) {
        let d = self.cur;
        let site = d.site;
        match d.op {
            Op::CondForward => {
                let taken = (mix(self.flavor ^ 0xC02D, site as u64) >> 11) < d.aux;
                self.pre_taken = taken;
                self.pre_next = if taken { d.target } else { site + 1 };
                self.pre_target = d.target_base;
            }
            Op::CondBack => {
                let taken = match self.active_loops.iter().position(|e| e.0 == site) {
                    Some(i) => {
                        let slot = self.active_loops[i].1;
                        self.pre_idx = i as u32;
                        self.pre_new_loop = false;
                        (slot as u32 as u64) + 1 < (slot >> 32)
                    }
                    None => {
                        let trip = 1 + (mix(self.flavor ^ 0x7219, site as u64) % d.aux);
                        self.pre_trip = trip;
                        self.pre_new_loop = true;
                        1 < trip
                    }
                };
                self.pre_taken = taken;
                self.pre_next = if taken { d.target } else { site + 1 };
                self.pre_target = d.target_base;
            }
            Op::Jump | Op::Call => {
                self.pre_taken = true;
                self.pre_next = d.target;
                self.pre_target = d.target_base;
            }
            Op::IndirectCall | Op::IndirectJump => {
                let (t, base) = self.pick(site, d.target);
                self.pre_taken = true;
                self.pre_next = t;
                self.pre_target = base;
            }
            Op::Return => {
                self.pre_taken = true;
                match self.stack.last() {
                    Some(&(ret, base)) => {
                        self.pre_next = ret;
                        self.pre_target = base;
                    }
                    None => {
                        let next = self.schedule_next();
                        self.pre_next = next;
                        self.pre_target = self.cp.base[next as usize];
                    }
                }
            }
            Op::FallThrough => unreachable!("chains are flattened; no fall-through terminators"),
        }
        self.next_cur = self.cp.desc[self.pre_next as usize];
    }

    /// Picks the next top-level routine; mirrors `Executor::schedule_next`.
    fn schedule_next(&mut self) -> u32 {
        self.active_loops.clear();
        let cp = self.cp;
        if !cp.os_entries.is_empty() && self.rng.chance(cp.os_interleave) {
            let idx = self.rng.index(cp.os_entries.len());
            self.flavor = mix(0x05_05, (idx as u64) << 32 | self.rng.below(8));
            return cp.os_entries[idx];
        }
        let draw = self.rng.f64();
        let idx = cp
            .request_cdf
            .iter()
            .position(|&c| draw < c)
            .unwrap_or(cp.request_cdf.len() - 1);
        let flavor_idx = self.rng.below(cp.flavors_per_request);
        self.flavor = mix((idx as u64) << 32, flavor_idx);
        cp.request_entries[idx]
    }

    /// Weighted indirect-target pick; mirrors `Executor::pick_weighted`
    /// (same f32 subtraction loop, same fallback).
    #[inline]
    fn pick(&self, site: u32, span_idx: u32) -> (u32, u64) {
        let cp = self.cp;
        let s = cp.spans[span_idx as usize];
        let unit = site_unit(self.flavor, site, 0x1D1) as f32;
        let mut draw = unit * s.total;
        let start = s.start as usize;
        for c in &cp.choices[start..start + s.len as usize] {
            draw -= c.weight;
            if draw < 0.0 {
                return (c.target, c.base);
            }
        }
        (s.last_target, s.last_base)
    }

    /// Executes the current chain's terminator — applies the side effects
    /// deferred by [`CompiledExecutor::stage`] — and returns its record.
    ///
    /// `inline(always)`: the pull path calls this once per branch record
    /// (~1 in 6); as an out-of-line call it costs ~3x the inlined form
    /// (register spills around the call plus the record round-trip through
    /// the return slot), which measured as the whole difference between
    /// the batch and pull paths.
    #[inline(always)]
    fn terminate(&mut self) -> TraceRecord {
        let d = self.cur;

        // Replay fast path: the branch outcome was staged ahead from the
        // memoized control path — no mixing, no per-op side effects (only
        // the externally visible call depth is tracked).
        if self.replay_staged {
            return self.replay_terminate();
        }
        if self.replay_pos != NO_REPLAY {
            // Path exhausted: the current chain ends in the request's
            // top-level return. Drop back to live stepping for it.
            self.replay_pos = NO_REPLAY;
            debug_assert_eq!(self.replay_depth, 0, "replayed request left calls open");
            self.stage();
        }

        let taken = self.pre_taken;
        let target = self.pre_target;
        let mut request_end = false;
        match d.op {
            Op::CondForward | Op::Jump | Op::IndirectJump => {}
            Op::CondBack => {
                if self.pre_new_loop {
                    if taken {
                        self.active_loops.push((d.site, self.pre_trip << 32 | 1));
                    }
                } else {
                    let idx = self.pre_idx as usize;
                    self.active_loops[idx].1 += 1;
                    if !taken {
                        self.active_loops.swap_remove(idx);
                    }
                }
            }
            Op::Call | Op::IndirectCall => self.push_return(d.site + 1, d.aux),
            Op::Return => {
                if self.stack.pop().is_none() {
                    // The replacement routine was already scheduled at
                    // stage time (same RNG order); only the observable
                    // request count lands here.
                    self.requests_completed += 1;
                    request_end = true;
                }
            }
            Op::FallThrough => unreachable!("chains are flattened; no fall-through terminators"),
        }
        if request_end {
            // The final return is not part of the memoized path (its
            // target depends on the next scheduling draw).
            if let Some(mut buf) = self.recording.take() {
                if buf.len() <= self.caps.request_steps {
                    let start = self.snapshot_len + self.fresh.len() as u32;
                    self.fresh.extend_from_slice(&buf);
                    self.memo.insert(
                        self.req_key,
                        PathRef {
                            start,
                            end: self.snapshot_len + self.fresh.len() as u32,
                        },
                    );
                    self.stat_recorded += 1;
                }
                buf.clear();
                self.spare = buf;
            }
            self.begin_request(self.pre_next);
        } else {
            if let Some(buf) = &mut self.recording {
                // `next_cur` is the staged successor descriptor, so the
                // step stores the transition fully resolved: the live
                // `pre_target` already is the landed base for indirects
                // and returns and the would-be target otherwise, exactly
                // what replay must re-emit.
                let nd = self.next_cur;
                buf.push(ReplayStep {
                    term_word: d.term_pc | ((d.op as u64) << 56),
                    target_taken: target | ((taken as u64) << 63),
                    start: nd.start,
                    end: nd.end,
                    next: self.pre_next,
                });
            }
            self.advance();
        }
        self.instr_count += 1;
        TraceRecord::branch(
            VAddr::new(d.term_pc),
            d.op.kind(),
            taken,
            VAddr::new(target),
        )
    }

    /// Emits the staged replay branch and stages the next one. Callers
    /// must have checked `replay_staged`.
    #[inline(always)]
    fn replay_terminate(&mut self) -> TraceRecord {
        let d = self.cur;
        let taken = self.pre_taken;
        let target = self.pre_target;
        self.replay_depth = (self.replay_depth as i32 + d.op.depth_delta() as i32) as u32;
        self.cur = self.next_cur;
        self.run_idx = self.cur.start;
        self.replay_stage();
        self.instr_count += 1;
        TraceRecord::branch(
            VAddr::new(d.term_pc),
            d.op.kind(),
            taken,
            VAddr::new(target),
        )
    }

    #[inline]
    fn push_return(&mut self, ret_bb: u32, ret_base: u64) {
        debug_assert!(self.stack.len() < STACK_GUARD, "runaway call depth");
        self.stack.push((ret_bb, ret_base));
    }

    /// Produces the next committed instruction.
    #[inline]
    pub fn next_record(&mut self) -> Option<TraceRecord> {
        if self.run_idx < self.cur.end {
            let pc = self.cp.pc_table[self.run_idx as usize];
            self.run_idx += 1;
            self.instr_count += 1;
            return Some(TraceRecord::plain(VAddr::new(pc)));
        }
        Some(self.terminate())
    }

    /// Emits the next `n` records through `f` (batch stepping).
    ///
    /// Plain runs are emitted by iterating the chain's contiguous
    /// `pc_table` slice — one bounds check per run, no per-instruction
    /// state — which is what buys the fast path its throughput; the
    /// records and executor state are identical to `n` calls of
    /// [`CompiledExecutor::next_record`].
    #[inline]
    pub fn for_each_record(&mut self, n: u64, mut f: impl FnMut(TraceRecord)) {
        let mut left = n;
        while left > 0 {
            // Replay fast loop: while whole staged chains (run + branch)
            // fit in the remaining budget, emit them back to back with no
            // per-chain mode dispatch — this is the warm steady state.
            // Cursor and chain state live in locals for the duration: the
            // executor struct is too big to stay register-resident, and
            // with field-based stepping every chain transition round-trips
            // ~100 bytes of state through the stack (measured as roughly
            // half the per-chain cost).
            if self.replay_staged {
                let cp = self.cp;
                // Stored steps are walked through a slice iterator (no
                // per-chain bounds check), and every transition is one
                // sequential [`ReplayStep`] load carrying the chain's
                // branch outcome *and* the successor's run bounds — the
                // loop never random-accesses the per-block tables and
                // stages nothing across iterations. The iterator starts
                // one step back: the staging that set `replay_staged`
                // consumed the current chain's step, and the loop re-reads
                // it in stream order instead of carrying six staged
                // locals. `self.cur` is rebuilt once on exit from the last
                // block id, and the exit `replay_stage` call re-stages the
                // pull-path lookahead.
                let mut path = self.path_slice(self.replay_pos - 1, self.replay_end).iter();
                let mut run_idx = self.run_idx;
                let mut run_end = self.cur.end;
                let mut cur_id = NO_REPLAY;
                let mut depth = self.replay_depth;
                let entry_left = left;
                loop {
                    let avail = (run_end - run_idx) as u64;
                    if avail >= left {
                        break; // partial run; the generic loop handles it
                    }
                    // Plain runs average a handful of instructions, so the
                    // emission loop is hand-unrolled by four (bounds checks
                    // hoisted by `chunks_exact`): a rolled loop costs more
                    // in per-record loop overhead than in record payload.
                    let run = &cp.pc_table[run_idx as usize..(run_idx + avail as u32) as usize];
                    let mut quads = run.chunks_exact(4);
                    for q in quads.by_ref() {
                        f(TraceRecord::plain(VAddr::new(q[0])));
                        f(TraceRecord::plain(VAddr::new(q[1])));
                        f(TraceRecord::plain(VAddr::new(q[2])));
                        f(TraceRecord::plain(VAddr::new(q[3])));
                    }
                    for &pc in quads.remainder() {
                        f(TraceRecord::plain(VAddr::new(pc)));
                    }
                    let Some(step) = path.next() else {
                        // Stored path exhausted: the run just emitted was
                        // the tail chain's; its top-level return executes
                        // live (same protocol as `replay_stage` running
                        // dry).
                        run_idx += avail as u32;
                        left -= avail;
                        break;
                    };
                    let opx = (step.term_word >> 56) as usize & 7;
                    f(TraceRecord::branch(
                        VAddr::new(step.term_word & TERM_PC_MASK),
                        KIND_BY_OP[opx],
                        step.target_taken & STEP_TAKEN != 0,
                        VAddr::new(step.target_taken & TERM_PC_MASK),
                    ));
                    depth = (depth as i32 + DEPTH_BY_OP[opx] as i32) as u32;
                    cur_id = step.next;
                    run_idx = step.start;
                    run_end = step.end;
                    left -= avail + 1;
                }
                let pos = self.replay_end - path.len() as u32;
                if cur_id != NO_REPLAY {
                    self.cur = cp.desc[cur_id as usize];
                }
                self.run_idx = run_idx;
                self.replay_pos = pos;
                self.replay_depth = depth;
                self.instr_count += entry_left - left;
                // Restore the one-step-ahead staging invariant the pull
                // path relies on (clears `replay_staged` when dry).
                self.replay_stage();
            }
            if left == 0 {
                return;
            }
            let avail = (self.cur.end - self.run_idx) as u64;
            if avail > 0 {
                let run = avail.min(left);
                let start = self.run_idx as usize;
                for &pc in &self.cp.pc_table[start..start + run as usize] {
                    f(TraceRecord::plain(VAddr::new(pc)));
                }
                self.run_idx += run as u32;
                self.instr_count += run;
                left -= run;
                if left == 0 {
                    return;
                }
            }
            f(self.terminate());
            left -= 1;
        }
    }

    /// Appends the next `n` records to `out`.
    pub fn fill_records(&mut self, out: &mut Vec<TraceRecord>, n: usize) {
        out.reserve(n);
        self.for_each_record(n as u64, |r| out.push(r));
    }
}

impl Iterator for CompiledExecutor<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.next_record()
    }
}

impl Drop for CompiledExecutor<'_> {
    /// Contributes newly recorded paths and request counters back to the
    /// program's shared bank, so the next executor — any job, core, or
    /// shard over this translation, in this process or (via the artifact
    /// store) a later one — starts where this one left off.
    fn drop(&mut self) {
        let cp = self.cp;
        // Release this executor's claim on the shared arena first: absorb
        // appends through `Arc::make_mut`, and our own snapshot must not
        // be what forces it to copy.
        self.snapshot = Arc::default();
        cp.absorb(self);
    }
}

/// A record stream through either execution path, selected by [`ExecMode`].
///
/// Consumers that must support the `--no-fastpath` escape hatch hold one of
/// these instead of a concrete executor; both variants yield bit-identical
/// streams for the same `(program, seed)`.
// The size skew (the compiled executor carries its memo map and staging
// state inline) is deliberate: streams are created once per core per job
// and then stepped millions of times, so boxing the hot variant would
// trade a one-time stack copy for an indirection on every record pull.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum RecordStream<'p> {
    /// The reference interpreter.
    Reference(Executor<'p>),
    /// The compiled fast path.
    Compiled(CompiledExecutor<'p>),
}

impl RecordStream<'_> {
    /// Produces the next committed instruction.
    #[inline]
    pub fn next_record(&mut self) -> Option<TraceRecord> {
        match self {
            RecordStream::Reference(ex) => ex.next_record(),
            RecordStream::Compiled(ex) => ex.next_record(),
        }
    }

    /// Emits up to `n` records through `f`, batched on the compiled path.
    #[inline]
    pub fn for_each_record(&mut self, n: u64, mut f: impl FnMut(TraceRecord)) {
        match self {
            RecordStream::Reference(ex) => {
                for _ in 0..n {
                    match ex.next_record() {
                        Some(r) => f(r),
                        None => break,
                    }
                }
            }
            RecordStream::Compiled(ex) => ex.for_each_record(n, f),
        }
    }

    /// Fast-forwards the stream by `n` instructions (warm-up).
    pub fn fast_forward(&mut self, n: u64) {
        match self {
            RecordStream::Reference(ex) => ex.fast_forward(n),
            RecordStream::Compiled(ex) => ex.fast_forward(n),
        }
    }

    /// Instructions emitted so far.
    pub fn instr_count(&self) -> u64 {
        match self {
            RecordStream::Reference(ex) => ex.instr_count(),
            RecordStream::Compiled(ex) => ex.instr_count(),
        }
    }

    /// Requests completed so far.
    pub fn requests_completed(&self) -> u64 {
        match self {
            RecordStream::Reference(ex) => ex.requests_completed(),
            RecordStream::Compiled(ex) => ex.requests_completed(),
        }
    }
}

impl Iterator for RecordStream<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.next_record()
    }
}

impl Program {
    /// The compiled (flattened block-stream) form of this program.
    ///
    /// Translated lazily on first use and cached on the program, so every
    /// clone of an `Arc<Program>` — all cores, shards, and jobs of the
    /// experiment engine — shares one compile per process.
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        self.compiled_cache()
            .get_or_init(|| Arc::new(CompiledProgram::compile(self)))
    }

    /// The compiled form only if some consumer already forced the
    /// translation — the warm-artifact write-back probe, which must not
    /// compile (or export empty tables for) programs no job executed.
    pub fn compiled_if_translated(&self) -> Option<&Arc<CompiledProgram>> {
        self.compiled_cache().get()
    }

    /// Creates a record stream over this program through the given path.
    pub fn stream(&self, seed: u64, mode: ExecMode) -> RecordStream<'_> {
        match mode {
            ExecMode::Reference => RecordStream::Reference(self.executor(seed)),
            ExecMode::Compiled => RecordStream::Compiled(self.compiled().executor(seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Workload, WorkloadSpec};

    fn assert_streams_equal(program: &Program, seed: u64, n: usize) {
        let mut reference = program.executor(seed);
        let mut compiled = program.compiled().executor(seed);
        for i in 0..n {
            let r = reference.next_record();
            let c = compiled.next_record();
            assert_eq!(r, c, "record {i} diverged (seed {seed})");
        }
        assert_eq!(reference.instr_count(), compiled.instr_count());
        assert_eq!(
            reference.requests_completed(),
            compiled.requests_completed()
        );
        assert_eq!(reference.call_depth(), compiled.call_depth());
    }

    #[test]
    fn compiled_stream_matches_reference_on_tiny() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        for seed in [1, 2, 7, 0xDEAD] {
            assert_streams_equal(&p, seed, 200_000);
        }
    }

    #[test]
    fn compiled_stream_matches_reference_on_all_presets() {
        for w in Workload::ALL {
            let p = Program::generate(&w.spec().with_code_kb(128)).unwrap();
            assert_streams_equal(&p, 1, 30_000);
        }
    }

    #[test]
    fn batch_stepping_is_chunk_size_invariant() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let cp = p.compiled();
        let mut pull = cp.executor(9);
        let golden: Vec<_> = (0..40_000).map(|_| pull.next_record().unwrap()).collect();
        for chunk in [1u64, 7, 64, 1000, 40_000] {
            let mut ex = cp.executor(9);
            let mut got = Vec::with_capacity(golden.len());
            while (got.len() as u64) < 40_000 {
                let n = chunk.min(40_000 - got.len() as u64);
                ex.for_each_record(n, |r| got.push(r));
            }
            assert_eq!(got, golden, "chunk size {chunk} diverged");
            assert_eq!(ex.instr_count(), pull.instr_count());
        }
    }

    #[test]
    fn fast_forward_matches_stepping() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let cp = p.compiled();
        let mut stepped = cp.executor(3);
        for _ in 0..12_345 {
            stepped.next_record();
        }
        let mut skipped = cp.executor(3);
        skipped.fast_forward(12_345);
        assert_eq!(skipped.instr_count(), 12_345);
        assert_eq!(stepped.next_record(), skipped.next_record());
    }

    #[test]
    fn unit_threshold_agrees_with_float_comparison() {
        // Exhaustive agreement on the draw values around each threshold,
        // plus random probes: the integer test must decide identically to
        // the reference's `site_unit < prob`.
        let probs = [
            0.0,
            1e-17,
            0.1,
            0.25,
            0.5,
            0.75,
            0.9,
            0.97,
            0.999,
            1.0,
            f64::from_bits(0x3FE5_5555_5555_5555), // ~2/3
        ];
        for &p in &probs {
            let thr = unit_threshold(p);
            for probe in thr.saturating_sub(2)..=(thr + 2).min((1 << 53) - 1) {
                let unit = probe as f64 * (1.0 / (1u64 << 53) as f64);
                assert_eq!(
                    probe < thr,
                    unit < p,
                    "threshold mismatch at prob {p}, draw {probe}"
                );
            }
        }
    }

    #[test]
    fn compile_is_cached_per_program() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        assert!(Arc::ptr_eq(p.compiled(), p.compiled()));
        // A clone taken after compilation shares the cached translation.
        let q = p.clone();
        assert!(Arc::ptr_eq(p.compiled(), q.compiled()));
    }

    #[test]
    fn exec_mode_default_is_compiled() {
        assert_eq!(ExecMode::default(), ExecMode::Compiled);
    }

    #[test]
    fn record_stream_paths_agree() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let mut fast = p.stream(5, ExecMode::Compiled);
        let mut slow = p.stream(5, ExecMode::Reference);
        for _ in 0..50_000 {
            assert_eq!(fast.next_record(), slow.next_record());
        }
        assert_eq!(fast.instr_count(), slow.instr_count());
        assert_eq!(fast.requests_completed(), slow.requests_completed());
    }

    #[test]
    fn block_count_matches_program() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        assert_eq!(p.compiled().block_count(), p.stats().basic_blocks);
    }

    #[test]
    fn memo_caps_parse_accepts_positive_decimals_only() {
        assert_eq!(
            MemoCaps::parse("1024"),
            Some(MemoCaps {
                steps: 1024,
                request_steps: 128
            })
        );
        assert_eq!(MemoCaps::parse(" 8 ").unwrap().request_steps, 1);
        assert_eq!(MemoCaps::parse("0"), None);
        assert_eq!(MemoCaps::parse("-3"), None);
        assert_eq!(MemoCaps::parse("plenty"), None);
        assert_eq!(MemoCaps::parse(&(1u64 << 31).to_string()), None);
        assert_eq!(MemoCaps::DEFAULT.steps, 1 << 16);
        assert_eq!(MemoCaps::DEFAULT.request_steps, 1 << 13);
    }

    #[test]
    fn memo_caps_validate_is_typed() {
        assert_eq!(MemoCaps::validate("512").ok(), MemoCaps::parse("512"));
        let err = MemoCaps::validate("banana").unwrap_err();
        assert_eq!(err.value, "banana");
        let msg = err.to_string();
        assert!(
            msg.contains(MEMO_CAP_ENV) && msg.contains("'banana'"),
            "error must name the variable and the rejected value: {msg}"
        );
        // Unset (or empty) env means the default budget, not an error.
        // The test runner never sets the variable; guard anyway rather
        // than mutate process-global env state under parallel tests.
        if std::env::var_os(MEMO_CAP_ENV).is_none() {
            assert_eq!(MemoCaps::try_from_env(), Ok(MemoCaps::DEFAULT));
        }
    }

    #[test]
    fn memo_table_codec_golden_bytes() {
        let table = MemoTable {
            blocks: 3,
            pc_len: 5,
            entries: vec![MemoEntry {
                entry: 1,
                flavor: 2,
                steps: vec![ReplayStep {
                    term_word: (3 << 56) | 0x10,
                    target_taken: STEP_TAKEN | 0x20,
                    start: 0,
                    end: 5,
                    next: 2,
                }],
            }],
        };
        let bytes = table.to_bytes();
        assert_eq!(
            bytes,
            [
                1, // codec version
                3, 5, 1, // blocks, pc_len, entry count
                1, 2, 1, // entry, flavor, step count
                0x10, 0, 0, 0, 0, 0, 0, 0x03, // term_word, little-endian
                0x20, 0, 0, 0, 0, 0, 0, 0x80, // target_taken (taken bit on top)
                0, 5, 2, // start, end, next
            ],
            "memo-table wire layout is pinned: changing it requires a \
             version bump, not a silent re-encoding"
        );
        assert_eq!(MemoTable::from_bytes(&bytes).unwrap(), table);
        assert!(
            MemoTable::from_bytes(&[9, 0, 0, 0]).is_err(),
            "unknown versions must not decode"
        );
    }

    #[test]
    fn memo_roundtrips_across_program_instances_bit_identically() {
        let a = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let b = Program::generate(&WorkloadSpec::tiny()).unwrap();
        {
            let mut ex = a.compiled().executor(1);
            ex.for_each_record(150_000, |_| {});
        }
        let stats = a.compiled().memo_stats();
        assert!(stats.recorded > 0 && stats.tables > 0);

        let table = a.compiled().export_memo();
        assert_eq!(table.tables(), stats.tables);
        assert_eq!(table.steps(), stats.steps);
        assert_eq!(
            table.to_bytes(),
            a.compiled().export_memo().to_bytes(),
            "exports are canonical: same warm state, same bytes"
        );

        assert!(
            b.compiled().import_memo(&table),
            "a table from the same spec must fingerprint-match"
        );
        // The imported instance replays the persisted paths and still
        // matches the reference executor record for record.
        assert_streams_equal(&b, 1, 150_000);
        let warm = b.compiled().memo_stats();
        assert!(warm.replayed > 0, "imported paths must actually replay");
        assert_eq!(warm.recorded, 0, "a fully warm run records nothing new");
        assert!(
            b.compiled().export_new_memo().is_none(),
            "import marks the bank clean"
        );
    }

    #[test]
    fn import_rejects_foreign_and_corrupt_tables() {
        let tiny = Program::generate(&WorkloadSpec::tiny()).unwrap();
        {
            let mut ex = tiny.compiled().executor(3);
            ex.for_each_record(60_000, |_| {});
        }
        let table = tiny.compiled().export_memo();
        let other = Program::generate(&Workload::WebFrontend.spec().with_code_kb(128)).unwrap();
        assert!(
            !other.compiled().import_memo(&table),
            "fingerprint mismatch is a miss"
        );

        let fresh = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let i = table
            .entries
            .iter()
            .position(|e| !e.steps.is_empty())
            .expect("some path has steps");
        let mut bad = table.clone();
        bad.entries[i].steps[0].next = bad.blocks;
        assert!(
            !fresh.compiled().import_memo(&bad),
            "successor out of range"
        );
        let mut bad = table.clone();
        bad.entries[i].steps[0].term_word |= 0xFF << 48;
        assert!(!fresh.compiled().import_memo(&bad), "non-zero pad byte");
        let mut bad = table.clone();
        bad.entries[i].steps[0].end = bad.pc_len + 1;
        assert!(!fresh.compiled().import_memo(&bad), "run past pc_table");
        assert_eq!(
            fresh.compiled().memo_stats().tables,
            0,
            "rejected imports leave the bank untouched"
        );
        assert!(fresh.compiled().import_memo(&table));
    }

    #[test]
    fn export_new_memo_tracks_dirtiness() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let cp = p.compiled();
        assert!(cp.export_new_memo().is_none(), "an empty bank is clean");
        {
            let mut ex = cp.executor(1);
            ex.for_each_record(50_000, |_| {});
        }
        let first = cp.export_new_memo().expect("a cold run dirties the bank");
        assert!(first.tables() > 0);
        assert!(
            cp.export_new_memo().is_none(),
            "export marks the bank clean"
        );
        let before = cp.memo_stats().tables;
        {
            let mut ex = cp.executor(2);
            ex.for_each_record(50_000, |_| {});
        }
        let after = cp.memo_stats().tables;
        assert_eq!(
            cp.export_new_memo().is_some(),
            after > before,
            "dirtiness must track exactly whether new keys landed"
        );
    }

    #[test]
    fn warm_bank_is_shared_across_executors() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let cp = p.compiled();
        {
            let mut ex = cp.executor(5);
            ex.for_each_record(80_000, |_| {});
        }
        let cold = cp.memo_stats();
        assert!(cold.recorded > 0, "first executor records");
        {
            let mut ex = cp.executor(5);
            ex.for_each_record(80_000, |_| {});
        }
        let warm = cp.memo_stats();
        assert_eq!(
            warm.recorded, cold.recorded,
            "an identical second executor replays instead of re-recording"
        );
        assert!(warm.replayed > cold.replayed);
    }
}
