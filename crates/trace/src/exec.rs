//! Trace executor: walks a [`Program`] and emits the committed instruction
//! stream.
//!
//! The executor is the synthetic stand-in for the paper's trace collection
//! on Flexus/Simics: it produces the correct-path instruction stream of one
//! core serving requests. Each simulated core gets its own executor (own
//! seed, own request interleaving) over the *same* shared program, which is
//! what makes cross-core metadata sharing (SHIFT, Confluence) effective.

use confluence_types::{DetRng, TraceRecord, VAddr};

use crate::program::{Program, Term};

/// Maximum plausible call depth; exceeded only by a generator bug.
pub(crate) const STACK_GUARD: usize = 512;

/// 64-bit mixer (splitmix-style finalizer).
///
/// Shared by the reference [`Executor`] and the compiled fast path
/// (`crate::compile`); keeping one definition is what guarantees the two
/// paths draw bit-identical outcomes.
#[inline]
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut h = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Deterministic per-(site, flavor) draw in `[0, 1)`.
#[inline]
pub(crate) fn site_unit(flavor: u64, site: u32, salt: u64) -> f64 {
    (mix(flavor ^ salt, site as u64) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Streaming executor over a generated program.
///
/// Implements [`Iterator`] over [`TraceRecord`]s and never terminates on its
/// own (servers run forever); consumers bound it with `take(n)`.
///
/// # Example
///
/// ```
/// use confluence_trace::{Program, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Program::generate(&WorkloadSpec::tiny())?;
/// let trace: Vec<_> = program.executor(1).take(1000).collect();
/// assert_eq!(trace.len(), 1000);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    rng: DetRng,
    /// Current basic block index.
    bb: u32,
    /// Next instruction slot within the block (0..=plain; `plain` is the
    /// terminator slot).
    pos: u8,
    /// Return-address stack of basic-block indices.
    stack: Vec<u32>,
    /// Cumulative request-type weights for fast scheduling.
    request_cdf: Vec<f64>,
    /// Per-request "flavor": every data-dependent outcome (branch
    /// direction, dispatch target, loop trip count) is a deterministic
    /// function of `(site, flavor)`. Flavors are drawn from a bounded pool
    /// per request type, so whole request paths *recur* — the request-level
    /// recurrence server workloads exhibit (paper Section 2.2).
    flavor: u64,
    /// Iteration counters for active loop back-edges, keyed by site.
    loop_counters: std::collections::HashMap<u32, u32>,
    instr_count: u64,
    requests_completed: u64,
}

impl Program {
    /// Creates an executor over this program with the given per-core seed.
    pub fn executor(&self, seed: u64) -> Executor<'_> {
        Executor::new(self, seed)
    }
}

impl<'p> Executor<'p> {
    /// Creates an executor with a dedicated dynamic-behaviour seed.
    pub fn new(program: &'p Program, seed: u64) -> Executor<'p> {
        let mut rng = DetRng::seed_from(seed ^ 0xE8EC_u64.rotate_left(32));
        let total: f64 = program.request_entries().iter().map(|&(_, w)| w).sum();
        let mut acc = 0.0;
        let request_cdf = program
            .request_entries()
            .iter()
            .map(|&(_, w)| {
                acc += w / total;
                acc
            })
            .collect();
        let first = program.request_entries()[0].0;
        let mut ex = Executor {
            program,
            rng: rng.fork(1),
            bb: first,
            pos: 0,
            stack: Vec::with_capacity(64),
            request_cdf,
            flavor: 0,
            loop_counters: std::collections::HashMap::new(),
            instr_count: 0,
            requests_completed: 0,
        };
        // Start at a randomized request so per-core phases differ.
        ex.bb = ex.schedule_next();
        ex
    }

    /// Instructions emitted so far.
    pub fn instr_count(&self) -> u64 {
        self.instr_count
    }

    /// Requests completed so far (top-level handler returns).
    pub fn requests_completed(&self) -> u64 {
        self.requests_completed
    }

    /// Current call depth.
    pub fn call_depth(&self) -> usize {
        self.stack.len()
    }

    /// Fast-forwards the executor by `n` instructions (warm-up).
    ///
    /// Named `fast_forward` (not `skip`) to avoid shadowing `Iterator::skip`.
    pub fn fast_forward(&mut self, n: u64) {
        for _ in 0..n {
            if self.next_record().is_none() {
                break;
            }
        }
    }

    /// Picks the next top-level routine: an OS service routine with the
    /// spec's interleave probability, otherwise a request handler by
    /// popularity.
    fn schedule_next(&mut self) -> u32 {
        let spec = self.program.spec();
        self.loop_counters.clear();
        let os = self.program.os_entries();
        if !os.is_empty() && self.rng.chance(spec.os_interleave) {
            let idx = self.rng.index(os.len());
            // OS routines have a small flavor pool of their own.
            self.flavor = mix(0x05_05, (idx as u64) << 32 | self.rng.below(8));
            return os[idx];
        }
        let draw = self.rng.f64();
        let idx = self
            .request_cdf
            .iter()
            .position(|&c| draw < c)
            .unwrap_or(self.request_cdf.len() - 1);
        // Draw a flavor from the request type's bounded pool: the same
        // flavor recurs every ~pool_size requests of this type.
        let flavor_idx = self.rng.below(spec.flavors_per_request as u64);
        self.flavor = mix((idx as u64) << 32, flavor_idx);
        self.program.request_entries()[idx].0
    }

    /// Weighted pick that is deterministic per (site, request flavor):
    /// the same indirect site resolves identically within one request
    /// flavor, preserving the target distribution across flavors.
    fn pick_weighted(&self, site: u32, choices: &[(u32, f32)]) -> u32 {
        let unit = site_unit(self.flavor, site, 0x1D1) as f32;
        let total: f32 = choices.iter().map(|&(_, w)| w).sum();
        let mut draw = unit * total;
        for &(t, w) in choices {
            draw -= w;
            if draw < 0.0 {
                return t;
            }
        }
        choices.last().expect("indirect site has no targets").0
    }

    /// Outcome of a conditional branch at `site`.
    ///
    /// Forward conditionals are a pure function of (site, flavor). Backward
    /// conditionals are loop back-edges: the flavor fixes the trip count
    /// (mean `1/(1 - taken_prob)`), and an iteration counter walks it.
    fn cond_taken(&mut self, site: u32, target: u32, taken_prob: f64) -> bool {
        if target <= self.bb {
            // Loop back-edge: deterministic trip count for this flavor.
            let mean = (1.0 / (1.0 - taken_prob.min(0.97))).ceil() as u64;
            let span = (2 * mean).max(2);
            let trip = 1 + (mix(self.flavor ^ 0x7219, site as u64) % span) as u32;
            let ctr = self.loop_counters.entry(site).or_insert(0);
            *ctr += 1;
            if *ctr < trip {
                true
            } else {
                self.loop_counters.remove(&site);
                false
            }
        } else {
            site_unit(self.flavor, site, 0xC02D) < taken_prob
        }
    }

    /// Produces the next committed instruction.
    #[inline]
    pub fn next_record(&mut self) -> Option<TraceRecord> {
        loop {
            let bbs = self.program.bbs();
            let bb = &bbs[self.bb as usize];
            if self.pos < bb.plain {
                let pc = bb.base.add_instrs(self.pos as usize);
                self.pos += 1;
                self.instr_count += 1;
                return Some(TraceRecord::plain(pc));
            }
            // Terminator slot.
            match &bb.term {
                Term::FallThrough => {
                    self.bb += 1;
                    self.pos = 0;
                    continue;
                }
                term => {
                    let pc = bb.term_pc();
                    let kind = term.kind().expect("non-fallthrough terminator has a kind");
                    let (taken, next_bb, target): (bool, u32, VAddr) = match term {
                        Term::Cond { target, taken_prob } => {
                            let t_addr = bbs[*target as usize].base;
                            if self.cond_taken(self.bb, *target, *taken_prob) {
                                (true, *target, t_addr)
                            } else {
                                (false, self.bb + 1, t_addr)
                            }
                        }
                        Term::Jump { target } => (true, *target, bbs[*target as usize].base),
                        Term::Call { callee } => {
                            self.push_return(self.bb + 1);
                            (true, *callee, bbs[*callee as usize].base)
                        }
                        Term::IndirectCall { choices } => {
                            let callee = self.pick_weighted(self.bb, choices);
                            self.push_return(self.bb + 1);
                            (true, callee, bbs[callee as usize].base)
                        }
                        Term::IndirectJump { choices } => {
                            let t = self.pick_weighted(self.bb, choices);
                            (true, t, bbs[t as usize].base)
                        }
                        Term::Return => match self.stack.pop() {
                            Some(ret) => (true, ret, bbs[ret as usize].base),
                            None => {
                                self.requests_completed += 1;
                                let next = self.schedule_next();
                                (true, next, bbs[next as usize].base)
                            }
                        },
                        Term::FallThrough => unreachable!(),
                    };
                    self.bb = next_bb;
                    self.pos = 0;
                    self.instr_count += 1;
                    return Some(TraceRecord::branch(pc, kind, taken, target));
                }
            }
        }
    }

    fn push_return(&mut self, ret_bb: u32) {
        debug_assert!(self.stack.len() < STACK_GUARD, "runaway call depth");
        self.stack.push(ret_bb);
    }
}

impl Iterator for Executor<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.next_record()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use crate::Program;
    use confluence_types::BranchKind;

    fn tiny_program() -> Program {
        Program::generate(&WorkloadSpec::tiny()).unwrap()
    }

    #[test]
    fn executor_is_deterministic() {
        let p = tiny_program();
        let a: Vec<_> = p.executor(7).take(5000).collect();
        let b: Vec<_> = p.executor(7).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_interleavings() {
        let p = tiny_program();
        let a: Vec<_> = p.executor(1).take(5000).collect();
        let b: Vec<_> = p.executor(2).take(5000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn control_flow_is_consistent() {
        // Every record's pc must equal the previous record's next_pc.
        let p = tiny_program();
        let mut prev: Option<TraceRecord> = None;
        for r in p.executor(3).take(50_000) {
            if let Some(pr) = prev {
                assert_eq!(
                    r.pc,
                    pr.next_pc(),
                    "discontinuity after {pr:?} -> {r:?} (trace must be sequentially consistent)"
                );
            }
            prev = Some(r);
        }
    }

    #[test]
    fn calls_and_returns_balance() {
        let p = tiny_program();
        let mut ex = p.executor(4);
        let mut calls = 0i64;
        let mut returns = 0i64;
        for _ in 0..100_000 {
            let r = ex.next_record().unwrap();
            if let Some(b) = r.branch {
                match b.kind {
                    BranchKind::Call | BranchKind::IndirectCall => calls += 1,
                    BranchKind::Return => returns += 1,
                    _ => {}
                }
            }
        }
        // Returns may exceed calls (top-level handlers return to the
        // scheduler), but the difference is bounded by requests completed.
        let extra_returns = returns - (calls - ex.call_depth() as i64);
        assert!(extra_returns >= 0);
        assert!(extra_returns as u64 <= ex.requests_completed() + 1);
    }

    #[test]
    fn requests_complete_and_depth_stays_bounded() {
        let p = tiny_program();
        let mut ex = p.executor(5);
        for _ in 0..200_000 {
            ex.next_record();
            assert!(ex.call_depth() < 64, "depth {}", ex.call_depth());
        }
        assert!(
            ex.requests_completed() > 10,
            "only {} requests",
            ex.requests_completed()
        );
    }

    #[test]
    fn branch_mix_is_plausible() {
        let p = tiny_program();
        let mut branches = 0usize;
        let mut conds = 0usize;
        let mut taken = 0usize;
        let n = 200_000;
        for r in p.executor(6).take(n) {
            if let Some(b) = r.branch {
                branches += 1;
                if b.kind == BranchKind::Conditional {
                    conds += 1;
                }
                if b.taken {
                    taken += 1;
                }
            }
        }
        let bfrac = branches as f64 / n as f64;
        assert!((0.10..0.40).contains(&bfrac), "branch fraction {bfrac}");
        assert!(conds > branches / 4, "too few conditionals");
        assert!(taken > branches / 3, "too few taken branches");
    }

    #[test]
    fn fast_forward_advances_instruction_count() {
        let p = tiny_program();
        let mut ex = p.executor(8);
        ex.fast_forward(1234);
        assert_eq!(ex.instr_count(), 1234);
    }

    #[test]
    fn loops_terminate_under_flavor_determinism() {
        // Loop back-edges use flavor-fixed trip counts; no request may spin
        // forever (bounded by the structural guard of the trip counter).
        let p = tiny_program();
        let mut ex = p.executor(11);
        let mut max_run_without_request = 0u64;
        let mut last_done = 0;
        let mut since = 0u64;
        for _ in 0..400_000 {
            ex.next_record();
            since += 1;
            if ex.requests_completed() != last_done {
                last_done = ex.requests_completed();
                max_run_without_request = max_run_without_request.max(since);
                since = 0;
            }
        }
        assert!(
            ex.requests_completed() > 3,
            "requests: {}",
            ex.requests_completed()
        );
    }

    #[test]
    fn pcs_stay_inside_generated_code() {
        let p = tiny_program();
        let bytes = p.stats().code_bytes as u64;
        for r in p.executor(9).take(100_000) {
            let off =
                r.pc.raw()
                    .checked_sub(0x4000_0000)
                    .expect("pc below code base");
            assert!(off < bytes, "pc {} outside code", r.pc);
        }
    }
}
