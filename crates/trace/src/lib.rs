//! Synthetic scale-out server workload generator and trace model.
//!
//! The paper evaluates Confluence on commercial server workloads (TPC-C on
//! DB2 and Oracle, TPC-H, Darwin streaming, SPECweb99 on Apache) traced
//! under Flexus/Simics. Those traces are not redistributable, so this crate
//! generates *synthetic server programs* whose statistical properties match
//! the paper's workload characterization:
//!
//! - multi-megabyte instruction working sets laid out over a deep stack of
//!   service layers (paper §1: "over a dozen layers of services");
//! - request-level recurring control flow producing long temporal
//!   instruction streams (paper §2.2);
//! - ~3.5 static / ~1.5 dynamic branches per 64-byte block (Table 2);
//! - BTB footprints that saturate 16K entries (32K for OLTP/Oracle, Fig. 1).
//!
//! # Quickstart
//!
//! ```
//! use confluence_trace::{Program, Workload, TraceStats};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Use the calibrated preset scaled down for a quick run.
//! let spec = Workload::WebFrontend.spec().with_code_kb(128);
//! let program = Program::generate(&spec)?;
//! let stats = TraceStats::collect(program.executor(0).take(100_000), &program);
//! assert!(stats.branch_fraction() > 0.1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod compile;
mod exec;
mod program;
mod serialize;
mod spec;
mod stats;

pub use compile::{
    CompiledExecutor, CompiledProgram, ExecMode, MemoCapError, MemoCaps, MemoStats, MemoTable,
    RecordStream, MEMO_CAP_ENV, NO_FASTPATH_ENV,
};
pub use exec::Executor;
pub use program::{Program, ProgramStats};
pub use serialize::{decode_records, encode_records, DecodeTraceError};
pub use spec::{TermMix, Workload, WorkloadSpec};
pub use stats::{StreamStats, TraceStats};
