//! Synthetic server program model and generator.
//!
//! A [`Program`] is a statically laid-out control-flow graph shaped like the
//! server software the paper characterizes: a deep stack of service layers,
//! multiple request types with partially overlapping code paths, shared
//! library/OS code, cold error paths guarded by rarely-taken conditionals,
//! and a branch mix calibrated to Table 2 of the paper.
//!
//! Programs are generated deterministically from a [`WorkloadSpec`] and its
//! `structure_seed`: the same spec always produces the identical program,
//! byte for byte, so simulation results are reproducible.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use confluence_types::{
    BlockAddr, BranchKind, ConfigError, DetRng, PredecodeSource, PredecodedBranch, VAddr,
    INSTR_BYTES,
};

use crate::compile::CompiledProgram;
use crate::spec::WorkloadSpec;

/// Base virtual address where generated code is laid out.
const CODE_BASE: u64 = 0x4000_0000;
/// Cap on plain (non-branch) instructions per basic block.
const MAX_PLAIN: usize = 14;
/// Fraction of each pool's functions that are cold (error/slow paths).
const COLD_FRAC: f64 = 0.35;
/// Fraction of functions dedicated to OS/runtime service routines.
const OS_FRAC: f64 = 0.10;

/// Basic-block terminator, with targets pre-resolved to basic-block indices.
#[derive(Clone, Debug)]
pub(crate) enum Term {
    /// Conditional direct branch; falls through to the next block when not
    /// taken. `taken_prob` drives the executor's outcome draw.
    Cond { target: u32, taken_prob: f64 },
    /// Unconditional direct jump.
    Jump { target: u32 },
    /// Direct call; the return address is the next basic block.
    Call { callee: u32 },
    /// Indirect call through a function pointer / vtable.
    IndirectCall { choices: Box<[(u32, f32)]> },
    /// Indirect jump (switch dispatch) within the function.
    IndirectJump { choices: Box<[(u32, f32)]> },
    /// Return to the caller.
    Return,
    /// No branch: execution continues into the next basic block.
    FallThrough,
}

impl Term {
    /// Branch kind of the terminator, or `None` for fall-through.
    pub(crate) fn kind(&self) -> Option<BranchKind> {
        match self {
            Term::Cond { .. } => Some(BranchKind::Conditional),
            Term::Jump { .. } => Some(BranchKind::Unconditional),
            Term::Call { .. } => Some(BranchKind::Call),
            Term::IndirectCall { .. } => Some(BranchKind::IndirectCall),
            Term::IndirectJump { .. } => Some(BranchKind::IndirectJump),
            Term::Return => Some(BranchKind::Return),
            Term::FallThrough => None,
        }
    }
}

/// One basic block: `plain` non-branch instructions followed by an optional
/// terminating branch.
#[derive(Clone, Debug)]
pub(crate) struct Bb {
    /// Address of the first instruction.
    pub base: VAddr,
    /// Number of non-branch instructions before the terminator.
    pub plain: u8,
    /// Terminator.
    pub term: Term,
}

impl Bb {
    /// Total instruction count of the block (including the terminator).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.plain as usize
            + if matches!(self.term, Term::FallThrough) {
                0
            } else {
                1
            }
    }

    /// Address of the terminating branch instruction.
    ///
    /// Only meaningful when the block has a terminator.
    pub(crate) fn term_pc(&self) -> VAddr {
        self.base.add_instrs(self.plain as usize)
    }
}

/// Summary statistics of a generated program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Total instruction bytes laid out.
    pub code_bytes: usize,
    /// Number of functions.
    pub functions: usize,
    /// Number of basic blocks.
    pub basic_blocks: usize,
    /// Number of static branch instructions.
    pub static_branches: usize,
    /// Number of 64-byte instruction blocks containing code.
    pub code_blocks: usize,
}

/// A generated synthetic server program.
///
/// `Program` is immutable once generated; executors borrow it (cheaply
/// shareable across the 16 simulated cores via `Arc`).
///
/// # Example
///
/// ```
/// use confluence_trace::{Program, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Program::generate(&WorkloadSpec::tiny())?;
/// assert!(program.stats().functions > 10);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Program {
    spec: WorkloadSpec,
    bbs: Vec<Bb>,
    /// Entry basic block of each request type, with popularity weights.
    request_entries: Vec<(u32, f64)>,
    /// Entry basic blocks of OS service routines (uniform weights).
    os_entries: Vec<u32>,
    /// Predecode oracle: block address -> static branches in the block.
    predecode: HashMap<BlockAddr, Vec<PredecodedBranch>>,
    stats: ProgramStats,
    /// Lazily translated fast-path form (see [`Program::compiled`]).
    compiled: OnceLock<Arc<CompiledProgram>>,
}

impl Program {
    /// Generates a program from a workload specification.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec fails [`WorkloadSpec::validate`].
    pub fn generate(spec: &WorkloadSpec) -> Result<Program, ConfigError> {
        spec.validate()?;
        let mut rng = DetRng::seed_from(spec.structure_seed);
        Ok(Builder::new(spec.clone(), &mut rng).build())
    }

    /// The specification this program was generated from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Summary statistics of the static program.
    pub fn stats(&self) -> ProgramStats {
        self.stats
    }

    /// Entry addresses and popularity weights of the request types.
    pub fn request_entry_addrs(&self) -> Vec<(VAddr, f64)> {
        self.request_entries
            .iter()
            .map(|&(bb, w)| (self.bbs[bb as usize].base, w))
            .collect()
    }

    /// True if the given 64-byte block holds generated code.
    pub fn block_has_code(&self, block: BlockAddr) -> bool {
        let base = CODE_BASE >> 6;
        let end = (CODE_BASE as usize + self.stats.code_bytes).div_ceil(64) as u64;
        (base..end).contains(&block.raw())
    }

    pub(crate) fn bbs(&self) -> &[Bb] {
        &self.bbs
    }

    pub(crate) fn request_entries(&self) -> &[(u32, f64)] {
        &self.request_entries
    }

    pub(crate) fn os_entries(&self) -> &[u32] {
        &self.os_entries
    }

    pub(crate) fn compiled_cache(&self) -> &OnceLock<Arc<CompiledProgram>> {
        &self.compiled
    }
}

impl PredecodeSource for Program {
    fn branches_in_block(&self, block: BlockAddr) -> &[PredecodedBranch] {
        self.predecode.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Per-layer function pools built during generation.
#[derive(Clone)]
struct LayerPools {
    /// `pools[r]` = hot entry bbs of request type `r`'s functions.
    request: Vec<Vec<u32>>,
    /// Shared (library) function entries.
    shared: Vec<u32>,
    /// Cold function entries (error/slow paths).
    cold: Vec<u32>,
    /// OS routine entries.
    os: Vec<u32>,
}

struct Builder {
    spec: WorkloadSpec,
    rng: DetRng,
    bbs: Vec<Bb>,
    cursor: u64,
    request_entries: Vec<(u32, f64)>,
    os_entries: Vec<u32>,
}

impl Builder {
    fn new(spec: WorkloadSpec, rng: &mut DetRng) -> Builder {
        Builder {
            spec,
            rng: rng.fork(0xB11D),
            bbs: Vec::new(),
            cursor: CODE_BASE,
            request_entries: Vec::new(),
            os_entries: Vec::new(),
        }
    }

    fn build(mut self) -> Program {
        let spec = self.spec.clone();
        let total_funcs = self.estimate_function_count();
        let os_funcs = ((total_funcs as f64 * OS_FRAC) as usize).max(spec.layers);
        let app_funcs = total_funcs - os_funcs;
        let funcs_per_layer = (app_funcs / spec.layers).max(spec.request_types + 2);

        // Generate from the deepest (leaf) layer up so call targets exist
        // before their callers are generated.
        let mut below: Option<LayerPools> = None;
        let mut layer_pools: Vec<LayerPools> = Vec::with_capacity(spec.layers);
        for layer in (0..spec.layers).rev() {
            // OS service routines are entered from the top of the stack only.
            let os_here = if layer == 0 { os_funcs } else { 0 };
            let pools = self.generate_layer(layer, funcs_per_layer, os_here, below.as_ref());
            below = Some(pools.clone());
            layer_pools.push(pools);
        }
        layer_pools.reverse();

        // Request entries live in layer 0's per-request pools.
        let top = &layer_pools[0];
        let mut entries = Vec::with_capacity(spec.request_types);
        for (r, pool) in top.request.iter().enumerate() {
            let entry = pool[0];
            let weight = 1.0 / ((r + 1) as f64).powf(spec.request_zipf);
            entries.push((entry, weight));
        }
        self.request_entries = entries;
        self.os_entries = top.os.clone();

        let predecode = self.build_predecode();
        let stats = ProgramStats {
            code_bytes: (self.cursor - CODE_BASE) as usize,
            functions: total_funcs,
            basic_blocks: self.bbs.len(),
            static_branches: self
                .bbs
                .iter()
                .filter(|b| !matches!(b.term, Term::FallThrough))
                .count(),
            code_blocks: predecode_block_span(CODE_BASE, self.cursor),
        };

        Program {
            spec,
            bbs: self.bbs,
            request_entries: self.request_entries,
            os_entries: self.os_entries,
            predecode,
            stats,
            compiled: OnceLock::new(),
        }
    }

    fn estimate_function_count(&self) -> usize {
        let mix = &self.spec.term_mix;
        let mean_bbs = (self.spec.bb_per_func.0 + self.spec.bb_per_func.1) as f64 / 2.0;
        // Every non-fallthrough terminator adds one branch instruction.
        let mean_len = self.spec.plain_len_mean + (1.0 - mix.fallthrough);
        // Cold-excursion stubs add ~2 tiny blocks per cold call site.
        let stub_overhead = 1.0 + 2.0 * self.spec.cold_call_prob * mix.call / 4.0;
        let bytes_per_func = mean_bbs * mean_len * INSTR_BYTES as f64 * stub_overhead;
        ((self.spec.target_code_kb * 1024) as f64 / bytes_per_func).max(16.0) as usize
    }

    /// Generates all functions of one layer and returns its pools.
    fn generate_layer(
        &mut self,
        layer: usize,
        funcs: usize,
        os_funcs: usize,
        below: Option<&LayerPools>,
    ) -> LayerPools {
        let spec = self.spec.clone();
        let shared_n = ((funcs as f64 * spec.shared_frac) as usize).max(1);
        let cold_n = ((funcs as f64 * COLD_FRAC * 0.5) as usize).max(1);
        let hot_n = funcs
            .saturating_sub(shared_n + cold_n)
            .max(spec.request_types);
        let per_request = (hot_n / spec.request_types).max(1);

        let mut pools = LayerPools {
            request: Vec::with_capacity(spec.request_types),
            shared: Vec::new(),
            cold: Vec::new(),
            os: Vec::new(),
        };

        for r in 0..spec.request_types {
            let mut pool = Vec::with_capacity(per_request);
            for f in 0..per_request {
                // The first function of each layer-0 pool is the request
                // handler: a call-rich spine walking the service stack.
                if layer == 0 && f == 0 {
                    pool.push(self.generate_handler(below, Some(r)));
                } else {
                    pool.push(self.generate_function(layer, below, Some(r), false));
                }
            }
            pools.request.push(pool);
        }
        for _ in 0..shared_n {
            let f = self.generate_function(layer, below, None, false);
            pools.shared.push(f);
        }
        for _ in 0..cold_n {
            let f = self.generate_function(layer, below, None, true);
            pools.cold.push(f);
        }
        for _ in 0..os_funcs {
            let f = self.generate_handler(below, None);
            pools.os.push(f);
        }
        pools
    }

    /// Generates a top-level request handler: a spine of mandatory calls
    /// into the next service layer, interleaved with light control flow.
    /// Handlers guarantee that every request actually walks the service
    /// stack (a handler that returns immediately would make most requests
    /// degenerate).
    fn generate_handler(&mut self, below: Option<&LayerPools>, request: Option<usize>) -> u32 {
        let spec = self.spec.clone();
        let entry = self.bbs.len() as u32;
        let spine = self.rng.range(5, 12) as usize;
        for _ in 0..spine {
            // Optional flavor-dependent conditional detour over the call.
            let plain = self.tight_plain_len(spec.plain_len_mean);
            match self.pick_callee(below, request) {
                Some(callee) => self.push_bb(plain, Term::Call { callee }),
                None => self.push_bb(plain.max(1), Term::FallThrough),
            }
            // A light conditional between calls keeps branch density
            // realistic; it skips at most the next spine block.
            if self.rng.chance(0.5) {
                let next = self.bbs.len() as u32 + 1;
                let taken_prob = if self.rng.chance(spec.taken_bias_frac) {
                    spec.strong_bias
                } else {
                    1.0 - spec.strong_bias
                };
                let cond_plain = self.tight_plain_len(2.0);
                self.push_bb(
                    cond_plain,
                    Term::Cond {
                        target: next,
                        taken_prob,
                    },
                );
            }
        }
        self.push_bb(1, Term::Return);
        self.cursor = (self.cursor + 63) & !63;
        entry
    }

    /// Generates one function; returns the entry basic-block index.
    fn generate_function(
        &mut self,
        layer: usize,
        below: Option<&LayerPools>,
        request: Option<usize>,
        cold: bool,
    ) -> u32 {
        let spec = self.spec.clone();
        // Deeper service layers are leaf-ward utilities with fewer call
        // sites. Without this damping the call tree's branching factor
        // exceeds 1 and request sizes explode into the millions of
        // instructions, destroying request-level recurrence.
        let depth_frac = layer as f64 / (spec.layers.max(2) - 1) as f64;
        let call_damp = ((0.95 - 0.75 * depth_frac) * spec.call_scale).max(0.10);
        // Cold error/slow-path functions are longer in basic blocks (lots
        // of case handling) though short in bytes (dense branching).
        let (bb_lo, bb_hi) = if cold {
            (spec.bb_per_func.0 * 2, spec.bb_per_func.1 * 2)
        } else {
            spec.bb_per_func
        };
        let n = self.rng.range(bb_lo as u64, bb_hi as u64) as usize;
        let entry = self.bbs.len() as u32;

        // Decide the loop structure up front.
        let has_loop = n >= 4 && self.rng.chance(spec.loop_prob);
        let (loop_head, loop_tail) = if has_loop {
            let head = self.rng.index(n / 2);
            let tail = head + 1 + self.rng.index(n - head - 2).min(n - head - 2);
            (head, tail.min(n - 2).max(head + 1))
        } else {
            (0, 0)
        };

        // Cold excursions discovered while emitting main blocks; stubs are
        // appended after the last block: [call cold_fn][jump back].
        let mut pending_stubs: Vec<(usize, u32)> = Vec::new(); // (resume bb offset, cold callee)

        // Hot code has longer straight-line runs with *tight* length
        // variance (compilers lay hot paths out in regular strides); cold
        // (error/slow-path) code is branch-dense with geometric lengths.
        // This split produces the paper's measured gap between static
        // (~3.5/block) and dynamic (~1.5/block) branch densities (Table 2),
        // which AirBTB's 3-entry bundles rely on: nearly all *hot* blocks
        // hold at most three branches, while the density tail comes from
        // rarely-executed cold code.
        let plain_mean = if cold {
            spec.plain_len_cold
        } else {
            spec.plain_len_mean
        };
        let plain_p = plain_mean / (1.0 + plain_mean);
        let mut term_kinds = Vec::with_capacity(n);
        for i in 0..n {
            if i == n - 1 {
                term_kinds.push(TermChoice::Return);
            } else if has_loop && i == loop_tail {
                term_kinds.push(TermChoice::LoopBack);
            } else {
                term_kinds.push(self.draw_term_choice(call_damp));
            }
        }

        for (i, choice) in term_kinds.iter().enumerate() {
            let plain = if cold {
                self.rng.geometric(plain_p, MAX_PLAIN) as u8
            } else {
                self.tight_plain_len(plain_mean)
            };
            let term = match choice {
                TermChoice::Return => Term::Return,
                TermChoice::LoopBack => Term::Cond {
                    target: entry + loop_head as u32,
                    taken_prob: spec.loop_continue,
                },
                TermChoice::FallThrough => Term::FallThrough,
                TermChoice::Cond => {
                    // Occasionally guard a cold excursion; otherwise a
                    // forward skip with a calibrated bias.
                    if !cold && self.rng.chance(spec.cold_call_prob * 0.6) {
                        if let Some(callee) = self.pick_cold_callee(below) {
                            // Stub pair appended after block n-1; target
                            // index = entry + n + 2*stub_no.
                            let stub_no = pending_stubs.len() as u32;
                            pending_stubs.push((i + 1, callee));
                            Term::Cond {
                                target: entry + n as u32 + 2 * stub_no,
                                taken_prob: 0.05 + self.rng.f64() * 0.15,
                            }
                        } else {
                            self.forward_cond(entry, i, n)
                        }
                    } else {
                        self.forward_cond(entry, i, n)
                    }
                }
                TermChoice::Jump => {
                    let skip = 1 + self.rng.index(3.min(n - i - 1).max(1));
                    Term::Jump {
                        target: entry + ((i + skip).min(n - 1)) as u32,
                    }
                }
                TermChoice::Call => match self.pick_callee(below, request) {
                    Some(callee) => Term::Call { callee },
                    None => Term::FallThrough,
                },
                TermChoice::IndirectCall => match self.pick_indirect_callees(below, request) {
                    Some(choices) => Term::IndirectCall { choices },
                    None => Term::FallThrough,
                },
                TermChoice::IndirectJump => {
                    let fanout = self
                        .rng
                        .range(spec.indirect_fanout.0 as u64, spec.indirect_fanout.1 as u64)
                        as usize;
                    let avail = n - i - 1;
                    if avail < 2 {
                        Term::FallThrough
                    } else {
                        let mut choices = Vec::with_capacity(fanout.min(avail));
                        for k in 0..fanout.min(avail) {
                            let t = entry + (i + 1 + (k % avail)) as u32;
                            let w = 1.0 / (k + 1) as f32;
                            choices.push((t, w));
                        }
                        Term::IndirectJump {
                            choices: choices.into_boxed_slice(),
                        }
                    }
                }
            };
            // A fall-through block must contain at least one instruction.
            let plain = if matches!(term, Term::FallThrough) {
                plain.max(1)
            } else {
                plain
            };
            self.push_bb(plain, term);
        }

        // Emit cold-excursion stubs: [call cold][jump back-to-resume].
        let stubs = pending_stubs.clone();
        for (resume, callee) in stubs {
            self.push_bb(0, Term::Call { callee });
            self.push_bb(
                0,
                Term::Jump {
                    target: entry + resume as u32,
                },
            );
        }

        // Functions start at a fresh 64-byte block boundary (compilers
        // align hot function entries to cache lines). This keeps one
        // function's cold stub cluster from sharing a block with the next
        // function's hot entry branches, which matters for AirBTB bundle
        // pressure.
        self.cursor = (self.cursor + 63) & !63;
        entry
    }

    /// Hot-path block length: `mean` with ±1 jitter, never below 2, so hot
    /// basic blocks keep a regular branch stride.
    fn tight_plain_len(&mut self, mean: f64) -> u8 {
        let base = mean.floor();
        let frac = mean - base;
        let mut len = base as i64 + i64::from(self.rng.chance(frac));
        len += match self.rng.index(4) {
            0 => -1,
            3 => 1,
            _ => 0,
        };
        len.clamp(2, MAX_PLAIN as i64) as u8
    }

    fn forward_cond(&mut self, entry: u32, i: usize, n: usize) -> Term {
        let spec = &self.spec;
        let skip = 1 + self.rng.index(4.min(n - i - 1).max(1));
        let target = entry + ((i + skip).min(n - 1)) as u32;
        let taken_prob = if self.rng.chance(spec.mixed_frac) {
            0.35 + self.rng.f64() * 0.3
        } else if self.rng.chance(spec.taken_bias_frac) {
            spec.strong_bias
        } else {
            1.0 - spec.strong_bias
        };
        Term::Cond { target, taken_prob }
    }

    fn pick_callee(&mut self, below: Option<&LayerPools>, request: Option<usize>) -> Option<u32> {
        let below = below?;
        // Mostly stay on the request's own slice of the next layer; spill
        // into the shared pool otherwise (library code).
        if let Some(r) = request {
            if !below.request.is_empty() && self.rng.chance(0.70) {
                let pool = &below.request[r % below.request.len()];
                if !pool.is_empty() {
                    return Some(pool[self.rng.index(pool.len())]);
                }
            }
        }
        if !below.shared.is_empty() {
            Some(below.shared[self.rng.index(below.shared.len())])
        } else if !below.request.is_empty() {
            let pool = &below.request[self.rng.index(below.request.len())];
            pool.first().copied()
        } else {
            None
        }
    }

    fn pick_cold_callee(&mut self, below: Option<&LayerPools>) -> Option<u32> {
        let below = below?;
        if below.cold.is_empty() {
            return None;
        }
        Some(below.cold[self.rng.index(below.cold.len())])
    }

    fn pick_indirect_callees(
        &mut self,
        below: Option<&LayerPools>,
        request: Option<usize>,
    ) -> Option<Box<[(u32, f32)]>> {
        let below = below?;
        let spec = &self.spec;
        let fanout = self
            .rng
            .range(spec.indirect_fanout.0 as u64, spec.indirect_fanout.1 as u64)
            as usize;
        let mut choices = Vec::with_capacity(fanout);
        for k in 0..fanout {
            let callee = self.pick_callee(Some(below), request)?;
            // Zipf-ish weights: first implementations dominate (hot vtable).
            choices.push((callee, 1.0f32 / (k + 1) as f32));
        }
        Some(choices.into_boxed_slice())
    }

    fn draw_term_choice(&mut self, call_damp: f64) -> TermChoice {
        let m = &self.spec.term_mix;
        // Damped call probability is redistributed to fall-through so the
        // static branch mix stays plausible.
        let call = m.call * call_damp;
        let icall = m.indirect_call * call_damp;
        let spare = (m.call - call) + (m.indirect_call - icall);
        let weights = [
            m.cond,
            call,
            m.jump,
            icall,
            m.indirect_jump,
            m.ret,
            m.fallthrough + spare,
        ];
        match self.rng.weighted(&weights) {
            0 => TermChoice::Cond,
            1 => TermChoice::Call,
            2 => TermChoice::Jump,
            3 => TermChoice::IndirectCall,
            4 => TermChoice::IndirectJump,
            5 => TermChoice::Return,
            _ => TermChoice::FallThrough,
        }
    }

    fn push_bb(&mut self, plain: u8, term: Term) {
        let base = VAddr::new(self.cursor);
        let instrs = plain as usize
            + if matches!(term, Term::FallThrough) {
                0
            } else {
                1
            };
        debug_assert!(instrs > 0);
        self.cursor += (instrs * INSTR_BYTES) as u64;
        self.bbs.push(Bb { base, plain, term });
    }

    /// Builds the predecode oracle from the laid-out basic blocks.
    fn build_predecode(&self) -> HashMap<BlockAddr, Vec<PredecodedBranch>> {
        let mut map: HashMap<BlockAddr, Vec<PredecodedBranch>> = HashMap::new();
        for bb in &self.bbs {
            let Some(kind) = bb.term.kind() else { continue };
            let pc = bb.term_pc();
            let target = match &bb.term {
                Term::Cond { target, .. }
                | Term::Jump { target }
                | Term::Call { callee: target } => Some(self.bbs[*target as usize].base),
                _ => None,
            };
            let branch = match target {
                Some(t) => PredecodedBranch::direct(pc.instr_index() as u8, kind, t),
                None => PredecodedBranch::indirect(pc.instr_index() as u8, kind),
            };
            map.entry(pc.block()).or_default().push(branch);
        }
        for v in map.values_mut() {
            v.sort_by_key(|b| b.offset);
        }
        map
    }
}

fn predecode_block_span(base: u64, end: u64) -> usize {
    ((end - base) as usize).div_ceil(64)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TermChoice {
    Cond,
    Call,
    Jump,
    IndirectCall,
    IndirectJump,
    Return,
    FallThrough,
    LoopBack,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Workload;
    use confluence_types::INSTRS_PER_BLOCK;

    #[test]
    fn generate_is_deterministic() {
        let a = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let b = Program::generate(&WorkloadSpec::tiny()).unwrap();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.bbs().len(), b.bbs().len());
        for (x, y) in a.bbs().iter().zip(b.bbs().iter()) {
            assert_eq!(x.base, y.base);
            assert_eq!(x.plain, y.plain);
        }
    }

    #[test]
    fn code_size_near_target() {
        let spec = WorkloadSpec::base().with_code_kb(512);
        let p = Program::generate(&spec).unwrap();
        let kb = p.stats().code_bytes / 1024;
        assert!(
            (300..=800).contains(&kb),
            "generated {kb} KiB, target 512 KiB"
        );
    }

    #[test]
    fn last_bb_of_trace_paths_return() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        // Every function must contain at least one Return so requests finish.
        let returns = p
            .bbs()
            .iter()
            .filter(|b| matches!(b.term, Term::Return))
            .count();
        assert!(returns >= p.stats().functions);
    }

    #[test]
    fn bbs_are_contiguous_and_nonempty() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        for bb in p.bbs() {
            assert!(bb.len() >= 1, "empty basic block at {}", bb.base);
        }
    }

    #[test]
    fn predecode_matches_terminators() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        for bb in p.bbs() {
            let Some(kind) = bb.term.kind() else { continue };
            let pc = bb.term_pc();
            let branches = p.branches_in_block(pc.block());
            let found = branches
                .iter()
                .find(|b| b.offset as usize == pc.instr_index())
                .unwrap_or_else(|| panic!("missing predecode entry for branch at {pc}"));
            assert_eq!(found.kind, kind);
        }
    }

    #[test]
    fn predecode_offsets_sorted_and_in_range() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let mut blocks_checked = 0;
        for bb in p.bbs() {
            let block = bb.base.block();
            let branches = p.branches_in_block(block);
            for w in branches.windows(2) {
                assert!(w[0].offset < w[1].offset);
            }
            for b in branches {
                assert!((b.offset as usize) < INSTRS_PER_BLOCK);
            }
            blocks_checked += 1;
        }
        assert!(blocks_checked > 0);
    }

    #[test]
    fn request_entries_are_valid_bbs() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        assert_eq!(p.request_entries().len(), p.spec().request_types);
        for &(bb, w) in p.request_entries() {
            assert!((bb as usize) < p.bbs().len());
            assert!(w > 0.0);
        }
        assert!(!p.os_entries().is_empty());
    }

    #[test]
    fn full_workload_specs_generate() {
        // Smoke-test generation of a real (multi-MB) preset.
        let w = Workload::DssQueries;
        let p = Program::generate(&w.spec()).unwrap();
        let mb = p.stats().code_bytes as f64 / (1024.0 * 1024.0);
        assert!(mb > 1.0, "{w}: generated only {mb:.2} MiB");
    }

    #[test]
    fn block_has_code_bounds() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let first = VAddr::new(CODE_BASE).block();
        assert!(p.block_has_code(first));
        assert!(!p.block_has_code(BlockAddr::from_raw(0)));
    }
}
