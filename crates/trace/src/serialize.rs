//! Compact binary serialization for traces.
//!
//! Traces are normally generated on the fly, but tests, debugging, and
//! cross-tool comparisons benefit from a stable on-disk format. Records are
//! encoded as a 1-byte tag plus little-endian fields:
//!
//! ```text
//! tag 0x00:                plain instruction    [tag][pc: u64]
//! tag 0x80 | kind | taken: branch instruction   [tag][pc: u64][target: u64]
//! ```
//!
//! Framing is built on the workspace-wide wire primitives in
//! [`confluence_store::wire`] — the same helpers behind the persistent
//! result store's codec — so offset-tracked decode errors and integer
//! encodings are shared rather than duplicated.

use confluence_store::wire::{self, Reader, WireError};
use confluence_types::{BranchKind, TraceRecord, VAddr};

/// Error returned when decoding a malformed trace buffer (the shared
/// wire-format error: byte offset plus reason).
pub type DecodeTraceError = WireError;

const TAG_BRANCH: u8 = 0x80;
const TAG_TAKEN: u8 = 0x40;

fn kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::IndirectJump => 4,
        BranchKind::IndirectCall => 5,
    }
}

fn code_kind(code: u8) -> Option<BranchKind> {
    Some(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::IndirectJump,
        5 => BranchKind::IndirectCall,
        _ => return None,
    })
}

/// Encodes records into a binary buffer.
pub fn encode_records<I>(records: I) -> Vec<u8>
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut buf = Vec::new();
    for r in records {
        match r.branch {
            None => {
                buf.push(0);
                wire::put_u64_le(&mut buf, r.pc.raw());
            }
            Some(b) => {
                let tag = TAG_BRANCH | if b.taken { TAG_TAKEN } else { 0 } | kind_code(b.kind);
                buf.push(tag);
                wire::put_u64_le(&mut buf, r.pc.raw());
                wire::put_u64_le(&mut buf, b.target.raw());
            }
        }
    }
    buf
}

/// Decodes a buffer produced by [`encode_records`].
///
/// # Errors
///
/// Returns [`DecodeTraceError`] on truncated buffers or unknown tags.
pub fn decode_records(data: &[u8]) -> Result<Vec<TraceRecord>, DecodeTraceError> {
    let mut r = Reader::new(data);
    let mut out = Vec::new();
    while !r.is_empty() {
        let offset = r.offset();
        let err = |reason| WireError { offset, reason };
        let tag = r.u8().expect("reader is non-empty");
        if tag == 0 {
            let pc = r.u64_le().map_err(|_| err("truncated plain record"))?;
            out.push(TraceRecord::plain(VAddr::new(pc)));
        } else if tag & TAG_BRANCH != 0 {
            let kind = code_kind(tag & 0x0F).ok_or_else(|| err("unknown branch kind"))?;
            let taken = tag & TAG_TAKEN != 0;
            let pc = r.u64_le().map_err(|_| err("truncated branch record"))?;
            let target = r.u64_le().map_err(|_| err("truncated branch record"))?;
            out.push(TraceRecord::branch(
                VAddr::new(pc),
                kind,
                taken,
                VAddr::new(target),
            ));
        } else {
            return Err(err("unknown tag"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Program, WorkloadSpec};

    #[test]
    fn roundtrip_preserves_records() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let trace: Vec<_> = p.executor(1).take(10_000).collect();
        let encoded = encode_records(trace.iter().copied());
        let decoded = decode_records(&encoded).unwrap();
        assert_eq!(trace, decoded);
    }

    #[test]
    fn truncated_buffer_errors() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let trace: Vec<_> = p.executor(1).take(100).collect();
        let encoded = encode_records(trace);
        let err = decode_records(&encoded[..encoded.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn errors_name_the_failing_record_offset() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let trace: Vec<_> = p.executor(1).take(2).collect();
        let encoded = encode_records(trace.iter().copied());
        let err = decode_records(&encoded[..encoded.len() - 1]).unwrap_err();
        // The error points at the start of the record that failed, not 0.
        assert!(err.offset > 0, "offset {}", err.offset);
    }

    #[test]
    fn unknown_tag_errors() {
        let err = decode_records(&[0x7F]).unwrap_err();
        assert!(err.to_string().contains("unknown tag"));
    }

    #[test]
    fn empty_buffer_is_empty_trace() {
        assert_eq!(decode_records(&[]).unwrap(), Vec::new());
    }
}
