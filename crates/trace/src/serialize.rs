//! Compact binary serialization for traces.
//!
//! Traces are normally generated on the fly, but tests, debugging, and
//! cross-tool comparisons benefit from a stable on-disk format. Records are
//! encoded as a 1-byte tag plus little-endian fields:
//!
//! ```text
//! tag 0x00:                plain instruction    [tag][pc: u64]
//! tag 0x80 | kind | taken: branch instruction   [tag][pc: u64][target: u64]
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use confluence_types::{BranchKind, TraceRecord, VAddr};
use std::error::Error;
use std::fmt;

const TAG_BRANCH: u8 = 0x80;
const TAG_TAKEN: u8 = 0x40;

/// Error returned when decoding a malformed trace buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeTraceError {
    offset: usize,
    reason: &'static str,
}

impl fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace decode failed at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl Error for DecodeTraceError {}

fn kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::IndirectJump => 4,
        BranchKind::IndirectCall => 5,
    }
}

fn code_kind(code: u8) -> Option<BranchKind> {
    Some(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::IndirectJump,
        5 => BranchKind::IndirectCall,
        _ => return None,
    })
}

/// Encodes records into a binary buffer.
pub fn encode_records<I>(records: I) -> Bytes
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut buf = BytesMut::new();
    for r in records {
        match r.branch {
            None => {
                buf.put_u8(0);
                buf.put_u64_le(r.pc.raw());
            }
            Some(b) => {
                let tag = TAG_BRANCH | if b.taken { TAG_TAKEN } else { 0 } | kind_code(b.kind);
                buf.put_u8(tag);
                buf.put_u64_le(r.pc.raw());
                buf.put_u64_le(b.target.raw());
            }
        }
    }
    buf.freeze()
}

/// Decodes a buffer produced by [`encode_records`].
///
/// # Errors
///
/// Returns [`DecodeTraceError`] on truncated buffers or unknown tags.
pub fn decode_records(mut data: &[u8]) -> Result<Vec<TraceRecord>, DecodeTraceError> {
    let total = data.len();
    let mut out = Vec::new();
    while data.has_remaining() {
        let offset = total - data.remaining();
        let tag = data.get_u8();
        if tag == 0 {
            if data.remaining() < 8 {
                return Err(DecodeTraceError {
                    offset,
                    reason: "truncated plain record",
                });
            }
            out.push(TraceRecord::plain(VAddr::new(data.get_u64_le())));
        } else if tag & TAG_BRANCH != 0 {
            if data.remaining() < 16 {
                return Err(DecodeTraceError {
                    offset,
                    reason: "truncated branch record",
                });
            }
            let kind = code_kind(tag & 0x0F).ok_or(DecodeTraceError {
                offset,
                reason: "unknown branch kind",
            })?;
            let taken = tag & TAG_TAKEN != 0;
            let pc = VAddr::new(data.get_u64_le());
            let target = VAddr::new(data.get_u64_le());
            out.push(TraceRecord::branch(pc, kind, taken, target));
        } else {
            return Err(DecodeTraceError {
                offset,
                reason: "unknown tag",
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Program, WorkloadSpec};

    #[test]
    fn roundtrip_preserves_records() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let trace: Vec<_> = p.executor(1).take(10_000).collect();
        let encoded = encode_records(trace.iter().copied());
        let decoded = decode_records(&encoded).unwrap();
        assert_eq!(trace, decoded);
    }

    #[test]
    fn truncated_buffer_errors() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let trace: Vec<_> = p.executor(1).take(100).collect();
        let encoded = encode_records(trace);
        let err = decode_records(&encoded[..encoded.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn unknown_tag_errors() {
        let err = decode_records(&[0x7F]).unwrap_err();
        assert!(err.to_string().contains("unknown tag"));
    }

    #[test]
    fn empty_buffer_is_empty_trace() {
        assert_eq!(decode_records(&[]).unwrap(), Vec::new());
    }
}
