//! Workload specifications: the tunable knobs of the synthetic server
//! workload generator, plus presets for the paper's five workload classes.

use serde::{Deserialize, Serialize};

/// The five server workload classes evaluated in the paper (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// TPC-C on IBM DB2 (OLTP).
    OltpDb2,
    /// TPC-C on Oracle (OLTP); the largest instruction working set — the
    /// only workload that benefits from a 32K-entry BTB (paper Section 2.1).
    OltpOracle,
    /// TPC-H decision-support queries on DB2 (Qry 2/8/17/20 mix).
    DssQueries,
    /// Darwin media streaming server.
    MediaStreaming,
    /// SPECweb99 on Apache (web frontend).
    WebFrontend,
}

impl Workload {
    /// All five workloads, in the paper's presentation order.
    pub const ALL: [Workload; 5] = [
        Workload::OltpDb2,
        Workload::OltpOracle,
        Workload::DssQueries,
        Workload::MediaStreaming,
        Workload::WebFrontend,
    ];

    /// Short display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Workload::OltpDb2 => "OLTP DB2",
            Workload::OltpOracle => "OLTP Oracle",
            Workload::DssQueries => "DSS Qrys",
            Workload::MediaStreaming => "Media Streaming",
            Workload::WebFrontend => "Web Frontend",
        }
    }

    /// The calibrated generator specification for this workload class.
    ///
    /// The parameters are chosen so the generated programs reproduce the
    /// paper's measured workload properties: instruction working sets of
    /// several MB, BTB footprints saturating at 16K entries (32K for
    /// OLTP/Oracle, Figure 1), and the branch densities of Table 2.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            Workload::OltpDb2 => WorkloadSpec {
                name: "OLTP DB2",
                structure_seed: 0xD0B2,
                target_code_kb: 5200,
                layers: 13,
                request_types: 10,
                shared_frac: 0.30,
                bb_per_func: (5, 22),
                plain_len_mean: 4.6,
                term_mix: TermMix {
                    cond: 0.56,
                    call: 0.13,
                    jump: 0.08,
                    indirect_call: 0.035,
                    indirect_jump: 0.015,
                    ret: 0.06,
                    fallthrough: 0.12,
                },
                cold_call_prob: 0.10,
                loop_prob: 0.25,
                loop_continue: 0.85,
                strong_bias: 0.90,
                mixed_frac: 0.03,
                indirect_fanout: (2, 6),
                os_interleave: 0.18,
                request_zipf: 0.5,
                flavors_per_request: 96,
                call_scale: 1.0,
                backend_stall_prob: 0.50,
                ..WorkloadSpec::base()
            },
            Workload::OltpOracle => WorkloadSpec {
                name: "OLTP Oracle",
                structure_seed: 0x0AC1E,
                target_code_kb: 8500,
                layers: 14,
                request_types: 20,
                shared_frac: 0.25,
                bb_per_func: (5, 24),
                plain_len_mean: 6.8,
                term_mix: TermMix {
                    cond: 0.52,
                    call: 0.14,
                    jump: 0.08,
                    indirect_call: 0.045,
                    indirect_jump: 0.015,
                    ret: 0.06,
                    fallthrough: 0.14,
                },
                cold_call_prob: 0.28,
                loop_prob: 0.22,
                loop_continue: 0.85,
                strong_bias: 0.90,
                mixed_frac: 0.03,
                indirect_fanout: (2, 8),
                os_interleave: 0.20,
                request_zipf: 0.2,
                flavors_per_request: 96,
                call_scale: 0.62,
                backend_stall_prob: 0.50,
                ..WorkloadSpec::base()
            },
            Workload::DssQueries => WorkloadSpec {
                name: "DSS Qrys",
                structure_seed: 0xD55,
                target_code_kb: 4600,
                layers: 12,
                request_types: 4, // the four TPC-H queries
                shared_frac: 0.42,
                bb_per_func: (5, 20),
                plain_len_mean: 4.8,
                term_mix: TermMix {
                    cond: 0.57,
                    call: 0.12,
                    jump: 0.07,
                    indirect_call: 0.030,
                    indirect_jump: 0.012,
                    ret: 0.06,
                    fallthrough: 0.138,
                },
                cold_call_prob: 0.20,
                loop_prob: 0.38,
                loop_continue: 0.85,
                strong_bias: 0.90,
                mixed_frac: 0.03,
                indirect_fanout: (2, 5),
                os_interleave: 0.10,
                request_zipf: 0.3,
                flavors_per_request: 64,
                call_scale: 1.0,
                backend_stall_prob: 0.50,
                ..WorkloadSpec::base()
            },
            Workload::MediaStreaming => WorkloadSpec {
                name: "Media Streaming",
                structure_seed: 0x3D1A,
                target_code_kb: 4200,
                layers: 12,
                request_types: 8,
                shared_frac: 0.35,
                bb_per_func: (5, 20),
                plain_len_mean: 4.7,
                term_mix: TermMix {
                    cond: 0.55,
                    call: 0.13,
                    jump: 0.08,
                    indirect_call: 0.035,
                    indirect_jump: 0.015,
                    ret: 0.06,
                    fallthrough: 0.13,
                },
                cold_call_prob: 0.20,
                loop_prob: 0.30,
                loop_continue: 0.85,
                strong_bias: 0.90,
                mixed_frac: 0.03,
                indirect_fanout: (2, 6),
                os_interleave: 0.22,
                request_zipf: 0.7,
                flavors_per_request: 72,
                call_scale: 1.0,
                backend_stall_prob: 0.50,
                ..WorkloadSpec::base()
            },
            Workload::WebFrontend => WorkloadSpec {
                name: "Web Frontend",
                structure_seed: 0x3EB,
                target_code_kb: 3400,
                layers: 13,
                request_types: 14,
                shared_frac: 0.32,
                bb_per_func: (4, 16),
                plain_len_mean: 4.2,
                term_mix: TermMix {
                    cond: 0.58,
                    call: 0.14,
                    jump: 0.08,
                    indirect_call: 0.040,
                    indirect_jump: 0.015,
                    ret: 0.065,
                    fallthrough: 0.08,
                },
                cold_call_prob: 0.32,
                loop_prob: 0.22,
                loop_continue: 0.85,
                strong_bias: 0.90,
                mixed_frac: 0.03,
                indirect_fanout: (2, 7),
                os_interleave: 0.28,
                request_zipf: 1.1,
                flavors_per_request: 96,
                call_scale: 1.0,
                backend_stall_prob: 0.50,
                ..WorkloadSpec::base()
            },
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Probability mix over basic-block terminator kinds.
///
/// The seven fields should sum to 1.0 (validated by
/// [`WorkloadSpec::validate`]); `fallthrough` means the block has no
/// terminating branch and control continues into the next block.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TermMix {
    /// Conditional direct branch.
    pub cond: f64,
    /// Direct call.
    pub call: f64,
    /// Unconditional direct jump.
    pub jump: f64,
    /// Indirect call (virtual dispatch).
    pub indirect_call: f64,
    /// Indirect jump (switch table).
    pub indirect_jump: f64,
    /// Early return.
    pub ret: f64,
    /// No terminator: fall through into the next block.
    pub fallthrough: f64,
}

impl TermMix {
    fn total(&self) -> f64 {
        self.cond
            + self.call
            + self.jump
            + self.indirect_call
            + self.indirect_jump
            + self.ret
            + self.fallthrough
    }
}

/// Full parameter set for generating one synthetic server workload.
///
/// A `WorkloadSpec` describes the *static program* (code size, call-graph
/// shape, branch mix) and the *dynamic behaviour* (request popularity,
/// branch biases, OS interleaving). Programs are generated deterministically
/// from (`spec`, `structure_seed`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable workload name.
    pub name: &'static str,
    /// Seed for the static program structure (layout, call graph, biases).
    pub structure_seed: u64,
    /// Approximate instruction footprint to generate, in KiB.
    pub target_code_kb: usize,
    /// Depth of the service-layer stack ("over a dozen layers", paper §1).
    pub layers: usize,
    /// Number of distinct request types served.
    pub request_types: usize,
    /// Fraction of each layer's functions shared across request types
    /// (common libraries, allocator, OS).
    pub shared_frac: f64,
    /// Min/max basic blocks per function.
    pub bb_per_func: (usize, usize),
    /// Mean number of non-branch instructions per basic block in *hot*
    /// (request-path, shared, OS) functions. Hot code has longer
    /// straight-line runs, keeping most hot blocks at or below the 3-entry
    /// AirBTB bundle capacity.
    pub plain_len_mean: f64,
    /// Mean non-branch instructions per basic block in *cold* functions
    /// (error/slow paths). Cold code is branch-dense, which inflates the
    /// static branch density of demand-fetched blocks (Table 2) without
    /// adding dynamically hot branches.
    pub plain_len_cold: f64,
    /// Fraction of strongly-biased conditionals that are biased *taken*
    /// (the rest are biased not-taken). Forward conditionals in real code
    /// predominantly fall through.
    pub taken_bias_frac: f64,
    /// Terminator kind probabilities.
    pub term_mix: TermMix,
    /// Probability that a call site targets a cold (error/slow-path)
    /// function guarded by a rarely-taken conditional.
    pub cold_call_prob: f64,
    /// Probability a function contains a loop back-edge.
    pub loop_prob: f64,
    /// Loop back-edge taken probability (mean trip count ≈ 1/(1-p)).
    pub loop_continue: f64,
    /// Typical taken (or not-taken) probability of biased conditionals.
    pub strong_bias: f64,
    /// Fraction of conditionals that are weakly biased (hard to predict).
    pub mixed_frac: f64,
    /// Min/max distinct targets of indirect call/jump sites.
    pub indirect_fanout: (usize, usize),
    /// Probability that an OS service routine runs between two requests.
    pub os_interleave: f64,
    /// Zipf skew of request-type popularity (0 = uniform).
    pub request_zipf: f64,
    /// Size of each request type's *flavor pool*. A flavor pins every
    /// data-dependent outcome of one request instance (branch directions,
    /// dispatch targets, trip counts), so control flow is deterministic
    /// per flavor and recurs as flavors repeat — the request-level
    /// recurrence that temporal streaming exploits (paper Section 2.2).
    /// More flavors = larger dynamic code footprint.
    pub flavors_per_request: usize,
    /// Multiplier on call-site density (controls request size: the mean
    /// number of functions a request touches). 1.0 = default profile.
    pub call_scale: f64,
    /// Timing-model calibration: probability that a retire slot stalls on
    /// backend (data-side) work. Models the OoO backend's data misses which
    /// the frontend simulator does not replay.
    pub backend_stall_prob: f64,
}

impl WorkloadSpec {
    /// A small, fast default spec used by tests and the quickstart example.
    pub fn base() -> Self {
        WorkloadSpec {
            name: "base",
            structure_seed: 0xBA5E,
            target_code_kb: 256,
            layers: 6,
            request_types: 4,
            shared_frac: 0.3,
            bb_per_func: (4, 16),
            plain_len_mean: 4.6,
            plain_len_cold: 0.7,
            taken_bias_frac: 0.35,
            term_mix: TermMix {
                cond: 0.56,
                call: 0.13,
                jump: 0.08,
                indirect_call: 0.035,
                indirect_jump: 0.015,
                ret: 0.06,
                fallthrough: 0.12,
            },
            cold_call_prob: 0.10,
            loop_prob: 0.25,
            loop_continue: 0.85,
            strong_bias: 0.90,
            mixed_frac: 0.03,
            indirect_fanout: (2, 6),
            os_interleave: 0.15,
            request_zipf: 0.8,
            flavors_per_request: 24,
            call_scale: 1.0,
            backend_stall_prob: 0.50,
        }
    }

    /// A tiny spec for unit tests that need to run in milliseconds.
    pub fn tiny() -> Self {
        WorkloadSpec {
            name: "tiny",
            target_code_kb: 48,
            layers: 4,
            request_types: 2,
            ..WorkloadSpec::base()
        }
    }

    /// Returns a copy scaled to roughly `kb` KiB of code, for capacity
    /// sweeps and sensitivity studies.
    pub fn with_code_kb(mut self, kb: usize) -> Self {
        self.target_code_kb = kb;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`confluence_types::ConfigError`] if probabilities are out of
    /// range, the terminator mix does not sum to ~1, or structural sizes are
    /// zero.
    pub fn validate(&self) -> Result<(), confluence_types::ConfigError> {
        use confluence_types::ConfigError;
        let probs = [
            ("shared_frac", self.shared_frac),
            ("cold_call_prob", self.cold_call_prob),
            ("loop_prob", self.loop_prob),
            ("loop_continue", self.loop_continue),
            ("strong_bias", self.strong_bias),
            ("mixed_frac", self.mixed_frac),
            ("os_interleave", self.os_interleave),
            ("backend_stall_prob", self.backend_stall_prob),
            ("taken_bias_frac", self.taken_bias_frac),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::new(format!(
                    "{name} = {p} is not a probability"
                )));
            }
        }
        if (self.term_mix.total() - 1.0).abs() > 1e-6 {
            return Err(ConfigError::new(format!(
                "terminator mix sums to {}, expected 1.0",
                self.term_mix.total()
            )));
        }
        if self.layers < 2 {
            return Err(ConfigError::new("need at least 2 service layers"));
        }
        if self.request_types == 0 {
            return Err(ConfigError::new("need at least one request type"));
        }
        if self.flavors_per_request == 0 {
            return Err(ConfigError::new(
                "need at least one flavor per request type",
            ));
        }
        if self.bb_per_func.0 < 2 || self.bb_per_func.0 > self.bb_per_func.1 {
            return Err(ConfigError::new("bb_per_func range invalid (min 2)"));
        }
        if self.target_code_kb < 16 {
            return Err(ConfigError::new("target_code_kb must be at least 16"));
        }
        if self.indirect_fanout.0 < 1 || self.indirect_fanout.0 > self.indirect_fanout.1 {
            return Err(ConfigError::new("indirect_fanout range invalid"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for w in Workload::ALL {
            w.spec().validate().unwrap_or_else(|e| panic!("{w}: {e}"));
        }
        WorkloadSpec::base().validate().unwrap();
        WorkloadSpec::tiny().validate().unwrap();
    }

    #[test]
    fn oracle_has_largest_working_set() {
        let sizes: Vec<usize> = Workload::ALL
            .iter()
            .map(|w| w.spec().target_code_kb)
            .collect();
        let oracle = Workload::OltpOracle.spec().target_code_kb;
        assert!(sizes.iter().all(|&s| s <= oracle));
    }

    #[test]
    fn validate_rejects_bad_mix() {
        let mut s = WorkloadSpec::base();
        s.term_mix.cond += 0.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut s = WorkloadSpec::base();
        s.strong_bias = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_structure() {
        let mut s = WorkloadSpec::base();
        s.layers = 1;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::base();
        s.bb_per_func = (1, 4);
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::base();
        s.target_code_kb = 4;
        assert!(s.validate().is_err());
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Workload::OltpDb2.name(), "OLTP DB2");
        assert_eq!(Workload::DssQueries.name(), "DSS Qrys");
        assert_eq!(format!("{}", Workload::WebFrontend), "Web Frontend");
    }
}
