//! Trace statistics: the workload-characterization numbers the paper reports
//! (working sets, branch densities, stream recurrence).

use std::collections::{HashMap, HashSet};

use confluence_types::{BlockAddr, BranchKind, PredecodeSource, TraceRecord, VAddr};

/// Aggregate statistics over a committed instruction trace.
///
/// `TraceStats` powers the Table 2 reproduction (static branch density of
/// demand-touched blocks) and the workload sanity checks behind Figure 1
/// (distinct taken-branch working set = BTB footprint).
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    /// Total committed instructions.
    pub instrs: u64,
    /// Total committed branch instructions.
    pub branches: u64,
    /// Committed conditional branches.
    pub conditionals: u64,
    /// Committed taken branches (of any kind).
    pub taken: u64,
    /// Dynamic counts per branch kind.
    pub per_kind: HashMap<BranchKind, u64>,
    /// Distinct 64-byte instruction blocks touched.
    pub unique_blocks: u64,
    /// Distinct program counters of taken branches (the BTB footprint).
    pub unique_taken_branch_pcs: u64,
    /// Mean statically-resident branches per distinct touched block
    /// (Table 2 "static" row).
    pub static_branches_per_block: f64,
    /// Distinct basic-block start addresses observed (conventional BTB
    /// entry footprint under basic-block tagging).
    pub unique_bb_starts: u64,
}

impl TraceStats {
    /// Computes statistics over a trace, using `oracle` for static branch
    /// contents of touched blocks.
    pub fn collect<I, P>(trace: I, oracle: &P) -> TraceStats
    where
        I: IntoIterator<Item = TraceRecord>,
        P: PredecodeSource + ?Sized,
    {
        let mut s = TraceStats::default();
        let mut blocks: HashSet<BlockAddr> = HashSet::new();
        let mut taken_pcs: HashSet<VAddr> = HashSet::new();
        let mut bb_starts: HashSet<VAddr> = HashSet::new();
        let mut static_branch_sum: u64 = 0;
        let mut next_is_bb_start = true;

        for r in trace {
            s.instrs += 1;
            if next_is_bb_start {
                bb_starts.insert(r.pc);
                next_is_bb_start = false;
            }
            if blocks.insert(r.pc.block()) {
                static_branch_sum += oracle.branches_in_block(r.pc.block()).len() as u64;
            }
            if let Some(b) = r.branch {
                s.branches += 1;
                *s.per_kind.entry(b.kind).or_insert(0) += 1;
                if b.kind == BranchKind::Conditional {
                    s.conditionals += 1;
                }
                if b.taken {
                    s.taken += 1;
                    taken_pcs.insert(r.pc);
                }
                next_is_bb_start = true;
            }
        }

        s.unique_blocks = blocks.len() as u64;
        s.unique_taken_branch_pcs = taken_pcs.len() as u64;
        s.unique_bb_starts = bb_starts.len() as u64;
        s.static_branches_per_block = if blocks.is_empty() {
            0.0
        } else {
            static_branch_sum as f64 / blocks.len() as f64
        };
        s
    }

    /// Branch instructions per committed instruction.
    pub fn branch_fraction(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            self.branches as f64 / self.instrs as f64
        }
    }

    /// Taken branches per 1000 committed instructions.
    pub fn taken_per_kilo_instr(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            self.taken as f64 * 1000.0 / self.instrs as f64
        }
    }

    /// Instruction working set in KiB (distinct blocks × 64 B).
    pub fn working_set_kb(&self) -> f64 {
        self.unique_blocks as f64 * 64.0 / 1024.0
    }
}

/// Temporal instruction stream statistics (paper Section 2.2).
///
/// A *temporal stream* is a recurring subsequence of the block-grain access
/// stream. SHIFT's effectiveness rests on streams being long and recurring;
/// this analysis measures both properties on a trace prefix so tests can
/// assert the generated workloads actually exhibit them.
#[derive(Clone, Debug, Default)]
pub struct StreamStats {
    /// Number of block-grain accesses analysed (consecutive duplicates
    /// collapsed).
    pub block_accesses: u64,
    /// Fraction of block transitions (A -> B) that repeat a transition seen
    /// earlier in the trace: an upper-bound proxy for next-block
    /// predictability from history.
    pub repeat_transition_frac: f64,
    /// Mean length of maximal repeated runs: given the trace revisits a
    /// block, how many subsequent blocks follow the same order as the
    /// previous visit (the paper reports streams of tens to hundreds of
    /// blocks).
    pub mean_repeat_run: f64,
}

impl StreamStats {
    /// Analyses the block-grain stream of a trace.
    pub fn collect<I>(trace: I) -> StreamStats
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        // Build the block-grain stream (collapse consecutive duplicates).
        let mut stream: Vec<BlockAddr> = Vec::new();
        for r in trace {
            let b = r.pc.block();
            if stream.last() != Some(&b) {
                stream.push(b);
            }
        }

        let mut s = StreamStats {
            block_accesses: stream.len() as u64,
            ..Default::default()
        };
        if stream.len() < 2 {
            return s;
        }

        // Repeat-transition fraction.
        let mut seen: HashSet<(BlockAddr, BlockAddr)> = HashSet::new();
        let mut repeats = 0u64;
        for w in stream.windows(2) {
            if !seen.insert((w[0], w[1])) {
                repeats += 1;
            }
        }
        s.repeat_transition_frac = repeats as f64 / (stream.len() - 1) as f64;

        // Repeat-run lengths: walk the stream; at each position where the
        // block was seen before, follow both cursors forward while they
        // agree (mimics SHIFT's history replay).
        let mut last_pos: HashMap<BlockAddr, usize> = HashMap::new();
        let mut runs: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < stream.len() {
            if let Some(&p) = last_pos.get(&stream[i]) {
                let mut len = 0;
                while i + len < stream.len() && p + len < i && stream[p + len] == stream[i + len] {
                    len += 1;
                }
                if len > 1 {
                    runs.push(len);
                }
                for k in 0..len.max(1) {
                    if i + k < stream.len() {
                        last_pos.insert(stream[i + k], i + k);
                    }
                }
                i += len.max(1);
            } else {
                last_pos.insert(stream[i], i);
                i += 1;
            }
        }
        s.mean_repeat_run = if runs.is_empty() {
            0.0
        } else {
            runs.iter().sum::<usize>() as f64 / runs.len() as f64
        };
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Program, WorkloadSpec};

    #[test]
    fn stats_count_basics() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let s = TraceStats::collect(p.executor(1).take(100_000), &p);
        assert_eq!(s.instrs, 100_000);
        assert!(s.branches > 0);
        assert!(s.taken <= s.branches);
        assert!(s.conditionals <= s.branches);
        assert!(s.unique_blocks > 0);
    }

    #[test]
    fn static_density_in_expected_band() {
        let p = Program::generate(&WorkloadSpec::base()).unwrap();
        let s = TraceStats::collect(p.executor(1).take(500_000), &p);
        // Paper Table 2: 2.5 - 4.3 static branches per block.
        assert!(
            (2.0..5.5).contains(&s.static_branches_per_block),
            "static density {}",
            s.static_branches_per_block
        );
    }

    #[test]
    fn working_set_grows_with_code_size() {
        let small = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let large = Program::generate(&WorkloadSpec::base().with_code_kb(512)).unwrap();
        let ss = TraceStats::collect(small.executor(1).take(300_000), &small);
        let sl = TraceStats::collect(large.executor(1).take(300_000), &large);
        assert!(sl.unique_blocks > ss.unique_blocks);
    }

    #[test]
    fn streams_recur_in_server_workloads() {
        let p = Program::generate(&WorkloadSpec::tiny()).unwrap();
        let s = StreamStats::collect(p.executor(1).take(300_000));
        // Request-level recurrence: the vast majority of block transitions
        // repeat (the basis of temporal streaming, paper §2.2).
        assert!(
            s.repeat_transition_frac > 0.8,
            "repeat frac {}",
            s.repeat_transition_frac
        );
        assert!(s.mean_repeat_run > 3.0, "mean run {}", s.mean_repeat_run);
    }

    #[test]
    fn stream_stats_empty_trace() {
        let s = StreamStats::collect(Vec::new());
        assert_eq!(s.block_accesses, 0);
        assert_eq!(s.mean_repeat_run, 0.0);
    }

    #[test]
    fn taken_rate_supports_btb_pressure() {
        let p = Program::generate(&WorkloadSpec::base()).unwrap();
        let s = TraceStats::collect(p.executor(1).take(300_000), &p);
        // Server code redirects fetch every ~6-10 instructions.
        let tpk = s.taken_per_kilo_instr();
        assert!((80.0..250.0).contains(&tpk), "taken per kilo-instr {tpk}");
    }
}
