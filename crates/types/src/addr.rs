//! Virtual-address and block-address newtypes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of bytes per instruction (fixed-width RISC, UltraSPARC-like).
pub const INSTR_BYTES: usize = 4;
/// Number of bytes per instruction cache block.
pub const BLOCK_BYTES: usize = 64;
/// Number of instructions held by one cache block.
pub const INSTRS_PER_BLOCK: usize = BLOCK_BYTES / INSTR_BYTES;
/// Width of the modelled virtual address space in bits (paper assumes 48).
pub const VADDR_BITS: u32 = 48;

const BLOCK_SHIFT: u32 = BLOCK_BYTES.trailing_zeros();
const VADDR_MASK: u64 = (1 << VADDR_BITS) - 1;

/// A byte-grain virtual address of an instruction.
///
/// Addresses are kept within the modelled 48-bit virtual address space and
/// are expected to be 4-byte aligned (instruction-aligned); constructors
/// enforce the 48-bit range but alignment is the generator's responsibility
/// (checked by `debug_assert!`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct VAddr(u64);

impl VAddr {
    /// Creates an instruction address from a raw value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `raw` is not 4-byte aligned or exceeds the
    /// 48-bit virtual address space.
    #[inline]
    pub fn new(raw: u64) -> Self {
        debug_assert_eq!(
            raw % INSTR_BYTES as u64,
            0,
            "instruction address must be aligned"
        );
        debug_assert_eq!(raw & !VADDR_MASK, 0, "address exceeds 48-bit space");
        VAddr(raw & VADDR_MASK)
    }

    /// Returns the raw 48-bit address value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the instruction block containing this address.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// Byte offset of this address within its cache block (0..64).
    #[inline]
    pub fn block_offset(self) -> usize {
        (self.0 as usize) & (BLOCK_BYTES - 1)
    }

    /// Instruction index of this address within its cache block (0..16).
    #[inline]
    pub fn instr_index(self) -> usize {
        self.block_offset() / INSTR_BYTES
    }

    /// The address of the sequentially next instruction.
    #[inline]
    pub fn next_instr(self) -> VAddr {
        VAddr((self.0 + INSTR_BYTES as u64) & VADDR_MASK)
    }

    /// The address `n` instructions after this one.
    #[inline]
    pub fn add_instrs(self, n: usize) -> VAddr {
        VAddr((self.0 + (n * INSTR_BYTES) as u64) & VADDR_MASK)
    }

    /// Number of instructions between `self` and `other` (exclusive),
    /// assuming `other >= self`. Returns `None` if `other < self`.
    #[inline]
    pub fn instrs_until(self, other: VAddr) -> Option<usize> {
        other
            .0
            .checked_sub(self.0)
            .map(|d| (d as usize) / INSTR_BYTES)
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.0)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<VAddr> for u64 {
    fn from(a: VAddr) -> u64 {
        a.0
    }
}

/// A block-grain address: a virtual address shifted right by the block size.
///
/// This is the granularity at which the L1-I, the LLC, SHIFT's history, and
/// AirBTB's bundles all operate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        BlockAddr(raw & (VADDR_MASK >> BLOCK_SHIFT))
    }

    /// Returns the block containing the given instruction address.
    #[inline]
    pub fn containing(addr: VAddr) -> Self {
        addr.block()
    }

    /// Returns the raw block number (address >> 6).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// First instruction address inside this block.
    #[inline]
    pub fn base(self) -> VAddr {
        VAddr(self.0 << BLOCK_SHIFT)
    }

    /// Instruction address at instruction index `idx` (0..16) in this block.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `idx >= INSTRS_PER_BLOCK`.
    #[inline]
    pub fn instr(self, idx: usize) -> VAddr {
        debug_assert!(idx < INSTRS_PER_BLOCK);
        VAddr((self.0 << BLOCK_SHIFT) + (idx * INSTR_BYTES) as u64)
    }

    /// The sequentially next block.
    #[inline]
    pub fn next(self) -> BlockAddr {
        BlockAddr::from_raw(self.0 + 1)
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockAddr({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0 << BLOCK_SHIFT)
    }
}

impl From<VAddr> for BlockAddr {
    fn from(a: VAddr) -> BlockAddr {
        a.block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_offset_roundtrip() {
        let a = VAddr::new(0x1234_5678 & !0x3);
        let b = a.block();
        assert_eq!(b.instr(a.instr_index()), a);
    }

    #[test]
    fn next_instr_advances_by_instr_bytes() {
        let a = VAddr::new(0x1000);
        assert_eq!(a.next_instr().raw(), 0x1004);
        assert_eq!(a.add_instrs(16).raw(), 0x1040);
    }

    #[test]
    fn instr_index_covers_block() {
        let b = BlockAddr::from_raw(0x77);
        for i in 0..INSTRS_PER_BLOCK {
            let a = b.instr(i);
            assert_eq!(a.block(), b);
            assert_eq!(a.instr_index(), i);
        }
    }

    #[test]
    fn crossing_block_boundary_changes_block() {
        let b = BlockAddr::from_raw(5);
        let last = b.instr(INSTRS_PER_BLOCK - 1);
        assert_eq!(last.next_instr().block(), b.next());
    }

    #[test]
    fn instrs_until_counts_instructions() {
        let a = VAddr::new(0x1000);
        let b = VAddr::new(0x1020);
        assert_eq!(a.instrs_until(b), Some(8));
        assert_eq!(b.instrs_until(a), None);
    }

    #[test]
    fn vaddr_masks_to_48_bits() {
        let a = VAddr::new((1u64 << VADDR_BITS) - INSTR_BYTES as u64);
        assert_eq!(a.next_instr().raw(), 0);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", VAddr::new(0x1000)), "0x1000");
        assert_eq!(format!("{}", BlockAddr::from_raw(1)), "0x40");
    }
}
