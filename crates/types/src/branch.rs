//! Branch classification and predecoded branch metadata.

use serde::{Deserialize, Serialize};

use crate::addr::VAddr;

/// The full branch taxonomy used by the synthetic program generator.
///
/// The paper's BTB stores a 2-bit type field covering four classes
/// (conditional, unconditional, indirect, return); our generator
/// distinguishes calls from plain jumps so the return-address stack can be
/// exercised, and [`BranchKind::class`] maps down to the paper's 2-bit
/// encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional direct branch (taken/not-taken decided by the direction
    /// predictor; target encoded in the instruction).
    Conditional,
    /// Unconditional direct jump.
    Unconditional,
    /// Direct call: unconditional, pushes the return address on the RAS.
    Call,
    /// Return: target supplied by the return-address stack.
    Return,
    /// Indirect jump through a register (e.g. switch tables).
    IndirectJump,
    /// Indirect call (e.g. virtual dispatch); pushes the return address.
    IndirectCall,
}

impl BranchKind {
    /// True if the branch consults the direction predictor.
    #[inline]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }

    /// True if the branch target is not encoded in the instruction and must
    /// be predicted by the indirect target cache or the RAS.
    #[inline]
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchKind::IndirectJump | BranchKind::IndirectCall | BranchKind::Return
        )
    }

    /// True if executing the branch pushes a return address onto the RAS.
    #[inline]
    pub fn pushes_ras(self) -> bool {
        matches!(self, BranchKind::Call | BranchKind::IndirectCall)
    }

    /// True if the branch pops the RAS to obtain its target.
    #[inline]
    pub fn pops_ras(self) -> bool {
        matches!(self, BranchKind::Return)
    }

    /// True if the branch is always taken when executed.
    #[inline]
    pub fn always_taken(self) -> bool {
        !self.is_conditional()
    }

    /// The paper's 2-bit BTB type class for this branch.
    #[inline]
    pub fn class(self) -> BranchClass {
        match self {
            BranchKind::Conditional => BranchClass::Conditional,
            BranchKind::Unconditional | BranchKind::Call => BranchClass::Unconditional,
            BranchKind::IndirectJump | BranchKind::IndirectCall => BranchClass::Indirect,
            BranchKind::Return => BranchClass::Return,
        }
    }
}

/// The 2-bit branch type stored in a BTB entry (paper Section 3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchClass {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct branch (including calls).
    Unconditional,
    /// Indirect branch (jump or call); target from the indirect target cache.
    Indirect,
    /// Return; target from the return-address stack.
    Return,
}

impl BranchClass {
    /// Number of storage bits needed for the class field.
    pub const BITS: usize = 2;
}

/// A statically known branch inside an instruction block, as produced by the
/// predecoder when a block is fetched (paper Section 3.2).
///
/// `target` is `Some` for direct branches (the displacement is encoded in
/// the instruction and can be precomputed); it is `None` for indirect
/// branches and returns, whose targets come from the indirect target cache
/// or the RAS at prediction time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredecodedBranch {
    /// Instruction index of the branch within its block (0..16).
    pub offset: u8,
    /// Kind of the branch instruction.
    pub kind: BranchKind,
    /// Statically known target for direct branches, `None` for indirect.
    pub target: Option<VAddr>,
}

impl PredecodedBranch {
    /// Creates a direct branch record.
    pub fn direct(offset: u8, kind: BranchKind, target: VAddr) -> Self {
        debug_assert!(!kind.is_indirect(), "direct branch must have a direct kind");
        PredecodedBranch {
            offset,
            kind,
            target: Some(target),
        }
    }

    /// Creates an indirect branch or return record (no static target).
    pub fn indirect(offset: u8, kind: BranchKind) -> Self {
        debug_assert!(
            kind.is_indirect(),
            "indirect branch must have an indirect kind"
        );
        PredecodedBranch {
            offset,
            kind,
            target: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping_matches_paper_taxonomy() {
        assert_eq!(BranchKind::Conditional.class(), BranchClass::Conditional);
        assert_eq!(
            BranchKind::Unconditional.class(),
            BranchClass::Unconditional
        );
        assert_eq!(BranchKind::Call.class(), BranchClass::Unconditional);
        assert_eq!(BranchKind::IndirectJump.class(), BranchClass::Indirect);
        assert_eq!(BranchKind::IndirectCall.class(), BranchClass::Indirect);
        assert_eq!(BranchKind::Return.class(), BranchClass::Return);
    }

    #[test]
    fn ras_behaviour_flags() {
        assert!(BranchKind::Call.pushes_ras());
        assert!(BranchKind::IndirectCall.pushes_ras());
        assert!(BranchKind::Return.pops_ras());
        assert!(!BranchKind::Conditional.pushes_ras());
        assert!(!BranchKind::Unconditional.pops_ras());
    }

    #[test]
    fn only_conditionals_consult_direction_predictor() {
        for k in [
            BranchKind::Unconditional,
            BranchKind::Call,
            BranchKind::Return,
            BranchKind::IndirectJump,
            BranchKind::IndirectCall,
        ] {
            assert!(k.always_taken(), "{k:?} must be always taken");
        }
        assert!(!BranchKind::Conditional.always_taken());
    }

    #[test]
    fn indirect_kinds_have_no_static_target() {
        let b = PredecodedBranch::indirect(3, BranchKind::Return);
        assert_eq!(b.target, None);
        let d = PredecodedBranch::direct(1, BranchKind::Call, VAddr::new(0x40));
        assert_eq!(d.target, Some(VAddr::new(0x40)));
    }
}
