//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Error returned when a structure or workload is configured with invalid
/// parameters (e.g. a zero-way cache or a non-power-of-two set count).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with a human-readable message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("ways must be nonzero");
        assert!(e.to_string().contains("ways must be nonzero"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
