//! Fetch regions: the unit of communication between the branch prediction
//! unit and the instruction fetch unit.

use serde::{Deserialize, Serialize};

use crate::addr::VAddr;

/// A contiguous range of instructions the branch prediction unit hands to
/// the fetch unit each cycle (paper Section 3.3: "the addresses of the
/// instructions starting and ending a basic block").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FetchRegion {
    /// Address of the first instruction in the region.
    pub start: VAddr,
    /// Number of instructions in the region (>= 1).
    pub len: usize,
}

impl FetchRegion {
    /// Creates a fetch region starting at `start` spanning `len`
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `len == 0`.
    #[inline]
    pub fn new(start: VAddr, len: usize) -> Self {
        debug_assert!(
            len > 0,
            "fetch region must contain at least one instruction"
        );
        FetchRegion { start, len }
    }

    /// Creates the region `[start, end]` inclusive of both endpoints.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end < start`.
    #[inline]
    pub fn spanning(start: VAddr, end: VAddr) -> Self {
        let n = start
            .instrs_until(end)
            .expect("fetch region end precedes start");
        FetchRegion::new(start, n + 1)
    }

    /// Address of the last instruction in the region.
    #[inline]
    pub fn last(self) -> VAddr {
        self.start.add_instrs(self.len - 1)
    }

    /// Iterates over the cache blocks the region touches, in order.
    pub fn blocks(self) -> impl Iterator<Item = crate::BlockAddr> {
        let first = self.start.block();
        let last = self.last().block();
        (first.raw()..=last.raw()).map(crate::BlockAddr::from_raw)
    }

    /// Iterates over the instruction addresses in the region.
    pub fn instrs(self) -> impl Iterator<Item = VAddr> {
        let start = self.start;
        (0..self.len).map(move |i| start.add_instrs(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockAddr, INSTRS_PER_BLOCK};

    #[test]
    fn spanning_is_inclusive() {
        let r = FetchRegion::spanning(VAddr::new(0x100), VAddr::new(0x10c));
        assert_eq!(r.len, 4);
        assert_eq!(r.last(), VAddr::new(0x10c));
    }

    #[test]
    fn blocks_covers_boundary_crossing() {
        let start = BlockAddr::from_raw(10).instr(INSTRS_PER_BLOCK - 2);
        let r = FetchRegion::new(start, 4); // crosses into block 11
        let blocks: Vec<_> = r.blocks().collect();
        assert_eq!(
            blocks,
            vec![BlockAddr::from_raw(10), BlockAddr::from_raw(11)]
        );
    }

    #[test]
    fn single_instr_region() {
        let r = FetchRegion::new(VAddr::new(0x40), 1);
        assert_eq!(r.last(), r.start);
        assert_eq!(r.blocks().count(), 1);
        assert_eq!(r.instrs().count(), 1);
    }

    #[test]
    fn instrs_enumerates_in_order() {
        let r = FetchRegion::new(VAddr::new(0x40), 3);
        let pcs: Vec<_> = r.instrs().map(|a| a.raw()).collect();
        assert_eq!(pcs, vec![0x40, 0x44, 0x48]);
    }
}
