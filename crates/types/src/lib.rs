//! Shared type vocabulary for the Confluence (MICRO 2015) reproduction.
//!
//! This crate defines the address newtypes, branch classification, trace
//! record format, and deterministic RNG used by every other crate in the
//! workspace. It is intentionally dependency-light so that substrate crates
//! (caches, BTBs, prefetchers) can share types without pulling in the
//! simulator.
//!
//! # Instruction model
//!
//! The reproduction models a fixed-width RISC ISA, matching the paper's
//! UltraSPARC III setup: 4-byte instructions, 64-byte instruction blocks,
//! hence [`INSTRS_PER_BLOCK`] = 16 instructions per block. Virtual addresses
//! are 48 bits, as assumed by the paper's CACTI area estimates.
//!
//! # Example
//!
//! ```
//! use confluence_types::{VAddr, BlockAddr, INSTR_BYTES};
//!
//! let pc = VAddr::new(0x4000_0000);
//! let next = pc.next_instr();
//! assert_eq!(next.raw(), 0x4000_0000 + INSTR_BYTES as u64);
//! assert_eq!(pc.block(), BlockAddr::containing(pc));
//! ```

#![warn(missing_docs)]

mod addr;
mod branch;
mod error;
mod fetch;
mod record;
mod rng;
mod storage;

pub use addr::{BlockAddr, VAddr, BLOCK_BYTES, INSTRS_PER_BLOCK, INSTR_BYTES, VADDR_BITS};
pub use branch::{BranchClass, BranchKind, PredecodedBranch};
pub use error::ConfigError;
pub use fetch::FetchRegion;
pub use record::{BranchOutcome, TraceRecord};
pub use rng::DetRng;
pub use storage::{SramArray, StorageProfile};

/// Oracle access to the static branch contents of instruction blocks.
///
/// The hardware predecoder in the paper scans the raw bytes of a fetched
/// cache block for branch instructions and extracts their type and
/// PC-relative displacement. Our synthetic programs do not have raw bytes,
/// so the trace generator exposes the equivalent information through this
/// trait: given a block address, return the statically known branches inside
/// it, in ascending offset order.
///
/// Implementations must be deterministic: repeated calls for the same block
/// return the same slice contents.
pub trait PredecodeSource {
    /// Returns the statically known branches inside `block`, ordered by
    /// instruction offset. Blocks with no branches return an empty slice.
    fn branches_in_block(&self, block: BlockAddr) -> &[PredecodedBranch];
}

impl<T: PredecodeSource + ?Sized> PredecodeSource for &T {
    fn branches_in_block(&self, block: BlockAddr) -> &[PredecodedBranch] {
        (**self).branches_in_block(block)
    }
}
