//! Dynamic trace records emitted by the workload executor.

use serde::{Deserialize, Serialize};

use crate::addr::VAddr;
use crate::branch::BranchKind;

/// The dynamic outcome of a branch instruction in the committed trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchOutcome {
    /// Static kind of the branch instruction.
    pub kind: BranchKind,
    /// Whether the branch was taken in this dynamic instance.
    pub taken: bool,
    /// The target the branch redirected to when taken. For not-taken
    /// conditionals this is the would-be target (statically encoded).
    pub target: VAddr,
}

/// One committed instruction in the trace.
///
/// The trace is the *correct-path* instruction stream, which is what
/// trace-driven frontend simulation consumes; wrong-path effects are modelled
/// with penalty cycles in the timing model rather than replayed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Program counter of the committed instruction.
    pub pc: VAddr,
    /// Branch outcome if the instruction is a branch, `None` otherwise.
    pub branch: Option<BranchOutcome>,
}

impl TraceRecord {
    /// Creates a non-branch instruction record.
    #[inline]
    pub fn plain(pc: VAddr) -> Self {
        TraceRecord { pc, branch: None }
    }

    /// Creates a branch instruction record.
    #[inline]
    pub fn branch(pc: VAddr, kind: BranchKind, taken: bool, target: VAddr) -> Self {
        TraceRecord {
            pc,
            branch: Some(BranchOutcome {
                kind,
                taken,
                target,
            }),
        }
    }

    /// True if this record is a branch that was taken.
    #[inline]
    pub fn is_taken_branch(&self) -> bool {
        self.branch.map(|b| b.taken).unwrap_or(false)
    }

    /// The address of the next instruction the core commits after this one.
    #[inline]
    pub fn next_pc(&self) -> VAddr {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.pc.next_instr(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pc_follows_taken_branch() {
        let r = TraceRecord::branch(
            VAddr::new(0x100),
            BranchKind::Unconditional,
            true,
            VAddr::new(0x800),
        );
        assert_eq!(r.next_pc(), VAddr::new(0x800));
        assert!(r.is_taken_branch());
    }

    #[test]
    fn next_pc_falls_through_not_taken() {
        let r = TraceRecord::branch(
            VAddr::new(0x100),
            BranchKind::Conditional,
            false,
            VAddr::new(0x800),
        );
        assert_eq!(r.next_pc(), VAddr::new(0x104));
        assert!(!r.is_taken_branch());
    }

    #[test]
    fn plain_record_is_sequential() {
        let r = TraceRecord::plain(VAddr::new(0x200));
        assert_eq!(r.next_pc(), VAddr::new(0x204));
        assert!(r.branch.is_none());
    }
}
