//! Deterministic pseudo-random number generation.
//!
//! Workload generation and the timing model's stochastic backend drain both
//! need randomness that is reproducible across runs, platforms, and library
//! versions. `DetRng` is a xoshiro256** generator seeded through SplitMix64,
//! implemented locally so that trace content can never silently change when
//! a dependency is upgraded.

/// A deterministic xoshiro256** PRNG.
///
/// # Example
///
/// ```
/// use confluence_types::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        DetRng { s }
    }

    /// Derives an independent child generator; useful for giving each core
    /// or each function its own stream without correlation.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let mix = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed_from(mix)
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut draw = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            draw -= w;
            if draw < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// A geometric-ish draw: the number of successes before a failure with
    /// continue-probability `p`, capped at `cap`. Used for run lengths.
    pub fn geometric(&mut self, p: f64, cap: usize) -> usize {
        let mut n = 0;
        while n < cap && self.chance(p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = DetRng::seed_from(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = DetRng::seed_from(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range(2, 5);
            assert!((2..=5).contains(&v));
            saw_lo |= v == 2;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed_from(5);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut r = DetRng::seed_from(6);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = DetRng::seed_from(8);
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[r.weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 100_000.0;
        assert!((frac2 - 0.7).abs() < 0.02);
    }

    #[test]
    fn fork_produces_uncorrelated_streams() {
        let mut parent = DetRng::seed_from(9);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn geometric_capped() {
        let mut r = DetRng::seed_from(10);
        for _ in 0..1000 {
            assert!(r.geometric(0.9, 5) <= 5);
        }
    }
}
