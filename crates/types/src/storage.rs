//! Storage accounting for frontend structures.
//!
//! Every BTB design and prefetcher reports the SRAM arrays it adds to the
//! core and any LLC capacity it occupies through predictor virtualization.
//! The `confluence-area` crate converts these into mm² using the paper's
//! CACTI-calibrated model.

use serde::{Deserialize, Serialize};

/// One dedicated SRAM array (tag + data, all overheads in bits).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramArray {
    /// Human-readable label, e.g. `"BTB L1"` or `"overflow buffer"`.
    pub label: String,
    /// Total storage bits of the array.
    pub bits: u64,
}

impl SramArray {
    /// Creates an array record.
    pub fn new(label: impl Into<String>, bits: u64) -> Self {
        SramArray {
            label: label.into(),
            bits,
        }
    }

    /// Size in KiB.
    pub fn kib(&self) -> f64 {
        self.bits as f64 / 8.0 / 1024.0
    }
}

/// The storage footprint of one frontend structure.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageProfile {
    /// Dedicated per-core SRAM arrays.
    pub arrays: Vec<SramArray>,
    /// Bytes of LLC data capacity occupied by virtualized metadata
    /// (shared across all cores running the workload).
    pub llc_resident_bytes: u64,
    /// Bytes added to the LLC tag array (e.g. SHIFT's index pointers),
    /// shared across cores.
    pub llc_tag_extension_bytes: u64,
}

impl StorageProfile {
    /// A profile with no storage at all (perfect/idealized structures).
    pub fn empty() -> Self {
        StorageProfile::default()
    }

    /// Adds a dedicated SRAM array.
    pub fn with_array(mut self, label: impl Into<String>, bits: u64) -> Self {
        self.arrays.push(SramArray::new(label, bits));
        self
    }

    /// Sets the LLC-resident metadata footprint.
    pub fn with_llc_resident(mut self, bytes: u64) -> Self {
        self.llc_resident_bytes = bytes;
        self
    }

    /// Sets the LLC tag-array extension footprint.
    pub fn with_llc_tag_extension(mut self, bytes: u64) -> Self {
        self.llc_tag_extension_bytes = bytes;
        self
    }

    /// Total dedicated per-core SRAM bits.
    pub fn dedicated_bits(&self) -> u64 {
        self.arrays.iter().map(|a| a.bits).sum()
    }

    /// Total dedicated per-core SRAM KiB.
    pub fn dedicated_kib(&self) -> f64 {
        self.dedicated_bits() as f64 / 8.0 / 1024.0
    }

    /// Merges another profile into this one (e.g. BTB + prefetcher).
    pub fn merge(mut self, other: StorageProfile) -> Self {
        self.arrays.extend(other.arrays);
        self.llc_resident_bytes += other.llc_resident_bytes;
        self.llc_tag_extension_bytes += other.llc_tag_extension_bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_totals_sum_arrays() {
        let p = StorageProfile::empty()
            .with_array("a", 8 * 1024 * 8)
            .with_array("b", 8 * 1024 * 8);
        assert_eq!(p.dedicated_bits(), 2 * 8 * 1024 * 8);
        assert!((p.dedicated_kib() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_all_fields() {
        let a = StorageProfile::empty()
            .with_array("x", 100)
            .with_llc_resident(64);
        let b = StorageProfile::empty()
            .with_array("y", 200)
            .with_llc_tag_extension(32);
        let m = a.merge(b);
        assert_eq!(m.arrays.len(), 2);
        assert_eq!(m.dedicated_bits(), 300);
        assert_eq!(m.llc_resident_bytes, 64);
        assert_eq!(m.llc_tag_extension_bytes, 32);
    }

    #[test]
    fn kib_conversion() {
        let a = SramArray::new("t", 8 * 1024);
        assert!((a.kib() - 1.0).abs() < 1e-9);
    }
}
