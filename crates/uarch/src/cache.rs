//! Generic set-associative cache with true-LRU replacement.
//!
//! The cache stores an arbitrary payload per line and reports evictions,
//! which Confluence depends on: AirBTB bundle evictions are synchronized
//! with L1-I block evictions (paper Section 3.2).

use confluence_types::ConfigError;

/// One resident line.
#[derive(Clone, Debug)]
struct Line<V> {
    key: u64,
    value: V,
}

/// A set-associative cache keyed by `u64` (callers use block numbers or
/// basic-block addresses) with true-LRU replacement within each set.
///
/// # Example
///
/// ```
/// use confluence_uarch::SetAssocCache;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cache = SetAssocCache::new(2, 2)?; // 2 sets x 2 ways
/// assert!(cache.insert(0, "a").is_none());
/// assert!(cache.insert(2, "b").is_none()); // same set as key 0
/// let evicted = cache.insert(4, "c");      // evicts LRU (key 0)
/// assert_eq!(evicted, Some((0, "a")));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache<V> {
    sets: Vec<Vec<Line<V>>>,
    set_mask: u64,
    ways: usize,
    /// Per-set way reduction used to model LLC capacity reserved for
    /// virtualized metadata (SHIFT history, PhantomBTB groups).
    reserved_ways: Vec<usize>,
}

impl<V> SetAssocCache<V> {
    /// Creates a cache with `sets` sets (power of two) and `ways` ways.
    ///
    /// # Errors
    ///
    /// Returns an error if `sets` is not a nonzero power of two or `ways`
    /// is zero.
    pub fn new(sets: usize, ways: usize) -> Result<Self, ConfigError> {
        if sets == 0 || !sets.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "sets = {sets} must be a nonzero power of two"
            )));
        }
        if ways == 0 {
            return Err(ConfigError::new("ways must be nonzero"));
        }
        Ok(SetAssocCache {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            set_mask: (sets - 1) as u64,
            ways,
            reserved_ways: vec![0; sets],
        })
    }

    /// Creates a cache sized for `capacity_lines` total lines at the given
    /// associativity (sets = capacity / ways, rounded down to a power of
    /// two).
    ///
    /// # Errors
    ///
    /// Returns an error if the derived set count is zero.
    pub fn with_capacity(capacity_lines: usize, ways: usize) -> Result<Self, ConfigError> {
        if ways == 0 {
            return Err(ConfigError::new("ways must be nonzero"));
        }
        let sets = (capacity_lines / ways).next_power_of_two();
        let sets = if sets * ways > capacity_lines && sets > 1 {
            sets / 2
        } else {
            sets
        };
        Self::new(sets.max(1), ways)
    }

    /// Removes exactly `lines` lines of capacity from the cache, spread
    /// across sets, modelling LLC space reserved for virtualized metadata.
    ///
    /// # Errors
    ///
    /// Returns an error if the reservation exceeds total capacity.
    pub fn reserve_lines(&mut self, lines: usize) -> Result<(), ConfigError> {
        let total = self.sets.len() * self.ways;
        if lines >= total {
            return Err(ConfigError::new(format!(
                "cannot reserve {lines} of {total} total lines"
            )));
        }
        let per_set = lines / self.sets.len();
        let extra = lines % self.sets.len();
        for (i, r) in self.reserved_ways.iter_mut().enumerate() {
            *r = per_set + usize::from(i < extra);
            debug_assert!(*r < self.ways);
        }
        // Trim any now-overfull sets (cold path; caches are usually empty
        // when reservations are applied).
        for (i, set) in self.sets.iter_mut().enumerate() {
            let allowed = self.ways - self.reserved_ways[i];
            set.truncate(allowed);
        }
        Ok(())
    }

    /// Total line capacity after reservations.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways - self.reserved_ways.iter().sum::<usize>()
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Associativity (before reservations).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        (key & self.set_mask) as usize
    }

    /// Looks up `key`, promoting it to MRU on a hit.
    #[inline]
    pub fn lookup(&mut self, key: u64) -> Option<&V> {
        let set = self.set_of(key);
        let lines = &mut self.sets[set];
        let pos = lines.iter().position(|l| l.key == key)?;
        if pos != 0 {
            let line = lines.remove(pos);
            lines.insert(0, line);
        }
        Some(&lines[0].value)
    }

    /// Looks up `key` and returns a mutable payload reference, promoting it
    /// to MRU on a hit.
    #[inline]
    pub fn lookup_mut(&mut self, key: u64) -> Option<&mut V> {
        let set = self.set_of(key);
        let lines = &mut self.sets[set];
        let pos = lines.iter().position(|l| l.key == key)?;
        if pos != 0 {
            let line = lines.remove(pos);
            lines.insert(0, line);
        }
        Some(&mut lines[0].value)
    }

    /// Checks residency without updating recency.
    #[inline]
    pub fn probe(&self, key: u64) -> Option<&V> {
        let set = self.set_of(key);
        self.sets[set]
            .iter()
            .find(|l| l.key == key)
            .map(|l| &l.value)
    }

    /// True if `key` is resident (no recency update).
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.probe(key).is_some()
    }

    /// Inserts `key` as MRU, returning the evicted `(key, value)` if the
    /// set overflowed. Re-inserting a resident key replaces its payload and
    /// promotes it (no eviction).
    #[inline]
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        let set = self.set_of(key);
        let allowed = self.ways - self.reserved_ways[set];
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|l| l.key == key) {
            let mut line = lines.remove(pos);
            line.value = value;
            lines.insert(0, line);
            return None;
        }
        let evicted = if lines.len() >= allowed.max(1) {
            lines.pop().map(|l| (l.key, l.value))
        } else {
            None
        };
        lines.insert(0, Line { key, value });
        evicted
    }

    /// Inserts `key` at LRU position (lowest priority), as prefetchers
    /// sometimes do to limit pollution. Returns the evicted line.
    pub fn insert_lru(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        let set = self.set_of(key);
        let allowed = self.ways - self.reserved_ways[set];
        let lines = &mut self.sets[set];
        if lines.iter().any(|l| l.key == key) {
            return None;
        }
        let evicted = if lines.len() >= allowed.max(1) {
            lines.pop().map(|l| (l.key, l.value))
        } else {
            None
        };
        lines.push(Line { key, value });
        evicted
    }

    /// Removes `key`, returning its payload.
    pub fn invalidate(&mut self, key: u64) -> Option<V> {
        let set = self.set_of(key);
        let lines = &mut self.sets[set];
        let pos = lines.iter().position(|l| l.key == key)?;
        Some(lines.remove(pos).value)
    }

    /// Iterates over `(key, &value)` of all resident lines (set order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|l| (l.key, &l.value)))
    }

    /// Clears all lines.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_geometry() {
        assert!(SetAssocCache::<()>::new(0, 4).is_err());
        assert!(SetAssocCache::<()>::new(3, 4).is_err());
        assert!(SetAssocCache::<()>::new(4, 0).is_err());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new(1, 3).unwrap();
        c.insert(1, 'a');
        c.insert(2, 'b');
        c.insert(3, 'c');
        // Touch 1 -> LRU is now 2.
        assert_eq!(c.lookup(1), Some(&'a'));
        assert_eq!(c.insert(4, 'd'), Some((2, 'b')));
        assert!(c.contains(1) && c.contains(3) && c.contains(4));
    }

    #[test]
    fn probe_does_not_promote() {
        let mut c = SetAssocCache::new(1, 2).unwrap();
        c.insert(1, ());
        c.insert(2, ());
        assert!(c.probe(1).is_some());
        // 1 is still LRU despite the probe.
        assert_eq!(c.insert(3, ()), Some((1, ())));
    }

    #[test]
    fn reinsert_updates_payload_without_eviction() {
        let mut c = SetAssocCache::new(1, 2).unwrap();
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None);
        assert_eq!(c.probe(1), Some(&11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn keys_map_to_distinct_sets() {
        let mut c = SetAssocCache::new(4, 1).unwrap();
        for k in 0..4 {
            assert!(c.insert(k, k).is_none());
        }
        assert_eq!(c.len(), 4);
        // Fifth insert conflicts only with its own set.
        assert_eq!(c.insert(4, 4), Some((0, 0)));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::new(2, 2).unwrap();
        c.insert(5, 'x');
        assert_eq!(c.invalidate(5), Some('x'));
        assert!(!c.contains(5));
        assert_eq!(c.invalidate(5), None);
    }

    #[test]
    fn with_capacity_rounds_sensibly() {
        let c = SetAssocCache::<()>::with_capacity(512, 4).unwrap();
        assert_eq!(c.set_count() * c.ways(), 512);
        let c = SetAssocCache::<()>::with_capacity(500, 4).unwrap();
        assert!(c.set_count() * c.ways() <= 512);
    }

    #[test]
    fn reserve_lines_reduces_capacity_exactly() {
        let mut c = SetAssocCache::<()>::new(8, 4).unwrap();
        c.reserve_lines(10).unwrap();
        assert_eq!(c.capacity(), 32 - 10);
        assert!(c.reserve_lines(32).is_err());
    }

    #[test]
    fn reserved_sets_evict_earlier() {
        let mut c = SetAssocCache::new(1, 4).unwrap();
        c.reserve_lines(2).unwrap();
        c.insert(0, 0);
        c.insert(1, 1);
        // Only 2 ways remain: the third insert evicts.
        assert!(c.insert(2, 2).is_some());
    }

    #[test]
    fn insert_lru_is_first_victim() {
        let mut c = SetAssocCache::new(1, 2).unwrap();
        c.insert(1, 'a');
        c.insert_lru(3, 'p'); // prefetch at LRU
        assert_eq!(c.insert(5, 'b'), Some((3, 'p')));
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = SetAssocCache::new(2, 2).unwrap();
        c.insert(1, ());
        c.clear();
        assert!(c.is_empty());
    }
}
