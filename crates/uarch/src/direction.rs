//! Hybrid conditional-branch direction predictor (paper Table 1: 16K-entry
//! gShare + bimodal + meta selector).

use confluence_types::VAddr;

/// Two-bit saturating counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    /// Weakly not-taken: the reset state. Unseen conditionals predict
    /// not-taken, which matches the guard-dominated branch mix of server
    /// code (and lets sequential speculation be right on cold branches).
    const WEAK_NOT_TAKEN: Counter2 = Counter2(1);

    #[inline]
    fn taken(self) -> bool {
        self.0 >= 2
    }

    #[inline]
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Hybrid direction predictor: a bimodal table and a gShare table arbitrated
/// by a meta selector, all with 2-bit counters.
///
/// # Example
///
/// ```
/// use confluence_uarch::HybridDirectionPredictor;
/// use confluence_types::VAddr;
///
/// let mut bp = HybridDirectionPredictor::new_16k();
/// let pc = VAddr::new(0x1000);
/// for _ in 0..8 {
///     let _ = bp.predict(pc);
///     bp.update(pc, true);
/// }
/// assert!(bp.predict(pc)); // learned always-taken
/// ```
#[derive(Clone, Debug)]
pub struct HybridDirectionPredictor {
    bimodal: Vec<Counter2>,
    gshare: Vec<Counter2>,
    meta: Vec<Counter2>,
    mask: u64,
    history: u64,
    history_bits: u32,
}

impl HybridDirectionPredictor {
    /// Creates the paper's configuration: 16K entries per table.
    pub fn new_16k() -> Self {
        Self::with_entries(16 * 1024)
    }

    /// Creates a predictor with `entries` entries per table (rounded up to
    /// a power of two).
    pub fn with_entries(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(2);
        HybridDirectionPredictor {
            bimodal: vec![Counter2::WEAK_NOT_TAKEN; n],
            gshare: vec![Counter2::WEAK_NOT_TAKEN; n],
            meta: vec![Counter2::WEAK_NOT_TAKEN; n],
            mask: (n - 1) as u64,
            history: 0,
            history_bits: n.trailing_zeros(),
        }
    }

    #[inline]
    fn pc_index(&self, pc: VAddr) -> usize {
        ((pc.raw() >> 2) & self.mask) as usize
    }

    #[inline]
    fn gshare_index(&self, pc: VAddr) -> usize {
        (((pc.raw() >> 2) ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: VAddr) -> bool {
        let b = self.bimodal[self.pc_index(pc)];
        let g = self.gshare[self.gshare_index(pc)];
        if self.meta[self.pc_index(pc)].taken() {
            g.taken()
        } else {
            b.taken()
        }
    }

    /// Updates tables and global history with the resolved outcome.
    #[inline]
    pub fn update(&mut self, pc: VAddr, taken: bool) {
        let pi = self.pc_index(pc);
        let gi = self.gshare_index(pc);
        let b_correct = self.bimodal[pi].taken() == taken;
        let g_correct = self.gshare[gi].taken() == taken;
        // The meta counter learns which component to trust per branch.
        if b_correct != g_correct {
            self.meta[pi].update(g_correct);
        }
        self.bimodal[pi].update(taken);
        self.gshare[gi].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }

    /// Clears learned state (tables to weakly-taken, history to zero).
    pub fn reset(&mut self) {
        self.bimodal.fill(Counter2::WEAK_NOT_TAKEN);
        self.gshare.fill(Counter2::WEAK_NOT_TAKEN);
        self.meta.fill(Counter2::WEAK_NOT_TAKEN);
        self.history = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_types::DetRng;

    #[test]
    fn learns_strongly_biased_branch() {
        let mut bp = HybridDirectionPredictor::with_entries(1024);
        let pc = VAddr::new(0x4000);
        for _ in 0..16 {
            bp.update(pc, true);
        }
        assert!(bp.predict(pc));
        for _ in 0..16 {
            bp.update(pc, false);
        }
        assert!(!bp.predict(pc));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // Pattern T,N,T,N correlates perfectly with 1 bit of history; the
        // hybrid must converge well above bimodal's 50%.
        let mut bp = HybridDirectionPredictor::with_entries(4096);
        let pc = VAddr::new(0x8000);
        let mut correct = 0;
        let mut total = 0;
        let mut taken = false;
        for i in 0..2000 {
            taken = !taken;
            let pred = bp.predict(pc);
            if i >= 1000 {
                total += 1;
                correct += usize::from(pred == taken);
            }
            bp.update(pc, taken);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn accuracy_on_biased_random_mix() {
        // 90%-biased branches should be predicted with ~90%+ accuracy.
        let mut bp = HybridDirectionPredictor::new_16k();
        let mut rng = DetRng::seed_from(1);
        let pcs: Vec<VAddr> = (0..64).map(|i| VAddr::new(0x1000 + i * 8)).collect();
        let mut correct = 0;
        let mut total = 0;
        for i in 0..50_000 {
            let pc = pcs[rng.index(pcs.len())];
            let taken = rng.chance(0.9);
            let pred = bp.predict(pc);
            if i > 10_000 {
                total += 1;
                correct += usize::from(pred == taken);
            }
            bp.update(pc, taken);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut bp = HybridDirectionPredictor::with_entries(128);
        let pc = VAddr::new(0x100);
        for _ in 0..8 {
            bp.update(pc, true);
        }
        bp.reset();
        // Weakly-not-taken initial state predicts not-taken.
        assert!(!bp.predict(pc));
    }
}
