//! Typed shared-resource fill requests for the two-phase CMP tick.
//!
//! The cycle-level CMP model steps every core's private pipeline state
//! concurrently (phase 1) against an immutable view of the shared
//! hierarchy, then commits shared-resource effects serially in fixed core
//! order (phase 2) so results are byte-identical to fully serial stepping.
//! A [`FillRequest`] is the unit that crosses the phase boundary: phase 1
//! decides *that* a block fill is needed (and reserves the private
//! tracking slot — an MSHR entry or a prefetch slot — with a pending
//! ready time), phase 2 performs the LLC access that yields the fill
//! latency and patches the reservation.
//!
//! The split is sound because nothing in the issuing cycle reads a fill's
//! ready time — only its *presence* (MSHR occupancy, in-flight dedup) —
//! and completed fills are only drained at the top of the next cycle, by
//! which point phase 2 has committed the real latency.

use confluence_types::BlockAddr;

use crate::llc::SharedLlc;

/// Ready-time sentinel carried by a reservation between phase 1 (request)
/// and phase 2 (commit). Never observed by a drain: the commit at the end
/// of the issuing cycle replaces it before any cycle advances.
pub const PENDING_FILL: u64 = u64::MAX;

/// What kind of fill the request tracks, i.e. which private reservation
/// the committed latency patches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillKind {
    /// A demand miss tracked by an MSHR entry for the block.
    Demand,
    /// A prefetch tracked by the core's in-flight slot at this index.
    Prefetch(usize),
}

/// One deferred shared-hierarchy access, emitted by a core in phase 1 in
/// the exact order the serial model would have performed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillRequest {
    /// The instruction block being filled.
    pub block: BlockAddr,
    /// Which reservation the latency lands in.
    pub kind: FillKind,
    /// Core-private latency added on top of the LLC access (the
    /// Confluence predecoder's scan, for designs that predecode fills).
    pub extra_latency: u64,
}

impl SharedLlc {
    /// Phase-2 half of a deferred fill: performs the LLC access (LRU
    /// update, install-on-miss, hit/miss accounting) on behalf of `core`
    /// and returns the complete fill latency including the request's
    /// private extra.
    pub fn commit_fill(&mut self, core: usize, req: &FillRequest) -> u64 {
        self.access(core, req.block) + req.extra_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MemParams;

    #[test]
    fn commit_fill_matches_direct_access_plus_extra() {
        let params = MemParams {
            llc_slice_bytes: 4 * 1024,
            cores: 4,
            ..MemParams::default()
        };
        let mut direct = SharedLlc::new(params).unwrap();
        let mut committed = SharedLlc::new(params).unwrap();
        let req = |raw, extra_latency| FillRequest {
            block: BlockAddr::from_raw(raw),
            kind: FillKind::Demand,
            extra_latency,
        };
        // Same access sequence through both halves: identical latencies
        // and identical cache state transitions (miss then hit).
        for (raw, extra) in [(5, 0), (5, 2), (9, 3)] {
            let want = direct.access(1, BlockAddr::from_raw(raw)) + extra;
            assert_eq!(committed.commit_fill(1, &req(raw, extra)), want);
        }
        assert_eq!(direct.hits(), committed.hits());
        assert_eq!(direct.misses(), committed.misses());
    }
}
