//! Indirect target cache (paper Table 1: 1K-entry).

use confluence_types::VAddr;

/// Direct-mapped, tagged cache predicting targets of indirect branches.
///
/// Indexed by branch PC hashed with a few bits of path history so
/// polymorphic call sites can be disambiguated by calling context.
#[derive(Clone, Debug)]
pub struct IndirectTargetCache {
    entries: Vec<Option<(u64, VAddr)>>, // (tag, target)
    mask: u64,
    path_history: u64,
}

impl IndirectTargetCache {
    /// Creates the paper's 1K-entry configuration.
    pub fn new_1k() -> Self {
        Self::with_entries(1024)
    }

    /// Creates a cache with `entries` entries (rounded up to a power of
    /// two).
    pub fn with_entries(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(2);
        IndirectTargetCache {
            entries: vec![None; n],
            mask: (n - 1) as u64,
            path_history: 0,
        }
    }

    #[inline]
    fn index(&self, pc: VAddr) -> usize {
        (((pc.raw() >> 2) ^ (self.path_history << 2)) & self.mask) as usize
    }

    #[inline]
    fn tag(pc: VAddr) -> u64 {
        pc.raw() >> 2
    }

    /// Predicts the target of the indirect branch at `pc`, if a matching
    /// entry exists.
    #[inline]
    pub fn predict(&self, pc: VAddr) -> Option<VAddr> {
        let (tag, target) = self.entries[self.index(pc)]?;
        (tag == Self::tag(pc)).then_some(target)
    }

    /// Records the resolved target and rolls the path history.
    #[inline]
    pub fn update(&mut self, pc: VAddr, target: VAddr) {
        let idx = self.index(pc);
        self.entries[idx] = Some((Self::tag(pc), target));
        self.path_history = (self.path_history << 4) ^ (target.raw() >> 2) & 0xFFFF;
    }

    /// Clears all entries and history.
    pub fn reset(&mut self) {
        self.entries.fill(None);
        self.path_history = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_monomorphic_site() {
        let mut itc = IndirectTargetCache::with_entries(64);
        let pc = VAddr::new(0x100);
        let t = VAddr::new(0x2000);
        itc.update(pc, t);
        // With unchanged history, the same site predicts its last target.
        assert_eq!(itc.predict(pc), Some(t));
    }

    #[test]
    fn miss_without_entry() {
        let itc = IndirectTargetCache::with_entries(64);
        assert_eq!(itc.predict(VAddr::new(0x100)), None);
    }

    #[test]
    fn reset_clears_entries() {
        let mut itc = IndirectTargetCache::with_entries(64);
        itc.update(VAddr::new(0x100), VAddr::new(0x200));
        itc.reset();
        assert_eq!(itc.predict(VAddr::new(0x100)), None);
    }

    #[test]
    fn tags_disambiguate_aliasing_pcs() {
        let mut itc = IndirectTargetCache::with_entries(2);
        let a = VAddr::new(0x100);
        let b = VAddr::new(0x100 + 2 * 4); // same index (2-entry), different tag
        itc.update(a, VAddr::new(0x1000));
        // After b overwrites the slot, a must miss (not alias).
        let hist = itc.path_history;
        itc.update(b, VAddr::new(0x2000));
        itc.path_history = hist; // pin history for a deterministic check
        let pred_a = itc.predict(a);
        assert_ne!(pred_a, Some(VAddr::new(0x2000)), "tag aliasing detected");
    }
}
