//! L1 instruction cache model (32 KB, 4-way, 64 B blocks).

use confluence_types::{BlockAddr, ConfigError};

use crate::cache::SetAssocCache;
use crate::params::MemParams;

/// Block-grain L1-I model with fill/eviction reporting.
///
/// Confluence keeps AirBTB contents synchronized with the L1-I, so the
/// cache reports every eviction to its caller; the frontend wires those
/// into AirBTB bundle evictions.
#[derive(Clone, Debug)]
pub struct L1ICache {
    cache: SetAssocCache<()>,
    hits: u64,
    misses: u64,
}

impl L1ICache {
    /// Creates the paper's 32 KB / 4-way configuration.
    pub fn new_32k() -> Self {
        let p = MemParams::default();
        Self::new(p.l1i_sets(), p.l1i_ways).expect("default geometry is valid")
    }

    /// Creates an L1-I of `kb` kilobytes at the default associativity and
    /// block size (the capacity axis of the L1-I sensitivity sweep).
    ///
    /// # Errors
    ///
    /// Returns an error when the capacity does not divide into a
    /// power-of-two set count (64 B blocks, 4 ways: any power-of-two
    /// capacity ≥ 1 KB works).
    pub fn with_capacity_kb(kb: usize) -> Result<Self, ConfigError> {
        let p = MemParams::default();
        let blocks = kb * 1024 / p.block_bytes;
        if blocks == 0 || !blocks.is_multiple_of(p.l1i_ways) {
            return Err(ConfigError::new(format!(
                "L1-I capacity {kb} KB does not fit {}-way {}-byte blocks",
                p.l1i_ways, p.block_bytes
            )));
        }
        Self::new(blocks / p.l1i_ways, p.l1i_ways)
    }

    /// Creates an L1-I with explicit geometry.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid set/way counts.
    pub fn new(sets: usize, ways: usize) -> Result<Self, ConfigError> {
        Ok(L1ICache {
            cache: SetAssocCache::new(sets, ways)?,
            hits: 0,
            misses: 0,
        })
    }

    /// Number of blocks the cache can hold.
    pub fn capacity_blocks(&self) -> usize {
        self.cache.capacity()
    }

    /// Looks up `block`, updating recency and hit/miss counters.
    pub fn access(&mut self, block: BlockAddr) -> bool {
        if self.cache.lookup(block.raw()).is_some() {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Residency check without recency or counter updates.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.cache.contains(block.raw())
    }

    /// Fills `block` (demand or prefetch), returning the evicted block if
    /// any. Refilling a resident block only refreshes recency.
    pub fn fill(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        self.cache
            .insert(block.raw(), ())
            .map(|(k, ())| BlockAddr::from_raw(k))
    }

    /// Demand hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Misses per kilo-access.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Resets counters (not contents); used after warm-up.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Iterates over resident blocks.
    pub fn resident_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.cache.iter().map(|(k, _)| BlockAddr::from_raw(k))
    }
}

impl Default for L1ICache {
    fn default() -> Self {
        Self::new_32k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_512_blocks() {
        let c = L1ICache::new_32k();
        assert_eq!(c.capacity_blocks(), 512);
    }

    #[test]
    fn capacity_kb_constructor_scales_blocks() {
        assert_eq!(
            L1ICache::with_capacity_kb(32).unwrap().capacity_blocks(),
            512
        );
        assert_eq!(
            L1ICache::with_capacity_kb(16).unwrap().capacity_blocks(),
            256
        );
        assert_eq!(
            L1ICache::with_capacity_kb(128).unwrap().capacity_blocks(),
            2048
        );
        assert!(L1ICache::with_capacity_kb(0).is_err());
    }

    #[test]
    fn fill_then_hit() {
        let mut c = L1ICache::new(2, 2).unwrap();
        let b = BlockAddr::from_raw(4);
        assert!(!c.access(b));
        c.fill(b);
        assert!(c.access(b));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn eviction_reported() {
        let mut c = L1ICache::new(1, 2).unwrap();
        c.fill(BlockAddr::from_raw(1));
        c.fill(BlockAddr::from_raw(2));
        let evicted = c.fill(BlockAddr::from_raw(3));
        assert_eq!(evicted, Some(BlockAddr::from_raw(1)));
    }

    #[test]
    fn counters_reset() {
        let mut c = L1ICache::new(2, 2).unwrap();
        c.access(BlockAddr::from_raw(0));
        c.reset_counters();
        assert_eq!(c.misses(), 0);
        assert_eq!(c.miss_ratio(), 0.0);
    }
}
