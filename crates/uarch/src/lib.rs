//! Microarchitectural substrates for the Confluence reproduction.
//!
//! This crate provides the structures every frontend design in the paper is
//! built from: a generic set-associative cache, the L1 instruction cache,
//! the shared NUCA LLC with predictor-virtualization reservations, the
//! 2D-mesh NoC latency model, MSHRs, the hybrid branch direction predictor,
//! the indirect target cache, the return-address stack, the predecoder, and
//! the Table 1 parameter sets.
//!
//! # Example
//!
//! ```
//! use confluence_uarch::{L1ICache, MemParams};
//! use confluence_types::BlockAddr;
//!
//! let mut l1i = L1ICache::new_32k();
//! let block = BlockAddr::from_raw(100);
//! assert!(!l1i.access(block)); // cold miss
//! l1i.fill(block);
//! assert!(l1i.access(block)); // hit
//! assert_eq!(MemParams::default().l1i_blocks(), 512);
//! ```

#![warn(missing_docs)]

mod cache;
mod direction;
mod fill;
mod indirect;
mod l1i;
mod llc;
mod mshr;
mod noc;
mod params;
mod predecode;
mod ras;

pub use cache::SetAssocCache;
pub use direction::HybridDirectionPredictor;
pub use fill::{FillKind, FillRequest, PENDING_FILL};
pub use indirect::IndirectTargetCache;
pub use l1i::L1ICache;
pub use llc::SharedLlc;
pub use mshr::MshrFile;
pub use noc::MeshNoc;
pub use params::{CoreParams, MemParams};
pub use predecode::{Predecoder, DEFAULT_PREDECODE_LATENCY};
pub use ras::ReturnAddressStack;
