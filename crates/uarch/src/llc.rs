//! Shared NUCA last-level cache model (16 x 512 KB slices).
//!
//! The LLC serves three roles in the reproduction:
//!
//! 1. backing store for instruction fills (block residency + latency);
//! 2. host for *virtualized* predictor metadata — SHIFT's history buffer
//!    and PhantomBTB's temporal groups live in reserved LLC lines
//!    (predictor virtualization, Burcea et al.); the reservation reduces
//!    effective LLC capacity;
//! 3. the latency term exposed to hierarchical BTBs that keep their second
//!    level in the LLC (PhantomBTB).

use confluence_types::{BlockAddr, ConfigError};

use crate::cache::SetAssocCache;
use crate::noc::MeshNoc;
use crate::params::MemParams;

/// Shared block-grain LLC with NUCA latency and metadata reservations.
#[derive(Clone, Debug)]
pub struct SharedLlc {
    cache: SetAssocCache<()>,
    noc: MeshNoc,
    params: MemParams,
    hits: u64,
    misses: u64,
    reserved_lines: usize,
}

impl SharedLlc {
    /// Creates the paper's 16-slice, 512 KB/slice configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if `params` describe an invalid geometry.
    pub fn new(params: MemParams) -> Result<Self, ConfigError> {
        let cache = SetAssocCache::with_capacity(params.llc_blocks(), params.llc_ways)?;
        let noc = MeshNoc::new(params.cores, params.noc_hop_latency)?;
        Ok(SharedLlc {
            cache,
            noc,
            params,
            hits: 0,
            misses: 0,
            reserved_lines: 0,
        })
    }

    /// Reserves `lines` LLC lines for virtualized predictor metadata.
    ///
    /// # Errors
    ///
    /// Returns an error if the reservation exceeds capacity.
    pub fn reserve_metadata_lines(&mut self, lines: usize) -> Result<(), ConfigError> {
        self.cache.reserve_lines(self.reserved_lines + lines)?;
        self.reserved_lines += lines;
        Ok(())
    }

    /// Lines currently reserved for metadata.
    pub fn reserved_lines(&self) -> usize {
        self.reserved_lines
    }

    /// Effective capacity in lines after reservations.
    pub fn capacity_lines(&self) -> usize {
        self.cache.capacity()
    }

    /// Round-trip latency (cycles) for `core` to reach the bank holding
    /// `block`, including the bank access itself but not memory.
    pub fn access_latency(&self, core: usize, block: BlockAddr) -> u64 {
        self.noc.round_trip(core, block) + self.params.llc_bank_latency
    }

    /// Mean LLC access latency from `core` (uniform bank distribution).
    pub fn mean_access_latency(&self, core: usize) -> f64 {
        self.noc.mean_round_trip(core) + self.params.llc_bank_latency as f64
    }

    /// Performs an instruction-block access on behalf of `core`.
    ///
    /// Returns the total fill latency in cycles: LLC round trip on a hit,
    /// plus the memory penalty on an LLC miss. The block is installed on
    /// miss (fills from memory allocate in LLC).
    pub fn access(&mut self, core: usize, block: BlockAddr) -> u64 {
        let base = self.access_latency(core, block);
        if self.cache.lookup(block.raw()).is_some() {
            self.hits += 1;
            base
        } else {
            self.misses += 1;
            self.cache.insert(block.raw(), ());
            base + self.params.mem_latency
        }
    }

    /// Residency probe without counter updates.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.cache.contains(block.raw())
    }

    /// Pre-installs a block (used to warm the LLC with the code footprint).
    pub fn warm_fill(&mut self, block: BlockAddr) {
        self.cache.insert(block.raw(), ());
    }

    /// LLC hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// LLC misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets counters (not contents).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// The underlying mesh model.
    pub fn noc(&self) -> &MeshNoc {
        &self.noc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> MemParams {
        MemParams {
            llc_slice_bytes: 4 * 1024,
            cores: 4,
            ..MemParams::default()
        }
    }

    #[test]
    fn miss_then_hit_latency() {
        let mut llc = SharedLlc::new(small_params()).unwrap();
        let b = BlockAddr::from_raw(5);
        let miss = llc.access(0, b);
        let hit = llc.access(0, b);
        assert!(miss > hit, "miss {miss} must exceed hit {hit}");
        assert_eq!(miss - hit, small_params().mem_latency);
        assert_eq!(llc.hits(), 1);
        assert_eq!(llc.misses(), 1);
    }

    #[test]
    fn latency_depends_on_distance() {
        let llc = SharedLlc::new(small_params()).unwrap();
        // Bank 3 is farther from core 0 than bank 0.
        let near = llc.access_latency(0, BlockAddr::from_raw(0));
        let far = llc.access_latency(0, BlockAddr::from_raw(3));
        assert!(far > near);
    }

    #[test]
    fn metadata_reservation_shrinks_capacity() {
        let mut llc = SharedLlc::new(small_params()).unwrap();
        let before = llc.capacity_lines();
        llc.reserve_metadata_lines(32).unwrap();
        assert_eq!(llc.capacity_lines(), before - 32);
        llc.reserve_metadata_lines(32).unwrap();
        assert_eq!(llc.capacity_lines(), before - 64);
        assert_eq!(llc.reserved_lines(), 64);
    }

    #[test]
    fn warm_fill_installs_without_counting() {
        let mut llc = SharedLlc::new(small_params()).unwrap();
        llc.warm_fill(BlockAddr::from_raw(9));
        assert!(llc.contains(BlockAddr::from_raw(9)));
        assert_eq!(llc.misses(), 0);
        assert_eq!(
            llc.access(1, BlockAddr::from_raw(9)),
            llc.access_latency(1, BlockAddr::from_raw(9))
        );
    }

    #[test]
    fn default_paper_geometry() {
        let llc = SharedLlc::new(MemParams::default()).unwrap();
        assert_eq!(llc.capacity_lines(), 131072);
    }
}
