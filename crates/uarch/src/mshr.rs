//! Miss-status holding registers for the L1-I (paper Table 1: 8 MSHRs).

use confluence_types::BlockAddr;

/// Tracks outstanding block fills with their completion cycles.
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<(BlockAddr, u64)>,
    capacity: usize,
}

impl MshrFile {
    /// Creates an MSHR file with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// True if no new miss can be tracked.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Number of outstanding fills.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Cycle at which the fill for `block` completes, if one is in flight.
    pub fn ready_at(&self, block: BlockAddr) -> Option<u64> {
        self.entries
            .iter()
            .find(|&&(b, _)| b == block)
            .map(|&(_, t)| t)
    }

    /// Allocates an entry for `block` completing at `ready_cycle`.
    ///
    /// Returns `false` (and does nothing) if the file is full or the block
    /// is already tracked.
    pub fn allocate(&mut self, block: BlockAddr, ready_cycle: u64) -> bool {
        if self.is_full() || self.ready_at(block).is_some() {
            return false;
        }
        self.entries.push((block, ready_cycle));
        true
    }

    /// Request half of a two-phase allocation: reserves the entry now (so
    /// same-cycle occupancy and dedup checks see it) with the
    /// [`PENDING_FILL`](crate::PENDING_FILL) sentinel as its ready time.
    /// The caller must [`MshrFile::commit_ready`] the real completion
    /// cycle before the next drain.
    pub fn allocate_pending(&mut self, block: BlockAddr) -> bool {
        self.allocate(block, crate::PENDING_FILL)
    }

    /// Commit half of a two-phase allocation: patches the reserved
    /// entry's completion cycle once the shared-hierarchy access has been
    /// performed serially.
    ///
    /// # Panics
    ///
    /// Panics if no entry for `block` is pending — a phase-ordering bug.
    pub fn commit_ready(&mut self, block: BlockAddr, ready_cycle: u64) {
        let entry = self
            .entries
            .iter_mut()
            .find(|(b, _)| *b == block)
            .expect("commit_ready without a pending allocation");
        debug_assert_eq!(entry.1, crate::PENDING_FILL, "entry already committed");
        entry.1 = ready_cycle;
    }

    /// Releases entries that have completed by `now` and returns them.
    pub fn drain_completed(&mut self, now: u64) -> Vec<BlockAddr> {
        let mut done = Vec::new();
        self.entries.retain(|&(b, t)| {
            if t <= now {
                done.push(b);
                false
            } else {
                true
            }
        });
        done
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(BlockAddr::from_raw(1), 10));
        assert!(m.allocate(BlockAddr::from_raw(2), 12));
        assert!(m.is_full());
        assert!(!m.allocate(BlockAddr::from_raw(3), 14));
    }

    #[test]
    fn duplicate_blocks_are_merged() {
        let mut m = MshrFile::new(4);
        assert!(m.allocate(BlockAddr::from_raw(1), 10));
        assert!(!m.allocate(BlockAddr::from_raw(1), 20));
        assert_eq!(m.ready_at(BlockAddr::from_raw(1)), Some(10));
    }

    #[test]
    fn drain_releases_only_completed() {
        let mut m = MshrFile::new(4);
        m.allocate(BlockAddr::from_raw(1), 10);
        m.allocate(BlockAddr::from_raw(2), 20);
        let done = m.drain_completed(15);
        assert_eq!(done, vec![BlockAddr::from_raw(1)]);
        assert_eq!(m.outstanding(), 1);
        assert!(!m.is_full());
    }

    #[test]
    fn pending_allocation_blocks_duplicates_and_never_drains_early() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate_pending(BlockAddr::from_raw(7)));
        // Presence is visible immediately (same-cycle dedup)...
        assert!(!m.allocate(BlockAddr::from_raw(7), 5));
        // ...but the sentinel never completes.
        assert!(m.drain_completed(u64::MAX - 1).is_empty());
        m.commit_ready(BlockAddr::from_raw(7), 12);
        assert_eq!(m.ready_at(BlockAddr::from_raw(7)), Some(12));
        assert_eq!(m.drain_completed(12), vec![BlockAddr::from_raw(7)]);
    }

    #[test]
    #[should_panic(expected = "without a pending allocation")]
    fn commit_without_request_panics() {
        MshrFile::new(2).commit_ready(BlockAddr::from_raw(1), 3);
    }

    #[test]
    fn clear_resets() {
        let mut m = MshrFile::new(2);
        m.allocate(BlockAddr::from_raw(1), 10);
        m.clear();
        assert_eq!(m.outstanding(), 0);
    }
}
