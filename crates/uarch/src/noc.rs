//! 2D-mesh network-on-chip latency model (4x4 mesh, 3 cycles per hop).

use confluence_types::{BlockAddr, ConfigError};

/// Latency model for a square 2D mesh connecting cores to LLC banks.
///
/// Tiles are numbered row-major; LLC banks are address-interleaved at block
/// granularity across the tiles (one bank per tile, paper Table 1: 16
/// banks).
#[derive(Clone, Debug)]
pub struct MeshNoc {
    dim: usize,
    hop_latency: u64,
}

impl MeshNoc {
    /// Creates a mesh for `tiles` tiles (must be a perfect square).
    ///
    /// # Errors
    ///
    /// Returns an error if `tiles` is not a perfect square or is zero.
    pub fn new(tiles: usize, hop_latency: u64) -> Result<Self, ConfigError> {
        let dim = (tiles as f64).sqrt() as usize;
        if dim == 0 || dim * dim != tiles {
            return Err(ConfigError::new(format!(
                "tiles = {tiles} is not a perfect square"
            )));
        }
        Ok(MeshNoc { dim, hop_latency })
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.dim * self.dim
    }

    /// The LLC bank (tile) holding the given block (address-interleaved).
    pub fn bank_of(&self, block: BlockAddr) -> usize {
        (block.raw() % self.tiles() as u64) as usize
    }

    /// Manhattan hop distance between two tiles.
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (fx, fy) = (from % self.dim, from / self.dim);
        let (tx, ty) = (to % self.dim, to / self.dim);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// One-way latency from tile `from` to tile `to`.
    pub fn latency(&self, from: usize, to: usize) -> u64 {
        self.hops(from, to) * self.hop_latency
    }

    /// Round-trip latency from a core tile to the bank holding `block`.
    pub fn round_trip(&self, core: usize, block: BlockAddr) -> u64 {
        2 * self.latency(core, self.bank_of(block))
    }

    /// Mean round-trip latency from `core` to a uniformly random bank;
    /// useful for closed-form latency estimates.
    pub fn mean_round_trip(&self, core: usize) -> f64 {
        let total: u64 = (0..self.tiles()).map(|b| 2 * self.latency(core, b)).sum();
        total as f64 / self.tiles() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_square() {
        assert!(MeshNoc::new(15, 3).is_err());
        assert!(MeshNoc::new(0, 3).is_err());
    }

    #[test]
    fn hop_distance_is_manhattan() {
        let noc = MeshNoc::new(16, 3).unwrap();
        assert_eq!(noc.hops(0, 0), 0);
        assert_eq!(noc.hops(0, 3), 3); // same row
        assert_eq!(noc.hops(0, 15), 6); // opposite corner
        assert_eq!(noc.hops(5, 10), 2);
    }

    #[test]
    fn round_trip_is_twice_oneway() {
        let noc = MeshNoc::new(16, 3).unwrap();
        let b = BlockAddr::from_raw(15); // bank 15
        assert_eq!(noc.round_trip(0, b), 2 * 6 * 3);
    }

    #[test]
    fn banks_interleave_by_block() {
        let noc = MeshNoc::new(16, 3).unwrap();
        assert_eq!(noc.bank_of(BlockAddr::from_raw(0)), 0);
        assert_eq!(noc.bank_of(BlockAddr::from_raw(17)), 1);
    }

    #[test]
    fn mean_round_trip_positive_and_bounded() {
        let noc = MeshNoc::new(16, 3).unwrap();
        let m = noc.mean_round_trip(5);
        assert!(m > 0.0 && m <= 36.0);
    }
}
