//! Architectural parameters from Table 1 of the paper.

use serde::{Deserialize, Serialize};

/// Core pipeline parameters (ARM Cortex-A72-like, paper Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreParams {
    /// Fetch-queue capacity in basic blocks ("fetch queue of six basic
    /// blocks").
    pub fetch_queue_regions: usize,
    /// Sequential instructions speculatively enqueued on a BTB miss
    /// ("a predefined number of instructions (eight)").
    pub btb_miss_seq_instrs: usize,
    /// Cycles from fetch to the first decode stage where misfetches are
    /// detected ("misfetch penalty of 4 cycles").
    pub misfetch_penalty: u64,
    /// Full pipeline flush penalty for a resolved direction/indirect
    /// misprediction (15-stage pipeline; resolve in execute).
    pub mispredict_penalty: u64,
    /// Maximum instructions retired per cycle (3-way OoO).
    pub retire_width: usize,
    /// Instruction-buffer capacity decoupling fetch from retire.
    pub instr_buffer: usize,
    /// Basic-block predictions produced per cycle by the BPU.
    pub predictions_per_cycle: usize,
    /// Instructions the fetch stage can deliver per cycle (16-byte fetch,
    /// 4-byte instructions).
    pub fetch_width: usize,
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams {
            fetch_queue_regions: 6,
            btb_miss_seq_instrs: 8,
            misfetch_penalty: 4,
            mispredict_penalty: 8,
            retire_width: 3,
            instr_buffer: 96,
            predictions_per_cycle: 1,
            fetch_width: 4,
        }
    }
}

/// Memory-hierarchy parameters (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemParams {
    /// L1-I capacity in bytes (32 KB).
    pub l1i_bytes: usize,
    /// L1-I associativity.
    pub l1i_ways: usize,
    /// L1-I load-to-use latency in cycles.
    pub l1i_latency: u64,
    /// L1-I MSHR count.
    pub l1i_mshrs: usize,
    /// Number of cores / LLC slices (4x4 mesh).
    pub cores: usize,
    /// Per-core LLC slice capacity in bytes (512 KB NUCA).
    pub llc_slice_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// LLC bank access latency in cycles.
    pub llc_bank_latency: u64,
    /// Mesh hop latency in cycles.
    pub noc_hop_latency: u64,
    /// Main-memory access latency in cycles (45 ns at 3 GHz).
    pub mem_latency: u64,
    /// Cache block size in bytes.
    pub block_bytes: usize,
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams {
            l1i_bytes: 32 * 1024,
            l1i_ways: 4,
            l1i_latency: 2,
            l1i_mshrs: 8,
            cores: 16,
            llc_slice_bytes: 512 * 1024,
            llc_ways: 16,
            llc_bank_latency: 6,
            noc_hop_latency: 3,
            mem_latency: 135,
            block_bytes: 64,
        }
    }
}

impl MemParams {
    /// Number of L1-I blocks (512 for the default configuration).
    pub fn l1i_blocks(&self) -> usize {
        self.l1i_bytes / self.block_bytes
    }

    /// Number of L1-I sets.
    pub fn l1i_sets(&self) -> usize {
        self.l1i_blocks() / self.l1i_ways
    }

    /// Total LLC blocks across all slices.
    pub fn llc_blocks(&self) -> usize {
        self.llc_slice_bytes * self.cores / self.block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = CoreParams::default();
        assert_eq!(c.fetch_queue_regions, 6);
        assert_eq!(c.misfetch_penalty, 4);
        assert_eq!(c.retire_width, 3);
        let m = MemParams::default();
        assert_eq!(m.l1i_blocks(), 512);
        assert_eq!(m.l1i_sets(), 128);
        assert_eq!(m.llc_blocks(), 131072);
        assert_eq!(m.mem_latency, 135);
    }
}
