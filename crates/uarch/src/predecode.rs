//! Predecoder model: extracts branch metadata from fetched blocks.
//!
//! The paper's predecoder scans a cache block for branch instructions as it
//! arrives from the LLC, extracting each branch's type and PC-relative
//! displacement before insertion into the L1-I (Section 3.2). The scan
//! takes a few cycles, which is off the critical path for prefetched blocks
//! but adds to the fetch latency of demand misses.

use confluence_types::{BlockAddr, PredecodeSource, PredecodedBranch};

/// Default branch-scan latency in cycles (paper cites "a few cycles",
/// referencing SPARC T4-style predecode).
pub const DEFAULT_PREDECODE_LATENCY: u64 = 2;

/// A predecoder with a configurable scan latency.
///
/// The actual branch extraction is delegated to the program's
/// [`PredecodeSource`] oracle, which plays the role of decoding the raw
/// instruction bytes.
#[derive(Clone, Copy, Debug)]
pub struct Predecoder {
    latency: u64,
}

impl Predecoder {
    /// Creates a predecoder with the default 2-cycle scan latency.
    pub fn new() -> Self {
        Predecoder {
            latency: DEFAULT_PREDECODE_LATENCY,
        }
    }

    /// Creates a predecoder with an explicit scan latency.
    pub fn with_latency(latency: u64) -> Self {
        Predecoder { latency }
    }

    /// Scan latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Scans `block` for branches using the given oracle.
    pub fn scan<'a, P: PredecodeSource + ?Sized>(
        &self,
        oracle: &'a P,
        block: BlockAddr,
    ) -> &'a [PredecodedBranch] {
        oracle.branches_in_block(block)
    }
}

impl Default for Predecoder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_types::{BranchKind, VAddr};
    use std::collections::HashMap;

    struct MapOracle(HashMap<BlockAddr, Vec<PredecodedBranch>>);

    impl PredecodeSource for MapOracle {
        fn branches_in_block(&self, block: BlockAddr) -> &[PredecodedBranch] {
            self.0.get(&block).map(Vec::as_slice).unwrap_or(&[])
        }
    }

    #[test]
    fn scan_returns_oracle_contents() {
        let block = BlockAddr::from_raw(7);
        let branches = vec![PredecodedBranch::direct(
            3,
            BranchKind::Call,
            VAddr::new(0x40),
        )];
        let oracle = MapOracle(HashMap::from([(block, branches.clone())]));
        let pd = Predecoder::new();
        assert_eq!(pd.scan(&oracle, block), branches.as_slice());
        assert_eq!(pd.scan(&oracle, BlockAddr::from_raw(8)), &[]);
        assert_eq!(pd.latency(), DEFAULT_PREDECODE_LATENCY);
    }

    #[test]
    fn custom_latency() {
        assert_eq!(Predecoder::with_latency(5).latency(), 5);
    }
}
