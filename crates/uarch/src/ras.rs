//! Return-address stack (paper Table 1: 64-entry).

use confluence_types::VAddr;

/// A fixed-capacity circular return-address stack.
///
/// Overflow wraps around (oldest entry overwritten), underflow returns
/// `None`; both match typical hardware behaviour.
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    entries: Vec<VAddr>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates the paper's 64-entry configuration.
    pub fn new_64() -> Self {
        Self::with_capacity(64)
    }

    /// Creates a RAS with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be nonzero");
        ReturnAddressStack {
            entries: vec![VAddr::default(); capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address (call executed).
    pub fn push(&mut self, addr: VAddr) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = addr;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return target, or `None` when empty.
    pub fn pop(&mut self) -> Option<VAddr> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(addr)
    }

    /// Peeks at the top entry without popping.
    pub fn peek(&self) -> Option<VAddr> {
        (self.depth > 0).then(|| self.entries[self.top])
    }

    /// Current number of valid entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Empties the stack.
    pub fn clear(&mut self) {
        self.depth = 0;
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::with_capacity(4);
        ras.push(VAddr::new(0x10));
        ras.push(VAddr::new(0x20));
        assert_eq!(ras.pop(), Some(VAddr::new(0x20)));
        assert_eq!(ras.pop(), Some(VAddr::new(0x10)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut ras = ReturnAddressStack::with_capacity(2);
        ras.push(VAddr::new(0x10));
        ras.push(VAddr::new(0x20));
        ras.push(VAddr::new(0x30)); // overwrites 0x10
        assert_eq!(ras.pop(), Some(VAddr::new(0x30)));
        assert_eq!(ras.pop(), Some(VAddr::new(0x20)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn peek_does_not_pop() {
        let mut ras = ReturnAddressStack::new_64();
        ras.push(VAddr::new(0x44));
        assert_eq!(ras.peek(), Some(VAddr::new(0x44)));
        assert_eq!(ras.depth(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut ras = ReturnAddressStack::with_capacity(4);
        ras.push(VAddr::new(0x44));
        ras.clear();
        assert_eq!(ras.pop(), None);
    }
}
