//! Explore the AirBTB design space: bundle size x overflow buffer
//! (reproducing the Figure 10 sensitivity sweep on one workload).
//!
//! ```sh
//! cargo run --release --example btb_design_space
//! ```

use confluence::sim::{run_coverage, CoverageOptions};
use confluence::trace::{Program, Workload};
use confluence_btb::{BtbDesign, ConventionalBtb};
use confluence_core::{AirBtb, AirBtbMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Program::generate(&Workload::WebFrontend.spec().with_code_kb(1024))?;
    let opts = CoverageOptions {
        warmup_instrs: 400_000,
        measure_instrs: 800_000,
        ..Default::default()
    };

    let mut baseline = ConventionalBtb::baseline_1k()?;
    let rb = run_coverage(&program, &mut baseline, &opts);
    println!("baseline (1K conventional): {:.1} MPKI\n", rb.btb_mpki());
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>10}",
        "bundle", "overflow", "storage KiB", "MPKI", "coverage"
    );

    for bundle in [2usize, 3, 4, 6] {
        for overflow in [0usize, 16, 32, 64] {
            let mut btb = AirBtb::new(AirBtbMode::Full, 512, bundle, overflow);
            let kib = btb.storage().dedicated_kib();
            let r = run_coverage(&program, &mut btb, &opts.clone().with_shift());
            println!(
                "{:>8} {:>8} {:>12.1} {:>10.2} {:>9.1}%",
                bundle,
                overflow,
                kib,
                r.btb_mpki(),
                100.0 * r.btb_miss_coverage_vs(&rb)
            );
        }
    }
    println!("\nThe paper's pick (B:3, OB:32) balances storage against coverage;");
    println!("B:4 buys ~2 KiB of storage for marginal coverage (Section 5.3).");
    Ok(())
}
