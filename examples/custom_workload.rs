//! Define a custom service workload and evaluate frontend designs on it.
//!
//! This models a hypothetical microservice: a shallow stack, few request
//! types, mid-sized code — and shows how the conclusions shift when the
//! instruction working set shrinks toward the L1-I capacity.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use confluence::sim::{simulate_cmp, DesignPoint, TimingConfig};
use confluence::trace::{Program, TermMix, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = WorkloadSpec {
        name: "microservice",
        structure_seed: 0xCAFE,
        target_code_kb: 768,
        layers: 7,
        request_types: 6,
        shared_frac: 0.35,
        bb_per_func: (4, 14),
        plain_len_mean: 4.0,
        plain_len_cold: 0.8,
        taken_bias_frac: 0.35,
        term_mix: TermMix {
            cond: 0.55,
            call: 0.13,
            jump: 0.08,
            indirect_call: 0.04,
            indirect_jump: 0.015,
            ret: 0.065,
            fallthrough: 0.12,
        },
        cold_call_prob: 0.15,
        loop_prob: 0.25,
        loop_continue: 0.8,
        strong_bias: 0.9,
        mixed_frac: 0.04,
        indirect_fanout: (2, 5),
        os_interleave: 0.2,
        request_zipf: 0.6,
        flavors_per_request: 32,
        call_scale: 1.0,
        backend_stall_prob: 0.45,
    };
    spec.validate()?;
    let program = Program::generate(&spec)?;
    println!(
        "custom workload: {:.0} KiB code, {} basic blocks",
        program.stats().code_bytes as f64 / 1024.0,
        program.stats().basic_blocks
    );

    let cfg = TimingConfig::quick();
    let base = simulate_cmp(&program, DesignPoint::Baseline, &cfg);
    println!(
        "\n{:<22} {:>8} {:>10} {:>10} {:>10}",
        "design", "IPC", "speedup", "BTB MPKI", "L1I MPKI"
    );
    for d in [
        DesignPoint::Baseline,
        DesignPoint::Fdp,
        DesignPoint::TwoLevelShift,
        DesignPoint::Confluence,
        DesignPoint::Ideal,
    ] {
        let r = simulate_cmp(&program, d, &cfg);
        println!(
            "{:<22} {:>8.3} {:>9.1}% {:>10.1} {:>10.1}",
            d.name(),
            r.ipc(),
            100.0 * (r.speedup_over(&base) - 1.0),
            r.btb_mpki(),
            r.l1i_mpki()
        );
    }
    Ok(())
}
