//! Quickstart: build a server workload, run Confluence against the
//! baseline frontend, and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use confluence::sim::{run_coverage, simulate_cmp, CoverageOptions, DesignPoint, TimingConfig};
use confluence::trace::{Program, Workload};
use confluence_btb::{BtbDesign, ConventionalBtb};
use confluence_core::AirBtb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a scaled-down OLTP/DB2-class server workload.
    let spec = Workload::OltpDb2.spec().with_code_kb(1024);
    let program = Program::generate(&spec)?;
    println!(
        "workload: {} ({:.1} MiB code, {} functions)",
        spec.name,
        program.stats().code_bytes as f64 / (1024.0 * 1024.0),
        program.stats().functions
    );

    // 2. Functional comparison: BTB miss coverage of AirBTB vs the 1K
    //    conventional baseline.
    let opts = CoverageOptions {
        warmup_instrs: 400_000,
        measure_instrs: 800_000,
        ..Default::default()
    };
    let mut baseline = ConventionalBtb::baseline_1k()?;
    let rb = run_coverage(&program, &mut baseline, &opts);
    let mut airbtb = AirBtb::paper_config();
    let ra = run_coverage(&program, &mut airbtb, &opts.clone().with_shift());
    println!("baseline BTB MPKI : {:.1}", rb.btb_mpki());
    println!("AirBTB   BTB MPKI : {:.1}", ra.btb_mpki());
    println!(
        "miss coverage     : {:.1}%",
        100.0 * ra.btb_miss_coverage_vs(&rb)
    );
    println!(
        "AirBTB storage    : {:.1} KiB (baseline: {:.1} KiB)",
        airbtb.storage().dedicated_kib(),
        baseline.storage().dedicated_kib()
    );

    // 3. Timing comparison on a small CMP.
    let tcfg = TimingConfig::quick();
    let base = simulate_cmp(&program, DesignPoint::Baseline, &tcfg);
    let conf = simulate_cmp(&program, DesignPoint::Confluence, &tcfg);
    let ideal = simulate_cmp(&program, DesignPoint::Ideal, &tcfg);
    println!("baseline IPC      : {:.3}", base.ipc());
    println!(
        "Confluence IPC    : {:.3} (+{:.1}%)",
        conf.ipc(),
        100.0 * (conf.speedup_over(&base) - 1.0)
    );
    println!(
        "Ideal IPC         : {:.3} (+{:.1}%)",
        ideal.ipc(),
        100.0 * (ideal.speedup_over(&base) - 1.0)
    );
    Ok(())
}
