//! Inspect the statistical properties of a generated workload trace:
//! branch mix, working sets, temporal-stream recurrence, serialization.
//!
//! ```sh
//! cargo run --release --example trace_inspect
//! ```

use confluence::trace::{
    decode_records, encode_records, Program, StreamStats, TraceStats, Workload,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for w in Workload::ALL {
        let spec = w.spec().with_code_kb(w.spec().target_code_kb / 4);
        let program = Program::generate(&spec)?;
        let n = 500_000;
        let stats = TraceStats::collect(program.executor(1).take(n), &program);
        let streams = StreamStats::collect(program.executor(1).take(n));
        println!("== {} ==", w.name());
        println!("  instructions          : {}", stats.instrs);
        println!(
            "  branch fraction       : {:.1}%",
            100.0 * stats.branch_fraction()
        );
        println!(
            "  taken per kilo-instr  : {:.0}",
            stats.taken_per_kilo_instr()
        );
        println!(
            "  working set           : {:.0} KiB",
            stats.working_set_kb()
        );
        println!(
            "  BTB footprint         : {} taken-branch PCs",
            stats.unique_taken_branch_pcs
        );
        println!(
            "  static branches/block : {:.2}",
            stats.static_branches_per_block
        );
        println!(
            "  repeat transitions    : {:.1}%",
            100.0 * streams.repeat_transition_frac
        );
        println!(
            "  mean repeated run     : {:.1} blocks",
            streams.mean_repeat_run
        );
    }

    // Round-trip a trace snippet through the binary format.
    let program = Program::generate(&Workload::OltpDb2.spec().with_code_kb(256))?;
    let snippet: Vec<_> = program.executor(7).take(10_000).collect();
    let encoded = encode_records(snippet.iter().copied());
    let decoded = decode_records(&encoded)?;
    assert_eq!(snippet, decoded);
    println!(
        "\nserialized 10k records into {} bytes and decoded them back",
        encoded.len()
    );
    Ok(())
}
