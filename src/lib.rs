//! Umbrella crate re-exporting the full Confluence reproduction workspace.
pub use confluence_area as area;
pub use confluence_btb as btb;
pub use confluence_core as core;
pub use confluence_prefetch as prefetch;
pub use confluence_search as search;
pub use confluence_serve as serve;
pub use confluence_sim as sim;
pub use confluence_store as store;
pub use confluence_trace as trace;
pub use confluence_types as types;
pub use confluence_uarch as uarch;
