//! Compiled-program fast-path equivalence harness.
//!
//! The compiled SoA stream (`ExecMode::Compiled`) is a pure performance
//! optimization: every observable output must be **byte-identical** to
//! the reference interpreter (`ExecMode::Reference`). Two layers of
//! enforcement live here:
//!
//! 1. an engine-level sweep running every job the `--quick` experiment
//!    suite generates through both modes and asserting identical
//!    [`JobOutput`]s plus byte-identical rendered reports;
//! 2. a property test over randomized [`WorkloadSpec`]s asserting the
//!    two record streams agree record-for-record.

use proptest::prelude::*;

use confluence::sim::{experiments, ExecMode, Job, SimEngine};
use confluence::store::{Decode, Encode};
use confluence::trace::{MemoTable, Program, WorkloadSpec};

/// Every job of the `--quick` suite, executed through both the compiled
/// fast path and the reference interpreter, produces identical outputs
/// and byte-identical rendered reports. This is the in-tree version of
/// the CI `CONFLUENCE_NO_FASTPATH` stdout comparison.
#[test]
fn quick_suite_outputs_identical_across_exec_modes() {
    let cfg = experiments::ExperimentConfig::quick();
    // Two workloads keep test time sane (mirrors the integration tests).
    let workloads: Vec<_> = cfg.workloads().into_iter().take(2).collect();
    let fast = SimEngine::new(workloads.clone()).with_exec_mode(ExecMode::Compiled);
    let reference = SimEngine::new(workloads).with_exec_mode(ExecMode::Reference);

    let jobs = experiments::all_jobs(&fast, &cfg);
    fast.run(&jobs);
    reference.run(&jobs);

    // Per-job outputs agree exactly (densities compared bit-for-bit).
    let mut seen = std::collections::HashSet::new();
    for job in &jobs {
        if !seen.insert(job.clone()) {
            continue;
        }
        match job {
            Job::Coverage(j) => {
                assert_eq!(
                    fast.coverage(j),
                    reference.coverage(j),
                    "coverage divergence on {j:?}"
                );
            }
            Job::Timing(j) => {
                assert_eq!(
                    *fast.timing(j),
                    *reference.timing(j),
                    "timing divergence on {j:?}"
                );
            }
            Job::Density(j) => {
                let (fs, fd) = fast.density(j);
                let (rs, rd) = reference.density(j);
                assert_eq!(
                    (fs.to_bits(), fd.to_bits()),
                    (rs.to_bits(), rd.to_bits()),
                    "density divergence on {j:?}"
                );
            }
        }
    }

    // The rendered suite is byte-identical in every output format.
    let render = |engine: &SimEngine| -> Vec<String> {
        experiments::suite_reports(engine, &cfg)
            .iter()
            .flat_map(|r| [r.to_csv(), r.to_table(), r.to_markdown()])
            .collect()
    };
    assert_eq!(
        render(&fast),
        render(&reference),
        "rendered reports must be byte-identical across exec modes"
    );
}

proptest! {
    /// For arbitrary small workload shapes and seeds, the compiled
    /// stream and the reference interpreter agree record-for-record,
    /// including the instruction and request accounting.
    #[test]
    fn compiled_stream_matches_reference(
        seed in any::<u64>(),
        structure_seed in any::<u64>(),
        kb in 32usize..96,
        layers in 2usize..6,
        request_types in 1usize..5,
    ) {
        let spec = WorkloadSpec {
            structure_seed,
            layers,
            request_types,
            ..WorkloadSpec::tiny().with_code_kb(kb)
        };
        let program = Program::generate(&spec).expect("valid randomized spec");
        let mut fast = program.stream(seed, ExecMode::Compiled);
        let mut reference = program.stream(seed, ExecMode::Reference);
        for i in 0..10_000u64 {
            let f = fast.next_record();
            let r = reference.next_record();
            prop_assert_eq!(f, r, "stream divergence at record {}", i);
        }
        prop_assert_eq!(fast.instr_count(), reference.instr_count());
        prop_assert_eq!(fast.requests_completed(), reference.requests_completed());
    }

    /// Persisted warm artifacts are a pure performance tier: for
    /// arbitrary workload shapes, a path-memo table exported from one
    /// program instance survives the wire codec byte-for-byte and
    /// replays in a *fresh* instance (a cold process, in spirit)
    /// record-for-record identically to the reference interpreter.
    #[test]
    fn memo_tables_roundtrip_and_replay_bit_identically(
        seed in any::<u64>(),
        structure_seed in any::<u64>(),
        kb in 32usize..48,
    ) {
        let spec = WorkloadSpec {
            structure_seed,
            ..WorkloadSpec::tiny().with_code_kb(kb)
        };
        let recorder = Program::generate(&spec).expect("valid randomized spec");
        {
            let mut s = recorder.stream(seed, ExecMode::Compiled);
            for _ in 0..12_000u64 {
                s.next_record();
            }
        }
        let table = recorder.compiled().export_memo();
        let bytes = table.to_bytes();
        let decoded = MemoTable::from_bytes(&bytes).expect("canonical bytes decode");
        prop_assert_eq!(&decoded, &table);
        prop_assert_eq!(decoded.to_bytes(), bytes, "re-encoding is byte-stable");

        let replayer = Program::generate(&spec).expect("same spec regenerates");
        prop_assert!(
            replayer.compiled().import_memo(&decoded),
            "a fresh instance of the same spec must accept the table"
        );
        let mut warm = replayer.stream(seed, ExecMode::Compiled);
        let mut reference = replayer.stream(seed, ExecMode::Reference);
        for i in 0..12_000u64 {
            prop_assert_eq!(
                warm.next_record(),
                reference.next_record(),
                "warm replay diverged from the reference at record {}",
                i
            );
        }
        drop(warm);
        prop_assert!(
            replayer.compiled().memo_stats().replayed > 0,
            "the imported table must actually replay"
        );
    }
}
