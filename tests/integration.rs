//! Cross-crate integration tests: the full pipeline from workload
//! generation through functional coverage, cycle-level CMP simulation, and
//! the parallel memoizing experiment engine.

use confluence::sim::{
    experiments, run_coverage, simulate_cmp, CoverageOptions, DesignPoint, SimEngine, TimingConfig,
};
use confluence::trace::{Program, Workload, WorkloadSpec};
use confluence_area::AreaModel;
use confluence_btb::ConventionalBtb;
use confluence_core::AirBtb;
use confluence_uarch::MemParams;

fn test_program() -> Program {
    Program::generate(&WorkloadSpec::base().with_code_kb(1024)).expect("valid spec")
}

fn quick_timing() -> TimingConfig {
    TimingConfig {
        cores: 2,
        warmup_instrs: 80_000,
        measure_instrs: 80_000,
        mem: MemParams {
            cores: 4,
            ..MemParams::default()
        },
        ..TimingConfig::default()
    }
}

#[test]
fn end_to_end_airbtb_beats_baseline_coverage() {
    let program = test_program();
    let opts = CoverageOptions::quick();
    let mut baseline = ConventionalBtb::baseline_1k().unwrap();
    let rb = run_coverage(&program, &mut baseline, &opts);
    let mut air = AirBtb::paper_config();
    let ra = run_coverage(&program, &mut air, &opts.with_shift());
    let cov = ra.btb_miss_coverage_vs(&rb);
    assert!(cov > 0.6, "AirBTB coverage {cov}");
}

#[test]
fn end_to_end_design_point_ordering() {
    let program = test_program();
    let cfg = quick_timing();
    let base = simulate_cmp(&program, DesignPoint::Baseline, &cfg);
    let conf = simulate_cmp(&program, DesignPoint::Confluence, &cfg);
    let ideal = simulate_cmp(&program, DesignPoint::Ideal, &cfg);
    assert!(
        conf.ipc() > base.ipc(),
        "Confluence {} must beat baseline {}",
        conf.ipc(),
        base.ipc()
    );
    assert!(
        ideal.ipc() > base.ipc() * 1.05,
        "Ideal {} must clearly beat baseline {}",
        ideal.ipc(),
        base.ipc()
    );
}

#[test]
fn end_to_end_simulation_is_reproducible() {
    let program = test_program();
    let cfg = quick_timing();
    let a = simulate_cmp(&program, DesignPoint::Confluence, &cfg);
    let b = simulate_cmp(&program, DesignPoint::Confluence, &cfg);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert!((a.ipc() - b.ipc()).abs() < 1e-12);
}

#[test]
fn confluence_area_story_holds() {
    // The headline claim: Confluence ~1% area overhead, two-level ~8%.
    let model = AreaModel::paper();
    let base = DesignPoint::Baseline.storage_profile();
    let conf = model.relative_area(&DesignPoint::Confluence.storage_profile(), &base);
    let two = model.relative_area(&DesignPoint::TwoLevelShift.storage_profile(), &base);
    assert!((1.003..1.02).contains(&conf), "Confluence rel. area {conf}");
    assert!(two > 1.06, "2Level+SHIFT rel. area {two}");
    assert!(conf < two);
}

#[test]
fn all_workload_presets_generate_and_execute() {
    for w in Workload::ALL {
        let spec = w.spec().with_code_kb(256);
        let program = Program::generate(&spec).unwrap();
        let mut ex = program.executor(1);
        let mut prev = None;
        for _ in 0..20_000 {
            let r = ex.next_record().unwrap();
            if let Some(p) = prev {
                let p: confluence::types::TraceRecord = p;
                assert_eq!(r.pc, p.next_pc(), "{w}: trace discontinuity");
            }
            prev = Some(r);
        }
    }
}

/// Two engines over the *same* `Arc`-shared programs — one parallel, one
/// serial — must render byte-identical CSV for a multi-figure run: jobs
/// are pure functions of their keys, so the worker pool cannot perturb
/// results.
#[test]
fn engine_parallel_run_is_deterministic() {
    let cfg = experiments::ExperimentConfig::quick();
    let workloads: Vec<_> = cfg.workloads().into_iter().take(2).collect();
    let parallel = SimEngine::new(workloads.clone()).with_threads(4);
    let serial = SimEngine::new(workloads).with_threads(1);

    let render = |engine: &SimEngine| {
        let mut csv = experiments::fig9(engine, &cfg).to_csv();
        csv.push_str(&experiments::l1i_coverage(engine, &cfg).to_csv());
        csv
    };
    assert_eq!(
        render(&parallel),
        render(&serial),
        "parallel CSV must equal serial CSV"
    );
    // The parallel engine must not have simulated more than the serial one.
    assert_eq!(parallel.stats().executed, serial.stats().executed);
}

/// Across the full multi-figure batch, each unique simulation runs exactly
/// once: the engine's executed count equals the number of distinct job
/// keys, with every duplicate request served from the cache.
#[test]
fn engine_runs_each_unique_simulation_once() {
    let cfg = experiments::ExperimentConfig::quick();
    let workloads: Vec<_> = cfg.workloads().into_iter().take(2).collect();
    let engine = SimEngine::new(workloads);
    let jobs: Vec<_> = experiments::fig8_jobs(&engine, &cfg)
        .into_iter()
        .chain(experiments::fig9_jobs(&engine, &cfg))
        .chain(experiments::fig10_jobs(&engine, &cfg))
        .chain(experiments::l1i_coverage_jobs(&engine, &cfg))
        .collect();
    let unique = experiments::unique_jobs(&jobs) as u64;
    engine.run(&jobs);
    let stats = engine.stats();
    assert!(unique < jobs.len() as u64, "figures must share jobs");
    assert_eq!(
        stats.executed, unique,
        "each unique job must execute exactly once"
    );
    // Formatting the figures afterwards is pure cache hits.
    experiments::fig8(&engine, &cfg);
    experiments::fig9(&engine, &cfg);
    experiments::fig10(&engine, &cfg);
    experiments::l1i_coverage(&engine, &cfg);
    assert_eq!(
        engine.stats().executed,
        unique,
        "formatters must not re-simulate"
    );
}

#[test]
fn shift_history_shared_across_cores_helps() {
    // A consumer core using a history trained by another core must see
    // L1-I coverage (the cross-core sharing premise of SHIFT/Confluence).
    use confluence_prefetch::{ShiftEngine, ShiftHistory};
    use confluence_uarch::L1ICache;

    let program = test_program();
    let mut history = ShiftHistory::new_32k();
    // Core 0 trains the history.
    let mut last = None;
    for r in program.executor(1).take(600_000) {
        let b = r.pc.block();
        if last != Some(b) {
            last = Some(b);
            history.record(b);
        }
    }
    // Core 1 (different seed, same program) consumes it.
    let mut l1i = L1ICache::new_32k();
    let mut engine = ShiftEngine::new();
    let mut out = Vec::new();
    let (mut misses, mut accesses) = (0u64, 0u64);
    let mut last = None;
    for r in program.executor(2).take(600_000) {
        let b = r.pc.block();
        if last == Some(b) {
            continue;
        }
        last = Some(b);
        accesses += 1;
        let hit = l1i.access(b);
        if !hit {
            misses += 1;
            l1i.fill(b);
        }
        out.clear();
        engine.on_access(&history, b, !hit, &mut out);
        for &p in &out {
            if !l1i.contains(p) {
                l1i.fill(p);
            }
        }
    }
    let miss_rate = misses as f64 / accesses as f64;
    assert!(
        miss_rate < 0.08,
        "consumer core miss rate {miss_rate} too high for a shared history"
    );
    assert!(
        engine.confirmed() > 1000,
        "stream confirmations {}",
        engine.confirmed()
    );
}

/// A disposable store directory under the system temp dir.
struct StoreDir(std::path::PathBuf);

impl StoreDir {
    fn new(tag: &str) -> StoreDir {
        let path = std::env::temp_dir().join(format!(
            "confluence-integration-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        StoreDir(path)
    }

    fn open(&self) -> confluence::store::ResultStore {
        confluence::store::ResultStore::open(&self.0, confluence::sim::SCHEMA_VERSION)
            .expect("temp dir writable")
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The `all_experiments` warm-run guarantee, at the library level: a
/// second full-suite run against the same store directory simulates
/// nothing (`executed == 0`, every unique job a disk hit) and renders
/// byte-identical reports in every output format.
#[test]
fn warm_store_suite_executes_nothing_and_is_byte_identical() {
    let dir = StoreDir::new("warm-suite");
    let cfg = experiments::ExperimentConfig::quick();
    // Two workloads keep test time sane (mirrors the experiments tests).
    let workloads: Vec<_> = cfg.workloads().into_iter().take(2).collect();

    let render = |engine: &SimEngine| -> Vec<String> {
        experiments::suite_reports(engine, &cfg)
            .iter()
            .flat_map(|r| [r.to_csv(), r.to_table(), r.to_markdown()])
            .collect()
    };

    let cold = SimEngine::new(workloads.clone()).with_store(dir.open());
    let jobs = experiments::all_jobs(&cold, &cfg);
    let unique = experiments::unique_jobs(&jobs) as u64;
    cold.run(&jobs);
    let cold_reports = render(&cold);
    let cold_stats = cold.stats();
    assert_eq!(cold_stats.executed, unique, "cold run simulates everything");
    assert_eq!(cold_stats.disk_hits, 0);

    let warm = SimEngine::new(workloads).with_store(dir.open());
    warm.run(&jobs);
    let warm_reports = render(&warm);
    let warm_stats = warm.stats();
    assert_eq!(
        warm_stats.executed, 0,
        "warm run must not simulate anything"
    );
    assert_eq!(
        warm_stats.disk_hits, unique,
        "every unique job comes from disk"
    );
    assert_eq!(
        warm_reports, cold_reports,
        "warm reports must be byte-identical to cold ones"
    );
}
