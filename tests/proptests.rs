//! Property-based tests on core data structures and invariants.

use proptest::prelude::*;

use confluence::trace::{decode_records, encode_records, Program, WorkloadSpec};
use confluence::types::{BlockAddr, BranchKind, DetRng, FetchRegion, TraceRecord, VAddr};
use confluence_btb::BtbDesign;
use confluence_core::AirBtb;
use confluence_types::{PredecodedBranch, INSTRS_PER_BLOCK};
use confluence_uarch::{L1ICache, ReturnAddressStack, SetAssocCache};

fn arb_vaddr() -> impl Strategy<Value = VAddr> {
    (0u64..(1 << 40)).prop_map(|v| VAddr::new(v << 2 & ((1 << 47) - 1)))
}

proptest! {
    #[test]
    fn vaddr_block_roundtrip(addr in arb_vaddr()) {
        let block = addr.block();
        let idx = addr.instr_index();
        prop_assert_eq!(block.instr(idx), addr);
        prop_assert!(idx < INSTRS_PER_BLOCK);
    }

    #[test]
    fn fetch_region_blocks_cover_all_instrs(addr in arb_vaddr(), len in 1usize..48) {
        let region = FetchRegion::new(addr, len);
        let blocks: Vec<BlockAddr> = region.blocks().collect();
        // Every instruction's block must be in the block list.
        for pc in region.instrs() {
            prop_assert!(blocks.contains(&pc.block()));
        }
        // Block list is contiguous and minimal.
        prop_assert_eq!(blocks.first().copied(), Some(region.start.block()));
        prop_assert_eq!(blocks.last().copied(), Some(region.last().block()));
        for w in blocks.windows(2) {
            prop_assert_eq!(w[1].raw(), w[0].raw() + 1);
        }
    }

    #[test]
    fn det_rng_below_is_bounded(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn det_rng_is_seed_deterministic(seed in any::<u64>()) {
        let mut a = DetRng::seed_from(seed);
        let mut b = DetRng::seed_from(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// The set-associative cache agrees with a naive per-set LRU model.
    #[test]
    fn cache_matches_reference_lru(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        let sets = 4usize;
        let ways = 2usize;
        let mut cache = SetAssocCache::new(sets, ways).unwrap();
        // Reference: per-set vector, front = MRU.
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); sets];
        for (key, is_insert) in ops {
            let set = (key % sets as u64) as usize;
            if is_insert {
                cache.insert(key, ());
                let r = &mut reference[set];
                if let Some(pos) = r.iter().position(|&k| k == key) {
                    r.remove(pos);
                }
                r.insert(0, key);
                r.truncate(ways);
            } else {
                let hit = cache.lookup(key).is_some();
                let r = &mut reference[set];
                let ref_hit = r.contains(&key);
                prop_assert_eq!(hit, ref_hit, "lookup({}) divergence", key);
                if let Some(pos) = r.iter().position(|&k| k == key) {
                    let k = r.remove(pos);
                    r.insert(0, k);
                }
            }
        }
        // Final contents agree.
        for (set, r) in reference.iter().enumerate() {
            for &k in r {
                prop_assert!(cache.contains(k), "set {set} lost key {k}");
            }
        }
    }

    /// RAS behaves as a bounded stack: pops mirror pushes up to capacity.
    #[test]
    fn ras_is_a_bounded_stack(addrs in prop::collection::vec(0u64..1_000, 1..100), cap in 1usize..80) {
        let mut ras = ReturnAddressStack::with_capacity(cap);
        let addrs: Vec<VAddr> = addrs.iter().map(|&a| VAddr::new(a * 4)).collect();
        for &a in &addrs {
            ras.push(a);
        }
        // Pop back: the last min(cap, n) pushes come back in LIFO order.
        let expect = addrs.iter().rev().take(cap);
        for &want in expect {
            prop_assert_eq!(ras.pop(), Some(want));
        }
        prop_assert_eq!(ras.pop(), None);
    }

    /// Trace serialization round-trips arbitrary records.
    #[test]
    fn trace_serialization_roundtrip(records in prop::collection::vec(arb_record(), 0..200)) {
        let encoded = encode_records(records.iter().copied());
        let decoded = decode_records(&encoded).unwrap();
        prop_assert_eq!(records, decoded);
    }

    /// AirBTB contents always mirror the L1-I in Full (synchronized) mode.
    #[test]
    fn airbtb_stays_in_sync_with_l1i(blocks in prop::collection::vec(0u64..512, 1..300)) {
        let mut l1i = L1ICache::new(16, 2).unwrap();
        let mut btb = AirBtb::paper_config();
        let branch = |b: BlockAddr| {
            [PredecodedBranch::direct(3, BranchKind::Call, b.base())]
        };
        for raw in blocks {
            let block = BlockAddr::from_raw(raw);
            if !l1i.contains(block) {
                btb.on_l1i_fill(block, &branch(block));
                if let Some(evicted) = l1i.fill(block) {
                    btb.on_l1i_evict(evicted);
                }
            }
            // Invariant: every resident block's branch hits; the bundle
            // count can never exceed residency.
            for resident in l1i.resident_blocks().collect::<Vec<_>>() {
                let outcome = btb.lookup(resident.base(), resident.instr(3));
                prop_assert!(outcome.hit, "resident block {resident} lost its bundle");
            }
        }
    }

    /// The executor's committed stream is sequentially consistent for any
    /// seed and scaled workload.
    #[test]
    fn executor_stream_is_consistent(seed in any::<u64>(), kb in 48usize..128) {
        let program = Program::generate(&WorkloadSpec::tiny().with_code_kb(kb)).unwrap();
        let mut prev: Option<TraceRecord> = None;
        for r in program.executor(seed).take(3_000) {
            if let Some(p) = prev {
                prop_assert_eq!(r.pc, p.next_pc());
            }
            prev = Some(r);
        }
    }
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    let kinds = prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Unconditional),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
        Just(BranchKind::IndirectJump),
        Just(BranchKind::IndirectCall),
    ];
    (
        arb_vaddr(),
        proptest::option::of((kinds, any::<bool>(), arb_vaddr())),
    )
        .prop_map(|(pc, branch)| match branch {
            None => TraceRecord::plain(pc),
            Some((kind, taken, target)) => TraceRecord::branch(pc, kind, taken, target),
        })
}
