//! Property-based tests on core data structures and invariants.

use proptest::prelude::*;

use confluence::trace::{decode_records, encode_records, Program, WorkloadSpec};
use confluence::types::{BlockAddr, BranchKind, DetRng, FetchRegion, TraceRecord, VAddr};
use confluence_btb::BtbDesign;
use confluence_core::AirBtb;
use confluence_types::{PredecodedBranch, INSTRS_PER_BLOCK};
use confluence_uarch::{L1ICache, ReturnAddressStack, SetAssocCache};

fn arb_vaddr() -> impl Strategy<Value = VAddr> {
    (0u64..(1 << 40)).prop_map(|v| VAddr::new(v << 2 & ((1 << 47) - 1)))
}

proptest! {
    #[test]
    fn vaddr_block_roundtrip(addr in arb_vaddr()) {
        let block = addr.block();
        let idx = addr.instr_index();
        prop_assert_eq!(block.instr(idx), addr);
        prop_assert!(idx < INSTRS_PER_BLOCK);
    }

    #[test]
    fn fetch_region_blocks_cover_all_instrs(addr in arb_vaddr(), len in 1usize..48) {
        let region = FetchRegion::new(addr, len);
        let blocks: Vec<BlockAddr> = region.blocks().collect();
        // Every instruction's block must be in the block list.
        for pc in region.instrs() {
            prop_assert!(blocks.contains(&pc.block()));
        }
        // Block list is contiguous and minimal.
        prop_assert_eq!(blocks.first().copied(), Some(region.start.block()));
        prop_assert_eq!(blocks.last().copied(), Some(region.last().block()));
        for w in blocks.windows(2) {
            prop_assert_eq!(w[1].raw(), w[0].raw() + 1);
        }
    }

    #[test]
    fn det_rng_below_is_bounded(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn det_rng_is_seed_deterministic(seed in any::<u64>()) {
        let mut a = DetRng::seed_from(seed);
        let mut b = DetRng::seed_from(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// The set-associative cache agrees with a naive per-set LRU model.
    #[test]
    fn cache_matches_reference_lru(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        let sets = 4usize;
        let ways = 2usize;
        let mut cache = SetAssocCache::new(sets, ways).unwrap();
        // Reference: per-set vector, front = MRU.
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); sets];
        for (key, is_insert) in ops {
            let set = (key % sets as u64) as usize;
            if is_insert {
                cache.insert(key, ());
                let r = &mut reference[set];
                if let Some(pos) = r.iter().position(|&k| k == key) {
                    r.remove(pos);
                }
                r.insert(0, key);
                r.truncate(ways);
            } else {
                let hit = cache.lookup(key).is_some();
                let r = &mut reference[set];
                let ref_hit = r.contains(&key);
                prop_assert_eq!(hit, ref_hit, "lookup({}) divergence", key);
                if let Some(pos) = r.iter().position(|&k| k == key) {
                    let k = r.remove(pos);
                    r.insert(0, k);
                }
            }
        }
        // Final contents agree.
        for (set, r) in reference.iter().enumerate() {
            for &k in r {
                prop_assert!(cache.contains(k), "set {set} lost key {k}");
            }
        }
    }

    /// RAS behaves as a bounded stack: pops mirror pushes up to capacity.
    #[test]
    fn ras_is_a_bounded_stack(addrs in prop::collection::vec(0u64..1_000, 1..100), cap in 1usize..80) {
        let mut ras = ReturnAddressStack::with_capacity(cap);
        let addrs: Vec<VAddr> = addrs.iter().map(|&a| VAddr::new(a * 4)).collect();
        for &a in &addrs {
            ras.push(a);
        }
        // Pop back: the last min(cap, n) pushes come back in LIFO order.
        let expect = addrs.iter().rev().take(cap);
        for &want in expect {
            prop_assert_eq!(ras.pop(), Some(want));
        }
        prop_assert_eq!(ras.pop(), None);
    }

    /// Trace serialization round-trips arbitrary records.
    #[test]
    fn trace_serialization_roundtrip(records in prop::collection::vec(arb_record(), 0..200)) {
        let encoded = encode_records(records.iter().copied());
        let decoded = decode_records(&encoded).unwrap();
        prop_assert_eq!(records, decoded);
    }

    /// AirBTB contents always mirror the L1-I in Full (synchronized) mode.
    #[test]
    fn airbtb_stays_in_sync_with_l1i(blocks in prop::collection::vec(0u64..512, 1..300)) {
        let mut l1i = L1ICache::new(16, 2).unwrap();
        let mut btb = AirBtb::paper_config();
        let branch = |b: BlockAddr| {
            [PredecodedBranch::direct(3, BranchKind::Call, b.base())]
        };
        for raw in blocks {
            let block = BlockAddr::from_raw(raw);
            if !l1i.contains(block) {
                btb.on_l1i_fill(block, &branch(block));
                if let Some(evicted) = l1i.fill(block) {
                    btb.on_l1i_evict(evicted);
                }
            }
            // Invariant: every resident block's branch hits; the bundle
            // count can never exceed residency.
            for resident in l1i.resident_blocks().collect::<Vec<_>>() {
                let outcome = btb.lookup(resident.base(), resident.instr(3));
                prop_assert!(outcome.hit, "resident block {resident} lost its bundle");
            }
        }
    }

    /// The executor's committed stream is sequentially consistent for any
    /// seed and scaled workload.
    #[test]
    fn executor_stream_is_consistent(seed in any::<u64>(), kb in 48usize..128) {
        let program = Program::generate(&WorkloadSpec::tiny().with_code_kb(kb)).unwrap();
        let mut prev: Option<TraceRecord> = None;
        for r in program.executor(seed).take(3_000) {
            if let Some(p) = prev {
                prop_assert_eq!(r.pc, p.next_pc());
            }
            prev = Some(r);
        }
    }
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    let kinds = prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Unconditional),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
        Just(BranchKind::IndirectJump),
        Just(BranchKind::IndirectCall),
    ];
    (
        arb_vaddr(),
        proptest::option::of((kinds, any::<bool>(), arb_vaddr())),
    )
        .prop_map(|(pc, branch)| match branch {
            None => TraceRecord::plain(pc),
            Some((kind, taken, target)) => TraceRecord::branch(pc, kind, taken, target),
        })
}

// ---------------------------------------------------------------------------
// Persistent-store codec: arbitrary jobs and outputs round-trip the
// versioned binary schema (`confluence_sim::codec`).

use confluence::prefetch::DEFAULT_LOOKAHEAD;
use confluence::sim::{
    BtbSpec, CoverageJob, CoverageResult, DensityJob, Job, JobOutput, TimingJob,
};
use confluence::store::{Decode, Encode};
use confluence_core::AirBtbMode;
use confluence_sim::{
    CoreStats, CoverageOptions, DesignPoint as Design, TimingConfig, TimingResult,
};
use confluence_uarch::{CoreParams, MemParams};
use std::sync::Arc;

fn arb_workload() -> impl Strategy<Value = confluence::trace::Workload> {
    (0usize..confluence::trace::Workload::ALL.len())
        .prop_map(|i| confluence::trace::Workload::ALL[i])
}

fn arb_design() -> impl Strategy<Value = Design> {
    (0usize..Design::ALL.len()).prop_map(|i| Design::ALL[i])
}

fn arb_airbtb_mode() -> impl Strategy<Value = AirBtbMode> {
    prop_oneof![
        Just(AirBtbMode::CapacityOnly),
        Just(AirBtbMode::SpatialLocality),
        Just(AirBtbMode::Prefetching),
        Just(AirBtbMode::Full),
    ]
}

fn arb_btb_spec() -> impl Strategy<Value = BtbSpec> {
    prop_oneof![
        (1usize..65_536, 1usize..16, 0usize..256).prop_map(|(entries, ways, victim_entries)| {
            BtbSpec::Conventional {
                entries,
                ways,
                victim_entries,
            }
        }),
        Just(BtbSpec::Baseline1k),
        Just(BtbSpec::Large16k),
        (1u64..200).prop_map(|llc_latency| BtbSpec::Phantom { llc_latency }),
        Just(BtbSpec::TwoLevelPaper),
        (arb_airbtb_mode(), 1usize..4096, 1usize..8, 0usize..256).prop_map(
            |(mode, bundles, bundle_entries, overflow_entries)| BtbSpec::AirBtb {
                mode,
                bundles,
                bundle_entries,
                overflow_entries,
            }
        ),
        Just(BtbSpec::Ideal16k),
        Just(BtbSpec::Perfect),
    ]
}

fn arb_coverage_options() -> impl Strategy<Value = CoverageOptions> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), 0usize..1 << 20),
        // Bias the v1 tail extension toward its defaults so both the
        // five-field and the extended encodings get real coverage.
        prop_oneof![
            Just((confluence_sim::DEFAULT_L1I_KB, DEFAULT_LOOKAHEAD)),
            (1usize..512, 1usize..256),
        ],
    )
        .prop_map(
            |(
                (warmup_instrs, measure_instrs, seed),
                (use_shift, history_entries),
                (l1i_kb, shift_lookahead),
            )| {
                CoverageOptions {
                    warmup_instrs,
                    measure_instrs,
                    seed,
                    use_shift,
                    history_entries,
                    l1i_kb,
                    shift_lookahead,
                }
            },
        )
}

fn arb_core_params() -> impl Strategy<Value = CoreParams> {
    (
        (1usize..32, 0usize..64, 0u64..32, 0u64..64),
        (1usize..8, 1usize..256, 1usize..4, 1usize..16),
    )
        .prop_map(|((fq, seq, mf, mp), (rw, ib, ppc, fw))| CoreParams {
            fetch_queue_regions: fq,
            btb_miss_seq_instrs: seq,
            misfetch_penalty: mf,
            mispredict_penalty: mp,
            retire_width: rw,
            instr_buffer: ib,
            predictions_per_cycle: ppc,
            fetch_width: fw,
        })
}

fn arb_mem_params() -> impl Strategy<Value = MemParams> {
    (
        (1usize..1 << 22, 1usize..32, 1u64..16, 1usize..64),
        (1usize..64, 1usize..1 << 24, 1usize..64, 1u64..32),
        (1u64..16, 1u64..512, 1usize..256),
    )
        .prop_map(
            |(
                (l1i_bytes, l1i_ways, l1i_latency, l1i_mshrs),
                (cores, llc_slice_bytes, llc_ways, llc_bank_latency),
                (noc_hop_latency, mem_latency, block_bytes),
            )| MemParams {
                l1i_bytes,
                l1i_ways,
                l1i_latency,
                l1i_mshrs,
                cores,
                llc_slice_bytes,
                llc_ways,
                llc_bank_latency,
                noc_hop_latency,
                mem_latency,
                block_bytes,
            },
        )
}

fn arb_timing_config() -> impl Strategy<Value = TimingConfig> {
    (
        (1usize..64, any::<u64>(), any::<u64>()),
        (0usize..1 << 20, any::<u64>()),
        arb_core_params(),
        arb_mem_params(),
    )
        .prop_map(
            |((cores, warmup_instrs, measure_instrs), (history_entries, seed), core, mem)| {
                TimingConfig {
                    cores,
                    warmup_instrs,
                    measure_instrs,
                    history_entries,
                    seed,
                    core,
                    mem,
                }
            },
        )
}

fn arb_job() -> impl Strategy<Value = Job> {
    prop_oneof![
        (arb_workload(), arb_btb_spec(), arb_coverage_options()).prop_map(
            |(workload, btb, opts)| Job::Coverage(CoverageJob {
                workload,
                btb,
                opts
            })
        ),
        (arb_workload(), arb_design(), arb_timing_config()).prop_map(|(workload, design, cfg)| {
            Job::Timing(TimingJob {
                workload,
                design,
                cfg,
            })
        }),
        (arb_workload(), any::<u64>(), any::<u64>()).prop_map(|(workload, instrs, seed)| {
            Job::Density(DensityJob {
                workload,
                instrs,
                seed,
            })
        }),
    ]
}

fn arb_coverage_result() -> impl Strategy<Value = CoverageResult> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((instrs, branches, taken_branches, btb_misses), (a, m, p))| CoverageResult {
                instrs,
                branches,
                taken_branches,
                btb_misses,
                l1i_accesses: a,
                l1i_misses: m,
                prefetch_fills: p,
            },
        )
}

fn arb_core_stats() -> impl Strategy<Value = CoreStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|((a, b, c, d), (e, f, g, h), (i, j, k, l))| CoreStats {
            cycles: a,
            retired: b,
            branches: c,
            taken_branches: d,
            btb_misses: e,
            misfetches: f,
            l2_bubble_cycles: g,
            mispredicts: h,
            l1i_accesses: i,
            l1i_misses: j,
            prefetch_fills: k,
            fetch_stall_cycles: l,
        })
}

fn arb_job_output() -> impl Strategy<Value = JobOutput> {
    prop_oneof![
        arb_coverage_result().prop_map(JobOutput::Coverage),
        (
            arb_design(),
            prop::collection::vec(arb_core_stats(), 0..20),
            any::<u64>(),
        )
            .prop_map(|(design, per_core, total_cycles)| {
                JobOutput::Timing(Arc::new(TimingResult {
                    design,
                    per_core,
                    total_cycles,
                }))
            }),
        // Raw bit patterns: NaNs and infinities must survive too.
        (any::<u64>(), any::<u64>())
            .prop_map(|(s, d)| JobOutput::Density(f64::from_bits(s), f64::from_bits(d))),
    ]
}

/// A CSV-safe cell/caption: no commas, no newlines (the dialect's
/// documented non-representable characters).
fn arb_cell() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 ._%+-]{0,12}").unwrap()
}

proptest! {
    /// Report rendering round-trips: any report over CSV-safe cells is
    /// reconstructed exactly by `Report::from_csv(report.to_csv())`,
    /// and re-rendering the parse is byte-stable. This is the contract
    /// the sweep golden harness rests on.
    #[test]
    fn report_csv_roundtrip(
        caption in arb_cell(),
        headers in prop::collection::vec(arb_cell(), 1..5),
        row_seed in prop::collection::vec(prop::collection::vec(arb_cell(), 5..6), 0..6),
    ) {
        use confluence::sim::report::Report;
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut report = Report::new(caption.clone(), &header_refs);
        for seed in &row_seed {
            // Trim every generated row to the header arity.
            report.row(seed[..headers.len()].to_vec());
        }
        let csv = report.to_csv();
        let parsed = Report::from_csv(&csv).expect("rendered CSV must parse");
        prop_assert_eq!(&parsed, &report);
        prop_assert_eq!(parsed.to_csv(), csv, "re-rendering must be byte-stable");
    }
}

/// Every job any registered sweep study can generate — every swept
/// `CoverageOptions` history capacity, `BtbSpec` geometry, and
/// `TimingConfig` core count, in both quick and full configurations —
/// round-trips the persistent-store codec byte-stably. This is the
/// contract that lets sweep points share the disk store with the figure
/// suite.
#[test]
fn every_sweep_study_job_roundtrips_codec() {
    use confluence_sim::experiments::ExperimentConfig;
    let mut seen = 0;
    for cfg in [ExperimentConfig::quick(), ExperimentConfig::full()] {
        for study in confluence_sim::sweeps::registry() {
            for job in study.jobs_for(&confluence::trace::Workload::ALL, &cfg) {
                let bytes = job.to_bytes();
                let decoded = Job::from_bytes(&bytes).expect("study job must decode");
                assert_eq!(decoded, job, "{}: decode mismatch", study.name);
                assert_eq!(decoded.to_bytes(), bytes, "{}: not byte-stable", study.name);
                seen += 1;
            }
        }
    }
    assert!(
        seen > 100,
        "expected a real corpus of study jobs, got {seen}"
    );
}

proptest! {
    /// Arbitrary jobs round-trip the store codec to equality.
    #[test]
    fn job_codec_roundtrip(job in arb_job()) {
        let bytes = job.to_bytes();
        let decoded = Job::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(&decoded, &job);
        // Re-encoding is byte-stable (canonical form).
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// Arbitrary outputs round-trip the store codec byte-stably. Compared
    /// via re-encoded bytes so NaN densities (bit-preserved, but `!=`
    /// under IEEE comparison) still verify.
    #[test]
    fn job_output_codec_roundtrip(output in arb_job_output()) {
        let bytes = output.to_bytes();
        let decoded = JobOutput::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// Decoding truncated prefixes of a valid encoding never panics,
    /// never reproduces the original job, and — because coverage options
    /// carry a default-invisible tail extension — any prefix that *does*
    /// decode must be canonical (it re-encodes to exactly that prefix,
    /// i.e. it is the legitimate encoding of a default-tail job, which
    /// the store's full-key comparison distinguishes anyway).
    #[test]
    fn truncated_job_encodings_never_alias(job in arb_job()) {
        let bytes = job.to_bytes();
        for keep in 0..bytes.len() {
            match Job::from_bytes(&bytes[..keep]) {
                Err(_) => {}
                Ok(decoded) => {
                    prop_assert!(decoded != job, "prefix {keep} decoded to the original");
                    prop_assert!(
                        decoded.to_bytes() == bytes[..keep],
                        "prefix {keep} decoded non-canonically"
                    );
                }
            }
        }
    }
}
