//! Golden harness for the design-space search subsystem.
//!
//! Every registered study is pinned two ways:
//!
//! 1. **Trajectory goldens** — the quick-mode, single-workload search
//!    (seed 42) renders its trajectory, frontier, and answer to CSV and
//!    is byte-compared against `tests/goldens/search-<study>.csv`. The
//!    strategies are seeded and the simulators are pure functions of
//!    their job keys, so the visited-point sequence — not just the final
//!    answer — is stable across hosts. Regenerate deliberately with
//!    `CONFLUENCE_REGOLD=1 cargo test` and review the diff.
//! 2. **Warm-store re-run** — a fresh engine over the same store must
//!    re-run every search with zero executed simulations and render
//!    byte-identical reports, because search probes reuse the sweep
//!    suite's content-keyed job constructors.

use std::path::PathBuf;

use confluence::search::{registry, run_search};
use confluence::sim::{experiments::ExperimentConfig, SimEngine};
use confluence::store::ResultStore;
use confluence::trace::Workload;

/// The workload the goldens pin (the first in presentation order).
const GOLDEN_WORKLOAD: Workload = Workload::OltpDb2;

/// Fixed seed: the goldens pin the exact visited-point sequence.
const GOLDEN_SEED: u64 = 42;

/// One workload keeps the harness fast; search objectives average over
/// whatever workloads the engine holds, so this pins exactly the
/// trajectory a single-workload run produces.
fn golden_engine(cfg: &ExperimentConfig) -> SimEngine {
    SimEngine::new(vec![(
        GOLDEN_WORKLOAD,
        cfg.workload_program(GOLDEN_WORKLOAD),
    )])
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// Compares `actual` against the committed golden, or rewrites it when
/// `CONFLUENCE_REGOLD` is set.
fn check_golden(name: &str, actual: &str) {
    let path = goldens_dir().join(format!("{name}.csv"));
    if std::env::var_os("CONFLUENCE_REGOLD").is_some() {
        std::fs::create_dir_all(goldens_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        expected, actual,
        "golden mismatch for search study '{name}' — if the change is \
         intentional, regenerate with CONFLUENCE_REGOLD=1 cargo test and \
         review the diff"
    );
}

/// A disposable store directory under the system temp dir.
struct StoreDir(PathBuf);

impl StoreDir {
    fn new(tag: &str) -> StoreDir {
        let path =
            std::env::temp_dir().join(format!("confluence-search-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        StoreDir(path)
    }

    fn open(&self) -> ResultStore {
        ResultStore::open(&self.0, confluence::sim::SCHEMA_VERSION).expect("temp dir writable")
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The three reports of one search, concatenated in render order — the
/// unit the goldens pin.
fn search_csv(
    engine: &SimEngine,
    cfg: &ExperimentConfig,
    study: &confluence::search::Study,
) -> String {
    let outcome = run_search(engine, cfg, study, GOLDEN_SEED, |jobs| {
        engine.run(jobs);
    });
    format!(
        "{}\n{}\n{}",
        outcome.trajectory.to_csv(),
        outcome.frontier.to_csv(),
        outcome.answer.to_csv()
    )
}

/// The whole harness in one pass so every probe simulates once: cold
/// searches → goldens; warm searches (fresh engine, same store) → zero
/// executions, byte-identical reports.
#[test]
fn search_studies_match_goldens_and_rerun_warm_with_zero_simulations() {
    let cfg = ExperimentConfig::quick();
    let dir = StoreDir::new("golden");
    let studies = registry();
    assert!(studies.len() >= 3, "registry must name at least 3 studies");

    let cold = golden_engine(&cfg).with_store(dir.open());
    let mut cold_csv = Vec::new();
    for study in &studies {
        let csv = search_csv(&cold, &cfg, study);
        check_golden(&format!("search-{}", study.name), &csv);
        cold_csv.push(csv);
    }
    let cold_stats = cold.stats();
    assert!(
        cold_stats.executed > 0,
        "cold searches must actually simulate"
    );

    // Warm re-run: a fresh engine (fresh process, in spirit) over the
    // same store replays every search from disk. The strategies are
    // deterministic, so they revisit exactly the persisted points.
    let warm = golden_engine(&cfg).with_store(dir.open());
    let warm_csv: Vec<String> = studies.iter().map(|s| search_csv(&warm, &cfg, s)).collect();
    let stats = warm.stats();
    assert_eq!(stats.executed, 0, "warm search must execute nothing");
    assert_eq!(
        stats.disk_hits, cold_stats.executed,
        "every unique probe must come from disk"
    );
    assert_eq!(warm_csv, cold_csv, "warm reports must be byte-identical");
}
